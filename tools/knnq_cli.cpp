// knnq command-line tool: generate datasets, inspect indexes, and run
// two-kNN-predicate queries through the planner with EXPLAIN output.
//
// Usage:
//   knnq_cli generate --kind berlin|uniform|clusters --n N [--clusters C]
//            [--per P] [--seed S] --out FILE(.csv|.bin)
//   knnq_cli info --data FILE [--index grid|quadtree|rtree]
//   knnq_cli knn --data FILE --at X,Y --k K [--index TYPE]
//   knnq_cli query --data NAME=FILE [--data NAME=FILE ...]
//            [-e "KNNQL"] [--file SCRIPT.knnql] [--json] [--naive]
//            [--index TYPE] [--cache-mb M] [--shards N]
//            [--shard-policy bisection|grid]
//   knnq_cli serve --data NAME=FILE [--data NAME=FILE ...]
//            [--host H] [--port P] [--threads T] [--max-inflight M]
//            [--max-conn-inflight M] [--max-request-bytes B]
//            [--idle-timeout-ms T] [--cache-mb M] [--index TYPE]
//            [--shards N] [--shard-policy bisection|grid]
//            [--data-dir DIR] [--wal-sync always|interval|none]
//            [--snapshot-interval-ops N]
//            [--http-port P] [--http-host H] [--history-interval-ms T]
//            [--drain-linger-ms T]
//   knnq_cli two-selects --data FILE --f1 X,Y --k1 K --f2 X,Y --k2 K
//            [--naive]
//   knnq_cli select-inner-join --outer FILE --inner FILE --join-k K
//            --focal X,Y --select-k K [--naive]
//   knnq_cli range-inner-join --outer FILE --inner FILE --join-k K
//            --range X1,Y1,X2,Y2 [--naive]
//   knnq_cli chained --a FILE --b FILE --c FILE --k-ab K --k-bc K [--naive]
//   knnq_cli unchained --a FILE --b FILE --c FILE --k-ab K --k-cb K
//            [--naive]
//
// `query` is the declarative front door: statements in KNNQL (see
// README "KNNQL"), from -e, a script file, or an interactive REPL when
// neither is given. An EXPLAIN prefix plans a statement without
// executing it; EXPLAIN ANALYZE executes it and reports the traced
// span tree; --json emits one JSON object per statement for scripted
// consumers. DML statements (INSERT INTO / DELETE FROM /
// LOAD ... FROM 'file') mutate relations in place and may interleave
// with queries in the same script or session.
//
// Every query command accepts --cache-mb M to give the engine an M-MiB
// cross-query neighborhood cache (0, the default, disables it), and
// --no-simd to disable the AVX2 distance kernel (results are
// byte-identical either way; the flag exists for speed A/B runs).
// `query` and `serve` accept --shards N (default 1) to partition every
// relation into N spatial shards: kNN runs scatter-gather with
// distance-bound shard pruning (`shards_pruned` in stats output) and
// DML commits copy-on-write without blocking readers. Results are
// byte-identical to --shards 1.
//
// `serve --http-port P` adds the HTTP observability plane: GET
// /metrics (Prometheus exposition, byte-identical to the METRICS;
// verb), /healthz (liveness), /readyz (readiness, 503 with reasons
// during recovery and drain) and /statusz (JSON introspection with
// ring-buffer time series sampled every --history-interval-ms).
// --drain-linger-ms keeps /readyz answering 503 "draining" for that
// window after a graceful shutdown's drain, so load balancers observe
// not-ready before the endpoints disappear.
//
// Dataset files are produced by `generate` (CSV: id,x,y with a header;
// .bin: the knnq binary format).

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/common/text_parse.h"
#include "src/data/berlinmod.h"
#include "src/data/clustered.h"
#include "src/data/dataset_io.h"
#include "src/data/uniform.h"
#include "src/durability/durability_manager.h"
#include "src/engine/query_engine.h"
#include "src/index/distance_kernel.h"
#include "src/index/knn_searcher.h"
#include "src/lang/knnql.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"
#include "src/server/server.h"
#include "src/server/wire.h"

namespace {

using namespace knnq;

/// Minimal "--flag value" parser. Flags may repeat (--data twice loads
/// two relations); Get sees the last occurrence, GetAll sees every one.
/// "-e" is accepted as the conventional short form for query text.
class Args {
 public:
  static Result<Args> Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag.rfind("--", 0) != 0 && flag != "-e") {
        return Status::InvalidArgument("expected --flag, got: " + flag);
      }
      if (flag == "--naive" || flag == "--json" ||
          flag == "--allow-remote-shutdown" || flag == "--no-simd") {
        args.values_[flag].push_back("1");
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + flag);
      }
      args.values_[flag].push_back(argv[++i]);
    }
    return args;
  }

  Result<std::string> Get(const std::string& flag) const {
    const auto it = values_.find(flag);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag " + flag);
    }
    return it->second.back();
  }

  std::string GetOr(const std::string& flag, std::string fallback) const {
    const auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second.back();
  }

  /// Every value the flag was given, in command-line order.
  std::vector<std::string> GetAll(const std::string& flag) const {
    const auto it = values_.find(flag);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  bool Has(const std::string& flag) const { return values_.contains(flag); }

  Result<std::size_t> GetSize(const std::string& flag) const {
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    auto parsed = ParseSize(*raw);
    if (!parsed.ok() || *parsed == 0) {
      return Status::InvalidArgument(flag + " must be a positive integer");
    }
    return *parsed;
  }

  /// Like GetSize, but absent means `fallback` and 0 is legal (used by
  /// --cache-mb, where 0 means "cache disabled").
  Result<std::size_t> GetSizeOr(const std::string& flag,
                                std::size_t fallback) const {
    if (!Has(flag)) return fallback;
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    auto parsed = ParseSize(*raw);
    if (!parsed.ok()) {
      return Status::InvalidArgument(flag + " must be >= 0");
    }
    return *parsed;
  }

  Result<Point> GetPoint(const std::string& flag) const {
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    auto point = ParsePointText(*raw);
    if (!point.ok()) {
      return Status::InvalidArgument(flag + " " +
                                     point.status().message());
    }
    return point;
  }

  Result<BoundingBox> GetBox(const std::string& flag) const {
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    auto box = ParseBoxText(*raw);
    if (!box.ok()) {
      return Status::InvalidArgument(flag + " " + box.status().message());
    }
    return box;
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<IndexType> ParseIndexType(const std::string& name) {
  if (name == "grid") return IndexType::kGrid;
  if (name == "quadtree") return IndexType::kQuadtree;
  if (name == "rtree") return IndexType::kRTree;
  return Status::InvalidArgument("unknown index type: " + name);
}

Result<ShardPolicy> ParseShardPolicy(const std::string& name) {
  if (name == "bisection") return ShardPolicy::kBisection;
  if (name == "grid") return ShardPolicy::kGrid;
  return Status::InvalidArgument("unknown shard policy: " + name);
}

/// Shared --index / --shards / --shard-policy parsing of `query` and
/// `serve`.
Result<IndexOptions> ParseIndexFlags(const Args& args) {
  auto type = ParseIndexType(args.GetOr("--index", "grid"));
  if (!type.ok()) return type.status();
  auto shards = args.GetSizeOr("--shards", 1);
  if (!shards.ok()) return shards.status();
  auto policy = ParseShardPolicy(args.GetOr("--shard-policy", "bisection"));
  if (!policy.ok()) return policy.status();
  IndexOptions options;
  options.type = *type;
  options.shards = std::max<std::size_t>(*shards, 1);
  options.shard_policy = *policy;
  return options;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Shared observability flags of `query` and `serve`: the slow-query
/// log threshold, the trace sampling knob, and the diagnostics sink.
Status ApplyObsFlags(const Args& args, EngineOptions* options) {
  if (args.Has("--slow-query-ms")) {
    auto raw = args.Get("--slow-query-ms");
    if (!raw.ok()) return raw.status();
    auto ms = ParseDouble(*raw);
    if (!ms.ok() || *ms < 0) {
      return Status::InvalidArgument("--slow-query-ms must be >= 0");
    }
    options->slow_query_ms = *ms;
  }
  auto every = args.GetSizeOr("--trace-sample-every", 0);
  if (!every.ok()) return every.status();
  options->trace_sample_every = *every;
  if (args.Has("--log-level")) {
    auto level = obs::ParseLogLevel(*args.Get("--log-level"));
    if (!level.ok()) return level.status();
    obs::Logger::Global().SetLevel(*level);
  }
  if (args.Has("--log-file")) {
    if (Status s = obs::Logger::Global().OpenFile(*args.Get("--log-file"));
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

int CmdGenerate(const Args& args) {
  const std::string kind = args.GetOr("--kind", "berlin");
  auto n = args.GetSize("--n");
  if (!n.ok()) return Fail(n.status());
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.GetOr("--seed", "1").c_str(), nullptr, 10));
  auto out = args.Get("--out");
  if (!out.ok()) return Fail(out.status());

  PointSet points;
  if (kind == "berlin") {
    BerlinModOptions options;
    options.num_points = *n;
    options.seed = seed;
    auto generated = GenerateBerlinModSnapshot(options);
    if (!generated.ok()) return Fail(generated.status());
    points = std::move(generated.value());
  } else if (kind == "uniform") {
    points = GenerateUniform(*n, BoundingBox(0, 0, 30000, 24000), seed);
  } else if (kind == "clusters") {
    ClusterOptions options;
    options.num_clusters = args.Has("--clusters")
                               ? *args.GetSize("--clusters")
                               : std::size_t{4};
    options.points_per_cluster =
        args.Has("--per") ? *args.GetSize("--per")
                          : *n / options.num_clusters;
    options.cluster_radius = 800.0;
    options.region = BoundingBox(0, 0, 30000, 24000);
    options.seed = seed;
    auto generated = GenerateClusters(options);
    if (!generated.ok()) return Fail(generated.status());
    points = std::move(generated.value());
  } else {
    return Fail(Status::InvalidArgument("unknown --kind " + kind));
  }

  const Status saved = EndsWith(*out, ".bin") ? SaveBinary(points, *out)
                                              : SaveCsv(points, *out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %zu points to %s\n", points.size(), out->c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  auto path = args.Get("--data");
  if (!path.ok()) return Fail(path.status());
  auto points = LoadPoints(*path);
  if (!points.ok()) return Fail(points.status());
  auto type = ParseIndexType(args.GetOr("--index", "grid"));
  if (!type.ok()) return Fail(type.status());

  IndexOptions options;
  options.type = *type;
  Stopwatch sw;
  auto index = BuildIndex(*points, options);
  if (!index.ok()) return Fail(index.status());
  const double build_ms = sw.ElapsedMillis();

  const BoundingBox& bounds = (*index)->bounds();
  const CoverageStats coverage = EstimateCoverage(*points, bounds);
  std::printf("points:   %zu\n", (*index)->num_points());
  std::printf("bounds:   %s\n", bounds.ToString().c_str());
  std::printf("index:    %s (built in %.1f ms)\n",
              (*index)->Describe().c_str(), build_ms);
  std::printf("coverage: %.1f%% of probe cells occupied\n",
              100.0 * coverage.coverage());
  return 0;
}

int CmdKnn(const Args& args) {
  auto path = args.Get("--data");
  if (!path.ok()) return Fail(path.status());
  auto at = args.GetPoint("--at");
  if (!at.ok()) return Fail(at.status());
  auto k = args.GetSize("--k");
  if (!k.ok()) return Fail(k.status());
  auto type = ParseIndexType(args.GetOr("--index", "grid"));
  if (!type.ok()) return Fail(type.status());

  auto points = LoadPoints(*path);
  if (!points.ok()) return Fail(points.status());
  IndexOptions options;
  options.type = *type;
  auto index = BuildIndex(std::move(points.value()), options);
  if (!index.ok()) return Fail(index.status());

  KnnSearcher searcher(**index);
  Stopwatch sw;
  const Neighborhood nbr = searcher.GetKnn(*at, *k);
  const double ms = sw.ElapsedMillis();
  std::printf("%zu neighbors in %.3f ms (%zu blocks, %zu points "
              "examined)\n",
              nbr.size(), ms, searcher.stats().blocks_scanned,
              searcher.stats().points_scanned);
  for (const Neighbor& n : nbr) {
    std::printf("  %s  dist %.2f\n", n.point.ToString().c_str(), n.dist);
  }
  return 0;
}

// --------------------------------------------------------------- query
//
// JSON output goes through src/server/wire.h: the network server and
// `--json` emit byte-identical records for the same outcome.

void PrintHumanResult(const EngineResult& run) {
  std::printf("%s", run.explain.c_str());
  const double ms = run.stats.wall_seconds * 1e3;
  std::visit(
      [&](const auto& result) {
        using T = std::decay_t<decltype(result)>;
        if constexpr (std::is_same_v<T, TwoSelectsResult>) {
          std::printf("result: %zu points in %.2f ms\n", result.size(), ms);
          for (const Point& p : result) {
            std::printf("  %s\n", p.ToString().c_str());
          }
        } else {
          std::printf("result: %s in %.2f ms\n", Summarize(result).c_str(),
                      ms);
        }
      },
      run.output);
}

/// A statement-level failure (bind, plan or execution): in JSON mode it
/// must still land on stdout as a JSON record.
int FailStatement(const Status& status, bool json) {
  if (json) {
    std::printf("%s\n",
                server::JsonErrorRecord("", "", status).c_str());
    return 1;
  }
  return Fail(status);
}

/// Executes one DML statement (INSERT / DELETE / LOAD) and prints the
/// outcome in the requested format.
int ExecuteDml(QueryEngine& engine, const knnql::DmlSpec& dml, bool json) {
  const std::string text = knnql::Unparse(dml);
  const EngineResult run = engine.ExecuteDml(dml);
  if (!run.ok()) {
    if (json) {
      std::printf(
          "%s\n",
          server::JsonErrorRecord("statement", text, run.status).c_str());
      return 1;
    }
    return Fail(run.status);
  }
  if (json) {
    std::printf("%s\n", server::JsonDmlRecord(text, run).c_str());
  } else {
    std::printf("%s", run.explain.c_str());
  }
  return 0;
}

/// Executes one parsed statement — binding it against the engine's
/// CURRENT catalog, so a LOAD can create relations that later
/// statements of the same script use — and prints it in the requested
/// format. Returns 0 on success (including a printed EXPLAIN).
int ExecuteStatement(QueryEngine& engine,
                     const knnql::Statement& statement, bool json,
                     std::uint64_t parse_ns = 0) {
  const auto* query = std::get_if<knnql::Query>(&statement.body);
  if (query == nullptr) {
    auto dml = knnql::BindDml(statement.body, &engine.catalog());
    if (!dml.ok()) return FailStatement(dml.status(), json);
    return ExecuteDml(engine, *dml, json);
  }
  Stopwatch bind_timer;
  auto bound = knnql::Bind(*query, &engine.catalog());
  const double bind_seconds = bind_timer.ElapsedSeconds();
  if (!bound.ok()) return FailStatement(bound.status(), json);
  const QuerySpec& spec = *bound;

  const std::string text = knnql::Unparse(spec);
  if (statement.analyze) {
    const EngineResult run = engine.RunAnalyzed(
        spec, parse_ns, static_cast<std::uint64_t>(bind_seconds * 1e9));
    if (!run.ok()) {
      if (json) {
        std::printf(
            "%s\n",
            server::JsonErrorRecord("query", text, run.status).c_str());
        return 1;
      }
      return Fail(run.status);
    }
    if (json) {
      std::printf("%s\n", server::JsonAnalyzeRecord(text, run).c_str());
    } else {
      PrintHumanResult(run);
      std::printf("%s", obs::RenderText(run.trace->root()).c_str());
    }
    return 0;
  }
  if (statement.explain) {
    const auto explain = engine.Explain(spec);
    if (!explain.ok()) {
      if (json) {
        std::printf("%s\n",
                    server::JsonErrorRecord("query", text,
                                            explain.status())
                        .c_str());
        return 1;
      }
      return Fail(explain.status());
    }
    if (json) {
      std::printf("%s\n",
                  server::JsonExplainRecord(text, *explain).c_str());
    } else {
      std::printf("%s", explain->c_str());
    }
    return 0;
  }

  const EngineResult run = engine.Run(spec);
  if (!run.ok()) {
    if (json) {
      std::printf(
          "%s\n",
          server::JsonErrorRecord("query", text, run.status).c_str());
      return 1;
    }
    return Fail(run.status);
  }
  if (json) {
    std::printf("%s\n", server::JsonQueryRecord(text, run).c_str());
  } else {
    PrintHumanResult(run);
  }
  return 0;
}

/// A script-level failure (parse or bind): in JSON mode it must still
/// land on stdout as a JSON record, not as a bare stderr line.
int FailScript(const Status& status, bool json) {
  if (json) {
    std::printf("%s\n",
                server::JsonErrorRecord("", "", status).c_str());
    return 1;
  }
  return Fail(status);
}

int ExecuteStatements(QueryEngine& engine, const knnql::Script& script,
                      bool json, std::uint64_t parse_ns = 0) {
  int rc = 0;
  for (const knnql::Statement& statement : script) {
    if (ExecuteStatement(engine, statement, json, parse_ns) != 0) rc = 1;
  }
  return rc;
}

/// Parses and executes `text` (possibly several statements). Returns
/// nonzero when anything — parse, bind, plan, execution — failed.
/// Statements bind one at a time, so DML earlier in the text is
/// visible to the queries after it.
int RunKnnqlText(QueryEngine& engine, const std::string& text, bool json) {
  Stopwatch parse_timer;
  const auto script = knnql::ParseScript(text);
  const auto parse_ns =
      static_cast<std::uint64_t>(parse_timer.ElapsedSeconds() * 1e9);
  if (!script.ok()) return FailScript(script.status(), json);
  return ExecuteStatements(engine, *script, json, parse_ns);
}

/// Interactive loop: statements accumulate across lines until they are
/// syntactically complete, errors never end the session, EXPLAIN plans
/// without executing. Exits on end-of-input or "quit"/"exit". When
/// stdin is not a terminal (a piped script), any failed statement
/// makes the final exit code nonzero.
int RunRepl(QueryEngine& engine, bool json) {
  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::printf("KNNQL. Statements end with ';'. EXPLAIN <query>; shows "
                "the plan; INSERT/DELETE/LOAD mutate relations. quit to "
                "leave.\n");
    for (const std::string& name : engine.catalog().Names()) {
      std::printf("  relation %s (%zu points)\n", name.c_str(),
                  engine.catalog().Get(name).value()->index->num_points());
    }
  }
  std::string buffer;
  std::string line;
  int rc = 0;
  while (true) {
    if (interactive) {
      std::fputs(buffer.empty() ? "knnql> " : "  ...> ", stdout);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty()) {
      const std::string_view command = TrimWhitespace(line);
      if (command == "quit" || command == "exit" || command == "\\q") {
        break;
      }
    }
    buffer += line;
    buffer += '\n';
    if (TrimWhitespace(buffer).empty()) {
      buffer.clear();
      continue;
    }
    // A statement may span lines: on "ended mid-statement" keep
    // reading; on any other parse error report and reset. Binding
    // happens per statement during execution, against the live
    // catalog.
    Stopwatch parse_timer;
    const auto parsed = knnql::ParseScript(buffer);
    const auto parse_ns =
        static_cast<std::uint64_t>(parse_timer.ElapsedSeconds() * 1e9);
    if (!parsed.ok()) {
      if (knnql::IsIncompleteInput(parsed.status())) continue;
      FailScript(parsed.status(), json);
      rc = 1;
    } else if (ExecuteStatements(engine, *parsed, json, parse_ns) != 0) {
      rc = 1;
    }
    buffer.clear();
  }
  if (!TrimWhitespace(buffer).empty()) {
    // Input ended mid-statement (script piped without a final ';').
    if (RunKnnqlText(engine, buffer, json) != 0) rc = 1;
  }
  // An interactive session already showed its errors; only a piped
  // script propagates them as the exit code.
  return interactive ? 0 : rc;
}

/// Loads every --data NAME=FILE relation into `catalog` (shared by
/// `query` and `serve`).
Status BuildCatalog(const Args& args, const IndexOptions& index_options,
                    Catalog* catalog) {
  const std::vector<std::string> data = args.GetAll("--data");
  if (data.empty()) {
    return Status::InvalidArgument("need at least one --data NAME=FILE");
  }
  for (const std::string& spec : data) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      return Status::InvalidArgument(
          "--data must look like NAME=FILE, got: " + spec);
    }
    const std::string name = spec.substr(0, eq);
    // A relation no KNNQL statement could reference (keyword, bad
    // character) is a mistake better caught at load time.
    const auto tokens = knnql::Tokenize(name);
    if (!tokens.ok() || tokens->size() != 2 ||
        (*tokens)[0].kind != knnql::TokenKind::kIdentifier ||
        (*tokens)[0].text != name) {
      return Status::InvalidArgument(
          "--data relation name '" + name +
          "' must be a KNNQL identifier ([A-Za-z_][A-Za-z0-9_]*, "
          "not a keyword)");
    }
    auto points = LoadPoints(spec.substr(eq + 1));
    if (!points.ok()) return points.status();
    const Status added = catalog->AddRelation(
        name, std::move(points.value()), index_options);
    if (!added.ok()) return added;
  }
  return Status::Ok();
}

int CmdQuery(const Args& args) {
  if (args.Has("-e") && args.Has("--file")) {
    return Fail(Status::InvalidArgument(
        "pass statements with -e or --file, not both"));
  }
  auto index_options = ParseIndexFlags(args);
  if (!index_options.ok()) return Fail(index_options.status());

  Catalog catalog;
  // Relations load unsharded; the engine reshards them itself when
  // --shards > 1 (the partition belongs to the engine, not the file).
  IndexOptions load_options = *index_options;
  load_options.shards = 1;
  if (const Status s = BuildCatalog(args, load_options, &catalog);
      !s.ok()) {
    return Fail(s);
  }

  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  EngineOptions options;
  options.num_threads = 1;  // Statements run one at a time.
  options.cache_mb = *cache_mb;
  options.shards = index_options->shards;
  options.planner.force_naive = args.Has("--naive");
  options.index_options = *index_options;  // LOAD-created relations.
  if (const Status s = ApplyObsFlags(args, &options); !s.ok()) {
    return Fail(s);
  }
  QueryEngine engine(std::move(catalog), options);
  const bool json = args.Has("--json");

  if (args.Has("-e")) {
    int rc = 0;
    for (const std::string& text : args.GetAll("-e")) {
      if (RunKnnqlText(engine, text, json) != 0) rc = 1;
    }
    return rc;
  }
  if (args.Has("--file")) {
    auto script = ReadTextFile(*args.Get("--file"));
    if (!script.ok()) return Fail(script.status());
    return RunKnnqlText(engine, *script, json);
  }
  return RunRepl(engine, json);
}

// ---------------------------------------------------------------- serve

/// The live server a termination signal should stop. Lock-free atomic:
/// a plain pointer read from a signal handler racing the main thread's
/// store is undefined behavior.
std::atomic<server::Server*> g_serving{nullptr};

/// SIGINT/SIGTERM begin the same graceful drain the SHUTDOWN verb
/// does. RequestStop is async-signal-safe (atomic store + pipe write).
void HandleTermSignal(int) {
  server::Server* serving = g_serving.load();
  if (serving != nullptr) serving->RequestStop();
}

int CmdServe(const Args& args) {
  auto index_options = ParseIndexFlags(args);
  if (!index_options.ok()) return Fail(index_options.status());

  Catalog catalog;
  IndexOptions load_options = *index_options;
  load_options.shards = 1;  // The engine reshards at construction.

  // Durable serving: --data-dir DIR opens (or creates) a WAL +
  // snapshot pair there. On a restart the snapshot seeds the catalog
  // and the WAL tail replays; --data files seed only a fresh dir.
  const std::string data_dir = args.GetOr("--data-dir", "");
  std::unique_ptr<durability::DurabilityManager> durable;
  durability::WalSyncPolicy wal_sync = durability::WalSyncPolicy::kAlways;
  if (!data_dir.empty()) {
    auto sync =
        durability::ParseWalSyncPolicy(args.GetOr("--wal-sync", "always"));
    if (!sync.ok()) return Fail(sync.status());
    wal_sync = *sync;
    auto sync_every = args.GetSizeOr("--wal-sync-interval-ops", 64);
    if (!sync_every.ok()) return Fail(sync_every.status());
    auto snap_every = args.GetSizeOr("--snapshot-interval-ops", 0);
    if (!snap_every.ok()) return Fail(snap_every.status());
    durability::DurabilityOptions durable_options;
    durable_options.data_dir = data_dir;
    durable_options.sync = wal_sync;
    durable_options.sync_interval_ops = *sync_every;
    durable_options.snapshot_interval_ops = *snap_every;
    durable_options.index_options = load_options;
    auto opened =
        durability::DurabilityManager::Open(std::move(durable_options));
    if (!opened.ok()) return Fail(opened.status());
    durable = std::move(*opened);
  } else {
    for (const char* flag :
         {"--wal-sync", "--wal-sync-interval-ops",
          "--snapshot-interval-ops"}) {
      if (args.Has(flag)) {
        return Fail(Status::InvalidArgument(
            std::string(flag) + " requires --data-dir"));
      }
    }
  }

  if (durable != nullptr && durable->recovered_from_snapshot()) {
    // The snapshot is the source of truth for this data dir; --data
    // seeds only the first boot.
    if (args.Has("--data")) {
      std::printf("note: %s already has a snapshot; --data files "
                  "ignored in favor of the recovered catalog\n",
                  data_dir.c_str());
    }
    if (const Status s = durable->SeedCatalog(&catalog); !s.ok()) {
      return Fail(s);
    }
  } else if (durable == nullptr || args.Has("--data")) {
    // A fresh durable server may start empty (LOAD creates relations);
    // a non-durable one still needs at least one --data.
    if (const Status s = BuildCatalog(args, load_options, &catalog);
        !s.ok()) {
      return Fail(s);
    }
  }

  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  auto threads = args.GetSizeOr("--threads", 0);
  auto port = args.GetSizeOr("--port", 4410);
  auto max_inflight = args.GetSizeOr("--max-inflight", 64);
  auto max_conn_inflight = args.GetSizeOr("--max-conn-inflight", 16);
  auto max_request_bytes =
      args.GetSizeOr("--max-request-bytes", std::size_t{1} << 20);
  auto idle_timeout_ms = args.GetSizeOr("--idle-timeout-ms", 0);
  auto max_connections = args.GetSizeOr("--max-connections", 256);
  auto write_timeout_ms = args.GetSizeOr("--write-timeout-ms", 10000);
  auto shutdown_grace_ms = args.GetSizeOr("--shutdown-grace-ms", 5000);
  auto http_port = args.GetSizeOr("--http-port", 0);
  auto history_interval_ms = args.GetSizeOr("--history-interval-ms", 1000);
  auto drain_linger_ms = args.GetSizeOr("--drain-linger-ms", 0);
  for (const auto* flag :
       {&cache_mb, &threads, &port, &max_inflight, &max_conn_inflight,
        &max_request_bytes, &idle_timeout_ms, &max_connections,
        &write_timeout_ms, &shutdown_grace_ms, &http_port,
        &history_interval_ms, &drain_linger_ms}) {
    if (!flag->ok()) return Fail(flag->status());
  }
  if (*port > 65535) {
    return Fail(Status::InvalidArgument("--port must be <= 65535"));
  }
  if (*http_port > 65535) {
    return Fail(Status::InvalidArgument("--http-port must be <= 65535"));
  }
  if (*history_interval_ms == 0) {
    return Fail(Status::InvalidArgument(
        "--history-interval-ms must be a positive integer"));
  }
  if (args.Has("--http-host") && !args.Has("--http-port")) {
    return Fail(
        Status::InvalidArgument("--http-host requires --http-port"));
  }

  EngineOptions options;
  options.num_threads = *threads;
  options.cache_mb = *cache_mb;
  options.shards = index_options->shards;
  options.planner.force_naive = args.Has("--naive");
  options.index_options = *index_options;
  // Engine-side backpressure: the pool queue bounds what admission
  // control has already granted, with headroom for DML and drains.
  options.pool_queue_limit =
      *max_inflight > 0 ? *max_inflight * 2 : std::size_t{0};
  if (const Status s = ApplyObsFlags(args, &options); !s.ok()) {
    return Fail(s);
  }
  options.wal = durable.get();
  QueryEngine engine(std::move(catalog), options);

  server::ServerOptions server_options;
  server_options.host = args.GetOr("--host", "127.0.0.1");
  server_options.port = static_cast<std::uint16_t>(*port);
  server_options.max_inflight = *max_inflight;
  server_options.limits.max_conn_inflight = *max_conn_inflight;
  server_options.limits.max_request_bytes = *max_request_bytes;
  // LOAD over the wire is opt-in: without --load-dir a network peer
  // cannot make the server read any server-side file; with it, paths
  // are confined to that directory.
  server_options.limits.load_dir = args.GetOr("--load-dir", "");
  server_options.idle_timeout_ms = static_cast<int>(*idle_timeout_ms);
  server_options.max_connections = *max_connections;
  server_options.write_timeout_ms = static_cast<int>(*write_timeout_ms);
  server_options.shutdown_grace_ms =
      static_cast<int>(*shutdown_grace_ms);
  // The SHUTDOWN verb is opt-in too: any peer that can connect could
  // otherwise stop a server bound beyond loopback.
  server_options.allow_remote_shutdown =
      args.Has("--allow-remote-shutdown");
  server_options.http_enabled = args.Has("--http-port");
  server_options.http_host = args.GetOr("--http-host", "127.0.0.1");
  server_options.http_port = static_cast<std::uint16_t>(*http_port);
  server_options.history_interval_ms =
      static_cast<int>(*history_interval_ms);
  server_options.drain_linger_ms = static_cast<int>(*drain_linger_ms);
  if (durable != nullptr) {
    durability::DurabilityManager* manager = durable.get();
    QueryEngine* engine_ptr = &engine;
    server_options.snapshot_handler = [manager, engine_ptr] {
      return manager->Snapshot(engine_ptr);
    };
    server_options.wal_writable = [manager] { return manager->writable(); };
    server_options.wal_status = [manager] { return manager->StatusJson(); };
  }
  server::Server server(&engine, server_options);
  if (durable != nullptr) durable->RegisterMetrics(server.registry());

  // The observability plane comes up BEFORE recovery: /healthz answers
  // immediately, and /readyz reports 503 "recovery in progress" for as
  // long as the WAL replay runs.
  if (durable != nullptr) server.BeginRecovery();
  if (const Status started = server.StartHttp(); !started.ok()) {
    return Fail(started);
  }
  if (server_options.http_enabled) {
    std::printf("observability HTTP on %s:%u "
                "(/metrics /healthz /readyz /statusz)\n",
                server_options.http_host.c_str(), server.http_port());
    std::fflush(stdout);
  }

  durability::RecoveryReport recovery;
  if (durable != nullptr) {
    auto report = durable->Recover(&engine);
    if (!report.ok()) return Fail(report.status());
    recovery = *report;
    server.EndRecovery();
  }

  // Listed before Start(): once the server accepts, clients may be
  // mutating the catalog already.
  for (const std::string& name : engine.catalog().Names()) {
    std::printf("  relation %s (%zu points)\n", name.c_str(),
                engine.catalog().Get(name).value()->index->num_points());
  }
  if (durable != nullptr) {
    std::printf(
        "durable: %s (wal-sync=%s); recovered to lsn %llu "
        "(%s snapshot at lsn %llu, %llu WAL records replayed)\n",
        data_dir.c_str(), durability::ToString(wal_sync),
        static_cast<unsigned long long>(recovery.last_lsn),
        recovery.from_snapshot ? "loaded" : "no",
        static_cast<unsigned long long>(recovery.snapshot_lsn),
        static_cast<unsigned long long>(recovery.replayed_records));
    if (recovery.wal_truncated) {
      std::printf("  dropped torn WAL tail: %s\n",
                  recovery.wal_tail_error.c_str());
    }
  }
  if (const Status started = server.Start(); !started.ok()) {
    return Fail(started);
  }
  g_serving = &server;
  std::signal(SIGINT, HandleTermSignal);
  std::signal(SIGTERM, HandleTermSignal);

  std::printf("serving KNNQL on %s:%u (%zu worker threads, "
              "max in-flight %zu, cache %zu MiB, %zu shard%s)\n",
              server_options.host.c_str(), server.port(),
              engine.num_threads(), *max_inflight, *cache_mb,
              engine.shards(), engine.shards() == 1 ? "" : "s");
  std::fflush(stdout);

  server.WaitUntilStopRequested();
  std::printf("shutdown requested; draining in-flight queries...\n");
  std::fflush(stdout);
  server.Stop();
  g_serving = nullptr;

  const auto& metrics = server.metrics();
  std::printf(
      "served %llu requests (%llu responses, %llu errors, %llu "
      "overload rejections) on %llu connections; clean shutdown\n",
      static_cast<unsigned long long>(metrics.requests.Value()),
      static_cast<unsigned long long>(metrics.responses.Value()),
      static_cast<unsigned long long>(metrics.errors.Value()),
      static_cast<unsigned long long>(metrics.overload_rejections.Value()),
      static_cast<unsigned long long>(metrics.connections_opened.Value()));
  return 0;
}

// ------------------------------------------------- per-shape commands

/// Hands the catalog to a QueryEngine, runs `spec`, prints EXPLAIN
/// (including the ExecStats line) and the result. `cache_mb` sizes the
/// engine's cross-query neighborhood cache (0 = off; one ad-hoc query
/// still benefits when its evaluator probes repeated points).
int PlanAndRun(Catalog catalog, const QuerySpec& spec, bool naive,
               std::size_t cache_mb) {
  EngineOptions options;
  options.num_threads = 1;  // One ad-hoc query; no fan-out needed.
  options.cache_mb = cache_mb;
  options.planner.force_naive = naive;
  const QueryEngine engine(std::move(catalog), options);

  const EngineResult run = engine.Run(spec);
  if (!run.ok()) return Fail(run.status);
  PrintHumanResult(run);
  return 0;
}

int AddRelationFromFlag(Catalog& catalog, const Args& args,
                        const std::string& flag, const std::string& name) {
  auto path = args.Get(flag);
  if (!path.ok()) return Fail(path.status());
  auto points = LoadPoints(*path);
  if (!points.ok()) return Fail(points.status());
  const Status added =
      catalog.AddRelation(name, std::move(points.value()));
  if (!added.ok()) return Fail(added);
  return 0;
}

int CmdTwoSelects(const Args& args) {
  Catalog catalog;
  if (int rc = AddRelationFromFlag(catalog, args, "--data", "E"); rc != 0) {
    return rc;
  }
  auto f1 = args.GetPoint("--f1");
  auto f2 = args.GetPoint("--f2");
  auto k1 = args.GetSize("--k1");
  auto k2 = args.GetSize("--k2");
  for (const Status& s :
       {f1.status(), f2.status(), k1.status(), k2.status()}) {
    if (!s.ok() && s.code() != StatusCode::kOk) return Fail(s);
  }
  if (!f1.ok() || !f2.ok() || !k1.ok() || !k2.ok()) return 1;
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  return PlanAndRun(std::move(catalog),
                    TwoSelectsSpec{.relation = "E",
                                   .s1 = {.focal = *f1, .k = *k1},
                                   .s2 = {.focal = *f2, .k = *k2}},
                    args.Has("--naive"), *cache_mb);
}

int CmdSelectInnerJoin(const Args& args) {
  Catalog catalog;
  if (int rc = AddRelationFromFlag(catalog, args, "--outer", "E1");
      rc != 0) {
    return rc;
  }
  if (int rc = AddRelationFromFlag(catalog, args, "--inner", "E2");
      rc != 0) {
    return rc;
  }
  auto join_k = args.GetSize("--join-k");
  auto focal = args.GetPoint("--focal");
  auto select_k = args.GetSize("--select-k");
  if (!join_k.ok()) return Fail(join_k.status());
  if (!focal.ok()) return Fail(focal.status());
  if (!select_k.ok()) return Fail(select_k.status());
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  return PlanAndRun(
      std::move(catalog),
      SelectInnerJoinSpec{.outer = "E1",
                          .inner = "E2",
                          .join_k = *join_k,
                          .select = {.focal = *focal, .k = *select_k}},
      args.Has("--naive"), *cache_mb);
}

int CmdRangeInnerJoin(const Args& args) {
  Catalog catalog;
  if (int rc = AddRelationFromFlag(catalog, args, "--outer", "E1");
      rc != 0) {
    return rc;
  }
  if (int rc = AddRelationFromFlag(catalog, args, "--inner", "E2");
      rc != 0) {
    return rc;
  }
  auto join_k = args.GetSize("--join-k");
  auto range = args.GetBox("--range");
  if (!join_k.ok()) return Fail(join_k.status());
  if (!range.ok()) return Fail(range.status());
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  return PlanAndRun(std::move(catalog),
                    RangeInnerJoinSpec{.outer = "E1",
                                       .inner = "E2",
                                       .join_k = *join_k,
                                       .range = *range},
                    args.Has("--naive"), *cache_mb);
}

int CmdThreeRelations(const Args& args, bool chained) {
  Catalog catalog;
  for (const auto& [flag, name] :
       std::vector<std::pair<std::string, std::string>>{
           {"--a", "A"}, {"--b", "B"}, {"--c", "C"}}) {
    if (int rc = AddRelationFromFlag(catalog, args, flag, name); rc != 0) {
      return rc;
    }
  }
  auto k1 = args.GetSize("--k-ab");
  if (!k1.ok()) return Fail(k1.status());
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  if (chained) {
    auto k2 = args.GetSize("--k-bc");
    if (!k2.ok()) return Fail(k2.status());
    return PlanAndRun(std::move(catalog),
                      ChainedJoinsSpec{.a = "A",
                                       .b = "B",
                                       .c = "C",
                                       .k_ab = *k1,
                                       .k_bc = *k2},
                      args.Has("--naive"), *cache_mb);
  }
  auto k2 = args.GetSize("--k-cb");
  if (!k2.ok()) return Fail(k2.status());
  return PlanAndRun(std::move(catalog),
                    UnchainedJoinsSpec{.a = "A",
                                       .b = "B",
                                       .c = "C",
                                       .k_ab = *k1,
                                       .k_cb = *k2},
                    args.Has("--naive"), *cache_mb);
}

void PrintUsage() {
  std::puts(
      "knnq_cli <command> [flags]\n"
      "commands:\n"
      "  generate           --kind berlin|uniform|clusters --n N --out F\n"
      "  info               --data F [--index grid|quadtree|rtree]\n"
      "  knn                --data F --at X,Y --k K\n"
      "  query              --data NAME=F [--data NAME=F ...]\n"
      "                     [-e \"KNNQL\"] [--file SCRIPT.knnql] [--json]\n"
      "                     [--slow-query-ms MS] [--trace-sample-every N]\n"
      "                     [--log-file F] [--log-level L]\n"
      "  serve              --data NAME=F [--data NAME=F ...]\n"
      "                     [--host H] [--port P] [--threads T]\n"
      "                     [--max-inflight M] [--max-conn-inflight M]\n"
      "                     [--max-request-bytes B] [--idle-timeout-ms T]\n"
      "                     [--max-connections C] [--write-timeout-ms T]\n"
      "                     [--shutdown-grace-ms T] [--load-dir DIR]\n"
      "                     [--allow-remote-shutdown]\n"
      "                     [--data-dir DIR] [--wal-sync always|interval|none]\n"
      "                     [--wal-sync-interval-ops N]\n"
      "                     [--snapshot-interval-ops N]\n"
      "                     [--cache-mb M] [--index TYPE]\n"
      "                     [--slow-query-ms MS] [--trace-sample-every N]\n"
      "                     [--log-file F] [--log-level L]\n"
      "  two-selects        --data F --f1 X,Y --k1 K --f2 X,Y --k2 K\n"
      "  select-inner-join  --outer F --inner F --join-k K --focal X,Y\n"
      "                     --select-k K\n"
      "  range-inner-join   --outer F --inner F --join-k K\n"
      "                     --range X1,Y1,X2,Y2\n"
      "  chained            --a F --b F --c F --k-ab K --k-bc K\n"
      "  unchained          --a F --b F --c F --k-ab K --k-cb K\n"
      "serve runs the KNNQL network server (newline-delimited KNNQL in,\n"
      "JSONL out; see README \"Serving KNNQL\"); drive it with\n"
      "knnq_loadgen or any line-oriented TCP client. The SHUTDOWN verb\n"
      "and LOAD-over-the-wire are off unless --allow-remote-shutdown /\n"
      "--load-dir DIR (paths confined to DIR) are given.\n"
      "serve --data-dir DIR makes the server durable: every DML is\n"
      "write-ahead logged to DIR/wal.log (fsync per --wal-sync), the\n"
      "SNAPSHOT verb / --snapshot-interval-ops N cut point-in-time\n"
      "snapshots to DIR/catalog.snapshot, and a restart recovers the\n"
      "catalog from snapshot + WAL replay (see README \"Durability\").\n"
      "query reads KNNQL statements (-e, --file, or a REPL; see README),\n"
      "including DML: INSERT INTO r VALUES (x, y), ...; DELETE FROM r\n"
      "WHERE ID = n; LOAD r FROM 'file';\n"
      "append --naive to run the conceptually correct baseline plan;\n"
      "append --cache-mb M to any query command to enable the engine's\n"
      "cross-query neighborhood cache with an M-MiB budget (0 = off);\n"
      "append --no-simd to any command to disable the AVX2 distance\n"
      "kernel (pure speed A/B: results are byte-identical either way);\n"
      "EXPLAIN ANALYZE <query>; executes and shows the span tree.\n"
      "query and serve take --slow-query-ms MS (log statements slower\n"
      "than MS as JSONL), --trace-sample-every N (attach a trace to\n"
      "every Nth statement; sampled slow queries log their span tree),\n"
      "--log-file F (diagnostics to F instead of stderr) and\n"
      "--log-level debug|info|warn|error");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  auto args = Args::Parse(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());

  // SIMD A/B switch for every command: results are byte-identical with
  // or without the vectorized distance paths, so this only moves speed.
  if (args->Has("--no-simd")) SetSimdEnabled(false);

  if (command == "generate") return CmdGenerate(*args);
  if (command == "info") return CmdInfo(*args);
  if (command == "knn") return CmdKnn(*args);
  if (command == "query") return CmdQuery(*args);
  if (command == "serve") return CmdServe(*args);
  if (command == "two-selects") return CmdTwoSelects(*args);
  if (command == "select-inner-join") return CmdSelectInnerJoin(*args);
  if (command == "range-inner-join") return CmdRangeInnerJoin(*args);
  if (command == "chained") return CmdThreeRelations(*args, true);
  if (command == "unchained") return CmdThreeRelations(*args, false);
  PrintUsage();
  return 1;
}
