// knnq command-line tool: generate datasets, inspect indexes, and run
// two-kNN-predicate queries through the planner with EXPLAIN output.
//
// Usage:
//   knnq_cli generate --kind berlin|uniform|clusters --n N [--clusters C]
//            [--per P] [--seed S] --out FILE(.csv|.bin)
//   knnq_cli info --data FILE [--index grid|quadtree|rtree]
//   knnq_cli knn --data FILE --at X,Y --k K [--index TYPE]
//   knnq_cli two-selects --data FILE --f1 X,Y --k1 K --f2 X,Y --k2 K
//            [--naive]
//   knnq_cli select-inner-join --outer FILE --inner FILE --join-k K
//            --focal X,Y --select-k K [--naive]
//   knnq_cli range-inner-join --outer FILE --inner FILE --join-k K
//            --range X1,Y1,X2,Y2 [--naive]
//   knnq_cli chained --a FILE --b FILE --c FILE --k-ab K --k-bc K [--naive]
//   knnq_cli unchained --a FILE --b FILE --c FILE --k-ab K --k-cb K
//            [--naive]
//
// Every query command accepts --cache-mb M to give the engine an M-MiB
// cross-query neighborhood cache (0, the default, disables it).
//
// Dataset files are produced by `generate` (CSV: id,x,y with a header;
// .bin: the knnq binary format).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/data/berlinmod.h"
#include "src/data/clustered.h"
#include "src/data/dataset_io.h"
#include "src/data/uniform.h"
#include "src/engine/query_engine.h"
#include "src/index/knn_searcher.h"
#include "src/planner/catalog.h"

namespace {

using namespace knnq;

/// Minimal "--flag value" parser; flags without '--' are rejected.
class Args {
 public:
  static Result<Args> Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag.rfind("--", 0) != 0) {
        return Status::InvalidArgument("expected --flag, got: " + flag);
      }
      if (flag == "--naive") {
        args.values_[flag] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + flag);
      }
      args.values_[flag] = argv[++i];
    }
    return args;
  }

  Result<std::string> Get(const std::string& flag) const {
    const auto it = values_.find(flag);
    if (it == values_.end()) {
      return Status::InvalidArgument("missing required flag " + flag);
    }
    return it->second;
  }

  std::string GetOr(const std::string& flag, std::string fallback) const {
    const auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second;
  }

  bool Has(const std::string& flag) const { return values_.contains(flag); }

  Result<std::size_t> GetSize(const std::string& flag) const {
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    const long long parsed = std::strtoll(raw->c_str(), nullptr, 10);
    if (parsed <= 0) {
      return Status::InvalidArgument(flag + " must be a positive integer");
    }
    return static_cast<std::size_t>(parsed);
  }

  /// Like GetSize, but absent means `fallback` and 0 is legal (used by
  /// --cache-mb, where 0 means "cache disabled").
  Result<std::size_t> GetSizeOr(const std::string& flag,
                                std::size_t fallback) const {
    if (!Has(flag)) return fallback;
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    const long long parsed = std::strtoll(raw->c_str(), nullptr, 10);
    if (parsed < 0) {
      return Status::InvalidArgument(flag + " must be >= 0");
    }
    return static_cast<std::size_t>(parsed);
  }

  Result<Point> GetPoint(const std::string& flag) const {
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    double x = 0.0, y = 0.0;
    if (std::sscanf(raw->c_str(), "%lf,%lf", &x, &y) != 2) {
      return Status::InvalidArgument(flag + " must look like X,Y");
    }
    return Point{.id = -1, .x = x, .y = y};
  }

  Result<BoundingBox> GetBox(const std::string& flag) const {
    auto raw = Get(flag);
    if (!raw.ok()) return raw.status();
    double x1, y1, x2, y2;
    if (std::sscanf(raw->c_str(), "%lf,%lf,%lf,%lf", &x1, &y1, &x2, &y2) !=
        4) {
      return Status::InvalidArgument(flag + " must look like X1,Y1,X2,Y2");
    }
    if (x1 > x2 || y1 > y2) {
      return Status::InvalidArgument(flag + " corners must be min,max");
    }
    return BoundingBox(x1, y1, x2, y2);
  }

 private:
  std::map<std::string, std::string> values_;
};

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<PointSet> LoadDataset(const std::string& path) {
  return EndsWith(path, ".bin") ? LoadBinary(path) : LoadCsv(path);
}

Result<IndexType> ParseIndexType(const std::string& name) {
  if (name == "grid") return IndexType::kGrid;
  if (name == "quadtree") return IndexType::kQuadtree;
  if (name == "rtree") return IndexType::kRTree;
  return Status::InvalidArgument("unknown index type: " + name);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const Args& args) {
  const std::string kind = args.GetOr("--kind", "berlin");
  auto n = args.GetSize("--n");
  if (!n.ok()) return Fail(n.status());
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.GetOr("--seed", "1").c_str(), nullptr, 10));
  auto out = args.Get("--out");
  if (!out.ok()) return Fail(out.status());

  PointSet points;
  if (kind == "berlin") {
    BerlinModOptions options;
    options.num_points = *n;
    options.seed = seed;
    auto generated = GenerateBerlinModSnapshot(options);
    if (!generated.ok()) return Fail(generated.status());
    points = std::move(generated.value());
  } else if (kind == "uniform") {
    points = GenerateUniform(*n, BoundingBox(0, 0, 30000, 24000), seed);
  } else if (kind == "clusters") {
    ClusterOptions options;
    options.num_clusters = args.Has("--clusters")
                               ? *args.GetSize("--clusters")
                               : std::size_t{4};
    options.points_per_cluster =
        args.Has("--per") ? *args.GetSize("--per")
                          : *n / options.num_clusters;
    options.cluster_radius = 800.0;
    options.region = BoundingBox(0, 0, 30000, 24000);
    options.seed = seed;
    auto generated = GenerateClusters(options);
    if (!generated.ok()) return Fail(generated.status());
    points = std::move(generated.value());
  } else {
    return Fail(Status::InvalidArgument("unknown --kind " + kind));
  }

  const Status saved = EndsWith(*out, ".bin") ? SaveBinary(points, *out)
                                              : SaveCsv(points, *out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %zu points to %s\n", points.size(), out->c_str());
  return 0;
}

int CmdInfo(const Args& args) {
  auto path = args.Get("--data");
  if (!path.ok()) return Fail(path.status());
  auto points = LoadDataset(*path);
  if (!points.ok()) return Fail(points.status());
  auto type = ParseIndexType(args.GetOr("--index", "grid"));
  if (!type.ok()) return Fail(type.status());

  IndexOptions options;
  options.type = *type;
  Stopwatch sw;
  auto index = BuildIndex(*points, options);
  if (!index.ok()) return Fail(index.status());
  const double build_ms = sw.ElapsedMillis();

  const BoundingBox& bounds = (*index)->bounds();
  const CoverageStats coverage = EstimateCoverage(*points, bounds);
  std::printf("points:   %zu\n", (*index)->num_points());
  std::printf("bounds:   %s\n", bounds.ToString().c_str());
  std::printf("index:    %s (built in %.1f ms)\n",
              (*index)->Describe().c_str(), build_ms);
  std::printf("coverage: %.1f%% of probe cells occupied\n",
              100.0 * coverage.coverage());
  return 0;
}

int CmdKnn(const Args& args) {
  auto path = args.Get("--data");
  if (!path.ok()) return Fail(path.status());
  auto at = args.GetPoint("--at");
  if (!at.ok()) return Fail(at.status());
  auto k = args.GetSize("--k");
  if (!k.ok()) return Fail(k.status());
  auto type = ParseIndexType(args.GetOr("--index", "grid"));
  if (!type.ok()) return Fail(type.status());

  auto points = LoadDataset(*path);
  if (!points.ok()) return Fail(points.status());
  IndexOptions options;
  options.type = *type;
  auto index = BuildIndex(std::move(points.value()), options);
  if (!index.ok()) return Fail(index.status());

  KnnSearcher searcher(**index);
  Stopwatch sw;
  const Neighborhood nbr = searcher.GetKnn(*at, *k);
  const double ms = sw.ElapsedMillis();
  std::printf("%zu neighbors in %.3f ms (%zu blocks, %zu points "
              "examined)\n",
              nbr.size(), ms, searcher.stats().blocks_scanned,
              searcher.stats().points_scanned);
  for (const Neighbor& n : nbr) {
    std::printf("  %s  dist %.2f\n", n.point.ToString().c_str(), n.dist);
  }
  return 0;
}

/// Hands the catalog to a QueryEngine, runs `spec`, prints EXPLAIN
/// (including the ExecStats line) and the result. `cache_mb` sizes the
/// engine's cross-query neighborhood cache (0 = off; one ad-hoc query
/// still benefits when its evaluator probes repeated points).
int PlanAndRun(Catalog catalog, const QuerySpec& spec, bool naive,
               std::size_t cache_mb) {
  EngineOptions options;
  options.num_threads = 1;  // One ad-hoc query; no fan-out needed.
  options.planner.force_naive = naive;
  options.planner.cache_mb = cache_mb;
  const QueryEngine engine(std::move(catalog), options);

  const EngineResult run = engine.Run(spec);
  if (!run.ok()) return Fail(run.status);
  std::printf("%s", run.explain.c_str());

  const double ms = run.stats.wall_seconds * 1e3;
  std::visit(
      [&](const auto& result) {
        using T = std::decay_t<decltype(result)>;
        if constexpr (std::is_same_v<T, TwoSelectsResult>) {
          std::printf("result: %zu points in %.2f ms\n", result.size(), ms);
          for (const Point& p : result) {
            std::printf("  %s\n", p.ToString().c_str());
          }
        } else if constexpr (std::is_same_v<T, JoinResult>) {
          std::printf("result: %s in %.2f ms\n",
                      Summarize(result).c_str(), ms);
        } else {
          std::printf("result: %s in %.2f ms\n",
                      Summarize(result).c_str(), ms);
        }
      },
      run.output);
  return 0;
}

int AddRelationFromFlag(Catalog& catalog, const Args& args,
                        const std::string& flag, const std::string& name) {
  auto path = args.Get(flag);
  if (!path.ok()) return Fail(path.status());
  auto points = LoadDataset(*path);
  if (!points.ok()) return Fail(points.status());
  const Status added =
      catalog.AddRelation(name, std::move(points.value()));
  if (!added.ok()) return Fail(added);
  return 0;
}

int CmdTwoSelects(const Args& args) {
  Catalog catalog;
  if (int rc = AddRelationFromFlag(catalog, args, "--data", "E"); rc != 0) {
    return rc;
  }
  auto f1 = args.GetPoint("--f1");
  auto f2 = args.GetPoint("--f2");
  auto k1 = args.GetSize("--k1");
  auto k2 = args.GetSize("--k2");
  for (const Status& s :
       {f1.status(), f2.status(), k1.status(), k2.status()}) {
    if (!s.ok() && s.code() != StatusCode::kOk) return Fail(s);
  }
  if (!f1.ok() || !f2.ok() || !k1.ok() || !k2.ok()) return 1;
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  return PlanAndRun(std::move(catalog),
                    TwoSelectsSpec{.relation = "E",
                                   .s1 = {.focal = *f1, .k = *k1},
                                   .s2 = {.focal = *f2, .k = *k2}},
                    args.Has("--naive"), *cache_mb);
}

int CmdSelectInnerJoin(const Args& args) {
  Catalog catalog;
  if (int rc = AddRelationFromFlag(catalog, args, "--outer", "E1");
      rc != 0) {
    return rc;
  }
  if (int rc = AddRelationFromFlag(catalog, args, "--inner", "E2");
      rc != 0) {
    return rc;
  }
  auto join_k = args.GetSize("--join-k");
  auto focal = args.GetPoint("--focal");
  auto select_k = args.GetSize("--select-k");
  if (!join_k.ok()) return Fail(join_k.status());
  if (!focal.ok()) return Fail(focal.status());
  if (!select_k.ok()) return Fail(select_k.status());
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  return PlanAndRun(
      std::move(catalog),
      SelectInnerJoinSpec{.outer = "E1",
                          .inner = "E2",
                          .join_k = *join_k,
                          .select = {.focal = *focal, .k = *select_k}},
      args.Has("--naive"), *cache_mb);
}

int CmdRangeInnerJoin(const Args& args) {
  Catalog catalog;
  if (int rc = AddRelationFromFlag(catalog, args, "--outer", "E1");
      rc != 0) {
    return rc;
  }
  if (int rc = AddRelationFromFlag(catalog, args, "--inner", "E2");
      rc != 0) {
    return rc;
  }
  auto join_k = args.GetSize("--join-k");
  auto range = args.GetBox("--range");
  if (!join_k.ok()) return Fail(join_k.status());
  if (!range.ok()) return Fail(range.status());
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  return PlanAndRun(std::move(catalog),
                    RangeInnerJoinSpec{.outer = "E1",
                                       .inner = "E2",
                                       .join_k = *join_k,
                                       .range = *range},
                    args.Has("--naive"), *cache_mb);
}

int CmdThreeRelations(const Args& args, bool chained) {
  Catalog catalog;
  for (const auto& [flag, name] :
       std::vector<std::pair<std::string, std::string>>{
           {"--a", "A"}, {"--b", "B"}, {"--c", "C"}}) {
    if (int rc = AddRelationFromFlag(catalog, args, flag, name); rc != 0) {
      return rc;
    }
  }
  auto k1 = args.GetSize("--k-ab");
  if (!k1.ok()) return Fail(k1.status());
  auto cache_mb = args.GetSizeOr("--cache-mb", 0);
  if (!cache_mb.ok()) return Fail(cache_mb.status());
  if (chained) {
    auto k2 = args.GetSize("--k-bc");
    if (!k2.ok()) return Fail(k2.status());
    return PlanAndRun(std::move(catalog),
                      ChainedJoinsSpec{.a = "A",
                                       .b = "B",
                                       .c = "C",
                                       .k_ab = *k1,
                                       .k_bc = *k2},
                      args.Has("--naive"), *cache_mb);
  }
  auto k2 = args.GetSize("--k-cb");
  if (!k2.ok()) return Fail(k2.status());
  return PlanAndRun(std::move(catalog),
                    UnchainedJoinsSpec{.a = "A",
                                       .b = "B",
                                       .c = "C",
                                       .k_ab = *k1,
                                       .k_cb = *k2},
                    args.Has("--naive"), *cache_mb);
}

void PrintUsage() {
  std::puts(
      "knnq_cli <command> [flags]\n"
      "commands:\n"
      "  generate           --kind berlin|uniform|clusters --n N --out F\n"
      "  info               --data F [--index grid|quadtree|rtree]\n"
      "  knn                --data F --at X,Y --k K\n"
      "  two-selects        --data F --f1 X,Y --k1 K --f2 X,Y --k2 K\n"
      "  select-inner-join  --outer F --inner F --join-k K --focal X,Y\n"
      "                     --select-k K\n"
      "  range-inner-join   --outer F --inner F --join-k K\n"
      "                     --range X1,Y1,X2,Y2\n"
      "  chained            --a F --b F --c F --k-ab K --k-bc K\n"
      "  unchained          --a F --b F --c F --k-ab K --k-cb K\n"
      "append --naive to run the conceptually correct baseline plan;\n"
      "append --cache-mb M to any query command to enable the engine's\n"
      "cross-query neighborhood cache with an M-MiB budget (0 = off)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  auto args = Args::Parse(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());

  if (command == "generate") return CmdGenerate(*args);
  if (command == "info") return CmdInfo(*args);
  if (command == "knn") return CmdKnn(*args);
  if (command == "two-selects") return CmdTwoSelects(*args);
  if (command == "select-inner-join") return CmdSelectInnerJoin(*args);
  if (command == "range-inner-join") return CmdRangeInnerJoin(*args);
  if (command == "chained") return CmdThreeRelations(*args, true);
  if (command == "unchained") return CmdThreeRelations(*args, false);
  PrintUsage();
  return 1;
}
