#!/usr/bin/env python3
"""Lint Prometheus text exposition format read from a file or stdin.

Usage: check_prometheus.py [FILE]
       knnq_loadgen --port P --metrics | check_prometheus.py

Validates what a Prometheus scraper would reject or silently
misinterpret:

  * every sample line parses as `name{labels} value` with a valid
    metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a finite float value
  * every metric has # HELP and # TYPE lines, and they precede its
    samples; TYPE is one of counter/gauge/histogram/summary/untyped
  * counter names end in _total (the convention the registry enforces
    with KNNQ_CHECK)
  * no metric name is declared or sampled twice in separate groups
  * histograms expose cumulative `_bucket{le="..."}` series ending in
    le="+Inf", with non-decreasing counts, plus `_sum` and `_count`,
    and the +Inf bucket equals `_count`
  * counters and histogram counts are non-negative

Exit code 0 = valid; 1 = malformed, with one line per problem. CI
pipes a live server's METRICS response through this after the smoke
workload, so the exposition endpoint stays scrapeable by construction.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_name(sample_name):
    """The metric family a sample belongs to (strips histogram
    suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_labels(text, lineno, errors):
    labels = {}
    if not text:
        return labels
    for part in text.split(","):
        m = LABEL_RE.match(part)
        if m is None:
            errors.append(f"line {lineno}: bad label pair '{part}'")
            continue
        labels[m.group(1)] = m.group(2)
    return labels


def parse_value(text, lineno, errors):
    try:
        value = float(text)
    except ValueError:
        errors.append(f"line {lineno}: unparseable value '{text}'")
        return None
    if math.isnan(value):
        errors.append(f"line {lineno}: NaN value")
        return None
    return value


def main():
    if len(sys.argv) > 2:
        sys.exit(__doc__)
    if len(sys.argv) == 2 and sys.argv[1] not in ("-", "--help", "-h"):
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    elif len(sys.argv) == 2 and sys.argv[1] in ("--help", "-h"):
        print(__doc__)
        return 0
    else:
        text = sys.stdin.read()

    errors = []
    helped = {}     # metric -> lineno of # HELP
    typed = {}      # metric -> declared type
    sampled = {}    # metric family -> list of (labels, value, lineno)
    closed = set()  # families whose sample run has ended

    current = None  # family the scanner is inside
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # Plain comment.
            kind, name = parts[1], parts[2]
            if not NAME_RE.match(name):
                errors.append(f"line {lineno}: bad metric name '{name}'")
                continue
            if kind == "HELP":
                if name in helped:
                    errors.append(f"line {lineno}: duplicate # HELP "
                                  f"for {name}")
                if len(parts) < 4 or not parts[3].strip():
                    errors.append(f"line {lineno}: empty HELP text "
                                  f"for {name}")
                helped[name] = lineno
            else:
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in TYPES:
                    errors.append(f"line {lineno}: bad TYPE '{declared}' "
                                  f"for {name}")
                if name in typed:
                    errors.append(f"line {lineno}: duplicate # TYPE "
                                  f"for {name}")
                typed[name] = declared
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample '{line}'")
            continue
        family = base_name(m.group("name"))
        if family not in typed and m.group("name") in typed:
            family = m.group("name")  # e.g. a gauge ending in _count.
        if family != current:
            if family in closed:
                errors.append(f"line {lineno}: samples for {family} "
                              f"appear in two separate groups")
            if current is not None:
                closed.add(current)
            current = family
        if family not in typed:
            errors.append(f"line {lineno}: sample '{m.group('name')}' "
                          f"has no preceding # TYPE")
        if family not in helped:
            errors.append(f"line {lineno}: sample '{m.group('name')}' "
                          f"has no preceding # HELP")
        labels = parse_labels(m.group("labels") or "", lineno, errors)
        value = parse_value(m.group("value"), lineno, errors)
        if value is None:
            continue
        sampled.setdefault(family, []).append(
            (m.group("name"), labels, value, lineno))

    for name in typed:
        if name not in helped:
            errors.append(f"# TYPE {name} has no matching # HELP")
        if name not in sampled:
            errors.append(f"declared metric {name} has no samples")
    for name in helped:
        if name not in typed:
            errors.append(f"# HELP {name} has no matching # TYPE")

    for family, rows in sampled.items():
        kind = typed.get(family)
        if kind == "counter":
            if not family.endswith("_total"):
                errors.append(f"counter {family} does not end in _total")
            for _, _, value, lineno in rows:
                if value < 0:
                    errors.append(f"line {lineno}: negative counter "
                                  f"{family} = {value}")
        elif kind == "histogram":
            buckets = [(labels, value, lineno)
                       for sample, labels, value, lineno in rows
                       if sample == family + "_bucket"]
            count = [value for sample, _, value, _ in rows
                     if sample == family + "_count"]
            has_sum = any(sample == family + "_sum"
                          for sample, _, _, _ in rows)
            if not has_sum or not count:
                errors.append(f"histogram {family} is missing _sum or "
                              f"_count")
            if not buckets or buckets[-1][0].get("le") != "+Inf":
                errors.append(f"histogram {family} does not end in an "
                              f"le=\"+Inf\" bucket")
            previous_le = None
            previous_count = None
            for labels, value, lineno in buckets:
                le = labels.get("le")
                if le is None:
                    errors.append(f"line {lineno}: {family}_bucket "
                                  f"without an le label")
                    continue
                bound = math.inf if le == "+Inf" else None
                if bound is None:
                    try:
                        bound = float(le)
                    except ValueError:
                        errors.append(f"line {lineno}: bad le '{le}'")
                        continue
                if previous_le is not None and bound <= previous_le:
                    errors.append(f"line {lineno}: {family} bucket "
                                  f"bounds not increasing at le={le}")
                if previous_count is not None and value < previous_count:
                    errors.append(f"line {lineno}: {family} bucket "
                                  f"counts decrease at le={le}")
                previous_le = bound
                previous_count = value
            if buckets and count and buckets[-1][1] != count[0]:
                errors.append(f"histogram {family}: +Inf bucket "
                              f"{buckets[-1][1]} != _count {count[0]}")

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"FAIL: {len(errors)} problem(s) in "
              f"{len(sampled)} metric(s)", file=sys.stderr)
        return 1
    print(f"PASS: {len(sampled)} metrics, "
          f"{sum(len(r) for r in sampled.values())} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
