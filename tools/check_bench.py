#!/usr/bin/env python3
"""Gate a knnq bench JSON artifact against a committed baseline.

Usage: check_bench.py CURRENT_JSON BASELINE_JSON [--threshold 0.25]

Machines differ, so absolute throughput is never compared. Every
benchmark row's qps is normalized by the same file's reference row
(the document's "reference" field; "serial/uniform/uncached" when
absent), which cancels the host's speed; the gate fails when a row's
normalized throughput drops more than --threshold (default 25%) below
the baseline's normalized value.

Absolute invariants - machine-independent ratios measured within one
run - are also enforced per bench kind:

engine_batch (bench_engine_batch):
  * skewed_speedup_t1   >= 1.3  (cached skewed batch beats uncached)
  * skewed_hit_rate     >= 0.5  (the skew actually hits the cache)
  * churn_read_ratio_t4 >= 0.5  (interleaving updates keeps at least
    half the read-only throughput; enforced when the current run
    includes the churn benchmarks)
  * trace_hook_overhead <= 0.02 (tracing-disabled instrumentation
    hooks - spans per query x per-span cost x qps - cost at most 2%
    of query wall time; enforced when the current run measured it)
  * obs_plane_overhead  <= 0.02 (the HTTP observability plane at its
    default duty cycle - one 1 Hz history sampling pass plus one 1 Hz
    /metrics render - costs at most 2% of one core-second; enforced
    when the current run measured it)

server (bench_server):
  * server_vs_inprocess_t4c8 >= 0.7  (8 loadgen clients over loopback
    TCP sustain at least 70% of in-process RunBatch throughput at the
    same engine config - the serving-layer acceptance floor)
  * total_errors == 0                (zero response/ordering errors)

kernels (bench_kernels):
  * simd_speedup       >= 1.5  (SoA+SIMD MinSquaredDistance beats the
    scalar AoS scan on a 64k-point span; enforced only when the host
    reports simd_available, since the kernel falls back to scalar
    elsewhere)
  * scan_speedup_*     >= 1.5  (per-structure full-index block scan,
    BlockSoA + kernel vs BlockPoints AoS - the layout win itself,
    gated even without SIMD)
  * skip_rate_*        >  0.0  (bound-based block skipping engages)

shards (bench_engine_shards):
  * shard_speedup_t4 >= 1.4  (the 8-shard engine's mixed-workload
    statement throughput - queries plus admitted updates over a fixed
    4-thread read window - beats single-shard, where the exclusive
    writer lock starves DML under read pressure)
  * shards_pruned    >  0    (scatter-gather kNN actually skips shards
    past the k-th neighbor bound)
  * total_errors     == 0    (every query and mutation succeeded)

Exit code 0 = pass, 1 = regression or malformed input.
"""

import argparse
import json
import sys

DEFAULT_REF = "serial/uniform/uncached"
MIN_SKEWED_SPEEDUP = 1.3
MIN_SKEWED_HIT_RATE = 0.5
MIN_CHURN_READ_RATIO = 0.5
MAX_TRACE_HOOK_OVERHEAD = 0.02
MAX_OBS_PLANE_OVERHEAD = 0.02
MIN_SERVER_RATIO = 0.7
MIN_SIMD_SPEEDUP = 1.5
MIN_SCAN_SPEEDUP = 1.5
MIN_SHARD_SPEEDUP = 1.4


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def normalized_qps(doc, path):
    ref_name = doc.get("reference", DEFAULT_REF)
    rows = {b["name"]: b for b in doc.get("benchmarks", [])}
    ref = rows.get(ref_name)
    if ref is None or ref.get("qps", 0) <= 0:
        sys.exit(f"{path}: missing or zero reference row '{ref_name}'")
    # churn/* rows are excluded from the row-by-row comparison: their
    # wall time mixes query and mutation work and is noisy run to run;
    # the dedicated churn_read_ratio_t4 floor below gates them with a
    # within-run (machine-independent) ratio instead.
    return {name: b["qps"] / ref["qps"] for name, b in rows.items()
            if name != ref_name and b.get("qps", 0) > 0
            and not name.startswith("churn/")}


def check_engine_batch(current, baseline, failures):
    summary = current.get("summary", {})
    speedup = summary.get("skewed_speedup_t1", 0.0)
    hit_rate = summary.get("skewed_hit_rate", 0.0)
    print(f"\nskewed_speedup_t1={speedup:.2f}x "
          f"(floor {MIN_SKEWED_SPEEDUP}x), "
          f"skewed_hit_rate={hit_rate:.2%} "
          f"(floor {MIN_SKEWED_HIT_RATE:.0%})")
    if speedup < MIN_SKEWED_SPEEDUP:
        failures.append(f"skewed_speedup_t1 {speedup:.2f}x is below the "
                        f"{MIN_SKEWED_SPEEDUP}x floor")
    if hit_rate < MIN_SKEWED_HIT_RATE:
        failures.append(f"skewed_hit_rate {hit_rate:.2%} is below the "
                        f"{MIN_SKEWED_HIT_RATE:.0%} floor")

    churn_ratio = summary.get("churn_read_ratio_t4", 0.0)
    if churn_ratio > 0.0:
        print(f"churn_read_ratio_t4={churn_ratio:.2f}x "
              f"(floor {MIN_CHURN_READ_RATIO}x, update:query "
              f"{summary.get('churn_updates_per_queries', '?')})")
        if churn_ratio < MIN_CHURN_READ_RATIO:
            failures.append(
                f"churn_read_ratio_t4 {churn_ratio:.2f}x is below the "
                f"{MIN_CHURN_READ_RATIO}x floor")
    else:
        # A filtered run skipped the churn benchmarks; only flag that
        # when the baseline promises them.
        if "churn_read_ratio_t4" in baseline.get("summary", {}) and \
                baseline["summary"]["churn_read_ratio_t4"] > 0.0:
            failures.append("current run is missing the churn "
                            "benchmarks the baseline includes")

    # Observability acceptance: disabled tracing hooks must be free in
    # the fraction-of-a-query sense. Measured only by full runs (the
    # serial reference row is its denominator).
    overhead = summary.get("trace_hook_overhead", 0.0)
    if overhead > 0.0 or "trace_spans_per_query" in summary:
        print(f"trace_hook_overhead={overhead:.4%} "
              f"(ceiling {MAX_TRACE_HOOK_OVERHEAD:.0%}), "
              f"spans/query={summary.get('trace_spans_per_query', 0):.1f}, "
              f"span_ns={summary.get('trace_span_ns', 0):.1f}, "
              f"enabled_ratio={summary.get('trace_enabled_ratio', 0):.2f}x")
        if overhead > MAX_TRACE_HOOK_OVERHEAD:
            failures.append(
                f"trace_hook_overhead {overhead:.4%} exceeds the "
                f"{MAX_TRACE_HOOK_OVERHEAD:.0%} ceiling")
    elif "trace_hook_overhead" in baseline.get("summary", {}):
        failures.append("current run is missing the trace overhead "
                        "measurement the baseline includes")

    # The HTTP observability plane's duty-cycle cost (1 Hz sampler +
    # 1 Hz scraper), same 2% budget as the trace hooks.
    obs_overhead = summary.get("obs_plane_overhead", 0.0)
    if obs_overhead > 0.0 or "obs_render_ns" in summary:
        print(f"obs_plane_overhead={obs_overhead:.4%} "
              f"(ceiling {MAX_OBS_PLANE_OVERHEAD:.0%}), "
              f"render_ns={summary.get('obs_render_ns', 0):.0f}, "
              f"sample_ns={summary.get('obs_sample_ns', 0):.0f}")
        if obs_overhead > MAX_OBS_PLANE_OVERHEAD:
            failures.append(
                f"obs_plane_overhead {obs_overhead:.4%} exceeds the "
                f"{MAX_OBS_PLANE_OVERHEAD:.0%} ceiling")
    elif "obs_plane_overhead" in baseline.get("summary", {}):
        failures.append("current run is missing the obs-plane overhead "
                        "measurement the baseline includes")


def check_server(current, failures):
    summary = current.get("summary", {})
    ratio = summary.get("server_vs_inprocess_t4c8", 0.0)
    skewed = summary.get("server_vs_inprocess_t4c8_skewed", 0.0)
    errors = summary.get("total_errors", None)
    print(f"\nserver_vs_inprocess_t4c8={ratio:.2f}x "
          f"(floor {MIN_SERVER_RATIO}x), skewed={skewed:.2f}x, "
          f"total_errors={errors}")
    if ratio < MIN_SERVER_RATIO:
        failures.append(
            f"server_vs_inprocess_t4c8 {ratio:.2f}x is below the "
            f"{MIN_SERVER_RATIO}x floor")
    if errors is None or errors != 0:
        failures.append(f"server bench reported {errors} "
                        f"response/ordering errors (want 0)")


def check_kernels(current, failures):
    summary = current.get("summary", {})
    simd = summary.get("simd_speedup", 0.0)
    available = current.get("simd_available", False)
    print(f"\nsimd_speedup={simd:.2f}x (floor {MIN_SIMD_SPEEDUP}x, "
          f"simd_available={available})")
    if available and simd < MIN_SIMD_SPEEDUP:
        failures.append(f"simd_speedup {simd:.2f}x is below the "
                        f"{MIN_SIMD_SPEEDUP}x floor")
    for structure in ("grid", "quadtree", "rtree"):
        scan = summary.get(f"scan_speedup_{structure}", 0.0)
        skip = summary.get(f"skip_rate_{structure}", 0.0)
        print(f"scan_speedup_{structure}={scan:.2f}x "
              f"(floor {MIN_SCAN_SPEEDUP}x), "
              f"skip_rate_{structure}={skip:.2%}")
        if scan < MIN_SCAN_SPEEDUP:
            failures.append(
                f"scan_speedup_{structure} {scan:.2f}x is below the "
                f"{MIN_SCAN_SPEEDUP}x floor")
        if skip <= 0.0:
            failures.append(f"skip_rate_{structure} is zero - block "
                            f"skipping never engaged")


def check_shards(current, failures):
    summary = current.get("summary", {})
    speedup = summary.get("shard_speedup_t4", 0.0)
    pruned = summary.get("shards_pruned", 0)
    errors = summary.get("total_errors", None)
    print(f"\nshard_speedup_t4={speedup:.2f}x "
          f"(floor {MIN_SHARD_SPEEDUP}x), shards_pruned={pruned}, "
          f"total_errors={errors}")
    if speedup < MIN_SHARD_SPEEDUP:
        failures.append(f"shard_speedup_t4 {speedup:.2f}x is below the "
                        f"{MIN_SHARD_SPEEDUP}x floor")
    if pruned <= 0:
        failures.append("shards_pruned is zero - the scatter-gather "
                        "bound never skipped a shard")
    if errors is None or errors != 0:
        failures.append(f"shards bench reported {errors} query/DML "
                        f"errors (want 0)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional drop in normalized "
                             "throughput (default 0.25)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    cur_rel = normalized_qps(current, args.current)
    base_rel = normalized_qps(baseline, args.baseline)

    failures = []
    print(f"{'benchmark':<32} {'base':>8} {'now':>8} {'ratio':>7}")
    for name in sorted(base_rel):
        if name not in cur_rel:
            failures.append(f"{name}: present in baseline but not in "
                            f"current run")
            continue
        ratio = cur_rel[name] / base_rel[name]
        flag = ""
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: normalized throughput {cur_rel[name]:.3f} is "
                f"{100 * (1 - ratio):.1f}% below baseline "
                f"{base_rel[name]:.3f}")
            flag = "  <-- REGRESSION"
        print(f"{name:<32} {base_rel[name]:>8.3f} {cur_rel[name]:>8.3f} "
              f"{ratio:>7.3f}{flag}")

    kind = current.get("bench", "engine_batch")
    if kind == "server":
        check_server(current, failures)
    elif kind == "kernels":
        check_kernels(current, failures)
    elif kind == "shards":
        check_shards(current, failures)
    else:
        check_engine_batch(current, baseline, failures)

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
