#!/usr/bin/env python3
"""Gate BENCH_engine_batch.json against a committed baseline.

Usage: check_bench.py CURRENT_JSON BASELINE_JSON [--threshold 0.25]

Machines differ, so absolute throughput is never compared. Every
benchmark row's qps is normalized by the same file's serial reference
row ("serial/uniform/uncached"), which cancels the host's speed; the
gate fails when a row's normalized throughput drops more than
--threshold (default 25%) below the baseline's normalized value.

Three absolute invariants from the cache's and the mutation path's
acceptance criteria are also enforced, because they are
machine-independent ratios measured within one run:
  * skewed_speedup_t1   >= 1.3  (cached skewed batch beats uncached)
  * skewed_hit_rate     >= 0.5  (the skew actually hits the cache)
  * churn_read_ratio_t4 >= 0.5  (interleaving updates keeps at least
    half the read-only throughput; enforced when the current run
    includes the churn benchmarks)

Exit code 0 = pass, 1 = regression or malformed input.
"""

import argparse
import json
import sys

SERIAL_REF = "serial/uniform/uncached"
MIN_SKEWED_SPEEDUP = 1.3
MIN_SKEWED_HIT_RATE = 0.5
MIN_CHURN_READ_RATIO = 0.5


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def normalized_qps(doc, path):
    rows = {b["name"]: b for b in doc.get("benchmarks", [])}
    ref = rows.get(SERIAL_REF)
    if ref is None or ref.get("qps", 0) <= 0:
        sys.exit(f"{path}: missing or zero serial reference row "
                 f"'{SERIAL_REF}'")
    # churn/* rows are excluded from the row-by-row comparison: their
    # wall time mixes query and mutation work and is noisy run to run;
    # the dedicated churn_read_ratio_t4 floor below gates them with a
    # within-run (machine-independent) ratio instead.
    return {name: b["qps"] / ref["qps"] for name, b in rows.items()
            if name != SERIAL_REF and b.get("qps", 0) > 0
            and not name.startswith("churn/")}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional drop in normalized "
                             "throughput (default 0.25)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    cur_rel = normalized_qps(current, args.current)
    base_rel = normalized_qps(baseline, args.baseline)

    failures = []
    print(f"{'benchmark':<32} {'base':>8} {'now':>8} {'ratio':>7}")
    for name in sorted(base_rel):
        if name not in cur_rel:
            failures.append(f"{name}: present in baseline but not in "
                            f"current run")
            continue
        ratio = cur_rel[name] / base_rel[name]
        flag = ""
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: normalized throughput {cur_rel[name]:.3f} is "
                f"{100 * (1 - ratio):.1f}% below baseline "
                f"{base_rel[name]:.3f}")
            flag = "  <-- REGRESSION"
        print(f"{name:<32} {base_rel[name]:>8.3f} {cur_rel[name]:>8.3f} "
              f"{ratio:>7.3f}{flag}")

    summary = current.get("summary", {})
    speedup = summary.get("skewed_speedup_t1", 0.0)
    hit_rate = summary.get("skewed_hit_rate", 0.0)
    print(f"\nskewed_speedup_t1={speedup:.2f}x "
          f"(floor {MIN_SKEWED_SPEEDUP}x), "
          f"skewed_hit_rate={hit_rate:.2%} "
          f"(floor {MIN_SKEWED_HIT_RATE:.0%})")
    if speedup < MIN_SKEWED_SPEEDUP:
        failures.append(f"skewed_speedup_t1 {speedup:.2f}x is below the "
                        f"{MIN_SKEWED_SPEEDUP}x floor")
    if hit_rate < MIN_SKEWED_HIT_RATE:
        failures.append(f"skewed_hit_rate {hit_rate:.2%} is below the "
                        f"{MIN_SKEWED_HIT_RATE:.0%} floor")

    churn_ratio = summary.get("churn_read_ratio_t4", 0.0)
    if churn_ratio > 0.0:
        print(f"churn_read_ratio_t4={churn_ratio:.2f}x "
              f"(floor {MIN_CHURN_READ_RATIO}x, update:query "
              f"{summary.get('churn_updates_per_queries', '?')})")
        if churn_ratio < MIN_CHURN_READ_RATIO:
            failures.append(
                f"churn_read_ratio_t4 {churn_ratio:.2f}x is below the "
                f"{MIN_CHURN_READ_RATIO}x floor")
    else:
        # A filtered run skipped the churn benchmarks; only flag that
        # when the baseline promises them.
        if "churn_read_ratio_t4" in baseline.get("summary", {}) and \
                baseline["summary"]["churn_read_ratio_t4"] > 0.0:
            failures.append("current run is missing the churn "
                            "benchmarks the baseline includes")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nPASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
