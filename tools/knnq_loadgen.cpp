// knnq_loadgen: multi-threaded closed-loop client for `knnq_cli
// serve`. Replays .knnql workloads over N concurrent connections and
// reports throughput plus latency percentiles; every response is
// checked (id ordering, status), so a clean run is also a protocol
// conformance pass.
//
// Usage:
//   knnq_loadgen --port P [--host H] [--clients N] [--repeat R]
//                --file WORKLOAD.knnql [--file ...] [--json]
//                [--kill-after-ops N --kill-pid PID]
//   knnq_loadgen --port P --shutdown      # graceful server stop
//   knnq_loadgen --port P --stats         # print the STATS record
//   knnq_loadgen --port P --metrics       # print Prometheus text
//   knnq_loadgen --scrape-http HOST:PORT[/metrics]   # scrape over HTTP
//
// --kill-after-ops N SIGKILLs --kill-pid PID once N statements have
// been sent: the crash half of a recovery drill. Disconnects after the
// kill are expected (reported separately) and do not fail the run, but
// a drill whose kill never fires exits nonzero.
//
// --metrics sends the METRICS verb and unwraps the JSON envelope,
// printing the raw Prometheus exposition text — pipe it into
// tools/check_prometheus.py (the CI lint) or a scrape debugger.
//
// --scrape-http fetches the observability plane's GET /metrics (the
// path defaults to /metrics when omitted), prints the body, and exits
// nonzero unless the response is a 200 carrying well-formed Prometheus
// exposition text — a dependency-free scrape probe for CI and cron.
//
// Exit code 0 only when every response arrived, in order, with
// status ok - the CI smoke step's zero-error assertion.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/data/dataset_io.h"
#include "src/server/loadgen.h"
#include "src/server/wire.h"

namespace {

using namespace knnq;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct Flags {
  std::string host = "127.0.0.1";
  std::size_t port = 0;
  std::size_t clients = 4;
  std::size_t repeat = 1;
  std::size_t kill_after_ops = 0;
  std::size_t kill_pid = 0;
  std::vector<std::string> files;
  bool json = false;
  bool shutdown = false;
  bool stats = false;
  bool metrics = false;
  /// --scrape-http HOST:PORT[/path]; empty when not scraping.
  std::string scrape_http;
};

Result<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      flags.json = true;
      continue;
    }
    if (flag == "--shutdown") {
      flags.shutdown = true;
      continue;
    }
    if (flag == "--stats") {
      flags.stats = true;
      continue;
    }
    if (flag == "--metrics") {
      flags.metrics = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("missing value for " + flag);
    }
    const std::string value = argv[++i];
    if (flag == "--host") {
      flags.host = value;
    } else if (flag == "--port") {
      flags.port = static_cast<std::size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (flag == "--clients") {
      flags.clients = static_cast<std::size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (flag == "--repeat") {
      flags.repeat = static_cast<std::size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (flag == "--kill-after-ops") {
      flags.kill_after_ops = static_cast<std::size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (flag == "--kill-pid") {
      flags.kill_pid = static_cast<std::size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (flag == "--file") {
      flags.files.push_back(value);
    } else if (flag == "--scrape-http") {
      flags.scrape_http = value;
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (!flags.scrape_http.empty()) return flags;  // Needs no --port.
  if (flags.port == 0 || flags.port > 65535) {
    return Status::InvalidArgument("--port (1-65535) is required");
  }
  return flags;
}

/// Splits "HOST:PORT[/path]" (path defaults to /metrics).
Status ParseScrapeTarget(const std::string& target, std::string* host,
                         std::uint16_t* port, std::string* path) {
  const std::size_t slash = target.find('/');
  const std::string hostport =
      slash == std::string::npos ? target : target.substr(0, slash);
  *path = slash == std::string::npos ? "/metrics" : target.substr(slash);
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= hostport.size()) {
    return Status::InvalidArgument(
        "--scrape-http expects HOST:PORT[/path], got: " + target);
  }
  *host = hostport.substr(0, colon);
  char* end = nullptr;
  const unsigned long parsed =
      std::strtoul(hostport.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || parsed == 0 || parsed > 65535) {
    return Status::InvalidArgument(
        "--scrape-http port must be 1-65535, got: " + target);
  }
  *port = static_cast<std::uint16_t>(parsed);
  return Status::Ok();
}

/// Structural lint of Prometheus text exposition: every non-empty line
/// is a comment or `name[{labels}] value`, metric names are legal, and
/// at least one sample is present. Mirrors tools/check_prometheus.py
/// so the probe needs no Python.
Status ValidateExposition(const std::string& text) {
  std::size_t samples = 0;
  std::size_t begin = 0;
  std::size_t line_no = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') continue;
    // name{labels} value  |  name value
    std::size_t name_end = 0;
    while (name_end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[name_end])) ||
            line[name_end] == '_' || line[name_end] == ':')) {
      ++name_end;
    }
    if (name_end == 0 ||
        std::isdigit(static_cast<unsigned char>(line[0]))) {
      return Status::InvalidArgument(
          "exposition line " + std::to_string(line_no) +
          ": bad metric name: " + line);
    }
    std::size_t value_begin = name_end;
    if (value_begin < line.size() && line[value_begin] == '{') {
      const std::size_t close = line.find('}', value_begin);
      if (close == std::string::npos) {
        return Status::InvalidArgument(
            "exposition line " + std::to_string(line_no) +
            ": unterminated label set: " + line);
      }
      value_begin = close + 1;
    }
    if (value_begin >= line.size() || line[value_begin] != ' ') {
      return Status::InvalidArgument(
          "exposition line " + std::to_string(line_no) +
          ": missing sample value: " + line);
    }
    char* end_ptr = nullptr;
    std::strtod(line.c_str() + value_begin + 1, &end_ptr);
    if (end_ptr == line.c_str() + value_begin + 1) {
      return Status::InvalidArgument(
          "exposition line " + std::to_string(line_no) +
          ": non-numeric sample value: " + line);
    }
    ++samples;
  }
  if (samples == 0) {
    return Status::InvalidArgument("exposition carried no samples");
  }
  return Status::Ok();
}

void PrintReport(const server::LoadgenReport& report, bool json) {
  if (json) {
    std::printf(
        "{\"clients\": %zu, \"requests\": %zu, \"ok_responses\": %zu, "
        "\"error_responses\": %zu, \"protocol_errors\": %zu, "
        "\"post_kill_disconnects\": %zu, \"killed\": %s, "
        "\"wall_seconds\": %.6f, \"qps\": %.2f, \"mean_ms\": %.3f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"max_ms\": %.3f}\n",
        report.clients, report.requests, report.ok_responses,
        report.error_responses, report.protocol_errors,
        report.post_kill_disconnects, report.killed ? "true" : "false",
        report.wall_seconds, report.qps(), report.mean_ms, report.p50_ms,
        report.p95_ms, report.p99_ms, report.max_ms);
    return;
  }
  std::printf("%zu clients, %zu requests in %.2fs: %.1f req/s\n",
              report.clients, report.requests, report.wall_seconds,
              report.qps());
  std::printf("latency ms: mean %.3f, p50 %.3f, p95 %.3f, p99 %.3f, "
              "max %.3f\n",
              report.mean_ms, report.p50_ms, report.p95_ms, report.p99_ms,
              report.max_ms);
  if (report.killed) {
    std::printf("kill fired; %zu clients disconnected post-kill\n",
                report.post_kill_disconnects);
  }
  if (!report.clean()) {
    std::printf("FAILURES: %zu error responses, %zu protocol errors\n",
                report.error_responses, report.protocol_errors);
  }
}

/// Pulls the "prometheus" field out of a METRICS response record and
/// undoes the server's JsonEscape (the escaper only emits \", \\, the
/// short escapes and \u00XX control forms). Returns false when the
/// record carries no such field (e.g. an error record).
bool ExtractPrometheus(const std::string& record, std::string* out) {
  const std::string key = "\"prometheus\": \"";
  const std::size_t begin = record.find(key);
  if (begin == std::string::npos) return false;
  std::string text;
  std::size_t i = begin + key.size();
  while (i < record.size() && record[i] != '"') {
    const char c = record[i];
    if (c == '\\' && i + 1 < record.size()) {
      const char escaped = record[++i];
      switch (escaped) {
        case 'n': text.push_back('\n'); break;
        case 't': text.push_back('\t'); break;
        case 'r': text.push_back('\r'); break;
        case 'b': text.push_back('\b'); break;
        case 'f': text.push_back('\f'); break;
        case 'u': {
          if (i + 4 >= record.size()) return false;
          text.push_back(static_cast<char>(
              std::strtoul(record.substr(i + 1, 4).c_str(), nullptr, 16)));
          i += 4;
          break;
        }
        default: text.push_back(escaped); break;
      }
    } else {
      text.push_back(c);
    }
    ++i;
  }
  if (i >= record.size()) return false;  // Unterminated string.
  *out = std::move(text);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr,
                 "usage: knnq_loadgen --port P [--host H] [--clients N] "
                 "[--repeat R] --file W.knnql [--file ...] [--json] | "
                 "--shutdown | --stats | --metrics | "
                 "--scrape-http HOST:PORT[/metrics]\n");
    return Fail(flags.status());
  }
  const auto port = static_cast<std::uint16_t>(flags->port);

  if (!flags->scrape_http.empty()) {
    std::string host, path;
    std::uint16_t http_port = 0;
    if (const Status s =
            ParseScrapeTarget(flags->scrape_http, &host, &http_port, &path);
        !s.ok()) {
      return Fail(s);
    }
    const auto response = server::HttpGet(host, http_port, path);
    if (!response.ok()) return Fail(response.status());
    std::fputs(response->body.c_str(), stdout);
    if (response->status != 200) {
      return Fail(Status::Unavailable(
          "scrape answered HTTP " + std::to_string(response->status)));
    }
    if (const Status s = ValidateExposition(response->body); !s.ok()) {
      return Fail(s);
    }
    return 0;
  }

  if (flags->shutdown || flags->stats || flags->metrics) {
    const char* verb = flags->shutdown ? "SHUTDOWN"
                       : flags->stats  ? "STATS"
                                       : "METRICS";
    const auto response = server::SendAdminVerb(flags->host, port, verb);
    if (!response.ok()) return Fail(response.status());
    if (flags->metrics) {
      std::string text;
      if (!ExtractPrometheus(*response, &text)) {
        return Fail(Status::Internal(
            "METRICS response carried no prometheus field: " + *response));
      }
      std::fputs(text.c_str(), stdout);
      return 0;
    }
    std::printf("%s\n", response->c_str());
    // An error record (e.g. SHUTDOWN refused because the server runs
    // without --allow-remote-shutdown) must fail the exit code, or a
    // script's `--shutdown && wait $PID` hangs with no visible cause.
    return response->find("\"status\": \"error\"") == std::string::npos
               ? 0
               : 1;
  }

  if (flags->files.empty()) {
    return Fail(Status::InvalidArgument(
        "pass at least one --file WORKLOAD.knnql"));
  }
  std::vector<std::string> statements;
  for (const std::string& path : flags->files) {
    auto text = ReadTextFile(path);
    if (!text.ok()) return Fail(text.status());
    auto split = server::SplitStatements(*text);
    if (!split.ok()) return Fail(split.status());
    statements.insert(statements.end(), split->begin(), split->end());
  }

  server::LoadgenOptions options;
  options.host = flags->host;
  options.port = port;
  options.clients = flags->clients;
  options.repeat = flags->repeat;
  options.kill_after_ops = flags->kill_after_ops;
  options.kill_pid = static_cast<int>(flags->kill_pid);
  const auto report = server::RunLoadgen(options, statements);
  if (!report.ok()) return Fail(report.status());
  PrintReport(*report, flags->json);
  // A crash drill that never fired its kill is a failed drill.
  if (options.kill_after_ops > 0 && !report->killed) return 1;
  return report->clean() ? 0 : 1;
}
