// Quickstart: index a relation, run the two base operations, then let
// the QueryEngine plan and execute two-predicate queries - one at a
// time and as a concurrent batch.
//
//   $ ./build/quickstart

#include <cstdio>
#include <utility>
#include <vector>

#include "src/core/knn_join.h"
#include "src/core/knn_select.h"
#include "src/data/berlinmod.h"
#include "src/engine/query_engine.h"
#include "src/planner/catalog.h"

int main() {
  using namespace knnq;

  // 1. Generate a city-shaped relation (a BerlinMOD-style snapshot of
  //    vehicle positions) and index it.
  BerlinModOptions gen;
  gen.num_points = 50000;
  gen.seed = 7;
  PointSet vehicles = GenerateBerlinModSnapshot(gen).value();

  IndexOptions index_options;  // Defaults: grid, ~64 points per block.
  auto index = BuildIndex(vehicles, index_options).value();
  std::printf("indexed: %s\n", index->Describe().c_str());

  // 2. kNN-select: the 5 vehicles closest to a depot.
  const Point depot{.id = -1, .x = 15000.0, .y = 12000.0};
  const Neighborhood nearest = KnnSelect(*index, depot, 5).value();
  std::printf("\n5 nearest vehicles to the depot:\n");
  for (const Neighbor& n : nearest) {
    std::printf("  vehicle %lld at distance %.1f m\n",
                static_cast<long long>(n.point.id), n.dist);
  }

  // 3. kNN-join: for each of 3 service stations, the 2 closest vehicles.
  const PointSet stations = {
      {.id = 1, .x = 9000.0, .y = 8000.0},
      {.id = 2, .x = 15000.0, .y = 12000.0},
      {.id = 3, .x = 22000.0, .y = 15000.0},
  };
  const JoinResult pairs = KnnJoin(stations, *index, 2).value();
  std::printf("\nstation -> 2 nearest vehicles:\n%s\n",
              Summarize(pairs).c_str());

  // 4. A query with TWO kNN predicates, planned and executed by the
  //    QueryEngine: vehicles among the 25 nearest of BOTH depot gates.
  //    The engine owns the catalog; its EXPLAIN output includes the
  //    uniform ExecStats counters.
  Catalog catalog;
  catalog.AddRelation("vehicles", vehicles);
  QueryEngine engine(std::move(catalog));
  const TwoSelectsSpec spec{
      .relation = "vehicles",
      .s1 = {.focal = depot, .k = 25},
      .s2 = {.focal = {.id = -1, .x = 15060.0, .y = 12040.0}, .k = 25},
  };
  const EngineResult run = engine.Run(spec);
  if (!run.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 run.status.ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", run.explain.c_str());
  const auto& result = std::get<TwoSelectsResult>(run.output);
  std::printf("vehicles near both depots: %zu\n", result.size());
  for (const Point& p : result) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // 5. A batch: the same question from three different depot pairs,
  //    executed concurrently on the engine's worker pool. Results come
  //    back in submission order.
  std::vector<QuerySpec> batch;
  for (const double offset : {0.0, 2000.0, 4000.0}) {
    batch.push_back(TwoSelectsSpec{
        .relation = "vehicles",
        .s1 = {.focal = {.id = -1, .x = 12000.0 + offset, .y = 10000.0},
               .k = 25},
        .s2 = {.focal = {.id = -1, .x = 12060.0 + offset, .y = 10040.0},
               .k = 25},
    });
  }
  std::printf("\nbatch of %zu queries over %zu worker threads:\n",
              batch.size(), engine.num_threads());
  const std::vector<EngineResult> results = engine.RunBatch(batch);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("  query %zu failed: %s\n", i,
                  results[i].status.ToString().c_str());
      continue;
    }
    const auto& points = std::get<TwoSelectsResult>(results[i].output);
    std::printf("  query %zu: %zu vehicles, %s\n", i, points.size(),
                results[i].stats.ToString().c_str());
  }
  return 0;
}
