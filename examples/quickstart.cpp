// Quickstart: index a relation, run the two base operations, then let
// the planner evaluate a two-predicate query end to end.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/knn_join.h"
#include "src/core/knn_select.h"
#include "src/data/berlinmod.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"

int main() {
  using namespace knnq;

  // 1. Generate a city-shaped relation (a BerlinMOD-style snapshot of
  //    vehicle positions) and index it.
  BerlinModOptions gen;
  gen.num_points = 50000;
  gen.seed = 7;
  PointSet vehicles = GenerateBerlinModSnapshot(gen).value();

  IndexOptions index_options;  // Defaults: grid, ~64 points per block.
  auto index = BuildIndex(vehicles, index_options).value();
  std::printf("indexed: %s\n", index->Describe().c_str());

  // 2. kNN-select: the 5 vehicles closest to a depot.
  const Point depot{.id = -1, .x = 15000.0, .y = 12000.0};
  const Neighborhood nearest = KnnSelect(*index, depot, 5).value();
  std::printf("\n5 nearest vehicles to the depot:\n");
  for (const Neighbor& n : nearest) {
    std::printf("  vehicle %lld at distance %.1f m\n",
                static_cast<long long>(n.point.id), n.dist);
  }

  // 3. kNN-join: for each of 3 service stations, the 2 closest vehicles.
  const PointSet stations = {
      {.id = 1, .x = 9000.0, .y = 8000.0},
      {.id = 2, .x = 15000.0, .y = 12000.0},
      {.id = 3, .x = 22000.0, .y = 15000.0},
  };
  const JoinResult pairs = KnnJoin(stations, *index, 2).value();
  std::printf("\nstation -> 2 nearest vehicles:\n%s\n",
              Summarize(pairs).c_str());

  // 4. A query with TWO kNN predicates, planned and executed by the
  //    optimizer: vehicles among the 25 nearest of BOTH depot gates.
  Catalog catalog;
  catalog.AddRelation("vehicles", vehicles);
  const TwoSelectsSpec spec{
      .relation = "vehicles",
      .s1 = {.focal = depot, .k = 25},
      .s2 = {.focal = {.id = -1, .x = 15060.0, .y = 12040.0}, .k = 25},
  };
  const auto plan = Optimize(catalog, spec);
  std::printf("\n%s\n", plan->Explain().c_str());
  const auto output = plan->Execute().value();
  const auto& result = std::get<TwoSelectsResult>(output);
  std::printf("vehicles near both depots: %zu\n", result.size());
  for (const Point& p : result) {
    std::printf("  %s\n", p.ToString().c_str());
  }
  return 0;
}
