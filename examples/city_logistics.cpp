// Two-join queries from Section 4 on a delivery-logistics scenario.
//
// Chained (A -> B -> C): for each depot, its 3 nearest warehouses; for
// each such warehouse, its 5 nearest customers. All three QEPs of
// Figure 13 agree; the nested join with caching is the fast one.
//
// Unchained ((A JOIN B) INTERSECT_B (C JOIN B)): warehouses that are
// simultaneously among the 3 nearest of some depot AND among the 5
// nearest of some construction site. Neither join may feed the other;
// Procedure 4 prunes construction-site blocks that cannot reach any
// candidate warehouse.
//
//   $ ./build/examples/city_logistics

#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/core/chained_joins.h"
#include "src/core/unchained_joins.h"
#include "src/data/berlinmod.h"
#include "src/data/clustered.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"

namespace {

using namespace knnq;

PointSet City(std::size_t n, std::uint64_t seed, PointId first_id) {
  BerlinModOptions gen;
  gen.num_points = n;
  gen.seed = seed;
  gen.first_id = first_id;
  return GenerateBerlinModSnapshot(gen).value();
}

PointSet IndustrialParks(std::size_t clusters, std::uint64_t seed,
                         PointId first_id) {
  ClusterOptions gen;
  gen.num_clusters = clusters;
  gen.points_per_cluster = 400;
  gen.cluster_radius = 900.0;
  gen.region = BoundingBox(0, 0, 30000, 24000);
  gen.seed = seed;
  gen.first_id = first_id;
  return GenerateClusters(gen).value();
}

}  // namespace

int main() {
  // Depots cluster in a few industrial parks; warehouses and customers
  // follow the city's shape.
  Catalog catalog;
  catalog.AddRelation("depots", IndustrialParks(3, 41, 0));
  catalog.AddRelation("warehouses", City(80000, 43, 1000000));
  catalog.AddRelation("customers", City(60000, 47, 2000000));
  // Sites occupy two parks: one coinciding with the depots' first park
  // (GenerateClusters places centers sequentially per seed, so seed 41
  // reproduces it) - those sites intersect the depots' warehouses - and
  // one remote park whose blocks Procedure 4 prunes outright.
  PointSet sites = IndustrialParks(1, 41, 3000000);
  PointSet remote_parks = IndustrialParks(9, 53, 3100000);
  sites.insert(sites.end(), remote_parks.begin(), remote_parks.end());
  catalog.AddRelation("sites", std::move(sites));

  // --- Chained joins: depot -> warehouses -> customers.
  std::printf("== chained: (depots JOIN warehouses) JOIN customers ==\n");
  const ChainedJoinsSpec chained{.a = "depots",
                                 .b = "warehouses",
                                 .c = "customers",
                                 .k_ab = 3,
                                 .k_bc = 5};
  const auto chained_plan = Optimize(catalog, chained).value();
  std::printf("%s", chained_plan.Explain().c_str());

  Stopwatch sw;
  const auto chained_out =
      std::get<TripletResult>(chained_plan.Execute().value());
  const double nested_ms = sw.ElapsedMillis();

  PlannerOptions force_naive;
  force_naive.force_naive = true;
  const auto chained_naive_plan =
      Optimize(catalog, chained, force_naive).value();
  sw.Reset();
  const auto chained_naive =
      std::get<TripletResult>(chained_naive_plan.Execute().value());
  const double naive_ms = sw.ElapsedMillis();

  std::printf("triplets: %zu | nested(cached) %.1f ms vs independent "
              "joins %.1f ms | results agree: %s\n\n",
              chained_out.size(), nested_ms, naive_ms,
              chained_out == chained_naive ? "yes" : "NO");

  // --- Unchained joins: warehouses good for depots AND for sites.
  std::printf(
      "== unchained: (depots JOIN W) INTERSECT_W (sites JOIN W) ==\n");
  const UnchainedJoinsSpec unchained{.a = "depots",
                                     .b = "warehouses",
                                     .c = "sites",
                                     .k_ab = 3,
                                     .k_cb = 5};
  const auto unchained_plan = Optimize(catalog, unchained).value();
  std::printf("%s", unchained_plan.Explain().c_str());

  sw.Reset();
  const auto unchained_out =
      std::get<TripletResult>(unchained_plan.Execute().value());
  const double marked_ms = sw.ElapsedMillis();

  const auto unchained_naive_plan =
      Optimize(catalog, unchained, force_naive).value();
  sw.Reset();
  const auto unchained_naive =
      std::get<TripletResult>(unchained_naive_plan.Execute().value());
  const double unchained_naive_ms = sw.ElapsedMillis();

  std::printf("triplets: %zu | Block-Marking %.1f ms vs conceptually "
              "correct %.1f ms | results agree: %s\n",
              unchained_out.size(), marked_ms, unchained_naive_ms,
              unchained_out == unchained_naive ? "yes" : "NO");

  return (chained_out == chained_naive &&
          unchained_out == unchained_naive)
             ? 0
             : 1;
}
