// The paper's Section 1 running example. A car breaks down; the driver
// wants (mechanic shop, hotel) pairs where the hotel is among the 2
// closest hotels to the mechanic AND among the 2 closest hotels to a
// shopping center (so the family can shop during the repair).
//
// This is a kNN-select on the INNER relation of a kNN-join - the query
// class where the classic push-selection-below-join rewrite silently
// returns wrong results (paper Figures 1 vs 2). The example shows:
//   1. the wrong pushed-down plan and how its answer differs,
//   2. the three correct evaluators agreeing,
//   3. their execution-time gap on city-scale data.
//
//   $ ./build/examples/roadside_assistance

#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/core/knn_join.h"
#include "src/core/select_inner_join.h"
#include "src/data/berlinmod.h"
#include "src/index/index_factory.h"
#include "src/index/knn_searcher.h"

namespace {

using namespace knnq;

PointSet City(std::size_t n, std::uint64_t seed, PointId first_id) {
  BerlinModOptions gen;
  gen.num_points = n;
  gen.seed = seed;
  gen.first_id = first_id;
  return GenerateBerlinModSnapshot(gen).value();
}

}  // namespace

int main() {
  // Mechanics (outer) and hotels (inner) spread over the city.
  const PointSet mechanics = City(40000, 17, /*first_id=*/0);
  const PointSet hotels = City(60000, 23, /*first_id=*/1000000);
  const Point shopping_center{.id = -1, .x = 15400.0, .y = 11900.0};

  const auto mechanics_index = BuildIndex(mechanics, {}).value();
  const auto hotels_index = BuildIndex(hotels, {}).value();

  // The paper's story uses k = 2 for both predicates; 4 makes the
  // result set non-empty at this city scale without changing anything
  // about the plans.
  const SelectInnerJoinQuery query{
      .outer = mechanics_index.get(),
      .inner = hotels_index.get(),
      .join_k = 4,
      .focal = shopping_center,
      .select_k = 4,
  };

  // --- The INVALID plan: push the select below the join's inner side.
  // The join then sees only the 2 selected hotels, so EVERY mechanic
  // pairs with them - proximity between mechanic and hotel is lost.
  KnnSearcher hotel_searcher(*hotels_index);
  const Neighborhood selected =
      hotel_searcher.GetKnn(shopping_center, query.select_k);
  PointSet pushed_inner;
  for (const Neighbor& n : selected) pushed_inner.push_back(n.point);
  const auto pushed_index = BuildIndex(pushed_inner, {}).value();
  const JoinResult wrong =
      KnnJoin(mechanics, *pushed_index, query.join_k).value();

  // --- The three correct evaluators.
  Stopwatch sw;
  const JoinResult naive = SelectInnerJoinNaive(query).value();
  const double naive_ms = sw.ElapsedMillis();

  sw.Reset();
  const JoinResult counting = SelectInnerJoinCounting(query).value();
  const double counting_ms = sw.ElapsedMillis();

  sw.Reset();
  const JoinResult marking = SelectInnerJoinBlockMarking(query).value();
  const double marking_ms = sw.ElapsedMillis();

  std::printf("pairs where the hotel is 4-NN of the mechanic AND 4-NN of "
              "the shopping center:\n");
  std::printf("  conceptually correct QEP : %zu pairs in %8.2f ms\n",
              naive.size(), naive_ms);
  std::printf("  Counting  (Procedure 1)  : %zu pairs in %8.2f ms\n",
              counting.size(), counting_ms);
  std::printf("  Block-Marking (Proc 2+3) : %zu pairs in %8.2f ms\n",
              marking.size(), marking_ms);
  std::printf("  pushed-down (INVALID)    : %zu pairs  <- every mechanic "
              "pairs with the same 2 hotels\n",
              wrong.size());

  const bool agree = naive == counting && naive == marking;
  std::printf("\ncorrect evaluators agree: %s\n", agree ? "yes" : "NO");
  std::printf("invalid plan differs:     %s\n",
              wrong == naive ? "no (!)" : "yes - that is Figure 2's bug");
  std::printf("speedup over the conceptually correct QEP: Counting %.0fx, "
              "Block-Marking %.0fx\n",
              naive_ms / (counting_ms > 0 ? counting_ms : 1e-3),
              naive_ms / (marking_ms > 0 ? marking_ms : 1e-3));
  if (!agree) return 1;
  return 0;
}
