// The paper's Section 5 scenario: a family moving to a new city wants
// candidate houses that are among the k closest houses to BOTH the new
// workplace and the school.
//
// Two kNN-selects cannot be cascaded (Figures 14-15 both return wrong
// answers); the correct plan intersects independent selects (Figure
// 16), and the 2-kNN-select algorithm (Procedure 5) gets the same
// answer while clipping the larger select's locality.
//
//   $ ./build/examples/house_hunting

#include <cstdio>

#include "src/common/stopwatch.h"
#include "src/core/two_selects.h"
#include "src/data/berlinmod.h"
#include "src/index/index_factory.h"

int main() {
  using namespace knnq;

  BerlinModOptions gen;
  gen.num_points = 200000;  // Houses across the city.
  gen.seed = 99;
  const PointSet houses = GenerateBerlinModSnapshot(gen).value();
  const auto index = BuildIndex(houses, {}).value();

  const Point work{.id = -1, .x = 16180.0, .y = 11680.0};
  const Point school{.id = -1, .x = 16100.0, .y = 11600.0};

  // Asymmetric k: strict about the school run (k=10), flexible about
  // the commute (k=1000). Exactly the k1 != k2 case Procedure 5 wins.
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = school,
      .k1 = 10,
      .f2 = work,
      .k2 = 1000,
  };

  Stopwatch sw;
  SearchStats naive_stats;
  const auto naive = TwoSelectsNaive(query, &naive_stats).value();
  const double naive_ms = sw.ElapsedMillis();

  sw.Reset();
  SearchStats optimized_stats;
  const auto optimized = TwoSelectsOptimized(query, &optimized_stats).value();
  const double optimized_ms = sw.ElapsedMillis();

  std::printf("houses among the 10 nearest to school AND 1000 nearest to "
              "work: %zu\n",
              optimized.size());
  for (const Point& house : optimized) {
    std::printf("  house %s\n", house.ToString().c_str());
  }
  std::printf("\nconceptually correct QEP: %.3f ms, %zu points scanned\n",
              naive_ms, naive_stats.points_scanned);
  std::printf("2-kNN-select (Proc 5)   : %.3f ms, %zu points scanned\n",
              optimized_ms, optimized_stats.points_scanned);
  std::printf("results agree: %s\n",
              naive == optimized ? "yes" : "NO");
  return naive == optimized ? 0 : 1;
}
