// Tests for the data-generation substrate: determinism, structural
// properties, IO round-trips, coverage statistics.

#include <cstdio>
#include <set>

#include "gtest/gtest.h"
#include "src/data/berlinmod.h"
#include "src/data/clustered.h"
#include "src/data/dataset_io.h"
#include "src/data/distribution_stats.h"
#include "src/data/uniform.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::TestFrame;

TEST(UniformTest, GeneratesRequestedCountInRegion) {
  const BoundingBox region(10, 20, 110, 220);
  const PointSet points = GenerateUniform(500, region, 7);
  ASSERT_EQ(points.size(), 500u);
  for (const Point& p : points) {
    EXPECT_TRUE(region.Contains(p));
  }
}

TEST(UniformTest, DeterministicInSeed) {
  const BoundingBox region(0, 0, 100, 100);
  EXPECT_EQ(GenerateUniform(100, region, 5), GenerateUniform(100, region, 5));
  EXPECT_NE(GenerateUniform(100, region, 5), GenerateUniform(100, region, 6));
}

TEST(UniformTest, IdsAreSequentialFromFirstId) {
  const PointSet points =
      GenerateUniform(10, BoundingBox(0, 0, 1, 1), 1, /*first_id=*/50);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].id, static_cast<PointId>(50 + i));
  }
}

TEST(ClusteredTest, HonorsCountsAndRadius) {
  ClusterOptions options;
  options.num_clusters = 4;
  options.points_per_cluster = 250;
  options.cluster_radius = 30;
  options.region = TestFrame();
  options.seed = 11;
  const auto points = GenerateClusters(options);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 1000u);
}

TEST(ClusteredTest, ClustersDoNotOverlap) {
  // Recover cluster membership from generation order (points_per_cluster
  // consecutive points per cluster) and check pairwise center distance.
  ClusterOptions options;
  options.num_clusters = 6;
  options.points_per_cluster = 100;
  options.cluster_radius = 40;
  options.region = TestFrame();
  options.seed = 13;
  const auto points = GenerateClusters(options);
  ASSERT_TRUE(points.ok());
  std::vector<Point> centroids;
  for (std::size_t c = 0; c < options.num_clusters; ++c) {
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < options.points_per_cluster; ++i) {
      const Point& p = (*points)[c * options.points_per_cluster + i];
      sx += p.x;
      sy += p.y;
    }
    centroids.push_back(
        Point{.id = 0,
              .x = sx / static_cast<double>(options.points_per_cluster),
              .y = sy / static_cast<double>(options.points_per_cluster)});
  }
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    for (std::size_t j = i + 1; j < centroids.size(); ++j) {
      // Centers were rejected below 2r separation; centroids of uniform
      // disk samples sit close to the centers.
      EXPECT_GT(Distance(centroids[i], centroids[j]),
                1.5 * options.cluster_radius);
    }
  }
}

TEST(ClusteredTest, PointsStayNearTheirClusterCenter) {
  ClusterOptions options;
  options.num_clusters = 3;
  options.points_per_cluster = 200;
  options.cluster_radius = 25;
  options.region = TestFrame();
  options.seed = 17;
  const auto points = GenerateClusters(options);
  ASSERT_TRUE(points.ok());
  for (std::size_t c = 0; c < options.num_clusters; ++c) {
    const std::size_t base = c * options.points_per_cluster;
    for (std::size_t i = 1; i < options.points_per_cluster; ++i) {
      // All points of one cluster lie within one disk diameter of each
      // other.
      EXPECT_LE(Distance((*points)[base], (*points)[base + i]),
                2 * options.cluster_radius + 1e-9);
    }
  }
}

TEST(ClusteredTest, RejectsImpossiblePackings) {
  ClusterOptions options;
  options.num_clusters = 100;
  options.cluster_radius = 300;  // 100 disks of radius 300 cannot fit.
  options.region = TestFrame();
  EXPECT_FALSE(GenerateClusters(options).ok());
}

TEST(ClusteredTest, DeterministicInSeed) {
  ClusterOptions options;
  options.num_clusters = 3;
  options.points_per_cluster = 50;
  options.cluster_radius = 30;
  options.region = TestFrame();
  options.seed = 19;
  const auto a = GenerateClusters(options);
  const auto b = GenerateClusters(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(BerlinModTest, GeneratesRequestedCountInsideTheMap) {
  BerlinModOptions options;
  options.num_points = 3000;
  options.seed = 23;
  const auto points = GenerateBerlinModSnapshot(options);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3000u);
  const BoundingBox map(0, 0, options.width, options.height);
  for (const Point& p : *points) {
    EXPECT_TRUE(map.Contains(p));
  }
}

TEST(BerlinModTest, DeterministicInSeed) {
  BerlinModOptions options;
  options.num_points = 500;
  options.seed = 29;
  const auto a = GenerateBerlinModSnapshot(options);
  const auto b = GenerateBerlinModSnapshot(options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
  options.seed = 31;
  const auto c = GenerateBerlinModSnapshot(options);
  EXPECT_NE(*a, *c);
}

TEST(BerlinModTest, CityIsDenserInTheCoreThanThePeriphery) {
  // The defining property the substitution must preserve: non-uniform,
  // center-heavy density (paper Figure 18 shows the same for real
  // BerlinMOD data).
  BerlinModOptions options;
  options.num_points = 20000;
  options.seed = 37;
  const auto points = GenerateBerlinModSnapshot(options);
  ASSERT_TRUE(points.ok());
  const double cx = options.width / 2, cy = options.height / 2;
  const BoundingBox core(cx - options.width / 6, cy - options.height / 6,
                         cx + options.width / 6, cy + options.height / 6);
  std::size_t in_core = 0;
  for (const Point& p : *points) {
    if (core.Contains(p)) ++in_core;
  }
  // The core covers 1/9 of the area; a uniform distribution would put
  // ~11% of points there. The city must be far denser.
  EXPECT_GT(static_cast<double>(in_core) /
                static_cast<double>(points->size()),
            0.3);
}

TEST(BerlinModTest, CoverageIsSparserThanUniform) {
  // Street alignment concentrates points: the occupied-cell fraction
  // must be clearly below a same-size uniform relation's.
  BerlinModOptions options;
  options.num_points = 5000;
  options.seed = 41;
  const auto city = GenerateBerlinModSnapshot(options);
  ASSERT_TRUE(city.ok());
  const BoundingBox frame(0, 0, options.width, options.height);
  const PointSet uniform = GenerateUniform(5000, frame, 43);
  const double city_cov = EstimateCoverage(*city, frame, 96).coverage();
  const double uniform_cov =
      EstimateCoverage(uniform, frame, 96).coverage();
  EXPECT_LT(city_cov, uniform_cov);
}

TEST(BerlinModTest, RejectsInvalidOptions) {
  BerlinModOptions options;
  options.num_districts = 0;
  EXPECT_FALSE(GenerateBerlinModSnapshot(options).ok());
  options = BerlinModOptions{};
  options.width = -5;
  EXPECT_FALSE(GenerateBerlinModSnapshot(options).ok());
  options = BerlinModOptions{};
  options.arterial_fraction = 1.5;
  EXPECT_FALSE(GenerateBerlinModSnapshot(options).ok());
}

TEST(DatasetIoTest, CsvRoundTrip) {
  const PointSet points = GenerateUniform(200, TestFrame(), 47);
  const std::string path = ::testing::TempDir() + "/knnq_points.csv";
  ASSERT_TRUE(SaveCsv(points, path).ok());
  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, points);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, BinaryRoundTrip) {
  const PointSet points = GenerateUniform(200, TestFrame(), 53);
  const std::string path = ::testing::TempDir() + "/knnq_points.bin";
  ASSERT_TRUE(SaveBinary(points, path).ok());
  const auto loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, points);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadFailsOnMissingFile) {
  EXPECT_FALSE(LoadCsv("/nonexistent/knnq.csv").ok());
  EXPECT_FALSE(LoadBinary("/nonexistent/knnq.bin").ok());
}

TEST(DatasetIoTest, BinaryRejectsForeignFile) {
  const std::string path = ::testing::TempDir() + "/knnq_bogus.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a dataset", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(CoverageTest, UniformCoversMostCells) {
  const PointSet points = GenerateUniform(20000, TestFrame(), 59);
  const CoverageStats stats = EstimateCoverage(points, TestFrame(), 32);
  EXPECT_GT(stats.coverage(), 0.95);
}

TEST(CoverageTest, TightClusterCoversFewCells) {
  ClusterOptions options;
  options.num_clusters = 1;
  options.points_per_cluster = 5000;
  options.cluster_radius = 30;
  options.region = TestFrame();
  options.seed = 61;
  const auto points = GenerateClusters(options);
  ASSERT_TRUE(points.ok());
  const CoverageStats stats = EstimateCoverage(*points, TestFrame(), 32);
  EXPECT_LT(stats.coverage(), 0.05);
}

TEST(CoverageTest, EmptyRelationHasZeroCoverage) {
  const CoverageStats stats = EstimateCoverage({}, TestFrame(), 32);
  EXPECT_EQ(stats.occupied_cells, 0u);
  EXPECT_EQ(stats.coverage(), 0.0);
}

TEST(CoverageTest, MoreClustersMeanMoreCoverage) {
  // The monotonicity Section 4.1.2's heuristic relies on.
  double prev = 0.0;
  for (const std::size_t clusters : {1u, 3u, 6u, 9u}) {
    ClusterOptions options;
    options.num_clusters = clusters;
    options.points_per_cluster = 1000;
    options.cluster_radius = 40;
    options.region = TestFrame();
    options.seed = 67;
    const auto points = GenerateClusters(options);
    ASSERT_TRUE(points.ok());
    const double cov = EstimateCoverage(*points, TestFrame(), 48).coverage();
    EXPECT_GT(cov, prev);
    prev = cov;
  }
}

}  // namespace
}  // namespace knnq
