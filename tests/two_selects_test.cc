// Section 5 tests: two kNN-selects on one relation. The optimized
// 2-kNN-select must equal the conceptually correct evaluation for every
// (k1, k2) combination, and its clipped locality must touch fewer
// blocks when k2 >> k1.

#include "gtest/gtest.h"
#include "src/core/two_selects.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeIndex;
using testing::MakeUniform;
using testing::RefTwoSelects;

std::vector<PointId> IdsOfResult(const TwoSelectsResult& result) {
  std::vector<PointId> ids;
  for (const Point& p : result) ids.push_back(p.id);
  return ids;
}

struct TwoSelectsCase {
  IndexType type;
  std::size_t k1;
  std::size_t k2;
};

std::string CaseName(
    const ::testing::TestParamInfo<TwoSelectsCase>& info) {
  return std::string(ToString(info.param.type)) + "_k1_" +
         std::to_string(info.param.k1) + "_k2_" +
         std::to_string(info.param.k2);
}

class TwoSelectsPropertyTest
    : public ::testing::TestWithParam<TwoSelectsCase> {};

TEST_P(TwoSelectsPropertyTest, OptimizedMatchesNaiveAndBruteForce) {
  const TwoSelectsCase& c = GetParam();
  const PointSet points = MakeCity(2500, /*seed=*/131);
  const auto index = MakeIndex(points, c.type);
  Rng rng(132);
  for (int i = 0; i < 12; ++i) {
    const TwoSelectsQuery query{
        .relation = index.get(),
        .f1 = Point{.id = -1,
                    .x = rng.Uniform(0, 1000),
                    .y = rng.Uniform(0, 800)},
        .k1 = c.k1,
        .f2 = Point{.id = -1,
                    .x = rng.Uniform(0, 1000),
                    .y = rng.Uniform(0, 800)},
        .k2 = c.k2,
    };
    const TwoSelectsResult expected =
        RefTwoSelects(points, query.f1, query.k1, query.f2, query.k2);
    const auto naive = TwoSelectsNaive(query);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(IdsOfResult(*naive), IdsOfResult(expected));
    const auto optimized = TwoSelectsOptimized(query);
    ASSERT_TRUE(optimized.ok());
    EXPECT_EQ(IdsOfResult(*optimized), IdsOfResult(expected))
        << "f1=" << query.f1.ToString() << " f2=" << query.f2.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoSelectsPropertyTest,
    ::testing::Values(TwoSelectsCase{IndexType::kGrid, 10, 10},
                      TwoSelectsCase{IndexType::kGrid, 10, 40},
                      TwoSelectsCase{IndexType::kGrid, 10, 160},
                      TwoSelectsCase{IndexType::kGrid, 10, 640},
                      TwoSelectsCase{IndexType::kGrid, 640, 10},
                      TwoSelectsCase{IndexType::kGrid, 1, 1},
                      TwoSelectsCase{IndexType::kQuadtree, 10, 160},
                      TwoSelectsCase{IndexType::kQuadtree, 160, 10},
                      TwoSelectsCase{IndexType::kRTree, 10, 160},
                      TwoSelectsCase{IndexType::kRTree, 160, 10}),
    CaseName);

TEST(TwoSelectsTest, NearbyFocalPointsProduceNonEmptyIntersection) {
  const PointSet points = MakeUniform(2000, 133);
  const auto index = MakeIndex(points);
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 500, .y = 400},
      .k1 = 50,
      .f2 = Point{.id = -1, .x = 505, .y = 402},
      .k2 = 50,
  };
  const auto result = TwoSelectsOptimized(query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->empty());
}

TEST(TwoSelectsTest, FarApartSmallSelectsAreDisjoint) {
  const PointSet points = MakeUniform(5000, 134);
  const auto index = MakeIndex(points);
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 10, .y = 10},
      .k1 = 3,
      .f2 = Point{.id = -1, .x = 990, .y = 790},
      .k2 = 3,
  };
  EXPECT_TRUE(TwoSelectsOptimized(query)->empty());
  EXPECT_TRUE(TwoSelectsNaive(query)->empty());
}

TEST(TwoSelectsTest, RestrictedSearchScansFewerBlocks) {
  // The point of Procedure 5: with k2 >> k1 the clipped locality of f2
  // touches far fewer blocks than the standard locality.
  const PointSet points = MakeCity(8000, /*seed=*/135);
  const auto index = MakeIndex(points);
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 500, .y = 400},
      .k1 = 10,
      .f2 = Point{.id = -1, .x = 520, .y = 410},
      .k2 = 2000,
  };
  SearchStats naive_stats;
  SearchStats optimized_stats;
  const auto naive = TwoSelectsNaive(query, &naive_stats);
  const auto optimized = TwoSelectsOptimized(query, &optimized_stats);
  EXPECT_EQ(IdsOfResult(*naive), IdsOfResult(*optimized));
  EXPECT_LT(optimized_stats.points_scanned, naive_stats.points_scanned / 2)
      << "clipping the locality must cut the scanned volume";
}

TEST(TwoSelectsTest, SwappedPredicatesGiveSameResult) {
  // The intersection is symmetric; the optimizer's internal swap (run
  // the smaller k first) must be invisible in the output.
  const PointSet points = MakeUniform(3000, 136);
  const auto index = MakeIndex(points);
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 300, .y = 300},
      .k1 = 15,
      .f2 = Point{.id = -1, .x = 350, .y = 320},
      .k2 = 200,
  };
  const TwoSelectsQuery swapped{
      .relation = index.get(),
      .f1 = query.f2,
      .k1 = query.k2,
      .f2 = query.f1,
      .k2 = query.k1,
  };
  EXPECT_EQ(IdsOfResult(*TwoSelectsOptimized(query)),
            IdsOfResult(*TwoSelectsOptimized(swapped)));
}

TEST(TwoSelectsTest, IdenticalPredicatesReturnTheWholeNeighborhood) {
  const PointSet points = MakeUniform(1000, 137);
  const auto index = MakeIndex(points);
  const Point f{.id = -1, .x = 444, .y = 333};
  const TwoSelectsQuery query{
      .relation = index.get(), .f1 = f, .k1 = 20, .f2 = f, .k2 = 20};
  const auto result = TwoSelectsOptimized(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 20u);
}

TEST(TwoSelectsTest, KBeyondRelationIntersectsEverything) {
  const PointSet points = MakeUniform(100, 138);
  const auto index = MakeIndex(points);
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 0, .y = 0},
      .k1 = 1000,
      .f2 = Point{.id = -1, .x = 999, .y = 799},
      .k2 = 1000,
  };
  EXPECT_EQ(TwoSelectsOptimized(query)->size(), 100u);
}

TEST(TwoSelectsTest, EmptyRelationYieldsEmptyResult) {
  const auto index = MakeIndex(PointSet{});
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 0, .y = 0},
      .k1 = 5,
      .f2 = Point{.id = -1, .x = 1, .y = 1},
      .k2 = 5,
  };
  EXPECT_TRUE(TwoSelectsOptimized(query)->empty());
  EXPECT_TRUE(TwoSelectsNaive(query)->empty());
}

TEST(TwoSelectsTest, RejectsInvalidQueries) {
  const auto index = MakeIndex(MakeUniform(10, 139));
  TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 0, .y = 0},
      .k1 = 0,
      .f2 = Point{.id = -1, .x = 1, .y = 1},
      .k2 = 5,
  };
  EXPECT_FALSE(TwoSelectsNaive(query).ok());
  EXPECT_FALSE(TwoSelectsOptimized(query).ok());
  query.k1 = 5;
  query.relation = nullptr;
  EXPECT_FALSE(TwoSelectsOptimized(query).ok());
}

TEST(TwoSelectsTest, PaperFigure16Scenario) {
  // Section 5's house-hunting story: houses among the 5 nearest to both
  // Work and School. Feeding one select into the other (Figures 14/15)
  // is wrong; the independent intersection (Figure 16) is correct.
  const PointSet houses = {
      {.id = 1, .x = 5, .y = 5},    // x: between both.
      {.id = 2, .x = 6, .y = 5},    // y: between both.
      {.id = 3, .x = 1, .y = 5},    // near Work only.
      {.id = 4, .x = 2, .y = 5},    // near Work only.
      {.id = 5, .x = 3, .y = 5},    // near Work, middling.
      {.id = 6, .x = 9, .y = 5},    // near School only.
      {.id = 7, .x = 10, .y = 5},   // near School only.
      {.id = 8, .x = 11, .y = 5},   // near School only.
      {.id = 9, .x = 30, .y = 30},  // far from both.
      {.id = 10, .x = 31, .y = 30},
  };
  const Point work{.id = -1, .x = 0, .y = 5};
  const Point school{.id = -1, .x = 12, .y = 5};
  const auto index = MakeIndex(houses, IndexType::kGrid, 2);
  const TwoSelectsQuery query{
      .relation = index.get(), .f1 = work, .k1 = 5, .f2 = school, .k2 = 5};
  // 5-NN of Work: {3, 4, 5, 1, 2}; 5-NN of School: {8, 7, 6, 2, 1}.
  // Intersection: houses 1 and 2.
  const auto result = TwoSelectsOptimized(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(IdsOfResult(*result), (std::vector<PointId>{1, 2}));

  // The WRONG cascaded plan: sigma_School over the 5 houses returned by
  // sigma_Work. It returns 5 houses - including ones the correct answer
  // excludes.
  PointSet work_five;
  for (const Neighbor& n : BruteForceKnn(houses, work, 5)) {
    work_five.push_back(n.point);
  }
  const Neighborhood cascaded = BruteForceKnn(work_five, school, 5);
  EXPECT_EQ(cascaded.size(), 5u);
  EXPECT_NE(IdsOf(cascaded), (std::vector<PointId>{1, 2}))
      << "the cascaded plan must differ - that is the paper's point";
}

}  // namespace
}  // namespace knnq
