// The KNNQL network server: wire-protocol framing edge cases, overload
// backpressure, graceful-shutdown drains, concurrent clients racing
// DML against queries (the TSan target), and the differential gate -
// server responses byte-identical to local engine execution for every
// committed example script.

#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/dataset_io.h"
#include "src/engine/query_engine.h"
#include "src/lang/parser.h"
#include "src/lang/unparser.h"
#include "src/server/admission.h"
#include "src/server/loadgen.h"
#include "src/server/wire.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using server::Server;
using server::ServerOptions;

// ----------------------------------------------------- socket helpers

/// Minimal blocking test client speaking the JSONL protocol.
class TestClient {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connecting, so a client
  /// that stops reading backs the server's writes up quickly (the
  /// stuck-peer tests).
  explicit TestClient(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TestClient() { Close(); }

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one '\n'-terminated line (stripped). False on EOF/timeout.
  bool ReadLine(std::string* line, int timeout_ms = 10000) {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        line->assign(buffer_, 0, eol);
        buffer_.erase(0, eol + 1);
        return true;
      }
      pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer cleanly closed (EOF) with no stray bytes.
  bool ReadEof(int timeout_ms = 10000) {
    if (!buffer_.empty()) return false;
    pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[256];
    return ::recv(fd_, chunk, sizeof(chunk), 0) == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// `{"id": N, ...` prefix check.
bool HasId(const std::string& response, std::uint64_t id) {
  const std::string prefix = "{\"id\": " + std::to_string(id) + ",";
  return response.rfind(prefix, 0) == 0;
}

bool IsOk(const std::string& response) {
  return response.find("\"status\": \"ok\"") != std::string::npos;
}

std::uint64_t IdOf(const std::string& response) {
  std::uint64_t id = 0;
  EXPECT_EQ(std::sscanf(response.c_str(), "{\"id\": %llu,",
                        reinterpret_cast<unsigned long long*>(&id)),
            1)
      << response;
  return id;
}

// ------------------------------------------------------ server fixture

Catalog MakeServerCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation("e", testing::MakeUniform(2000, 11)).ok());
  EXPECT_TRUE(catalog.AddRelation("hot", testing::MakeCity(3000, 12)).ok());
  return catalog;
}

struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {},
                         EngineOptions engine_options = DefaultEngine())
      : engine(MakeServerCatalog(), engine_options),
        server(&engine, options) {
    const Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  static EngineOptions DefaultEngine() {
    EngineOptions options;
    options.num_threads = 4;
    options.pool_queue_limit = 256;
    return options;
  }

  QueryEngine engine;
  Server server;
};

constexpr const char* kQuery =
    "SELECT KNN(e, 3, AT(100, 100)) INTERSECT KNN(e, 4, AT(120, 90));";

// ------------------------------------------------------- framing tests

TEST(ServerFramingTest, StatementAssembledFromPartialReads) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  // One statement, dribbled in byte-sized writes across packets.
  const std::string statement = kQuery;
  for (const char c : statement) {
    ASSERT_TRUE(client.Send(std::string_view(&c, 1)));
  }
  ASSERT_TRUE(client.Send("\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 1)) << response;
  EXPECT_TRUE(IsOk(response)) << response;
}

TEST(ServerFramingTest, MultiLineStatementAndPipelining) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  // Three statements in one write: the first spans lines, the second
  // shares a line with the third. Responses may complete out of
  // order; ids restore the mapping.
  ASSERT_TRUE(client.Send(
      "SELECT KNN(e, 3, AT(50, 60))\n"
      "INTERSECT\n"
      "KNN(e, 3, AT(51, 61));\n"
      "SELECT KNN(e, 2, AT(5, 5)) INTERSECT KNN(e, 2, AT(6, 6)); PING;\n"));
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response)) << "response " << i;
    EXPECT_TRUE(IsOk(response)) << response;
    ids.insert(IdOf(response));
  }
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(ServerFramingTest, SemicolonsInsideStringsAndComments) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  // The ';' inside the quoted path and inside the comment must not
  // split the statement. (The LOAD fails - refused, no load_dir on
  // this server - but as ONE statement, answered by ONE error record.)
  ASSERT_TRUE(client.Send("-- comment; with a semicolon\n"
                          "LOAD e FROM '/no;such;file.csv';\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 1)) << response;
  EXPECT_TRUE(response.find("\"status\": \"error\"") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find("/no;such;file.csv") != std::string::npos)
      << response;
  // The session survives and the id counter advanced exactly once.
  ASSERT_TRUE(client.Send("PING;\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 2)) << response;
}

TEST(ServerFramingTest, UnpairedQuoteCannotDesyncFraming) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  // The unpaired quote swallows the rest of ITS line only (string
  // literals end at the newline, like the lexer): the malformed text
  // frames at the next top-level ';', draws one parse-error response,
  // and the stream stays in sync.
  ASSERT_TRUE(client.Send("LOAD e FROM '/tmp/x.csv;\nPING;\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 1)) << response;
  EXPECT_TRUE(response.find("\"code\": \"ParseError\"") !=
              std::string::npos)
      << response;
  ASSERT_TRUE(client.Send("PING;\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 2)) << response;
  EXPECT_TRUE(response.find("\"pong\": true") != std::string::npos)
      << response;
}

TEST(ServerFramingTest, ParseErrorIsStructuredAndSessionSurvives) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("SELECT BOGUS;\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 1)) << response;
  EXPECT_TRUE(response.find("\"code\": \"ParseError\"") !=
              std::string::npos)
      << response;
  // Binding errors are structured too.
  ASSERT_TRUE(client.Send(
      "SELECT KNN(nope, 3, AT(1, 2)) INTERSECT KNN(nope, 3, AT(2, 1));\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 2)) << response;
  EXPECT_TRUE(response.find("\"code\": \"ParseError\"") !=
              std::string::npos)
      << response;
  // And a good statement still executes on the same session.
  ASSERT_TRUE(client.Send(std::string(kQuery) + "\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(HasId(response, 3)) << response;
  EXPECT_TRUE(IsOk(response)) << response;
}

TEST(ServerFramingTest, OversizedStatementClosesConnection) {
  ServerOptions options;
  options.limits.max_request_bytes = 256;
  ServerFixture fixture(options);
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(std::string(512, 'x')));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(response.find("\"code\": \"InvalidArgument\"") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(response.find("max_request_bytes") != std::string::npos)
      << response;
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(fixture.server.metrics().oversized_requests.Value(), 1u);
  // A rejection is not a disconnect: the metric must not double-count.
  EXPECT_EQ(fixture.server.metrics().disconnects_mid_statement.Value(),
            0u);
}

TEST(ServerFramingTest, OversizedCompleteStatementIsRejected) {
  ServerOptions options;
  options.limits.max_request_bytes = 128;
  ServerFixture fixture(options);
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  // Complete and ';'-terminated in one write - the limit must hold
  // even though the splitter can frame it.
  const std::string statement =
      "-- " + std::string(200, 'p') + "\nPING;\n";
  ASSERT_TRUE(client.Send(statement));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(response.find("\"code\": \"InvalidArgument\"") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(response.find("max_request_bytes") != std::string::npos)
      << response;
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(fixture.server.metrics().oversized_requests.Value(), 1u);
}

TEST(ServerFramingTest, MidStatementDisconnectLeavesServerServing) {
  ServerFixture fixture;
  {
    TestClient client(fixture.server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("SELECT KNN(e, 3, AT(1"));
    client.Close();
  }
  // The counter updates after the reader notices EOF; poll for it.
  for (int i = 0;
       i < 200 &&
       fixture.server.metrics().disconnects_mid_statement.Value() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.server.metrics().disconnects_mid_statement.Value(), 1u);
  // A new client is served as if nothing happened.
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(std::string(kQuery) + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
}

TEST(ServerFramingTest, IdleTimeoutClosesQuietConnection) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  ServerFixture fixture(options);
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(client.ReadEof(/*timeout_ms=*/5000));
  EXPECT_EQ(fixture.server.metrics().idle_timeouts.Value(), 1u);
}

// ------------------------------------------------- admin + backpressure

TEST(ServerAdminTest, StatsPingAndMetricsVerbs) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("PING;\nSTATS;\nmetrics;\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(response.find("\"pong\": true") != std::string::npos)
      << response;
  // STATS: the JSON snapshot record (byte layout unchanged by the
  // metrics registry migration).
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  EXPECT_TRUE(response.find("\"server\": {") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find("\"engine\": {") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find("\"query_latency\": {") != std::string::npos)
      << response;
  // METRICS (case-insensitive): Prometheus text exposition, wrapped in
  // the JSON envelope.
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  EXPECT_TRUE(response.find("\"prometheus\": \"") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find("# HELP knnq_server_requests_total") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(response.find("# TYPE knnq_server_requests_total counter") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(response.find("knnq_engine_queries_total") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(
      response.find("knnq_server_query_latency_seconds_bucket") !=
      std::string::npos)
      << response;
  EXPECT_TRUE(response.find("le=\\\"+Inf\\\"") != std::string::npos)
      << response;
}

TEST(ServerAdminTest, ExplainAnalyzeReturnsTheSpanTree) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(std::string("EXPLAIN ANALYZE ") + kQuery + "\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  // The analyze record: plan + stats + span tree, rendered by the same
  // JsonAnalyzeRecord the CLI's --json mode uses, so both surfaces
  // emit byte-identical records for the same run.
  EXPECT_TRUE(response.find("\"algorithm\": \"") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find("\"explain\": \"") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find("\"stats\": {") != std::string::npos)
      << response;
  EXPECT_TRUE(response.find(
                  "\"trace\": {\"name\": \"statement\"") !=
              std::string::npos)
      << response;
  for (const char* span : {"\"parse\"", "\"bind\"", "\"plan\"",
                           "\"execute\""}) {
    EXPECT_TRUE(response.find(span) != std::string::npos)
        << "missing span " << span << " in " << response;
  }
  EXPECT_TRUE(response.find("\"counters\": {") != std::string::npos)
      << response;

  // Plain EXPLAIN still answers without a trace, and the session keeps
  // serving.
  ASSERT_TRUE(client.Send(std::string("EXPLAIN ") + kQuery + "\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  EXPECT_TRUE(response.find("\"trace\"") == std::string::npos) << response;
}

TEST(ServerBackpressureTest, OverloadIsStructuredAndBounded) {
  ServerOptions options;
  options.max_inflight = 1;
  options.limits.max_conn_inflight = 64;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.pool_queue_limit = 64;
  ServerFixture fixture(options, engine_options);
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());

  // 32 pipelined heavy-ish queries against a 1-slot admission gate:
  // the gate must answer every statement - ok or a structured
  // `overloaded` rejection - and never drop or reorder ids.
  constexpr int kStatements = 32;
  std::string burst;
  for (int i = 0; i < kStatements; ++i) {
    burst += "SELECT KNN(hot, 64, AT(" + std::to_string(100 + i) +
             ", 200)) INTERSECT KNN(hot, 64, AT(300, " +
             std::to_string(100 + i) + "));\n";
  }
  ASSERT_TRUE(client.Send(burst));

  std::set<std::uint64_t> ids;
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  for (int i = 0; i < kStatements; ++i) {
    std::string response;
    ASSERT_TRUE(client.ReadLine(&response)) << "response " << i;
    ids.insert(IdOf(response));
    if (IsOk(response)) {
      ++ok;
    } else {
      EXPECT_TRUE(response.find("\"code\": \"Unavailable\"") !=
                  std::string::npos)
          << response;
      EXPECT_TRUE(response.find("overloaded") != std::string::npos)
          << response;
      ++overloaded;
    }
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kStatements));
  EXPECT_EQ(ok + overloaded, static_cast<std::size_t>(kStatements));
  EXPECT_GE(ok, 1u);  // The gate admits work; it does not deadlock.
  EXPECT_EQ(fixture.server.metrics().overload_rejections.Value(),
            overloaded);
}

TEST(AdmissionControllerTest, GateSemantics) {
  server::AdmissionController gate(2);
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_FALSE(gate.TryAcquire());
  gate.Release();
  EXPECT_TRUE(gate.TryAcquire());
  EXPECT_EQ(gate.in_flight(), 2u);
  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.Release();
    gate.Release();
  });
  gate.WaitUntilIdle();
  EXPECT_EQ(gate.in_flight(), 0u);
  releaser.join();
}

// ------------------------------------------------------------ shutdown

TEST(ServerShutdownTest, GracefulStopDrainsInFlightQueries) {
  ServerOptions options;
  // The whole burst must be admittable: this test is about the drain,
  // not about backpressure.
  options.max_inflight = 64;
  options.limits.max_conn_inflight = 64;
  ServerFixture fixture(options);
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  constexpr int kStatements = 24;
  std::string burst;
  for (int i = 0; i < kStatements; ++i) {
    burst += "SELECT KNN(hot, 32, AT(" + std::to_string(10 * i) +
             ", 50)) INTERSECT KNN(hot, 32, AT(60, " +
             std::to_string(10 * i) + "));\n";
  }
  ASSERT_TRUE(client.Send(burst));
  // Stop concurrently with the burst: every statement the server had
  // accepted must still be answered (a dense id prefix 1..k - queries
  // complete out of order but none admitted is dropped), then a clean
  // EOF with no truncated line.
  fixture.server.Stop();
  std::set<std::uint64_t> ids;
  std::string response;
  while (client.ReadLine(&response, /*timeout_ms=*/2000)) {
    EXPECT_TRUE(IsOk(response)) << response;
    ids.insert(IdOf(response));
  }
  std::set<std::uint64_t> expected;
  for (std::uint64_t id = 1; id <= ids.size(); ++id) expected.insert(id);
  EXPECT_EQ(ids, expected);
  // Stop is idempotent.
  fixture.server.Stop();
}

TEST(ServerShutdownTest, ShutdownVerbStopsTheServer) {
  ServerOptions options;
  options.allow_remote_shutdown = true;
  ServerFixture fixture(options);
  const auto response = server::SendAdminVerb(
      "127.0.0.1", fixture.server.port(), "SHUTDOWN");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->find("\"shutting_down\": true") !=
              std::string::npos)
      << *response;
  fixture.server.WaitUntilStopRequested();
  fixture.server.Stop();
  // The listener is gone.
  TestClient late(fixture.server.port());
  std::string line;
  EXPECT_FALSE(late.ReadLine(&line, /*timeout_ms=*/200));
}

TEST(ServerShutdownTest, ShutdownVerbIsDisabledByDefault) {
  // allow_remote_shutdown defaults to false: an unauthenticated peer
  // must not be able to stop a server it can merely connect to.
  ServerFixture fixture;
  const auto response = server::SendAdminVerb(
      "127.0.0.1", fixture.server.port(), "SHUTDOWN");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->find("\"code\": \"Unsupported\"") !=
              std::string::npos)
      << *response;
  // Still serving.
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("PING;\n"));
  std::string line;
  EXPECT_TRUE(client.ReadLine(&line));
}

// --------------------------------------------------- stuck/slow peers

/// A query whose two 400-NN sets around nearby centers overlap almost
/// entirely: the response carries hundreds of rows, enough to fill a
/// small socket send buffer within a few responses.
std::string BigQuery(int i) {
  return "SELECT KNN(hot, 400, AT(" + std::to_string(400 + i % 7) +
         ", 400)) INTERSECT KNN(hot, 400, AT(401, 399));";
}

TEST(ServerStuckPeerTest, WriteTimeoutFreesEngineWorkers) {
  ServerOptions options;
  options.sndbuf_bytes = 4096;
  options.write_timeout_ms = 200;
  options.max_inflight = 64;
  options.limits.max_conn_inflight = 64;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.pool_queue_limit = 256;
  ServerFixture fixture(options, engine_options);

  // A client that pipelines big-payload queries and never reads: its
  // responses wedge in send() until the write deadline fires. Slots
  // and workers must come back; a fresh client must still be served.
  TestClient stuck(fixture.server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(stuck.connected());
  std::string burst;
  for (int i = 0; i < 48; ++i) burst += BigQuery(i) + "\n";
  ASSERT_TRUE(stuck.Send(burst));
  for (int i = 0;
       i < 500 && fixture.server.metrics().write_timeouts.Value() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(fixture.server.metrics().write_timeouts.Value(), 1u);
  // The broken connection must tear itself down (reader notices the
  // flag and exits) rather than pinning its slot until the peer
  // closes: otherwise stuck peers accumulate against max_connections.
  for (int i = 0;
       i < 500 && fixture.server.metrics().connections_closed.Value() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(fixture.server.metrics().connections_closed.Value(), 1u);

  TestClient healthy(fixture.server.port());
  ASSERT_TRUE(healthy.connected());
  ASSERT_TRUE(healthy.Send(std::string(kQuery) + "\n"));
  std::string response;
  ASSERT_TRUE(healthy.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  fixture.server.Stop();
}

TEST(ServerStuckPeerTest, StopEscalatesWhenPeerStopsReading) {
  ServerOptions options;
  options.sndbuf_bytes = 4096;
  // The per-write deadline is off: the shutdown grace escalation must
  // bound the drain by itself.
  options.write_timeout_ms = 0;
  options.shutdown_grace_ms = 300;
  options.max_inflight = 64;
  options.limits.max_conn_inflight = 64;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.pool_queue_limit = 256;
  ServerFixture fixture(options, engine_options);

  TestClient stuck(fixture.server.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(stuck.connected());
  std::string burst;
  for (int i = 0; i < 16; ++i) burst += BigQuery(i) + "\n";
  ASSERT_TRUE(stuck.Send(burst));
  // Let a writer actually block on the full socket first.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto start = std::chrono::steady_clock::now();
  fixture.server.Stop();  // Must return: grace, then SHUT_RDWR.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(ServerStuckPeerTest, ConnectionCapRefusesExtraClients) {
  ServerOptions options;
  options.max_connections = 2;
  ServerFixture fixture(options);
  TestClient a(fixture.server.port());
  TestClient b(fixture.server.port());
  std::string response;
  // Both inside the cap and registered (their PINGs answered).
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(a.Send("PING;\n"));
  ASSERT_TRUE(a.ReadLine(&response));
  ASSERT_TRUE(b.connected());
  ASSERT_TRUE(b.Send("PING;\n"));
  ASSERT_TRUE(b.ReadLine(&response));
  // The third gets one structured refusal line and EOF.
  TestClient c(fixture.server.port());
  ASSERT_TRUE(c.ReadLine(&response));
  EXPECT_TRUE(response.find("\"code\": \"Unavailable\"") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(response.find("max_connections") != std::string::npos)
      << response;
  EXPECT_TRUE(c.ReadEof());
  EXPECT_EQ(fixture.server.metrics().connection_rejections.Value(), 1u);
  // The registered clients are unaffected.
  ASSERT_TRUE(a.Send("PING;\n"));
  EXPECT_TRUE(a.ReadLine(&response));
}

// ------------------------------------------------- LOAD confinement

TEST(ServerLoadDirTest, LoadDisabledWithoutLoadDir) {
  ServerFixture fixture;
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("LOAD e FROM '/tmp/anything.csv';\n"));
  std::string response;
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(response.find("\"code\": \"Unsupported\"") !=
              std::string::npos)
      << response;
  EXPECT_TRUE(response.find("LOAD is disabled") != std::string::npos)
      << response;
}

TEST(ServerLoadDirTest, LoadConfinedToLoadDir) {
  ASSERT_TRUE(
      SaveCsv(testing::MakeUniform(500, 3), "/tmp/knnq_load_test.csv")
          .ok());
  ServerOptions options;
  options.limits.load_dir = "/tmp";
  ServerFixture fixture(options);
  TestClient client(fixture.server.port());
  ASSERT_TRUE(client.connected());
  std::string response;
  // An absolute path inside the directory loads.
  ASSERT_TRUE(client.Send("LOAD e FROM '/tmp/knnq_load_test.csv';\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  // A relative path resolves under load_dir (not the server's CWD).
  ASSERT_TRUE(client.Send("LOAD e FROM 'knnq_load_test.csv';\n"));
  ASSERT_TRUE(client.ReadLine(&response));
  EXPECT_TRUE(IsOk(response)) << response;
  // Escapes - absolute or via '..' - are refused before any
  // filesystem access.
  for (const char* statement :
       {"LOAD e FROM '/etc/hostname';\n",
        "LOAD e FROM '../etc/hostname';\n"}) {
    ASSERT_TRUE(client.Send(statement));
    ASSERT_TRUE(client.ReadLine(&response));
    EXPECT_TRUE(response.find("\"code\": \"InvalidArgument\"") !=
                std::string::npos)
        << response;
    EXPECT_TRUE(response.find("escapes the load directory") !=
                std::string::npos)
        << response;
  }
}

// ------------------------------------------- concurrency (TSan target)

TEST(ServerConcurrencyTest, ClientsRaceDmlAgainstQueries) {
  ServerOptions options;
  options.max_inflight = 32;
  EngineOptions engine_options;
  engine_options.num_threads = 4;
  engine_options.pool_queue_limit = 256;
  engine_options.planner.cache_mb = 8;  // Exercise invalidation too.
  ServerFixture fixture(options, engine_options);

  constexpr int kQueryClients = 3;
  constexpr int kDmlClients = 2;
  constexpr int kIterations = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;

  for (int c = 0; c < kQueryClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(fixture.server.port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      std::string response;
      for (int i = 0; i < kIterations; ++i) {
        const std::string x = std::to_string(50 + (c * 37 + i * 11) % 800);
        if (!client.Send("SELECT KNN(hot, 8, AT(" + x +
                         ", 300)) INTERSECT KNN(hot, 8, AT(400, " + x +
                         "));\n") ||
            !client.ReadLine(&response) ||
            !HasId(response, static_cast<std::uint64_t>(i + 1)) ||
            !IsOk(response)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int c = 0; c < kDmlClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(fixture.server.port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      std::string response;
      for (int i = 0; i < kIterations; ++i) {
        const std::string statement =
            i % 2 == 0
                ? "INSERT INTO hot VALUES (" + std::to_string(100 + i) +
                      ", " + std::to_string(200 + c) + ");"
                : "DELETE FROM hot WHERE ID = " +
                      std::to_string(1000000 + c * 1000 + i) + ";";
        if (!client.Send(statement + "\n") ||
            !client.ReadLine(&response) ||
            !HasId(response, static_cast<std::uint64_t>(i + 1)) ||
            !IsOk(response)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fixture.server.metrics().errors.Value(), 0u);
  fixture.server.Stop();
}

// ------------------------------------------------- differential gate

/// Strips the volatile `"stats": {...}` suffix (wall times differ run
/// to run); everything before it - rows, algorithm, text - must match
/// byte for byte.
std::string StripStats(const std::string& record) {
  const std::size_t at = record.find(", \"stats\": {");
  return at == std::string::npos ? record : record.substr(0, at);
}

/// The "-- relations: a b c" header of a committed example script.
std::vector<std::string> RelationsOf(const std::string& script) {
  std::vector<std::string> names;
  std::istringstream lines(script);
  std::string line;
  while (std::getline(lines, line)) {
    constexpr std::string_view kHeader = "-- relations: ";
    if (line.rfind(kHeader, 0) == 0) {
      std::istringstream words(line.substr(kHeader.size()));
      std::string word;
      while (words >> word) names.push_back(word);
      break;
    }
  }
  return names;
}

/// What the server must answer for one statement, computed against a
/// twin engine. Mirrors the session's dispatch exactly (the shared
/// renderers in src/server/wire.h make this byte-accurate).
std::string ExpectedRecord(QueryEngine& engine,
                           const knnql::Statement& statement) {
  if (const auto* query = std::get_if<knnql::Query>(&statement.body)) {
    auto spec = engine.BindQuery(*query);
    if (!spec.ok()) return server::JsonErrorRecord("", "", spec.status());
    const std::string text = knnql::Unparse(*spec);
    if (statement.explain) {
      const auto explain = engine.Explain(*spec);
      if (!explain.ok()) {
        return server::JsonErrorRecord("query", text, explain.status());
      }
      return server::JsonExplainRecord(text, *explain);
    }
    const EngineResult run = engine.Run(*spec);
    if (!run.ok()) {
      return server::JsonErrorRecord("query", text, run.status);
    }
    return server::JsonQueryRecord(text, run);
  }
  auto dml = knnql::BindDml(statement.body, nullptr);
  if (!dml.ok()) return server::JsonErrorRecord("", "", dml.status());
  const std::string text = knnql::Unparse(*dml);
  const EngineResult run = engine.ExecuteDml(*dml);
  if (!run.ok()) {
    return server::JsonErrorRecord("statement", text, run.status);
  }
  return server::JsonDmlRecord(text, run);
}

TEST(ServerDifferentialTest, ResponsesMatchLocalExecutionOnExamples) {
  const std::filesystem::path dir =
      std::filesystem::path(KNNQ_SOURCE_DIR) / "examples" / "queries";
  // live_updates.knnql reloads from this committed path.
  ASSERT_TRUE(
      SaveCsv(testing::MakeCity(5000, 77), "/tmp/smoke.csv").ok());

  std::vector<std::filesystem::path> scripts;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".knnql") {
      scripts.push_back(entry.path());
    }
  }
  std::sort(scripts.begin(), scripts.end());
  ASSERT_FALSE(scripts.empty());

  for (const auto& path : scripts) {
    SCOPED_TRACE(path.filename().string());
    auto script_text = ReadTextFile(path.string());
    ASSERT_TRUE(script_text.ok()) << script_text.status().ToString();
    const std::vector<std::string> relations = RelationsOf(*script_text);
    ASSERT_FALSE(relations.empty());

    // Twin catalogs from identical data; twin engines, cache on for
    // the server (responses must not depend on it).
    const auto make_catalog = [&relations] {
      Catalog catalog;
      std::uint64_t seed = 101;
      for (const std::string& name : relations) {
        EXPECT_TRUE(
            catalog.AddRelation(name, testing::MakeCity(4000, seed++))
                .ok());
      }
      return catalog;
    };
    EngineOptions server_engine_options;
    server_engine_options.num_threads = 2;
    server_engine_options.planner.cache_mb = 8;
    QueryEngine served(make_catalog(), server_engine_options);
    EngineOptions local_options;
    local_options.num_threads = 1;
    QueryEngine local(make_catalog(), local_options);

    ServerOptions server_options;
    server_options.limits.load_dir = "/tmp";  // live_updates LOADs here.
    Server server(&served, server_options);
    ASSERT_TRUE(server.Start().ok());
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());

    auto statements = server::SplitStatements(*script_text);
    ASSERT_TRUE(statements.ok()) << statements.status().ToString();
    std::uint64_t id = 0;
    for (const std::string& statement : *statements) {
      const auto parsed = knnql::ParseScript(statement);
      ASSERT_TRUE(parsed.ok())
          << parsed.status().ToString() << "\n in: " << statement;
      if (parsed->empty()) continue;  // Comment-only: no response.
      // Closed loop keeps the two engines in lockstep across DML.
      ASSERT_TRUE(client.Send(statement + "\n"));
      std::string response;
      ASSERT_TRUE(client.ReadLine(&response)) << statement;
      const std::string expected = server::WithId(
          ++id, ExpectedRecord(local, parsed->front()));
      EXPECT_EQ(StripStats(response), StripStats(expected))
          << "statement: " << statement;
    }
    server.Stop();
  }
}

/// End-to-end loadgen sweep over one example workload: every response
/// ok, ids in order, on several concurrent connections.
TEST(ServerLoadgenTest, ConcurrentReplayIsClean) {
  ServerFixture fixture;
  const std::vector<std::string> statements = {
      "SELECT KNN(e, 5, AT(100, 100)) INTERSECT KNN(e, 5, AT(120, 90));",
      "EXPLAIN SELECT KNN(hot, 3, AT(10, 10)) INTERSECT "
      "KNN(hot, 4, AT(20, 20));",
      "JOIN KNN(e, hot, 2) WHERE INNER IN RANGE(0, 0, 400, 300);",
  };
  server::LoadgenOptions options;
  options.port = fixture.server.port();
  options.clients = 6;
  options.repeat = 10;
  const auto report = server::RunLoadgen(options, statements);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 6u * 10u * 3u);
  EXPECT_EQ(report->ok_responses, report->requests);
  EXPECT_TRUE(report->clean());
  EXPECT_GT(report->p50_ms, 0.0);
  EXPECT_GE(report->p99_ms, report->p50_ms);
}

}  // namespace
}  // namespace knnq
