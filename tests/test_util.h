// Shared helpers for the knnq test suite: dataset builders, index
// construction shortcuts, and independent brute-force reference
// implementations of every query class. The references deliberately use
// only BruteForceKnn over raw point sets - no index, no locality, no
// block pruning - so agreement with the optimized evaluators is
// meaningful evidence of correctness.

#ifndef KNNQ_TESTS_TEST_UTIL_H_
#define KNNQ_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "src/common/point.h"
#include "src/common/random.h"
#include "src/core/result_types.h"
#include "src/core/two_selects.h"
#include "src/data/berlinmod.h"
#include "src/data/clustered.h"
#include "src/data/uniform.h"
#include "src/index/index_factory.h"
#include "src/index/knn_searcher.h"
#include "src/index/spatial_index.h"

namespace knnq::testing {

/// Standard test frame: a 1000 x 800 world.
inline BoundingBox TestFrame() { return BoundingBox(0, 0, 1000, 800); }

/// Uniform points in the test frame.
inline PointSet MakeUniform(std::size_t n, std::uint64_t seed,
                            PointId first_id = 0) {
  return GenerateUniform(n, TestFrame(), seed, first_id);
}

/// A small city-shaped relation (BerlinMOD-style, scaled down).
inline PointSet MakeCity(std::size_t n, std::uint64_t seed,
                         PointId first_id = 0) {
  BerlinModOptions options;
  options.num_points = n;
  options.seed = seed;
  options.width = 1000;
  options.height = 800;
  options.street_spacing = 40;
  options.gps_noise = 1.5;
  options.first_id = first_id;
  auto points = GenerateBerlinModSnapshot(options);
  return std::move(points).value();
}

/// A clustered relation in the test frame.
inline PointSet MakeClustered(std::size_t num_clusters,
                              std::size_t points_per_cluster,
                              std::uint64_t seed, PointId first_id = 0) {
  ClusterOptions options;
  options.num_clusters = num_clusters;
  options.points_per_cluster = points_per_cluster;
  options.cluster_radius = 40;
  options.region = TestFrame();
  options.seed = seed;
  options.first_id = first_id;
  auto points = GenerateClusters(options);
  return std::move(points).value();
}

/// Builds an index of the requested type with small blocks (so even the
/// small test relations span many blocks and the pruning paths fire).
inline std::unique_ptr<SpatialIndex> MakeIndex(
    const PointSet& points, IndexType type = IndexType::kGrid,
    std::size_t block_capacity = 16) {
  IndexOptions options;
  options.type = type;
  options.block_capacity = block_capacity;
  auto index = BuildIndex(points, options);
  return std::move(index).value();
}

// --- Brute-force reference implementations ---

/// Reference for Section 3 queries: (E1 JOIN E2) filtered by the focal
/// neighborhood, straight from the definitions.
inline JoinResult RefSelectInnerJoin(const PointSet& outer,
                                     const PointSet& inner,
                                     std::size_t join_k, const Point& focal,
                                     std::size_t select_k) {
  const Neighborhood nbr_f = BruteForceKnn(inner, focal, select_k);
  JoinResult pairs;
  for (const Point& e1 : outer) {
    for (const Neighbor& n : BruteForceKnn(inner, e1, join_k)) {
      if (Contains(nbr_f, n.point.id)) pairs.push_back(JoinPair{e1, n.point});
    }
  }
  Canonicalize(pairs);
  return pairs;
}

/// Reference for Section 4.1: both joins independently, intersect on B.
inline TripletResult RefUnchained(const PointSet& a, const PointSet& b,
                                  const PointSet& c, std::size_t k_ab,
                                  std::size_t k_cb) {
  TripletResult triplets;
  for (const Point& ap : a) {
    const Neighborhood nbr_a = BruteForceKnn(b, ap, k_ab);
    for (const Point& cp : c) {
      const Neighborhood nbr_c = BruteForceKnn(b, cp, k_cb);
      for (const Neighbor& bn : nbr_a) {
        if (Contains(nbr_c, bn.point.id)) {
          triplets.push_back(
              Triplet{.a = ap.id, .b = bn.point.id, .c = cp.id});
        }
      }
    }
  }
  Canonicalize(triplets);
  return triplets;
}

/// Reference for Section 4.2: chained joins from the definitions.
inline TripletResult RefChained(const PointSet& a, const PointSet& b,
                                const PointSet& c, std::size_t k_ab,
                                std::size_t k_bc) {
  TripletResult triplets;
  for (const Point& ap : a) {
    for (const Neighbor& bn : BruteForceKnn(b, ap, k_ab)) {
      for (const Neighbor& cn : BruteForceKnn(c, bn.point, k_bc)) {
        triplets.push_back(
            Triplet{.a = ap.id, .b = bn.point.id, .c = cn.point.id});
      }
    }
  }
  Canonicalize(triplets);
  return triplets;
}

/// Reference for Section 5: both selects in full, intersected.
inline TwoSelectsResult RefTwoSelects(const PointSet& relation,
                                      const Point& f1, std::size_t k1,
                                      const Point& f2, std::size_t k2) {
  return IntersectNeighborhoods(BruteForceKnn(relation, f1, k1),
                                BruteForceKnn(relation, f2, k2));
}

/// All index types, for parameterized suites.
inline std::vector<IndexType> AllIndexTypes() {
  return {IndexType::kGrid, IndexType::kQuadtree, IndexType::kRTree};
}

}  // namespace knnq::testing

#endif  // KNNQ_TESTS_TEST_UTIL_H_
