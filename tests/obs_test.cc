// Observability-layer tests: span-tree construction (nesting, timing
// monotonicity, counter merging, pre-measured grafts), the
// zero-allocation guarantee of disabled tracing hooks, metrics
// registry consistency under concurrent writers (the TSan target),
// histogram nanosecond fidelity, Prometheus exposition shape, and the
// EXPLAIN ANALYZE acceptance invariant: summing a counter over a
// query's span tree reproduces its ExecStats total, across every paper
// query shape, sharded or not, cached or not.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/query_engine.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/planner/query_spec.h"
#include "tests/test_util.h"

// ------------------------------------------------------- alloc counter
// Replacement global allocator that counts every operator new, so the
// disabled-tracing test can assert an instrumentation site allocates
// nothing. Replaceable operators need external linkage, hence global
// scope; each test file is its own binary, so the override is local to
// this suite.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeUniform;

// ------------------------------------------------------------- tracing

TEST(TraceTest, SpanNestingAndTimingMonotonicity) {
  obs::TraceContext trace;
  {
    obs::TraceScope scope(&trace);
    ASSERT_EQ(obs::CurrentTrace(), &trace);
    {
      obs::ScopedSpan outer("execute");
      EXPECT_TRUE(outer.active());
      {
        obs::ScopedSpan inner("select_s1");
        inner.Count("blocks_scanned", 3);
        inner.Count("blocks_scanned", 4);  // Merges: 7.
        inner.Count("points_compared", 0);  // Zero is dropped.
      }
      {
        obs::ScopedSpan inner("select_s2");
      }
    }
  }
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  trace.Finish();

  const obs::Span& root = trace.root();
  EXPECT_EQ(root.name, "statement");
  ASSERT_EQ(root.children.size(), 1u);
  const obs::Span& execute = *root.children[0];
  EXPECT_EQ(execute.name, "execute");
  ASSERT_EQ(execute.children.size(), 2u);
  const obs::Span& s1 = *execute.children[0];
  const obs::Span& s2 = *execute.children[1];
  EXPECT_EQ(s1.name, "select_s1");
  EXPECT_EQ(s2.name, "select_s2");

  // Counter merge on one span; the zero-valued Count left no entry.
  ASSERT_EQ(s1.counters.size(), 1u);
  EXPECT_EQ(s1.counters[0].first, "blocks_scanned");
  EXPECT_EQ(s1.counters[0].second, 7u);
  EXPECT_TRUE(s2.counters.empty());

  // Timing is monotone: children start no earlier than their parent,
  // end no later, and siblings are stamped in order.
  EXPECT_GE(execute.start_ns, root.start_ns);
  EXPECT_LE(execute.start_ns + execute.duration_ns,
            root.start_ns + root.duration_ns);
  EXPECT_GE(s1.start_ns, execute.start_ns);
  EXPECT_GE(s2.start_ns, s1.start_ns + s1.duration_ns);
  EXPECT_LE(s2.start_ns + s2.duration_ns,
            execute.start_ns + execute.duration_ns);

  EXPECT_EQ(obs::CountSpans(root), 4u);
  EXPECT_EQ(obs::SumCounter(root, "blocks_scanned"), 7u);
  EXPECT_EQ(obs::SumCounter(root, "cache_hits"), 0u);
}

TEST(TraceTest, AttachMeasuredGraftsBeforeLiveChildren) {
  obs::TraceContext trace;
  {
    obs::TraceScope scope(&trace);
    obs::ScopedSpan execute("execute");
  }
  trace.AttachMeasured("parse", 1200);
  trace.AttachMeasured("bind", 800);
  trace.Finish();

  const obs::Span& root = trace.root();
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0]->name, "parse");
  EXPECT_EQ(root.children[0]->duration_ns, 1200u);
  EXPECT_EQ(root.children[1]->name, "bind");
  EXPECT_EQ(root.children[1]->duration_ns, 800u);
  EXPECT_EQ(root.children[2]->name, "execute");
}

TEST(TraceTest, DisabledSpansAllocateNothing) {
  ASSERT_EQ(obs::CurrentTrace(), nullptr);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) {
    obs::ScopedSpan span("hot_path");
    span.Count("blocks_scanned", 42);
    obs::ScopedSpan nested("nested");
    nested.Count("points_compared", 7);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "disabled tracing hooks allocated " << (after - before)
      << " times in 100k iterations";
}

TEST(TraceTest, RenderTextAndJson) {
  obs::TraceContext trace;
  {
    obs::TraceScope scope(&trace);
    obs::ScopedSpan execute("execute");
    obs::ScopedSpan select("knn_select");
    select.Count("neighborhoods_computed", 2);
  }
  trace.Finish();

  const std::string text = obs::RenderText(trace.root());
  EXPECT_NE(text.find("statement"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("knn_select"), std::string::npos);
  EXPECT_NE(text.find("neighborhoods_computed=2"), std::string::npos);

  const std::string json = obs::ToJson(trace.root());
  EXPECT_NE(json.find("\"name\": \"statement\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"knn_select\""), std::string::npos);
  EXPECT_NE(json.find("\"neighborhoods_computed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  // Spans without counters omit the field entirely.
  EXPECT_EQ(json.find("\"counters\": {}"), std::string::npos);
}

// ------------------------------------------------------------- metrics

TEST(MetricsTest, HistogramKeepsSubMicrosecondFidelity) {
  obs::Histogram histogram;
  histogram.Record(100e-9);  // 100ns: bucket 6 ([64ns, 128ns)).
  histogram.Record(100e-9);
  histogram.Record(3e-3);  // 3ms.

  const obs::HistogramSummary summary = histogram.Summarize();
  EXPECT_EQ(summary.count, 3u);
  // The microsecond-bucketed predecessor truncated the 100ns samples
  // to zero; nanosecond buckets keep them visible in the mean.
  EXPECT_GT(summary.mean_ms, 0.9);  // ~1ms: (100ns+100ns+3ms)/3.
  EXPECT_LT(summary.p50_ms, 0.001);  // Median is the 100ns sample.
  EXPECT_GE(summary.p99_ms, summary.p50_ms);

  const obs::Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum_seconds, 3e-3 + 200e-9, 1e-6);
  // Bucket bounds double: 2^(i+1) nanoseconds.
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperSeconds(0), 2e-9);
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperSeconds(1) /
                       obs::Histogram::BucketUpperSeconds(0),
                   2.0);
}

TEST(MetricsTest, RegistryConsistentUnderConcurrentWriters) {
  obs::MetricsRegistry registry;
  obs::Counter requests;
  obs::Histogram latency;
  registry.RegisterCounter("knnq_test_requests_total", "requests",
                           &requests);
  registry.RegisterHistogram("knnq_test_latency_seconds", "latency",
                             &latency);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};

  // A scraper renders continuously while writers hammer the
  // instruments - the race TSan checks.
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = registry.RenderPrometheus();
      EXPECT_NE(text.find("knnq_test_requests_total"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        requests.Add();
        latency.Record(1e-6 * static_cast<double>(1 + (i + w) % 1000));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  // After the dust settles, totals are exact.
  EXPECT_EQ(requests.Value(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  const obs::Histogram::Snapshot snap = latency.Snap();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kWriters) * kPerWriter);

  const std::string text = registry.RenderPrometheus();
  const std::string want =
      "knnq_test_requests_total " +
      std::to_string(static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_NE(text.find(want), std::string::npos) << text;
}

TEST(MetricsTest, PrometheusRenderShape) {
  obs::MetricsRegistry registry;
  obs::Counter hits;
  hits.Add(5);
  obs::Histogram latency;
  latency.Record(50e-9);
  latency.Record(2e-3);
  registry.RegisterCounter("knnq_test_hits_total", "cache hits", &hits);
  registry.RegisterHistogram("knnq_test_wait_seconds", "wait", &latency);
  registry.RegisterCallbackCounter("knnq_test_scrapes_total", "scrapes",
                                   [] { return std::uint64_t{9}; });
  registry.RegisterCallbackGauge("knnq_test_depth", "queue depth",
                                 [] { return 2.5; });

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP knnq_test_hits_total cache hits"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE knnq_test_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("knnq_test_hits_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE knnq_test_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("knnq_test_wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("knnq_test_wait_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("knnq_test_wait_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("knnq_test_scrapes_total 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE knnq_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("knnq_test_depth 2.5"), std::string::npos);

  // HELP precedes TYPE precedes samples, per family.
  const std::size_t help = text.find("# HELP knnq_test_wait_seconds");
  const std::size_t type = text.find("# TYPE knnq_test_wait_seconds");
  const std::size_t sample = text.find("knnq_test_wait_seconds_bucket");
  ASSERT_NE(help, std::string::npos);
  EXPECT_LT(help, type);
  EXPECT_LT(type, sample);
}

// --------------------------------------------- EXPLAIN ANALYZE sums
// The acceptance invariant: counters attached at evaluator-phase
// granularity tile each searcher's work exactly once, so summing any
// ExecStats-named counter over the span tree reproduces the flat
// total - for all six paper query shapes, under every engine
// configuration (sharded or not, cached or not).

Catalog MakeCatalog() {
  Catalog catalog;
  IndexOptions options;
  options.block_capacity = 16;  // Many blocks: pruning paths fire.
  EXPECT_TRUE(
      catalog.AddRelation("uniform", MakeUniform(800, 41, 0), options).ok());
  EXPECT_TRUE(
      catalog.AddRelation("city", MakeCity(800, 42, 100000), options).ok());
  EXPECT_TRUE(catalog
                  .AddRelation("clustered", MakeClustered(3, 120, 43, 200000),
                               options)
                  .ok());
  return catalog;
}

/// All six QuerySpec shapes, twice with varying parameters (the second
/// round re-probes warm cache entries in cached configurations).
std::vector<QuerySpec> SixShapes(std::size_t rounds) {
  std::vector<QuerySpec> specs;
  for (std::size_t i = 0; i < rounds; ++i) {
    const double dx = static_cast<double>((i * 37) % 900);
    const double dy = static_cast<double>((i * 53) % 700);
    const std::size_t k = 2 + i % 5;
    specs.push_back(TwoSelectsSpec{
        .relation = "city",
        .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
        .s2 = {.focal = {.id = -1, .x = dx + 40, .y = dy + 25}, .k = k + 6},
    });
    specs.push_back(SelectInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 2},
    });
    specs.push_back(SelectOuterJoinSpec{
        .outer = "city",
        .inner = "uniform",
        .join_k = 1 + k % 3,
        .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 5 + k},
    });
    specs.push_back(UnchainedJoinsSpec{
        .a = "uniform",
        .b = "city",
        .c = "clustered",
        .k_ab = 1 + k % 3,
        .k_cb = 1 + (k + 1) % 3,
    });
    specs.push_back(ChainedJoinsSpec{
        .a = "clustered",
        .b = "city",
        .c = "uniform",
        .k_ab = 1 + k % 3,
        .k_bc = 1 + (k + 2) % 3,
    });
    specs.push_back(RangeInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .range = BoundingBox(dx, dy, dx + 150, dy + 120),
    });
  }
  return specs;
}

void ExpectTreeSumsMatchStats(const QueryEngine& engine,
                              const std::string& label) {
  const std::vector<QuerySpec> specs = SixShapes(2);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EngineResult run = engine.RunAnalyzed(specs[i]);
    ASSERT_TRUE(run.ok())
        << label << " query " << i << ": " << run.status.ToString();
    ASSERT_NE(run.trace, nullptr) << label << " query " << i;
    const obs::Span& root = run.trace->root();
    EXPECT_GT(root.duration_ns, 0u);
    EXPECT_GE(obs::CountSpans(root), 3u);  // statement, plan, execute, ...

    const struct {
      const char* name;
      std::size_t total;
    } counters[] = {
        {"blocks_scanned", run.stats.blocks_scanned},
        {"blocks_skipped", run.stats.blocks_skipped},
        {"points_compared", run.stats.points_compared},
        {"neighborhoods_computed", run.stats.neighborhoods_computed},
        {"candidates_pruned", run.stats.candidates_pruned},
        {"cache_hits", run.stats.cache_hits},
        {"cache_misses", run.stats.cache_misses},
        {"shards_pruned", run.stats.shards_pruned},
    };
    for (const auto& counter : counters) {
      EXPECT_EQ(obs::SumCounter(root, counter.name), counter.total)
          << label << " query " << i << " (" << run.explain << "): span sum "
          << "of " << counter.name << " diverges from ExecStats\n"
          << obs::RenderText(root);
    }
  }
}

TEST(ExplainAnalyzeTest, SpanSumsMatchExecStatsUnsharded) {
  EngineOptions options;
  options.num_threads = 2;
  const QueryEngine engine(MakeCatalog(), options);
  ExpectTreeSumsMatchStats(engine, "unsharded/uncached");
}

TEST(ExplainAnalyzeTest, SpanSumsMatchExecStatsCached) {
  EngineOptions options;
  options.num_threads = 2;
  options.cache_mb = 8;
  const QueryEngine engine(MakeCatalog(), options);
  ExpectTreeSumsMatchStats(engine, "unsharded/cached");
}

TEST(ExplainAnalyzeTest, SpanSumsMatchExecStatsSharded) {
  EngineOptions options;
  options.num_threads = 2;
  options.shards = 3;
  const QueryEngine engine(MakeCatalog(), options);
  ExpectTreeSumsMatchStats(engine, "sharded/uncached");
}

TEST(ExplainAnalyzeTest, SpanSumsMatchExecStatsShardedCached) {
  EngineOptions options;
  options.num_threads = 2;
  options.shards = 3;
  options.cache_mb = 8;
  const QueryEngine engine(MakeCatalog(), options);
  ExpectTreeSumsMatchStats(engine, "sharded/cached");
}

TEST(ExplainAnalyzeTest, PlainRunCarriesNoTrace) {
  EngineOptions options;
  options.num_threads = 2;
  const QueryEngine engine(MakeCatalog(), options);
  const EngineResult run = engine.Run(SixShapes(1)[0]);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.trace, nullptr);
}

TEST(ExplainAnalyzeTest, ParseAndBindSpansAreGrafted) {
  EngineOptions options;
  options.num_threads = 2;
  const QueryEngine engine(MakeCatalog(), options);
  const EngineResult run = engine.RunAnalyzed(SixShapes(1)[0], 1500, 900);
  ASSERT_TRUE(run.ok());
  ASSERT_NE(run.trace, nullptr);
  const obs::Span& root = run.trace->root();
  ASSERT_GE(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->name, "parse");
  EXPECT_EQ(root.children[0]->duration_ns, 1500u);
  EXPECT_EQ(root.children[1]->name, "bind");
  EXPECT_EQ(root.children[1]->duration_ns, 900u);
}

}  // namespace
}  // namespace knnq
