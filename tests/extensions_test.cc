// Tests for the two extensions the paper explicitly points at:
// footnote 1 (range selection on the join's inner relation) and the
// conclusion's "more than two kNN predicates" (arbitrary-length
// chains).

#include "gtest/gtest.h"
#include "src/core/chained_joins.h"
#include "src/core/multi_chained_joins.h"
#include "src/core/range_select_inner_join.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;

// --- Range selection on the inner relation (footnote 1) ---

JoinResult RefRangeSelectInnerJoin(const PointSet& outer,
                                   const PointSet& inner,
                                   std::size_t join_k,
                                   const BoundingBox& range) {
  JoinResult pairs;
  for (const Point& e1 : outer) {
    for (const Neighbor& n : BruteForceKnn(inner, e1, join_k)) {
      if (range.Contains(n.point)) pairs.push_back(JoinPair{e1, n.point});
    }
  }
  Canonicalize(pairs);
  return pairs;
}

struct RangeCase {
  IndexType type;
  std::size_t join_k;
  BoundingBox range;
};

std::string RangeCaseName(const ::testing::TestParamInfo<RangeCase>& info) {
  return std::string(ToString(info.param.type)) + "_k" +
         std::to_string(info.param.join_k) + "_case" +
         std::to_string(info.param.range.Area() > 100000 ? 1 : 0) +
         std::to_string(info.index);
}

class RangeSelectInnerJoinPropertyTest
    : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeSelectInnerJoinPropertyTest, AllEvaluatorsMatchBruteForce) {
  const RangeCase& c = GetParam();
  const PointSet outer = MakeUniform(300, /*seed=*/161, /*first_id=*/0);
  const PointSet inner = MakeCity(1200, /*seed=*/162, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer, c.type);
  const auto inner_index = MakeIndex(inner, c.type);
  const RangeSelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = c.join_k,
      .range = c.range,
  };
  const JoinResult expected =
      RefRangeSelectInnerJoin(outer, inner, c.join_k, c.range);
  EXPECT_EQ(*RangeSelectInnerJoinNaive(query), expected);
  EXPECT_EQ(*RangeSelectInnerJoinCounting(query), expected);
  EXPECT_EQ(
      *RangeSelectInnerJoinBlockMarking(query, PreprocessMode::kContour),
      expected);
  EXPECT_EQ(
      *RangeSelectInnerJoinBlockMarking(query, PreprocessMode::kExhaustive),
      expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeSelectInnerJoinPropertyTest,
    ::testing::Values(
        RangeCase{IndexType::kGrid, 2, BoundingBox(100, 100, 300, 250)},
        RangeCase{IndexType::kGrid, 8, BoundingBox(100, 100, 300, 250)},
        RangeCase{IndexType::kGrid, 3, BoundingBox(0, 0, 1000, 800)},
        RangeCase{IndexType::kGrid, 3, BoundingBox(450, 350, 452, 352)},
        RangeCase{IndexType::kQuadtree, 4,
                  BoundingBox(600, 200, 900, 500)},
        RangeCase{IndexType::kRTree, 4, BoundingBox(600, 200, 900, 500)}),
    RangeCaseName);

TEST(RangeSelectInnerJoinTest, CountingPrunesOutsideTheRectangle) {
  const PointSet outer = MakeUniform(1000, 163, 0);
  const PointSet inner = MakeUniform(8000, 164, 100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const RangeSelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .range = BoundingBox(480, 380, 520, 420),  // Small central window.
  };
  SelectInnerJoinStats stats;
  ASSERT_TRUE(RangeSelectInnerJoinCounting(query, &stats).ok());
  EXPECT_GT(stats.pruned_points, outer.size() * 3 / 4);
}

TEST(RangeSelectInnerJoinTest, WholeSpaceRectangleDegeneratesToPlainJoin) {
  const PointSet outer = MakeUniform(50, 165, 0);
  const PointSet inner = MakeUniform(400, 166, 100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const RangeSelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 4,
      .range = BoundingBox(-10, -10, 1010, 810),
  };
  const auto result = RangeSelectInnerJoinBlockMarking(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), outer.size() * 4);
}

TEST(RangeSelectInnerJoinTest, RejectsInvalidQueries) {
  const auto index = MakeIndex(MakeUniform(10, 167));
  RangeSelectInnerJoinQuery query{
      .outer = index.get(),
      .inner = index.get(),
      .join_k = 0,
      .range = BoundingBox(0, 0, 1, 1),
  };
  EXPECT_FALSE(RangeSelectInnerJoinNaive(query).ok());
  query.join_k = 2;
  query.range = BoundingBox();  // Empty.
  EXPECT_FALSE(RangeSelectInnerJoinCounting(query).ok());
  query.range = BoundingBox(0, 0, 1, 1);
  query.inner = nullptr;
  EXPECT_FALSE(RangeSelectInnerJoinBlockMarking(query).ok());
}

// --- Arbitrary-length chains (the conclusion's outlook) ---

TEST(ChainedPathJoinTest, TwoRelationChainIsThePlainJoin) {
  const PointSet a = MakeUniform(40, 171, 0);
  const PointSet b = MakeUniform(300, 172, 10000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const ChainQuery query{.relations = {a_index.get(), b_index.get()},
                         .ks = {3}};
  const auto rows = ChainedPathJoin(query);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), a.size() * 3);
  for (const ChainRow& row : *rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_TRUE(Contains(BruteForceKnn(b, a[static_cast<std::size_t>(
                                              row[0])], 3),
                         row[1]));
  }
}

TEST(ChainedPathJoinTest, ThreeRelationChainMatchesChainedJoins) {
  const PointSet a = MakeUniform(60, 173, 0);
  const PointSet b = MakeCity(400, 174, 10000);
  const PointSet c = MakeUniform(300, 175, 20000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const auto c_index = MakeIndex(c);
  const ChainQuery query{
      .relations = {a_index.get(), b_index.get(), c_index.get()},
      .ks = {3, 4}};
  const auto rows = ChainedPathJoin(query);
  ASSERT_TRUE(rows.ok());

  const ChainedJoinsQuery pairwise{.a = a_index.get(),
                                   .b = b_index.get(),
                                   .c = c_index.get(),
                                   .k_ab = 3,
                                   .k_bc = 4};
  const auto triplets = ChainedJoinsNested(pairwise);
  ASSERT_TRUE(triplets.ok());
  ASSERT_EQ(rows->size(), triplets->size());
  for (std::size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i],
              (ChainRow{(*triplets)[i].a, (*triplets)[i].b,
                        (*triplets)[i].c}));
  }
}

TEST(ChainedPathJoinTest, LongChainNestedMatchesNaive) {
  // Five relations, four hops: the generalized QEP3 must equal the
  // independent pairwise specification.
  const PointSet r0 = MakeClustered(2, 20, 176, 0);
  const PointSet r1 = MakeUniform(150, 177, 10000);
  const PointSet r2 = MakeCity(200, 178, 20000);
  const PointSet r3 = MakeUniform(120, 179, 30000);
  const PointSet r4 = MakeUniform(100, 180, 40000);
  const auto i0 = MakeIndex(r0);
  const auto i1 = MakeIndex(r1);
  const auto i2 = MakeIndex(r2);
  const auto i3 = MakeIndex(r3);
  const auto i4 = MakeIndex(r4);
  const ChainQuery query{
      .relations = {i0.get(), i1.get(), i2.get(), i3.get(), i4.get()},
      .ks = {2, 3, 2, 2}};
  const auto nested = ChainedPathJoin(query, /*cache=*/true);
  const auto plain = ChainedPathJoin(query, /*cache=*/false);
  const auto naive = ChainedPathJoinNaive(query);
  ASSERT_TRUE(nested.ok());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(*nested, *naive);
  EXPECT_EQ(*plain, *naive);
  EXPECT_EQ(nested->size(), r0.size() * 2 * 3 * 2 * 2);
}

TEST(ChainedPathJoinTest, CacheCollapsesSharedPrefixes) {
  const PointSet r0 = MakeClustered(1, 60, 181, 0);  // One tight cluster.
  const PointSet r1 = MakeUniform(400, 182, 10000);
  const PointSet r2 = MakeUniform(400, 183, 20000);
  const auto i0 = MakeIndex(r0);
  const auto i1 = MakeIndex(r1);
  const auto i2 = MakeIndex(r2);
  const ChainQuery query{.relations = {i0.get(), i1.get(), i2.get()},
                         .ks = {4, 4}};
  ChainStats cached_stats;
  ChainStats plain_stats;
  const auto cached = ChainedPathJoin(query, true, &cached_stats);
  const auto plain = ChainedPathJoin(query, false, &plain_stats);
  EXPECT_EQ(*cached, *plain);
  EXPECT_GT(cached_stats.cache_hits, 0u);
  ASSERT_EQ(cached_stats.probes_per_hop.size(), 2u);
  // Hop 1 probes distinct b's only when cached; one probe per produced
  // (r0, r1) pair otherwise.
  EXPECT_LT(cached_stats.probes_per_hop[1], plain_stats.probes_per_hop[1]);
  EXPECT_EQ(plain_stats.probes_per_hop[1], r0.size() * 4);
}

TEST(ChainedPathJoinTest, RejectsInvalidChains) {
  const auto index = MakeIndex(MakeUniform(10, 184));
  EXPECT_FALSE(
      ChainedPathJoin(ChainQuery{.relations = {index.get()}, .ks = {}})
          .ok());
  EXPECT_FALSE(ChainedPathJoin(ChainQuery{
                                   .relations = {index.get(), index.get()},
                                   .ks = {2, 3}})
                   .ok());
  EXPECT_FALSE(ChainedPathJoin(ChainQuery{
                                   .relations = {index.get(), index.get()},
                                   .ks = {0}})
                   .ok());
  EXPECT_FALSE(ChainedPathJoin(ChainQuery{
                                   .relations = {index.get(), nullptr},
                                   .ks = {2}})
                   .ok());
}

}  // namespace
}  // namespace knnq
