// Unit tests for src/common: geometry, status, rng, stopwatch, and
// the strict text parsers (including the locale-independence
// regression: number parsing must not bend under LC_NUMERIC).

#include <clocale>
#include <cmath>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/text_parse.h"

namespace knnq {
namespace {

TEST(PointTest, DistanceMatchesHandComputation) {
  const Point a{.id = 1, .x = 0, .y = 0};
  const Point b{.id = 2, .x = 3, .y = 4};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  const Point a{.id = 1, .x = -2.5, .y = 7.25};
  const Point b{.id = 2, .x = 11.0, .y = -3.5};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(PointTest, AssignSequentialIdsRenumbers) {
  PointSet points = {{.id = 9, .x = 0, .y = 0}, {.id = 9, .x = 1, .y = 1}};
  AssignSequentialIds(points, 100);
  EXPECT_EQ(points[0].id, 100);
  EXPECT_EQ(points[1].id, 101);
}

TEST(PointTest, ToStringMentionsIdAndCoords) {
  const Point p{.id = 7, .x = 1.5, .y = -2};
  const std::string s = p.ToString();
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(BoundingBoxTest, EmptyBoxBehaves) {
  const BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.width(), 0.0);
  EXPECT_EQ(box.Area(), 0.0);
  EXPECT_FALSE(box.Contains(Point{.id = 0, .x = 0, .y = 0}));
}

TEST(BoundingBoxTest, ExtendGrowsToCoverPoints) {
  BoundingBox box;
  box.Extend(Point{.id = 0, .x = 2, .y = 3});
  box.Extend(Point{.id = 0, .x = -1, .y = 10});
  EXPECT_EQ(box.min_x(), -1);
  EXPECT_EQ(box.max_x(), 2);
  EXPECT_EQ(box.min_y(), 3);
  EXPECT_EQ(box.max_y(), 10);
  EXPECT_TRUE(box.Contains(Point{.id = 0, .x = 0, .y = 5}));
}

TEST(BoundingBoxTest, OfComputesTightBounds) {
  const PointSet points = {{.id = 0, .x = 1, .y = 1},
                           {.id = 1, .x = 5, .y = 2},
                           {.id = 2, .x = 3, .y = 9}};
  const BoundingBox box = BoundingBox::Of(points);
  EXPECT_EQ(box, BoundingBox(1, 1, 5, 9));
}

TEST(BoundingBoxTest, CenterAndDiagonal) {
  const BoundingBox box(0, 0, 6, 8);
  const Point center = box.Center();
  EXPECT_DOUBLE_EQ(center.x, 3);
  EXPECT_DOUBLE_EQ(center.y, 4);
  EXPECT_DOUBLE_EQ(box.Diagonal(), 10);
}

TEST(BoundingBoxTest, MinDistZeroInside) {
  const BoundingBox box(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(box.MinDist(Point{.id = 0, .x = 5, .y = 5}), 0.0);
  EXPECT_DOUBLE_EQ(box.MinDist(Point{.id = 0, .x = 0, .y = 0}), 0.0);
}

TEST(BoundingBoxTest, MinDistOutside) {
  const BoundingBox box(0, 0, 10, 10);
  // Straight left of the box.
  EXPECT_DOUBLE_EQ(box.MinDist(Point{.id = 0, .x = -3, .y = 5}), 3.0);
  // Diagonal from the corner.
  EXPECT_DOUBLE_EQ(box.MinDist(Point{.id = 0, .x = -3, .y = -4}), 5.0);
}

TEST(BoundingBoxTest, MaxDistIsFarthestCorner) {
  const BoundingBox box(0, 0, 10, 10);
  // From the origin corner, the farthest corner is (10, 10).
  EXPECT_DOUBLE_EQ(box.MaxDist(Point{.id = 0, .x = 0, .y = 0}),
                   std::sqrt(200.0));
  // From the center, all corners are equally far.
  EXPECT_DOUBLE_EQ(box.MaxDist(Point{.id = 0, .x = 5, .y = 5}),
                   std::sqrt(50.0));
}

TEST(BoundingBoxTest, MinDistNeverExceedsMaxDist) {
  Rng rng(7);
  const BoundingBox box(-5, -3, 12, 44);
  for (int i = 0; i < 200; ++i) {
    const Point p{.id = 0,
                  .x = rng.Uniform(-100, 100),
                  .y = rng.Uniform(-100, 100)};
    EXPECT_LE(box.MinDist(p), box.MaxDist(p));
  }
}

TEST(BoundingBoxTest, MinMaxDistBracketActualPointDistances) {
  // Property: for any point q inside the box, MINDIST <= d(p, q) <=
  // MAXDIST. This is the contract every pruning rule relies on.
  Rng rng(13);
  const BoundingBox box(10, 20, 50, 90);
  for (int i = 0; i < 500; ++i) {
    const Point p{.id = 0,
                  .x = rng.Uniform(-200, 200),
                  .y = rng.Uniform(-200, 200)};
    const Point q{.id = 0,
                  .x = rng.Uniform(box.min_x(), box.max_x()),
                  .y = rng.Uniform(box.min_y(), box.max_y())};
    const double d = Distance(p, q);
    EXPECT_LE(box.MinDist(p), d + 1e-9);
    EXPECT_GE(box.MaxDist(p), d - 1e-9);
  }
}

TEST(BoundingBoxTest, IntersectsDetectsOverlapAndTouching) {
  const BoundingBox a(0, 0, 10, 10);
  EXPECT_TRUE(a.Intersects(BoundingBox(5, 5, 15, 15)));
  EXPECT_TRUE(a.Intersects(BoundingBox(10, 0, 20, 10)));  // Shared edge.
  EXPECT_FALSE(a.Intersects(BoundingBox(11, 0, 20, 10)));
  EXPECT_FALSE(a.Intersects(BoundingBox()));
}

TEST(BoundingBoxTest, InflatedGrowsEachSide) {
  const BoundingBox box(0, 0, 10, 10);
  EXPECT_EQ(box.Inflated(2), BoundingBox(-2, -2, 12, 12));
}

TEST(StatusTest, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformWithinRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextIndex(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(31);
  parent2.Fork();
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.Next() == parent.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.Reset();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

// ---------------------------------------------------------- text parse

TEST(TextParseTest, ParseDoubleAcceptsTheDecimalGrammar) {
  EXPECT_EQ(ParseDouble("3").value(), 3.0);
  EXPECT_EQ(ParseDouble("-0.5").value(), -0.5);
  EXPECT_EQ(ParseDouble("1.25e-3").value(), 0.00125);
  // strtod-isms the rewrite preserves: leading whitespace, '+' sign.
  EXPECT_EQ(ParseDouble("  +2.5").value(), 2.5);
  EXPECT_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(TextParseTest, ParseDoubleRejectsJunkHexAndNonFinite) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("0x10").ok());  // strtod accepted hex.
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("3,5").ok());
  EXPECT_FALSE(ParseDouble("2.5 ").ok());  // Trailing whitespace.
  const auto huge = ParseDouble("1e999");
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("not finite"),
            std::string::npos);
}

TEST(TextParseTest, FormatDoubleIsParseDoublesInverse) {
  for (const double value : {0.1, -3.5, 1e-17, 12345.6789, 0.0}) {
    EXPECT_EQ(ParseDouble(FormatDouble(value)).value(), value);
  }
}

TEST(TextParseTest, FieldDiagnosticsNameTheOffendingPosition) {
  const auto bad_field = ParsePointText("1,bogus");
  ASSERT_FALSE(bad_field.ok());
  EXPECT_NE(bad_field.status().message().find("field 2"),
            std::string::npos)
      << bad_field.status().ToString();

  const auto short_box = ParseBoxText("1,2,3");
  ASSERT_FALSE(short_box.ok());
  EXPECT_NE(short_box.status().message().find("got 3 fields, expected 4"),
            std::string::npos)
      << short_box.status().ToString();

  const auto trailing = ParseBoxText("1,2,3,4,");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("trailing comma"),
            std::string::npos)
      << trailing.status().ToString();
}

TEST(TextParseTest, ParseSizeIsStrict) {
  EXPECT_EQ(ParseSize("42").value(), 42u);
  EXPECT_EQ(ParseSize("0").value(), 0u);
  EXPECT_FALSE(ParseSize("").ok());
  EXPECT_FALSE(ParseSize("-1").ok());
  EXPECT_FALSE(ParseSize("4.5").ok());
  EXPECT_FALSE(ParseSize("1e3").ok());
  EXPECT_FALSE(ParseSize("99999999999999999999999").ok());
}

/// The locale regression: the strtod-based ParseDouble honored
/// LC_NUMERIC, so a comma-decimal locale (de_DE, fr_FR) read "1.5" as
/// 1.0 with trailing junk. The from_chars grammar must not move.
TEST(TextParseTest, ParseDoubleIgnoresCommaDecimalLocale) {
  const char* comma_locales[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                                 "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR",
                                 "es_ES.UTF-8", "it_IT.UTF-8"};
  const char* applied = nullptr;
  for (const char* name : comma_locales) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      applied = name;
      break;
    }
  }
  if (applied == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed in this image";
  }
  // The locale really is comma-decimal, or the regression cannot fire.
  ASSERT_EQ(std::localeconv()->decimal_point[0], ',') << applied;

  EXPECT_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_EQ(ParseDouble("-2.25e1").value(), -22.5);
  EXPECT_FALSE(ParseDouble("1,5").ok());  // ',' is never a radix point.
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  const auto point = ParsePointText("1.5, 2.5");
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  EXPECT_EQ(point->x, 1.5);
  EXPECT_EQ(point->y, 2.5);

  std::setlocale(LC_NUMERIC, "C");
}

}  // namespace
}  // namespace knnq
