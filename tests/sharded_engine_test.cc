// Sharded-engine tests: byte-identity of every query shape across
// shard counts and index structures, copy-on-write DML equivalence
// with the in-place engine, EngineOptions normalization, the
// DmlRequest single write path, shards_pruned aggregation, and a
// concurrent DML-vs-reads stress the TSan CI job runs.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/neighborhood_cache.h"
#include "src/engine/query_engine.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeUniform;

Catalog MakeCatalog(IndexType type = IndexType::kGrid) {
  Catalog catalog;
  IndexOptions options;
  options.type = type;
  options.block_capacity = 16;  // Many blocks: pruning paths fire.
  EXPECT_TRUE(
      catalog.AddRelation("uniform", MakeUniform(800, 41, 0), options).ok());
  EXPECT_TRUE(
      catalog.AddRelation("city", MakeCity(800, 42, 100000), options).ok());
  EXPECT_TRUE(catalog
                  .AddRelation("clustered", MakeClustered(3, 120, 43, 200000),
                               options)
                  .ok());
  return catalog;
}

EngineOptions WithShards(std::size_t shards) {
  EngineOptions options;
  options.num_threads = 2;
  options.shards = shards;
  options.index_options.block_capacity = 16;
  return options;
}

/// `rounds` cycles through all six QuerySpec shapes with varying
/// parameters, as in engine_test.cc.
std::vector<QuerySpec> MixedSpecs(std::size_t rounds) {
  std::vector<QuerySpec> specs;
  specs.reserve(rounds * 6);
  for (std::size_t i = 0; i < rounds; ++i) {
    const double dx = static_cast<double>((i * 37) % 900);
    const double dy = static_cast<double>((i * 53) % 700);
    const std::size_t k = 1 + i % 7;
    specs.push_back(TwoSelectsSpec{
        .relation = "city",
        .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
        .s2 = {.focal = {.id = -1, .x = dx + 40, .y = dy + 25}, .k = k + 6},
    });
    specs.push_back(SelectInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 2},
    });
    specs.push_back(SelectOuterJoinSpec{
        .outer = "city",
        .inner = "uniform",
        .join_k = 1 + k % 3,
        .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 5 + k},
    });
    specs.push_back(UnchainedJoinsSpec{
        .a = "uniform",
        .b = "city",
        .c = "clustered",
        .k_ab = 1 + k % 3,
        .k_cb = 1 + (k + 1) % 3,
    });
    specs.push_back(ChainedJoinsSpec{
        .a = "clustered",
        .b = "city",
        .c = "uniform",
        .k_ab = 1 + k % 3,
        .k_bc = 1 + (k + 2) % 3,
    });
    specs.push_back(RangeInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .range = BoundingBox(dx, dy, dx + 150, dy + 120),
    });
  }
  return specs;
}

void ExpectSameResults(const QueryEngine& reference,
                       const QueryEngine& sharded,
                       const std::vector<QuerySpec>& specs,
                       const std::string& label) {
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EngineResult expected = reference.Run(specs[i]);
    const EngineResult actual = sharded.Run(specs[i]);
    ASSERT_TRUE(expected.ok()) << label << " query " << i << ": "
                               << expected.status.ToString();
    ASSERT_TRUE(actual.ok()) << label << " query " << i << ": "
                             << actual.status.ToString();
    EXPECT_TRUE(actual.output == expected.output)
        << label << ": sharded result differs from unsharded for query "
        << i;
  }
}

// --- Tentpole: every query shape, every structure, byte-identical ---

class ShardedDifferentialTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(ShardedDifferentialTest, AllShapesMatchUnshardedAcrossShardCounts) {
  const IndexType type = GetParam();
  EngineOptions reference_options = WithShards(1);
  reference_options.index_options.type = type;
  const QueryEngine reference(MakeCatalog(type), reference_options);
  ASSERT_EQ(reference.shards(), 1u);

  const std::vector<QuerySpec> specs = MixedSpecs(4);
  for (const std::size_t shards : {4u, 8u}) {
    EngineOptions options = WithShards(shards);
    options.index_options.type = type;
    const QueryEngine engine(MakeCatalog(type), options);
    ASSERT_EQ(engine.shards(), shards);
    ExpectSameResults(reference, engine, specs,
                      std::string(ToString(type)) + "/shards=" +
                          std::to_string(shards));

    // The batch path (the pinned-snapshot read protocol under the
    // worker pool) agrees with serial execution too.
    const std::vector<EngineResult> batch = engine.RunBatch(specs);
    ASSERT_EQ(batch.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << batch[i].status.ToString();
      EXPECT_TRUE(batch[i].output == reference.Run(specs[i]).output)
          << "batch query " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Structures, ShardedDifferentialTest,
                         ::testing::Values(IndexType::kGrid,
                                           IndexType::kQuadtree,
                                           IndexType::kRTree),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

// --- Copy-on-write DML matches the in-place engine ---

TEST(ShardedEngineTest, CowDmlMatchesInPlaceDml) {
  QueryEngine reference(MakeCatalog(), WithShards(1));
  QueryEngine sharded(MakeCatalog(), WithShards(4));

  // Interleave auto-id inserts, explicit-id inserts, erases of old and
  // freshly inserted ids, and an absent-id erase, then compare.
  const std::vector<std::vector<MutationOp>> batches = {
      {MutationOp::Insert(512, 256), MutationOp::Insert(13, 700),
       MutationOp::Erase(5)},
      {MutationOp::Insert(990, 10, 424242), MutationOp::Erase(424242),
       MutationOp::Erase(987654) /* absent: 0 rows, not an error */},
      {MutationOp::Insert(1, 1), MutationOp::Insert(999, 799),
       MutationOp::Erase(100007)},
  };
  for (const auto& ops : batches) {
    for (const std::string rel : {"uniform", "city"}) {
      const EngineResult a = reference.ExecuteDml(
          DmlRequest::MutateOps(rel, ops));
      const EngineResult b = sharded.ExecuteDml(
          DmlRequest::MutateOps(rel, ops));
      ASSERT_TRUE(a.ok()) << a.status.ToString();
      ASSERT_TRUE(b.ok()) << b.status.ToString();
      EXPECT_EQ(a.rows_affected, b.rows_affected) << rel;
    }
    ExpectSameResults(reference, sharded, MixedSpecs(2), "post-mutation");
  }

  // LOAD replaces an existing relation and creates a fresh one.
  const PointSet reload = MakeUniform(300, 77, 0);
  ASSERT_TRUE(
      reference.ExecuteDml(DmlRequest::Load("uniform", reload)).ok());
  ASSERT_TRUE(sharded.ExecuteDml(DmlRequest::Load("uniform", reload)).ok());
  const PointSet fresh = MakeClustered(2, 90, 79, 500000);
  ASSERT_TRUE(reference.ExecuteDml(DmlRequest::Load("fresh", fresh)).ok());
  ASSERT_TRUE(sharded.ExecuteDml(DmlRequest::Load("fresh", fresh)).ok());
  ExpectSameResults(reference, sharded, MixedSpecs(2), "post-load");

  // Auto-id sequences advanced identically: the next auto insert gets
  // the same id in both engines.
  for (QueryEngine* engine : {&reference, &sharded}) {
    const EngineResult r = engine->ExecuteDml(DmlRequest::MutateOps(
        "city", {MutationOp::Insert(444, 333)}));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ((*reference.catalog().Get("city"))->next_id,
            (*sharded.catalog().Get("city"))->next_id);
}

TEST(ShardedEngineTest, CowMutationFailureKeepsAppliedPrefix) {
  QueryEngine engine(MakeCatalog(), WithShards(4));
  const std::size_t before = (*engine.catalog().Get("uniform"))->index->num_points();
  // Second op is invalid (non-finite coordinate): the eight rows before
  // it stay applied, matching Catalog::Mutate's prefix semantics.
  std::vector<MutationOp> ops;
  for (int i = 0; i < 8; ++i) {
    ops.push_back(MutationOp::Insert(10.0 * i, 20.0 * i));
  }
  ops.push_back(
      MutationOp::Insert(std::numeric_limits<double>::quiet_NaN(), 1));
  const EngineResult result =
      engine.ExecuteDml(DmlRequest::MutateOps("uniform", ops));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ((*engine.catalog().Get("uniform"))->index->num_points(),
            before + 8);
}

// --- Satellite: the single write path and its forwarders agree ---

TEST(ShardedEngineTest, DeprecatedForwardersLowerToExecuteDml) {
  for (const std::size_t shards : {1u, 4u}) {
    QueryEngine via_request(MakeCatalog(), WithShards(shards));
    QueryEngine via_forwarder(MakeCatalog(), WithShards(shards));

    const std::vector<MutationOp> ops = {MutationOp::Insert(77, 88),
                                         MutationOp::Erase(3)};
    const EngineResult a =
        via_request.ExecuteDml(DmlRequest::MutateOps("uniform", ops));
    const EngineResult b = via_forwarder.Mutate("uniform", ops);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.rows_affected, b.rows_affected);
    EXPECT_EQ(a.explain, b.explain);

    const PointSet points = MakeUniform(120, 91, 0);
    const EngineResult c =
        via_request.ExecuteDml(DmlRequest::Load("loaded", points));
    const EngineResult d = via_forwarder.LoadRelation("loaded", points);
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(c.rows_affected, d.rows_affected);
    ExpectSameResults(via_request, via_forwarder, MixedSpecs(1),
                      "forwarder shards=" + std::to_string(shards));
  }
}

// --- Satellite: EngineOptions normalization ---

TEST(ShardedEngineTest, CacheKnobFallsBackToPlannerOptions) {
  EngineOptions options;
  options.planner.cache_mb = 8;  // Historical knob only.
  const QueryEngine engine(MakeCatalog(), options);
  EXPECT_EQ(engine.options().cache_mb, 8u);
  EXPECT_EQ(engine.options().planner.cache_mb, 8u);
  EXPECT_NE(engine.neighborhood_cache(), nullptr);

  EngineOptions off;
  const QueryEngine uncached(MakeCatalog(), off);
  EXPECT_EQ(uncached.neighborhood_cache(), nullptr);
}

TEST(ShardedEngineTest, ShardKnobReconcilesWithIndexOptions) {
  EngineOptions options;
  options.index_options.shards = 6;  // Index-level knob only.
  const QueryEngine engine(MakeCatalog(), options);
  EXPECT_EQ(engine.shards(), 6u);
  EXPECT_EQ(engine.options().shards, 6u);
  EXPECT_EQ(engine.options().index_options.shards, 6u);

  const QueryEngine unsharded(MakeCatalog(), EngineOptions{});
  EXPECT_EQ(unsharded.shards(), 1u);
}

// --- Satellite: shards_pruned aggregates into the engine snapshot ---

TEST(ShardedEngineTest, StatsSnapshotAggregatesShardsPruned) {
  QueryEngine engine(MakeCatalog(), WithShards(8));
  // Corner-focused selects on clustered data: far shards get pruned.
  for (std::size_t i = 0; i < 12; ++i) {
    const EngineResult result = engine.Run(TwoSelectsSpec{
        .relation = "clustered",
        .s1 = {.focal = {.id = -1, .x = 5.0 * i, .y = 3.0 * i}, .k = 2},
        .s2 = {.focal = {.id = -1, .x = 5.0 * i + 9, .y = 3.0 * i + 7},
               .k = 3},
    });
    ASSERT_TRUE(result.ok());
  }
  const EngineStatsSnapshot snapshot = engine.StatsSnapshot();
  EXPECT_EQ(snapshot.queries, 12u);
  EXPECT_GT(snapshot.totals.shards_pruned, 0u)
      << "scatter-gather kNN on an 8-way sharded relation must skip "
         "shards past the k-th neighbor bound";

  // The unsharded engine never prunes shards.
  QueryEngine flat(MakeCatalog(), WithShards(1));
  ASSERT_TRUE(flat.Run(MixedSpecs(1).front()).ok());
  EXPECT_EQ(flat.StatsSnapshot().totals.shards_pruned, 0u);
}

// --- Concurrency: COW writers never stall or tear pinned readers ---
// (Run under TSan in CI; also a functional smoke in plain builds.)

TEST(ShardedEngineTest, ConcurrentDmlAndReadsAreSafe) {
  EngineOptions options = WithShards(4);
  options.cache_mb = 4;  // Exercise per-shard cache retirement too.
  QueryEngine engine(MakeCatalog(), options);

  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kRounds = 40;
  std::atomic<std::size_t> read_errors{0};
  std::atomic<std::size_t> write_errors{0};

  std::vector<std::thread> threads;
  // Writers hammer distinct relations: independent lanes commit
  // concurrently.
  const std::string write_targets[kWriters] = {"uniform", "city"};
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t i = 0; i < kRounds; ++i) {
        const double x = static_cast<double>((w * 131 + i * 17) % 1000);
        const double y = static_cast<double>((w * 57 + i * 23) % 800);
        const PointId id = 900000 + static_cast<PointId>(w * kRounds + i);
        const EngineResult ins = engine.ExecuteDml(DmlRequest::MutateOps(
            write_targets[w], {MutationOp::Insert(x, y, id)}));
        if (!ins.ok()) ++write_errors;
        const EngineResult del = engine.ExecuteDml(DmlRequest::MutateOps(
            write_targets[w], {MutationOp::Erase(id)}));
        if (!del.ok()) ++write_errors;
      }
    });
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      const std::vector<QuerySpec> specs = MixedSpecs(2);
      for (std::size_t i = 0; i < kRounds; ++i) {
        const EngineResult result =
            engine.Run(specs[(r * kRounds + i) % specs.size()]);
        if (!result.ok()) ++read_errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(write_errors.load(), 0u);
  // Every transient point was erased again: the catalog converged to
  // its initial cardinalities.
  EXPECT_EQ((*engine.catalog().Get("uniform"))->index->num_points(), 800u);
  EXPECT_EQ((*engine.catalog().Get("city"))->index->num_points(), 800u);
}

}  // namespace
}  // namespace knnq
