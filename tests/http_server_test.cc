// The HTTP observability plane: the dependency-free HTTP/1.1 server
// (parsing edge cases, keep-alive, timeouts, connection caps), the
// ring-buffer metrics history (wrap-around, monotone timestamps,
// snapshot consistency), and the Server integration - /metrics
// byte-identical to the in-process renderer, /readyz flipping through
// recovery and drain, and concurrent scrapes racing live traffic (the
// TSan target).

#include "src/obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/query_engine.h"
#include "src/obs/history.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using obs::HttpResponse;
using obs::HttpServer;
using obs::HttpServerOptions;
using obs::MetricsHistory;
using server::HttpGet;
using server::Server;
using server::ServerOptions;

// ----------------------------------------------------- socket helpers

/// Raw HTTP client for the parsing and keep-alive tests: sends bytes
/// verbatim, reads responses either to EOF (Connection: close) or with
/// Content-Length framing (keep-alive).
class RawHttpClient {
 public:
  explicit RawHttpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~RawHttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Everything until the peer closes (single-response tests).
  std::string ReadAll(int timeout_ms = 5000) {
    while (Fill(timeout_ms)) {
    }
    return std::exchange(buffer_, std::string());
  }

  /// One head + Content-Length-framed body without consuming past it,
  /// so a keep-alive connection can read the next response after.
  bool ReadResponse(std::string* head, std::string* body,
                    int timeout_ms = 5000) {
    std::size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill(timeout_ms)) return false;
    }
    head->assign(buffer_, 0, head_end);
    const std::size_t length = ContentLengthOf(*head);
    while (buffer_.size() < head_end + 4 + length) {
      if (!Fill(timeout_ms)) return false;
    }
    body->assign(buffer_, head_end + 4, length);
    buffer_.erase(0, head_end + 4 + length);
    return true;
  }

  /// True when the peer cleanly closed with nothing buffered.
  bool ReadEof(int timeout_ms = 5000) {
    if (!buffer_.empty()) return false;
    return !Fill(timeout_ms) && eof_;
  }

 private:
  static std::size_t ContentLengthOf(const std::string& head) {
    // The server emits canonical casing; no need to fold case here.
    const std::size_t at = head.find("Content-Length:");
    if (at == std::string::npos) return 0;
    return static_cast<std::size_t>(
        std::atoll(head.c_str() + at + std::strlen("Content-Length:")));
  }

  /// One recv into the buffer. False on EOF (sets eof_) or timeout.
  bool Fill(int timeout_ms) {
    pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      eof_ = n == 0;
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  std::string buffer_;
};

int StatusOf(const std::string& response) {
  if (response.rfind("HTTP/1.", 0) != 0) return 0;
  return std::atoi(response.c_str() + std::strlen("HTTP/1.1 "));
}

// ------------------------------------------------ history ring buffer

TEST(MetricsHistoryTest, RingWrapsKeepingNewestSamples) {
  MetricsHistory history({.interval_ms = 1000, .capacity = 4});
  double tick = 0.0;
  history.AddSource("ticks", [&tick] { return tick; });
  for (int i = 0; i < 7; ++i) {
    tick = static_cast<double>(i);
    history.SampleOnce();
  }
  const obs::HistorySnapshot snap = history.Snapshot();
  ASSERT_EQ(snap.t_ms.size(), 4u);
  ASSERT_EQ(snap.values.size(), 1u);
  // Oldest first, and the first three samples fell off the front.
  EXPECT_EQ(snap.values[0], (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
}

TEST(MetricsHistoryTest, TimestampsMonotoneAcrossWrap) {
  MetricsHistory history({.interval_ms = 1000, .capacity = 3});
  history.AddSource("zero", [] { return 0.0; });
  for (int i = 0; i < 8; ++i) {
    history.SampleOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const obs::HistorySnapshot snap = history.Snapshot();
  ASSERT_EQ(snap.t_ms.size(), 3u);
  for (std::size_t i = 1; i < snap.t_ms.size(); ++i) {
    EXPECT_LE(snap.t_ms[i - 1], snap.t_ms[i]);
  }
  // Timestamps are real wall-clock epochs (not steady offsets).
  EXPECT_GT(snap.t_ms.front(), 1'000'000'000'000ull);
}

TEST(MetricsHistoryTest, SnapshotSeriesShareLengthAndTimestamps) {
  MetricsHistory history({.interval_ms = 1000, .capacity = 8});
  history.AddSource("a", [] { return 1.0; });
  history.AddSource("b", [] { return 2.0; });
  history.AddSource("c", [] { return 3.0; });
  for (int i = 0; i < 5; ++i) history.SampleOnce();
  const obs::HistorySnapshot snap = history.Snapshot();
  ASSERT_EQ(snap.names.size(), 3u);
  ASSERT_EQ(snap.values.size(), 3u);
  for (const std::vector<double>& series : snap.values) {
    EXPECT_EQ(series.size(), snap.t_ms.size());
  }
  EXPECT_EQ(snap.t_ms.size(), 5u);
}

TEST(MetricsHistoryTest, StartTakesImmediateSampleAndRendersJson) {
  MetricsHistory history({.interval_ms = 60'000, .capacity = 16});
  history.AddSource("answer", [] { return 42.0; });
  history.Start();
  // The t=0 sample lands before Start returns; no interval wait needed.
  EXPECT_EQ(history.Snapshot().t_ms.size(), 1u);
  const std::string json = history.RenderJson();
  EXPECT_NE(json.find("\"interval_ms\": 60000"), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"answer\": [42]"), std::string::npos) << json;
  history.Stop();
}

TEST(MetricsHistoryTest, ConcurrentSamplersAndSnapshots) {
  MetricsHistory history({.interval_ms = 1, .capacity = 4});
  std::atomic<double> value{0.0};
  history.AddSource("v", [&value] { return value.load(); });
  history.Start();
  std::thread writer([&value] {
    for (int i = 0; i < 200; ++i) value.store(i);
  });
  for (int i = 0; i < 50; ++i) {
    const obs::HistorySnapshot snap = history.Snapshot();
    ASSERT_EQ(snap.values.size(), 1u);
    ASSERT_EQ(snap.values[0].size(), snap.t_ms.size());
  }
  writer.join();
  history.Stop();
}

// ------------------------------------------------ http server basics

HttpServerOptions SmallHttp() {
  HttpServerOptions options;
  options.port = 0;
  return options;
}

TEST(HttpServerTest, DispatchesHandlerAndAnswers404Elsewhere) {
  HttpServer http(SmallHttp());
  http.AddHandler("/ping", [] {
    return HttpResponse{.status = 200,
                        .content_type = "text/plain; charset=utf-8",
                        .body = "pong"};
  });
  ASSERT_TRUE(http.Start().ok());
  auto ok = HttpGet("127.0.0.1", http.port(), "/ping");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, "pong");

  // Query strings are stripped before dispatch.
  auto with_query = HttpGet("127.0.0.1", http.port(), "/ping?x=1");
  ASSERT_TRUE(with_query.ok());
  EXPECT_EQ(with_query->status, 200);

  auto missing = HttpGet("127.0.0.1", http.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(http.requests_served(), 3u);
  http.Stop();
}

TEST(HttpServerTest, MalformedRequestsAreRefused) {
  HttpServer http(SmallHttp());
  http.AddHandler("/ping", [] { return HttpResponse{.body = "pong"}; });
  ASSERT_TRUE(http.Start().ok());

  {  // Not a request line at all.
    RawHttpClient client(http.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("BOGUS\r\n\r\n"));
    EXPECT_EQ(StatusOf(client.ReadAll()), 400);
  }
  {  // Non-GET methods are rejected, not dispatched (keep-alive
     // survives a 405, so ask for close to frame the read).
    RawHttpClient client(http.port());
    ASSERT_TRUE(
        client.Send("POST /ping HTTP/1.1\r\nConnection: close\r\n\r\n"));
    EXPECT_EQ(StatusOf(client.ReadAll()), 405);
  }
  {  // Unsupported protocol version.
    RawHttpClient client(http.port());
    ASSERT_TRUE(client.Send("GET /ping HTTP/2.0\r\n\r\n"));
    EXPECT_EQ(StatusOf(client.ReadAll()), 505);
  }
  {  // A request body is refused (this is a read-only plane).
    RawHttpClient client(http.port());
    ASSERT_TRUE(client.Send(
        "GET /ping HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"));
    EXPECT_EQ(StatusOf(client.ReadAll()), 400);
  }
  http.Stop();
}

TEST(HttpServerTest, OversizedHeadAnswered431) {
  HttpServerOptions options = SmallHttp();
  options.max_request_bytes = 256;
  HttpServer http(options);
  http.AddHandler("/ping", [] { return HttpResponse{.body = "pong"}; });
  ASSERT_TRUE(http.Start().ok());
  RawHttpClient client(http.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nX-Pad: " +
                          std::string(512, 'a') + "\r\n\r\n"));
  EXPECT_EQ(StatusOf(client.ReadAll()), 431);
  http.Stop();
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer http(SmallHttp());
  http.AddHandler("/ping", [] { return HttpResponse{.body = "pong"}; });
  ASSERT_TRUE(http.Start().ok());
  RawHttpClient client(http.port());
  ASSERT_TRUE(client.connected());
  std::string head;
  std::string body;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
    ASSERT_TRUE(client.ReadResponse(&head, &body)) << i;
    EXPECT_EQ(StatusOf(head), 200);
    EXPECT_EQ(body, "pong");
    EXPECT_NE(head.find("Connection: keep-alive"), std::string::npos);
  }
  EXPECT_EQ(http.requests_served(), 5u);
  // All five rode one connection: the server saw no more than one.
  EXPECT_LE(http.active_connections(), 1u);

  // HTTP/1.0 defaults to close; the server honours it.
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.0\r\n\r\n"));
  ASSERT_TRUE(client.ReadResponse(&head, &body));
  EXPECT_NE(head.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.ReadEof());
  http.Stop();
}

TEST(HttpServerTest, HeadAnswersHeadersWithoutBody) {
  HttpServer http(SmallHttp());
  http.AddHandler("/ping", [] { return HttpResponse{.body = "pong"}; });
  ASSERT_TRUE(http.Start().ok());
  RawHttpClient client(http.port());
  ASSERT_TRUE(client.Send(
      "HEAD /ping HTTP/1.1\r\nConnection: close\r\n\r\n"));
  const std::string raw = client.ReadAll();
  EXPECT_EQ(StatusOf(raw), 200);
  // Content-Length describes the suppressed body; nothing follows the
  // header terminator.
  EXPECT_NE(raw.find("Content-Length: 4"), std::string::npos);
  EXPECT_EQ(raw.find("pong"), std::string::npos);
  http.Stop();
}

TEST(HttpServerTest, SlowReaderCutAtDeadlineWithoutResponse) {
  HttpServerOptions options = SmallHttp();
  options.read_timeout_ms = 150;
  HttpServer http(options);
  http.AddHandler("/ping", [] { return HttpResponse{.body = "pong"}; });
  ASSERT_TRUE(http.Start().ok());
  RawHttpClient client(http.port());
  ASSERT_TRUE(client.connected());
  // A trickled, never-completed head: the server must cut the
  // connection (EOF, no response bytes) once the deadline expires.
  ASSERT_TRUE(client.Send("GET /pi"));
  EXPECT_TRUE(client.ReadEof(/*timeout_ms=*/5000));
  http.Stop();
}

TEST(HttpServerTest, ConnectionsBeyondCapRefusedWith503) {
  HttpServerOptions options = SmallHttp();
  options.max_connections = 1;
  HttpServer http(options);
  http.AddHandler("/ping", [] { return HttpResponse{.body = "pong"}; });
  ASSERT_TRUE(http.Start().ok());
  // Camp the only slot with a completed keep-alive exchange, so the
  // connection is past accept and provably registered.
  RawHttpClient camper(http.port());
  ASSERT_TRUE(camper.Send("GET /ping HTTP/1.1\r\n\r\n"));
  std::string head;
  std::string body;
  ASSERT_TRUE(camper.ReadResponse(&head, &body));
  ASSERT_EQ(StatusOf(head), 200);

  RawHttpClient refused(http.port());
  ASSERT_TRUE(refused.connected());
  const std::string raw = refused.ReadAll();
  EXPECT_EQ(StatusOf(raw), 503) << raw;
  http.Stop();
}

// ------------------------------------------------- server integration

Catalog MakeHttpCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation("e", testing::MakeUniform(1500, 11)).ok());
  return catalog;
}

EngineOptions SmallEngine() {
  EngineOptions options;
  options.num_threads = 2;
  options.pool_queue_limit = 128;
  return options;
}

ServerOptions HttpServerEnabled() {
  ServerOptions options;
  options.http_enabled = true;
  options.history_interval_ms = 50;
  options.history_capacity = 64;
  return options;
}

struct HttpFixture {
  HttpFixture() : engine(MakeHttpCatalog(), SmallEngine()),
                  server(&engine, HttpServerEnabled()) {
    const Status started = server.Start();  // Start() implies StartHttp.
    EXPECT_TRUE(started.ok()) << started.ToString();
    EXPECT_NE(server.http_port(), 0);
  }

  QueryEngine engine;
  Server server;
};

constexpr const char* kQuery =
    "SELECT KNN(e, 3, AT(100, 100)) INTERSECT KNN(e, 4, AT(120, 90));";

/// One KNNQL statement over a fresh connection; returns the response
/// line ("" on transport failure).
std::string SendStatement(std::uint16_t port, const std::string& text) {
  const auto response =
      server::SendAdminVerb("127.0.0.1", port, text.substr(0, text.size() - 1));
  return response.ok() ? *response : std::string();
}

TEST(HttpPlaneTest, MetricsBodyByteIdenticalToInProcessRender) {
  HttpFixture fixture;
  // A keep-alive connection holds the scrape thread alive across the
  // comparison, so thread-count and connection gauges cannot drift
  // between the two renders. Retry absorbs the remaining wobble (the
  // floored uptime second ticking over, an RSS step).
  RawHttpClient client(fixture.server.http_port());
  ASSERT_TRUE(client.connected());
  bool identical = false;
  std::string body;
  std::string direct;
  for (int attempt = 0; attempt < 20 && !identical; ++attempt) {
    std::string head;
    ASSERT_TRUE(client.Send("GET /metrics HTTP/1.1\r\n\r\n"));
    ASSERT_TRUE(client.ReadResponse(&head, &body));
    ASSERT_EQ(StatusOf(head), 200);
    EXPECT_NE(head.find("text/plain; version=0.0.4"), std::string::npos);
    direct = fixture.server.RenderPrometheus();
    identical = body == direct;
  }
  EXPECT_TRUE(identical) << "GET /metrics body:\n"
                         << body << "\nRenderPrometheus():\n"
                         << direct;
}

TEST(HttpPlaneTest, SelfInstrumentationGaugesExposedOnBothPlanes) {
  HttpFixture fixture;
  const auto scrape =
      HttpGet("127.0.0.1", fixture.server.http_port(), "/metrics");
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  ASSERT_EQ(scrape->status, 200);
  const std::string verb = SendStatement(fixture.server.port(), "METRICS;");
  ASSERT_FALSE(verb.empty());
  for (const char* name :
       {"knnq_build_info", "knnq_process_uptime_seconds",
        "knnq_process_resident_memory_bytes", "knnq_process_open_fds",
        "knnq_process_threads", "knnq_engine_pool_queue_depth",
        "knnq_server_active_connections", "knnq_http_requests_total"}) {
    EXPECT_NE(scrape->body.find(name), std::string::npos)
        << name << " missing from GET /metrics";
    EXPECT_NE(verb.find(name), std::string::npos)
        << name << " missing from the METRICS verb payload";
  }
}

TEST(HttpPlaneTest, HealthzReadyzStatuszAnswer) {
  HttpFixture fixture;
  const std::uint16_t port = fixture.server.http_port();

  auto healthz = HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);
  EXPECT_EQ(healthz->body, "ok\n");

  auto readyz = HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status, 200);

  auto statusz = HttpGet("127.0.0.1", port, "/statusz");
  ASSERT_TRUE(statusz.ok());
  EXPECT_EQ(statusz->status, 200);
  for (const char* field :
       {"\"status\": \"ok\"", "\"build\"", "\"version\"",
        "\"uptime_seconds\"", "\"ready\": true", "\"server\"",
        "\"engine\"", "\"pool\"", "\"queue_depth\"", "\"cache\"",
        "\"wal\": null", "\"http\"", "\"history\"", "\"interval_ms\""}) {
    EXPECT_NE(statusz->body.find(field), std::string::npos)
        << field << " missing from /statusz: " << statusz->body;
  }
}

TEST(HttpPlaneTest, StatuszCarriesNonEmptySampledSeries) {
  HttpFixture fixture;
  // Two sampler intervals (50 ms each) on top of the t=0 sample.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const auto statusz =
      HttpGet("127.0.0.1", fixture.server.http_port(), "/statusz");
  ASSERT_TRUE(statusz.ok());
  ASSERT_EQ(statusz->status, 200);
  // At least two series present and non-empty: `"name": [digit`.
  std::size_t non_empty = 0;
  for (const char* name :
       {"knnq_server_requests_total", "knnq_engine_queries_total",
        "knnq_server_in_flight", "knnq_process_resident_memory_bytes"}) {
    const std::size_t at = statusz->body.find("\"" + std::string(name) +
                                              "\": [");
    if (at == std::string::npos) continue;
    const char next =
        statusz->body[at + std::strlen(name) + std::strlen("\"\": [")];
    if (next != ']') ++non_empty;
  }
  EXPECT_GE(non_empty, 2u) << statusz->body;
}

TEST(HttpPlaneTest, HistoryVerbReturnsSampledSeries) {
  HttpFixture fixture;
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const auto response =
      server::SendAdminVerb("127.0.0.1", fixture.server.port(), "HISTORY");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response->find("\"history\""), std::string::npos);
  EXPECT_NE(response->find("\"series\""), std::string::npos);
  EXPECT_NE(response->find("\"knnq_server_requests_total\": ["),
            std::string::npos)
      << *response;
}

TEST(HttpPlaneTest, ReadyzFlipsThroughRecoveryStartAndDrain) {
  QueryEngine engine(MakeHttpCatalog(), SmallEngine());
  Server server(&engine, HttpServerEnabled());

  // The recovery bracket: plane up, KNNQL accept loop not yet.
  server.BeginRecovery();
  ASSERT_TRUE(server.StartHttp().ok());
  const std::uint16_t port = server.http_port();
  ASSERT_NE(port, 0);

  auto readyz = HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status, 503);
  EXPECT_NE(readyz->body.find("recovery in progress"), std::string::npos);

  // Recovery done but not yet serving: still not ready.
  server.EndRecovery();
  readyz = HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status, 503);
  EXPECT_NE(readyz->body.find("accept loop not started"),
            std::string::npos);

  // /healthz stays 200 throughout - liveness, not readiness.
  auto healthz = HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);

  ASSERT_TRUE(server.Start().ok());
  readyz = HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status, 200);
  EXPECT_EQ(readyz->body, "ok\n");

  // A requested stop flips readiness before the drain completes.
  server.RequestStop();
  readyz = HttpGet("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz->status, 503);
  EXPECT_NE(readyz->body.find("draining"), std::string::npos);
  server.Stop();
}

TEST(HttpPlaneTest, ScrapesRaceLiveTrafficCleanly) {
  HttpFixture fixture;
  const std::uint16_t knnql_port = fixture.server.port();
  const std::uint16_t http_port = fixture.server.http_port();
  std::atomic<int> bad_queries{0};
  std::atomic<int> bad_scrapes{0};

  std::vector<std::thread> threads;
  // Live traffic: queries and DML through the KNNQL plane.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const std::string statement =
            (i % 5 == 4) ? "INSERT INTO e VALUES (" +
                               std::to_string(900.0 + t) + ", " +
                               std::to_string(i) + ");"
                         : std::string(kQuery);
        const std::string response = SendStatement(knnql_port, statement);
        if (response.find("\"status\": \"ok\"") == std::string::npos) {
          ++bad_queries;
        }
      }
    });
  }
  // Concurrent scrapers over every endpoint.
  for (const char* path : {"/metrics", "/statusz", "/readyz"}) {
    threads.emplace_back([&, path] {
      for (int i = 0; i < 25; ++i) {
        const auto scrape = HttpGet("127.0.0.1", http_port, path);
        if (!scrape.ok() || scrape->status != 200) ++bad_scrapes;
      }
    });
  }
  // And the sampler is exercised implicitly (50 ms interval).
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad_queries.load(), 0);
  EXPECT_EQ(bad_scrapes.load(), 0);
}

}  // namespace
}  // namespace knnq
