// KNNQL front-end tests: canonical parsing of all six query shapes,
// positioned diagnostics (bad token, unknown relation, k = 0,
// malformed numbers), the Parse(Unparse(spec)) == spec round-trip over
// randomized specs, and text-vs-programmatic equivalence through the
// QueryEngine (the CLI `query` path and the C++ API must return
// identical results).

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/engine/query_engine.h"
#include "src/lang/knnql.h"
#include "src/lang/parser.h"
#include "src/lang/unparser.h"
#include "src/planner/optimizer.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeUniform;

Catalog MakeLangCatalog() {
  Catalog catalog;
  IndexOptions options;
  options.block_capacity = 16;
  EXPECT_TRUE(
      catalog.AddRelation("uniform", MakeUniform(500, 11, 0), options).ok());
  EXPECT_TRUE(
      catalog.AddRelation("city", MakeCity(500, 12, 100000), options).ok());
  EXPECT_TRUE(catalog
                  .AddRelation("clustered", MakeClustered(3, 80, 13, 200000),
                               options)
                  .ok());
  return catalog;
}

/// Parses one statement without a catalog (syntax + shape only).
QuerySpec MustParse(const std::string& text) {
  auto spec = knnql::ParseQuerySpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString() << "\n  in: " << text;
  return spec.ok() ? *spec : QuerySpec{};
}

// --------------------------------------------------------- parsing

TEST(KnnqlParseTest, TwoSelects) {
  const QuerySpec spec = MustParse(
      "SELECT KNN(hotels, 5, AT(3, 4)) INTERSECT KNN(hotels, 8, "
      "AT(1.5, -2));");
  const TwoSelectsSpec expected{
      .relation = "hotels",
      .s1 = {.focal = {.id = -1, .x = 3, .y = 4}, .k = 5},
      .s2 = {.focal = {.id = -1, .x = 1.5, .y = -2}, .k = 8},
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, SelectInnerJoin) {
  const QuerySpec spec = MustParse(
      "JOIN KNN(mechanics, hotels, 3) WHERE INNER IN KNN(hotels, 10, "
      "AT(7, 9));");
  const SelectInnerJoinSpec expected{
      .outer = "mechanics",
      .inner = "hotels",
      .join_k = 3,
      .select = {.focal = {.id = -1, .x = 7, .y = 9}, .k = 10},
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, SelectOuterJoin) {
  const QuerySpec spec = MustParse(
      "JOIN KNN(mechanics, hotels, 3) WHERE OUTER IN KNN(mechanics, 4, "
      "AT(7, 9));");
  const SelectOuterJoinSpec expected{
      .outer = "mechanics",
      .inner = "hotels",
      .join_k = 3,
      .select = {.focal = {.id = -1, .x = 7, .y = 9}, .k = 4},
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, RangeInnerJoin) {
  const QuerySpec spec = MustParse(
      "JOIN KNN(trucks, depots, 2) WHERE INNER IN RANGE(0, 0, 100, 80);");
  const RangeInnerJoinSpec expected{
      .outer = "trucks",
      .inner = "depots",
      .join_k = 2,
      .range = BoundingBox(0, 0, 100, 80),
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, ChainedJoins) {
  const QuerySpec spec = MustParse(
      "JOIN KNN(depots, warehouses, 3) THEN KNN(warehouses, customers, "
      "5);");
  const ChainedJoinsSpec expected{
      .a = "depots",
      .b = "warehouses",
      .c = "customers",
      .k_ab = 3,
      .k_bc = 5,
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, UnchainedJoins) {
  const QuerySpec spec = MustParse(
      "JOIN KNN(depots, warehouses, 3) INTERSECT KNN(sites, warehouses, "
      "5);");
  const UnchainedJoinsSpec expected{
      .a = "depots",
      .b = "warehouses",
      .c = "sites",
      .k_ab = 3,
      .k_cb = 5,
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, KeywordsAreCaseInsensitiveAndCommentsSkip) {
  const QuerySpec spec = MustParse(
      "-- leading comment\n"
      "select knn(hotels, 5, at(3, 4))  -- trailing comment\n"
      "  Intersect KNN(hotels, 8, AT(1, 2))");  // No ';' at end of input.
  const TwoSelectsSpec expected{
      .relation = "hotels",
      .s1 = {.focal = {.id = -1, .x = 3, .y = 4}, .k = 5},
      .s2 = {.focal = {.id = -1, .x = 1, .y = 2}, .k = 8},
  };
  EXPECT_EQ(spec, QuerySpec(expected));
}

TEST(KnnqlParseTest, ExplainPrefixSetsTheStatementFlag) {
  auto script = knnql::ParseBoundScript(
      "EXPLAIN SELECT KNN(h, 1, AT(0, 0)) INTERSECT KNN(h, 2, AT(1, 1));\n"
      "SELECT KNN(h, 1, AT(0, 0)) INTERSECT KNN(h, 2, AT(1, 1));");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 2u);
  EXPECT_TRUE((*script)[0].explain);
  EXPECT_FALSE((*script)[1].explain);
  EXPECT_EQ((*script)[0].op, (*script)[1].op);
}

TEST(KnnqlParseTest, ExplainAnalyzeSetsBothFlags) {
  auto script = knnql::ParseBoundScript(
      "EXPLAIN ANALYZE SELECT KNN(h, 1, AT(0, 0)) "
      "INTERSECT KNN(h, 2, AT(1, 1));\n"
      "EXPLAIN JOIN KNN(a, b, 3) WHERE INNER IN KNN(b, 5, AT(9, 9));");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 2u);
  EXPECT_TRUE((*script)[0].explain);  // ANALYZE implies EXPLAIN.
  EXPECT_TRUE((*script)[0].analyze);
  EXPECT_TRUE((*script)[1].explain);
  EXPECT_FALSE((*script)[1].analyze);

  // ANALYZE needs a plan just like EXPLAIN: DML is rejected.
  auto dml = knnql::ParseBoundScript(
      "EXPLAIN ANALYZE INSERT INTO city VALUES (1, 2);");
  ASSERT_FALSE(dml.ok());
  EXPECT_NE(dml.status().ToString().find("EXPLAIN applies to queries"),
            std::string::npos);
}

TEST(KnnqlParseTest, ScientificNotationAndSignedNumbers) {
  const QuerySpec spec = MustParse(
      "SELECT KNN(h, 1, AT(1.5e3, -2.25e-2)) INTERSECT KNN(h, 2, "
      "AT(+4, .5));");
  const auto& two = std::get<TwoSelectsSpec>(spec);
  EXPECT_DOUBLE_EQ(two.s1.focal.x, 1500.0);
  EXPECT_DOUBLE_EQ(two.s1.focal.y, -0.0225);
  EXPECT_DOUBLE_EQ(two.s2.focal.x, 4.0);
  EXPECT_DOUBLE_EQ(two.s2.focal.y, 0.5);
}

// ------------------------------------------------------------- DML

/// Parses one DML statement without a catalog (syntax + shape only).
knnql::DmlSpec MustParseDml(const std::string& text) {
  auto statement = knnql::ParseStatement(text);
  EXPECT_TRUE(statement.ok())
      << statement.status().ToString() << "\n  in: " << text;
  if (!statement.ok()) return {};
  auto spec = knnql::BindDml(statement->body, nullptr);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString() << "\n  in: " << text;
  return spec.ok() ? *spec : knnql::DmlSpec{};
}

TEST(KnnqlDmlParseTest, InsertDeleteLoad) {
  const knnql::DmlSpec insert =
      MustParseDml("INSERT INTO city VALUES (1.5, -2), (3, 4);");
  EXPECT_EQ(insert.kind, knnql::DmlSpec::Kind::kInsert);
  EXPECT_EQ(insert.relation, "city");
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0], (Point{-1, 1.5, -2}));
  EXPECT_EQ(insert.rows[1], (Point{-1, 3, 4}));

  const knnql::DmlSpec del =
      MustParseDml("delete from city where id = -42;");
  EXPECT_EQ(del.kind, knnql::DmlSpec::Kind::kDelete);
  EXPECT_EQ(del.relation, "city");
  EXPECT_EQ(del.id, -42);

  const knnql::DmlSpec load =
      MustParseDml("LOAD city FROM 'data/points v2.csv';");
  EXPECT_EQ(load.kind, knnql::DmlSpec::Kind::kLoad);
  EXPECT_EQ(load.relation, "city");
  EXPECT_EQ(load.path, "data/points v2.csv");
}

TEST(KnnqlDmlParseTest, DmlBindsAgainstCatalog) {
  const Catalog catalog = MakeLangCatalog();
  auto statement =
      knnql::ParseStatement("INSERT INTO ghost VALUES (1, 2);");
  ASSERT_TRUE(statement.ok());
  auto bad = knnql::BindDml(statement->body, &catalog);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message().rfind("1:13: unknown relation", 0), 0u)
      << bad.status().message();

  // LOAD may create its relation: no existence check.
  auto load = knnql::ParseStatement("LOAD ghost FROM 'x.csv';");
  ASSERT_TRUE(load.ok());
  EXPECT_TRUE(knnql::BindDml(load->body, &catalog).ok());
}

TEST(KnnqlDmlUnparseTest, CanonicalTextRoundTrips) {
  knnql::DmlSpec insert;
  insert.kind = knnql::DmlSpec::Kind::kInsert;
  insert.relation = "city";
  insert.rows = {Point{-1, 1.5, -2}, Point{-1, 3, 4}};
  EXPECT_EQ(knnql::Unparse(insert),
            "INSERT INTO city VALUES (1.5, -2), (3, 4);");

  knnql::DmlSpec del;
  del.kind = knnql::DmlSpec::Kind::kDelete;
  del.relation = "city";
  del.id = 7;
  EXPECT_EQ(knnql::Unparse(del), "DELETE FROM city WHERE ID = 7;");

  knnql::DmlSpec load;
  load.kind = knnql::DmlSpec::Kind::kLoad;
  load.relation = "city";
  load.path = "p.bin";
  EXPECT_EQ(knnql::Unparse(load), "LOAD city FROM 'p.bin';");
}

// ----------------------------------------------------- diagnostics

/// Expects `text` to fail with a diagnostic starting "line:col:" and
/// containing `fragment`.
void ExpectErrorAt(const std::string& text, const std::string& position,
                   const std::string& fragment) {
  auto spec = knnql::ParseQuerySpec(text);
  ASSERT_FALSE(spec.ok()) << "unexpectedly parsed: " << text;
  const std::string message = spec.status().message();
  EXPECT_EQ(message.rfind(position + ": ", 0), 0u)
      << "want position " << position << " in: " << message;
  EXPECT_NE(message.find(fragment), std::string::npos)
      << "want '" << fragment << "' in: " << message;
}

TEST(KnnqlDiagnosticsTest, BadToken) {
  ExpectErrorAt("SELECT KNN(h, 5, AT(1, 2)) ? KNN(h, 5, AT(1, 2));",
                "1:28", "unexpected character '?'");
  ExpectErrorAt("SELEC KNN(h, 5, AT(1, 2));", "1:1",
                "expected SELECT, JOIN, INSERT, DELETE or LOAD, got "
                "'SELEC'");
  ExpectErrorAt("SELECT KNN[h, 5, AT(1, 2));", "1:11",
                "unexpected character '['");
  ExpectErrorAt("SELECT KNN(h 5, AT(1, 2));", "1:14", "expected ','");
}

TEST(KnnqlDiagnosticsTest, MalformedNumbers) {
  ExpectErrorAt("SELECT KNN(h, 5, AT(3..0, 4)) INTERSECT KNN(h, 5, "
                "AT(1, 2));",
                "1:21", "malformed number '3..0'");
  ExpectErrorAt("SELECT KNN(h, 5, AT(12abc, 4)) INTERSECT KNN(h, 5, "
                "AT(1, 2));",
                "1:21", "malformed number '12abc'");
  ExpectErrorAt("SELECT KNN(h, 5, AT(4e, 4)) INTERSECT KNN(h, 5, "
                "AT(1, 2));",
                "1:21", "malformed number '4e'");
}

TEST(KnnqlDiagnosticsTest, KMustBePositiveInteger) {
  ExpectErrorAt("SELECT KNN(h, 0, AT(1, 2)) INTERSECT KNN(h, 5, AT(1, 2));",
                "1:15", "k must be > 0");
  ExpectErrorAt("SELECT KNN(h, 2.5, AT(1, 2)) INTERSECT KNN(h, 5, "
                "AT(1, 2));",
                "1:15", "k must be a positive integer");
  // The second k, on the second line, reports line 2.
  ExpectErrorAt("SELECT KNN(h, 5, AT(1, 2)) INTERSECT\n"
                "  KNN(h, 0, AT(1, 2));",
                "2:10", "k must be > 0");
}

TEST(KnnqlDiagnosticsTest, UnknownRelationReportsNamePosition) {
  const Catalog catalog = MakeLangCatalog();
  auto spec = knnql::ParseQuerySpec(
      "SELECT KNN(nope, 5, AT(1, 2)) INTERSECT KNN(nope, 5, AT(1, 2));",
      &catalog);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().message().rfind("1:12: unknown relation 'nope'",
                                          0),
            0u)
      << spec.status().message();

  // Multi-line scripts keep counting lines.
  auto script = knnql::ParseBoundScript(
      "SELECT KNN(city, 5, AT(1, 2)) INTERSECT KNN(city, 5, AT(1, 2));\n"
      "JOIN KNN(city, missing, 3) THEN KNN(missing, uniform, 2);",
      &catalog);
  ASSERT_FALSE(script.ok());
  EXPECT_EQ(script.status().message().rfind(
                "2:16: unknown relation 'missing'", 0),
            0u)
      << script.status().message();
}

TEST(KnnqlDiagnosticsTest, ShapeConstraintViolations) {
  ExpectErrorAt(
      "SELECT KNN(a, 5, AT(1, 2)) INTERSECT KNN(b, 5, AT(1, 2));", "1:42",
      "both selects");
  ExpectErrorAt(
      "JOIN KNN(a, b, 3) WHERE INNER IN KNN(c, 5, AT(1, 2));", "1:38",
      "must name the join's inner relation 'b'");
  ExpectErrorAt(
      "JOIN KNN(a, b, 3) WHERE OUTER IN KNN(b, 5, AT(1, 2));", "1:38",
      "must name the join's outer relation 'a'");
  ExpectErrorAt("JOIN KNN(a, b, 3) THEN KNN(c, d, 2);", "1:28",
                "continues from the first join's inner relation 'b'");
  ExpectErrorAt("JOIN KNN(a, b, 3) INTERSECT KNN(c, d, 2);", "1:36",
                "intersect on a shared inner relation");
  ExpectErrorAt("JOIN KNN(a, b, 3) WHERE OUTER IN RANGE(0, 0, 1, 1);",
                "1:34", "RANGE selection applies to the INNER");
  ExpectErrorAt("JOIN KNN(a, b, 3) WHERE INNER IN RANGE(5, 0, 1, 1);",
                "1:34", "min,max");
  ExpectErrorAt("JOIN KNN(a, b, 3);", "1:18", "second predicate");
}

TEST(KnnqlDiagnosticsTest, MalformedDmlReportsPositions) {
  // INSERT
  ExpectErrorAt("INSERT city VALUES (1, 2);", "1:8", "expected INTO");
  ExpectErrorAt("INSERT INTO city (1, 2);", "1:18", "expected VALUES");
  ExpectErrorAt("INSERT INTO city VALUES (1 2);", "1:28", "expected ','");
  ExpectErrorAt("INSERT INTO city VALUES (1, 2x);", "1:29",
                "malformed number '2x'");
  ExpectErrorAt("INSERT INTO SELECT VALUES (1, 2);", "1:13",
                "expected a relation name");
  // DELETE
  ExpectErrorAt("DELETE FROM city WHERE ID = 2.5;", "1:29",
                "a point id must be an integer");
  ExpectErrorAt("DELETE FROM city WHERE OUTER = 1;", "1:24",
                "expected ID");
  ExpectErrorAt("DELETE city WHERE ID = 1;", "1:8", "expected FROM");
  // LOAD
  ExpectErrorAt("LOAD city FROM points;", "1:16",
                "expected a 'quoted' string");
  ExpectErrorAt("LOAD city FROM 'points.csv;", "1:16",
                "unterminated string literal");
  ExpectErrorAt("LOAD city FROM '';", "1:16", "non-empty file path");
  // EXPLAIN has no plan to show for DML.
  ExpectErrorAt("EXPLAIN INSERT INTO city VALUES (1, 2);", "1:9",
                "EXPLAIN applies to queries");
  ExpectErrorAt("EXPLAIN DELETE FROM city WHERE ID = 1;", "1:9",
                "EXPLAIN applies to queries");
}

TEST(KnnqlDiagnosticsTest, IncompleteInputIsDistinguishable) {
  for (const std::string text :
       {"SELECT KNN(h, 5,", "SELECT KNN(h, 5, AT(1, 2)) INTERSECT",
        "JOIN KNN(a, b, 3) WHERE", "EXPLAIN", "INSERT INTO h VALUES",
        "DELETE FROM h WHERE ID =", "LOAD h FROM"}) {
    auto spec = knnql::ParseQuerySpec(text);
    ASSERT_FALSE(spec.ok()) << text;
    EXPECT_TRUE(knnql::IsIncompleteInput(spec.status())) << text;
  }
  // Real errors are NOT incomplete: more input would not fix them.
  auto spec = knnql::ParseQuerySpec("SELECT KNN(h, 0, AT(1,");
  ASSERT_FALSE(spec.ok());
  EXPECT_FALSE(knnql::IsIncompleteInput(spec.status()));
}

TEST(KnnqlDiagnosticsTest, MissingSemicolonBetweenStatements) {
  auto script = knnql::ParseBoundScript(
      "SELECT KNN(h, 5, AT(1, 2)) INTERSECT KNN(h, 5, AT(1, 2))\n"
      "SELECT KNN(h, 5, AT(1, 2)) INTERSECT KNN(h, 5, AT(1, 2));");
  ASSERT_FALSE(script.ok());
  EXPECT_EQ(script.status().message().rfind("2:1: expected ';'", 0), 0u)
      << script.status().message();
}

// ------------------------------------------------------ round trip

TEST(KnnqlUnparseTest, CanonicalText) {
  const TwoSelectsSpec two{
      .relation = "hotels",
      .s1 = {.focal = {.id = -1, .x = 3, .y = 4}, .k = 5},
      .s2 = {.focal = {.id = -1, .x = 1.5, .y = -2}, .k = 8},
  };
  EXPECT_EQ(knnql::Unparse(QuerySpec(two)),
            "SELECT KNN(hotels, 5, AT(3, 4)) INTERSECT KNN(hotels, 8, "
            "AT(1.5, -2));");

  const RangeInnerJoinSpec range{
      .outer = "trucks",
      .inner = "depots",
      .join_k = 2,
      .range = BoundingBox(0, 0.25, 100, 80),
  };
  EXPECT_EQ(knnql::Unparse(QuerySpec(range)),
            "JOIN KNN(trucks, depots, 2) WHERE INNER IN "
            "RANGE(0, 0.25, 100, 80);");
}

/// Random spec generation for the round-trip property. Coordinates mix
/// smooth values with full-precision doubles so the shortest-format /
/// strtod pipeline is exercised end to end.
class SpecGenerator {
 public:
  explicit SpecGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string Name() {
    static const char* kNames[] = {"hotels", "mech_2", "_depots", "B",
                                   "warehouses9"};
    return kNames[rng_.NextIndex(5)];
  }
  std::size_t K() { return 1 + rng_.NextIndex(64); }
  double Coord() {
    // Half "pretty" coordinates, half raw doubles with every bit used.
    if (rng_.Bernoulli(0.5)) {
      return static_cast<double>(rng_.UniformInt(-30000, 30000)) / 4.0;
    }
    return rng_.Uniform(-3.0e4, 3.0e4);
  }
  KnnPredicate Predicate() {
    return KnnPredicate{.focal = {.id = -1, .x = Coord(), .y = Coord()},
                        .k = K()};
  }

  QuerySpec Spec(int shape) {
    switch (shape) {
      case 0:
        return TwoSelectsSpec{
            .relation = Name(), .s1 = Predicate(), .s2 = Predicate()};
      case 1:
        return SelectInnerJoinSpec{.outer = Name(),
                                   .inner = Name(),
                                   .join_k = K(),
                                   .select = Predicate()};
      case 2:
        return SelectOuterJoinSpec{.outer = Name(),
                                   .inner = Name(),
                                   .join_k = K(),
                                   .select = Predicate()};
      case 3:
        return UnchainedJoinsSpec{.a = Name(),
                                  .b = Name(),
                                  .c = Name(),
                                  .k_ab = K(),
                                  .k_cb = K()};
      case 4:
        return ChainedJoinsSpec{.a = Name(),
                                .b = Name(),
                                .c = Name(),
                                .k_ab = K(),
                                .k_bc = K()};
      default: {
        const double x1 = Coord(), y1 = Coord();
        return RangeInnerJoinSpec{
            .outer = Name(),
            .inner = Name(),
            .join_k = K(),
            .range = BoundingBox(x1, y1, x1 + std::abs(Coord()),
                                 y1 + std::abs(Coord()))};
      }
    }
  }

  knnql::DmlSpec Dml(int shape) {
    knnql::DmlSpec spec;
    spec.relation = Name();
    switch (shape) {
      case 0: {
        spec.kind = knnql::DmlSpec::Kind::kInsert;
        const std::size_t rows = 1 + rng_.NextIndex(4);
        for (std::size_t i = 0; i < rows; ++i) {
          spec.rows.push_back(Point{.id = -1, .x = Coord(), .y = Coord()});
        }
        return spec;
      }
      case 1:
        spec.kind = knnql::DmlSpec::Kind::kDelete;
        spec.id = rng_.UniformInt(-1000000, 1000000);
        return spec;
      default: {
        spec.kind = knnql::DmlSpec::Kind::kLoad;
        static const char* kPaths[] = {"points.csv", "data/p.bin",
                                       "a b/c-d_e.csv", "/tmp/x.bin"};
        spec.path = kPaths[rng_.NextIndex(4)];
        return spec;
      }
    }
  }

 private:
  Rng rng_;
};

TEST(KnnqlRoundTripTest, ParseOfUnparseIsIdentityOnRandomSpecs) {
  SpecGenerator gen(20260729);
  for (int shape = 0; shape < 6; ++shape) {
    for (int i = 0; i < 80; ++i) {
      const QuerySpec spec = gen.Spec(shape);
      const std::string text = knnql::Unparse(spec);
      auto reparsed = knnql::ParseQuerySpec(text);
      ASSERT_TRUE(reparsed.ok())
          << reparsed.status().ToString() << "\n  in: " << text;
      EXPECT_EQ(*reparsed, spec) << "round trip changed: " << text;
      // Canonical text is a fixed point: unparse(parse(text)) == text.
      EXPECT_EQ(knnql::Unparse(*reparsed), text);
    }
  }
}

TEST(KnnqlRoundTripTest, ParseOfUnparseIsIdentityOnRandomDml) {
  SpecGenerator gen(42);
  for (int shape = 0; shape < 3; ++shape) {
    for (int i = 0; i < 80; ++i) {
      const knnql::DmlSpec spec = gen.Dml(shape);
      const std::string text = knnql::Unparse(spec);
      auto statement = knnql::ParseStatement(text);
      ASSERT_TRUE(statement.ok())
          << statement.status().ToString() << "\n  in: " << text;
      auto reparsed = knnql::BindDml(statement->body, nullptr);
      ASSERT_TRUE(reparsed.ok())
          << reparsed.status().ToString() << "\n  in: " << text;
      EXPECT_EQ(*reparsed, spec) << "round trip changed: " << text;
      EXPECT_EQ(knnql::Unparse(*reparsed), text);
    }
  }
}

// --------------------------------------- engine-path equivalence

/// The acceptance criterion: a query written in KNNQL and executed via
/// the text path returns results identical to the equivalent
/// programmatic QuerySpec, for every shape.
TEST(KnnqlEngineTest, TextAndProgrammaticPathsAgreeOnAllShapes) {
  QueryEngine engine(MakeLangCatalog());
  const std::vector<QuerySpec> specs = {
      TwoSelectsSpec{
          .relation = "city",
          .s1 = {.focal = {.id = -1, .x = 300, .y = 200}, .k = 7},
          .s2 = {.focal = {.id = -1, .x = 340, .y = 230}, .k = 12}},
      SelectInnerJoinSpec{
          .outer = "uniform",
          .inner = "city",
          .join_k = 3,
          .select = {.focal = {.id = -1, .x = 500, .y = 400}, .k = 9}},
      SelectOuterJoinSpec{
          .outer = "city",
          .inner = "uniform",
          .join_k = 2,
          .select = {.focal = {.id = -1, .x = 500, .y = 400}, .k = 9}},
      UnchainedJoinsSpec{.a = "uniform",
                         .b = "city",
                         .c = "clustered",
                         .k_ab = 2,
                         .k_cb = 3},
      ChainedJoinsSpec{.a = "clustered",
                       .b = "city",
                       .c = "uniform",
                       .k_ab = 2,
                       .k_bc = 2},
      RangeInnerJoinSpec{.outer = "uniform",
                         .inner = "city",
                         .join_k = 2,
                         .range = BoundingBox(200, 150, 600, 500)},
  };

  // Build one script holding all six statements...
  std::string script;
  for (const QuerySpec& spec : specs) {
    script += knnql::Unparse(spec);
    script += '\n';
  }
  auto script_results = engine.RunScript(script);
  ASSERT_TRUE(script_results.ok()) << script_results.status().ToString();
  ASSERT_EQ(script_results->size(), specs.size());

  // ... and compare each slot against the programmatic path.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EngineResult direct = engine.Run(specs[i]);
    ASSERT_TRUE(direct.ok()) << direct.status.ToString();
    ASSERT_TRUE((*script_results)[i].ok())
        << (*script_results)[i].status.ToString();
    EXPECT_EQ((*script_results)[i].output, direct.output)
        << "text path diverged for: " << knnql::Unparse(specs[i]);
    EXPECT_EQ((*script_results)[i].algorithm, direct.algorithm);
  }
}

TEST(KnnqlEngineTest, ParseBatchReportsPositionedErrors) {
  const QueryEngine engine(MakeLangCatalog());
  auto specs = engine.ParseBatch(
      "SELECT KNN(city, 5, AT(1, 2)) INTERSECT KNN(city, 5, AT(1, 2));\n"
      "SELECT KNN(ghost, 5, AT(1, 2)) INTERSECT KNN(ghost, 5, "
      "AT(1, 2));");
  ASSERT_FALSE(specs.ok());
  EXPECT_EQ(specs.status().message().rfind("2:12: unknown relation", 0),
            0u)
      << specs.status().message();
}

TEST(KnnqlEngineTest, ExplainEchoesCanonicalQueryText) {
  const Catalog catalog = MakeLangCatalog();
  const ChainedJoinsSpec spec{.a = "clustered",
                              .b = "city",
                              .c = "uniform",
                              .k_ab = 2,
                              .k_bc = 3};
  const auto plan = Optimize(catalog, spec);
  ASSERT_TRUE(plan.ok());
  const std::string canonical = knnql::Unparse(QuerySpec(spec));
  EXPECT_NE(plan->Explain().find("Query: " + canonical), std::string::npos)
      << plan->Explain();
  // The echoed text parses back to the same spec: EXPLAIN output is
  // itself valid KNNQL.
  auto reparsed = knnql::ParseQuerySpec(canonical, &catalog);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, QuerySpec(spec));
}

}  // namespace
}  // namespace knnq
