// Engine-layer tests: executor registry completeness, QueryEngine
// batch-vs-serial equivalence over every query shape, per-query error
// isolation, and the guarantee that every src/core evaluator reports
// non-zero ExecStats.

#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/chained_joins.h"
#include "src/core/knn_join.h"
#include "src/core/knn_select.h"
#include "src/core/multi_chained_joins.h"
#include "src/core/range_select_inner_join.h"
#include "src/core/select_inner_join.h"
#include "src/core/select_outer_join.h"
#include "src/core/two_selects.h"
#include "src/core/unchained_joins.h"
#include "src/engine/executor.h"
#include "src/engine/query_engine.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;

constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kTwoSelectsNaive,
    Algorithm::kTwoSelectsOptimized,
    Algorithm::kSelectInnerJoinNaive,
    Algorithm::kSelectInnerJoinCounting,
    Algorithm::kSelectInnerJoinBlockMarking,
    Algorithm::kSelectOuterJoinPushed,
    Algorithm::kSelectOuterJoinLate,
    Algorithm::kUnchainedNaive,
    Algorithm::kUnchainedBlockMarking,
    Algorithm::kChainedRightDeep,
    Algorithm::kChainedJoinIntersection,
    Algorithm::kChainedNestedJoin,
    Algorithm::kRangeInnerJoinNaive,
    Algorithm::kRangeInnerJoinCounting,
    Algorithm::kRangeInnerJoinBlockMarking,
};

Catalog MakeCatalog() {
  Catalog catalog;
  IndexOptions options;
  options.block_capacity = 16;  // Many blocks: pruning paths fire.
  EXPECT_TRUE(
      catalog.AddRelation("uniform", MakeUniform(800, 41, 0), options).ok());
  EXPECT_TRUE(
      catalog.AddRelation("city", MakeCity(800, 42, 100000), options).ok());
  EXPECT_TRUE(catalog
                  .AddRelation("clustered", MakeClustered(3, 120, 43, 200000),
                               options)
                  .ok());
  return catalog;
}

EngineOptions WithThreads(std::size_t num_threads) {
  EngineOptions options;
  options.num_threads = num_threads;
  return options;
}

/// `rounds` cycles through all six QuerySpec shapes with varying
/// parameters: 6 * rounds specs total.
std::vector<QuerySpec> MixedSpecs(std::size_t rounds) {
  std::vector<QuerySpec> specs;
  specs.reserve(rounds * 6);
  for (std::size_t i = 0; i < rounds; ++i) {
    const double dx = static_cast<double>((i * 37) % 900);
    const double dy = static_cast<double>((i * 53) % 700);
    const std::size_t k = 1 + i % 7;
    specs.push_back(TwoSelectsSpec{
        .relation = "city",
        .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
        .s2 = {.focal = {.id = -1, .x = dx + 40, .y = dy + 25}, .k = k + 6},
    });
    specs.push_back(SelectInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 2},
    });
    specs.push_back(SelectOuterJoinSpec{
        .outer = "city",
        .inner = "uniform",
        .join_k = 1 + k % 3,
        .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 5 + k},
    });
    specs.push_back(UnchainedJoinsSpec{
        .a = "uniform",
        .b = "city",
        .c = "clustered",
        .k_ab = 1 + k % 3,
        .k_cb = 1 + (k + 1) % 3,
    });
    specs.push_back(ChainedJoinsSpec{
        .a = "clustered",
        .b = "city",
        .c = "uniform",
        .k_ab = 1 + k % 3,
        .k_bc = 1 + (k + 2) % 3,
    });
    specs.push_back(RangeInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .range = BoundingBox(dx, dy, dx + 150, dy + 120),
    });
  }
  return specs;
}

void ExpectBatchMatchesSerial(const QueryEngine& engine,
                              const std::vector<QuerySpec>& specs) {
  std::vector<EngineResult> serial;
  serial.reserve(specs.size());
  for (const QuerySpec& spec : specs) serial.push_back(engine.Run(spec));

  const std::vector<EngineResult> batch = engine.RunBatch(specs);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << "query " << i << ": "
                               << batch[i].status.ToString();
    ASSERT_TRUE(serial[i].ok());
    EXPECT_EQ(batch[i].algorithm, serial[i].algorithm) << "query " << i;
    EXPECT_TRUE(batch[i].output == serial[i].output)
        << "batch result differs from serial for query " << i;
    EXPECT_FALSE(batch[i].stats.empty())
        << "query " << i << " reported no execution counters";
  }
}

TEST(ExecutorRegistryTest, DefaultCoversEveryAlgorithm) {
  const ExecutorRegistry& registry = ExecutorRegistry::Default();
  EXPECT_EQ(registry.size(), std::size(kAllAlgorithms));
  for (const Algorithm algorithm : kAllAlgorithms) {
    const Executor* executor = registry.Find(algorithm);
    ASSERT_NE(executor, nullptr) << ToString(algorithm);
    EXPECT_NE(std::string(executor->name()), "");
  }
}

TEST(ExecutorRegistryTest, RejectsDuplicatesAndNull) {
  ExecutorRegistry registry;
  RegisterDefaultExecutors(registry);
  EXPECT_FALSE(registry.Register(Algorithm::kTwoSelectsNaive, nullptr).ok());
  // Re-registering the full default set must fail on the first key.
  ExecutorRegistry fresh;
  RegisterDefaultExecutors(fresh);
  EXPECT_EQ(fresh.size(), std::size(kAllAlgorithms));
}

TEST(ExecutorRegistryTest, PlanExecutesThroughCustomRegistry) {
  ExecutorRegistry registry;
  RegisterDefaultExecutors(registry);
  const Catalog catalog = MakeCatalog();
  const auto plan = Optimize(catalog, TwoSelectsSpec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = 500, .y = 400}, .k = 4},
      .s2 = {.focal = {.id = -1, .x = 520, .y = 410}, .k = 8},
  });
  ASSERT_TRUE(plan.ok());

  ExecStats stats;
  const auto output = plan->Execute(registry, &stats);
  ASSERT_TRUE(output.ok());
  EXPECT_FALSE(stats.empty());

  // An empty registry has no executor for the plan's algorithm.
  const ExecutorRegistry empty;
  const auto missing = plan->Execute(empty);
  EXPECT_EQ(missing.status().code(), StatusCode::kInternal);

  // An engine dispatches through a caller-supplied registry too.
  EngineOptions options = WithThreads(1);
  options.registry = &registry;
  QueryEngine engine(MakeCatalog(), options);
  EXPECT_TRUE(engine
                  .Run(TwoSelectsSpec{
                      .relation = "city",
                      .s1 = {.focal = {.id = -1, .x = 100, .y = 100}, .k = 3},
                      .s2 = {.focal = {.id = -1, .x = 120, .y = 90}, .k = 5},
                  })
                  .ok());
}

TEST(QueryEngineTest, BatchMatchesSerialOverAllShapes) {
  // 43 rounds * 6 shapes = 258 queries >= 256, on a 4-thread pool.
  QueryEngine engine(MakeCatalog(), WithThreads(4));
  EXPECT_EQ(engine.num_threads(), 4u);
  ExpectBatchMatchesSerial(engine, MixedSpecs(43));
}

TEST(QueryEngineTest, BatchMatchesSerialUnderForceNaive) {
  EngineOptions options;
  options.num_threads = 4;
  options.planner.force_naive = true;
  QueryEngine engine(MakeCatalog(), options);
  ExpectBatchMatchesSerial(engine, MixedSpecs(8));
}

TEST(QueryEngineTest, PerQueryErrorsAreIsolated) {
  QueryEngine engine(MakeCatalog(), WithThreads(2));
  std::vector<QuerySpec> specs = MixedSpecs(1);
  const std::size_t good = specs.size();
  // Slot `good`: unknown relation. Slot `good + 1`: zero k.
  specs.push_back(TwoSelectsSpec{
      .relation = "does-not-exist",
      .s1 = {.focal = {}, .k = 2},
      .s2 = {.focal = {}, .k = 2},
  });
  specs.push_back(SelectInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = 0,
      .select = {.focal = {}, .k = 1},
  });

  const std::vector<EngineResult> results = engine.RunBatch(specs);
  ASSERT_EQ(results.size(), good + 2);
  for (std::size_t i = 0; i < good; ++i) {
    EXPECT_TRUE(results[i].ok())
        << "good query " << i << " failed: " << results[i].status.ToString();
  }
  EXPECT_EQ(results[good].status.code(), StatusCode::kNotFound);
  EXPECT_EQ(results[good + 1].status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryEngineTest, ExplainSurfacesExecStats) {
  QueryEngine engine(MakeCatalog(), WithThreads(1));
  const EngineResult result = engine.Run(TwoSelectsSpec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = 500, .y = 400}, .k = 5},
      .s2 = {.focal = {.id = -1, .x = 520, .y = 410}, .k = 9},
  });
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.explain.find("Stats:"), std::string::npos)
      << result.explain;
  EXPECT_NE(result.explain.find("blocks="), std::string::npos)
      << result.explain;
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

// --- Every src/core evaluator reports non-zero ExecStats. ---

class EvaluatorStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    outer_points_ = MakeUniform(500, 61, 0);
    inner_points_ = MakeCity(500, 62, 100000);
    third_points_ = MakeClustered(2, 100, 63, 200000);
    outer_ = MakeIndex(outer_points_);
    inner_ = MakeIndex(inner_points_);
    third_ = MakeIndex(third_points_);
  }

  PointSet outer_points_, inner_points_, third_points_;
  std::unique_ptr<SpatialIndex> outer_, inner_, third_;
};

TEST_F(EvaluatorStatsTest, TwoSelectsReportStats) {
  const TwoSelectsQuery query{.relation = outer_.get(),
                              .f1 = {.id = -1, .x = 300, .y = 300},
                              .k1 = 4,
                              .f2 = {.id = -1, .x = 320, .y = 310},
                              .k2 = 9};
  ExecStats naive, optimized;
  ASSERT_TRUE(TwoSelectsNaive(query, nullptr, &naive).ok());
  ASSERT_TRUE(TwoSelectsOptimized(query, nullptr, &optimized).ok());
  EXPECT_FALSE(naive.empty());
  EXPECT_FALSE(optimized.empty());
  EXPECT_EQ(naive.neighborhoods_computed, 2u);
}

TEST_F(EvaluatorStatsTest, SelectInnerJoinFamilyReportsStats) {
  const SelectInnerJoinQuery query{.outer = outer_.get(),
                                   .inner = inner_.get(),
                                   .join_k = 3,
                                   .focal = {.id = -1, .x = 400, .y = 300},
                                   .select_k = 5};
  ExecStats naive, counting, marking;
  ASSERT_TRUE(SelectInnerJoinNaive(query, nullptr, &naive).ok());
  ASSERT_TRUE(SelectInnerJoinCounting(query, nullptr, &counting).ok());
  ASSERT_TRUE(SelectInnerJoinBlockMarking(query, PreprocessMode::kContour,
                                          nullptr, ProbePoint::kCenter,
                                          &marking)
                  .ok());
  EXPECT_FALSE(naive.empty());
  EXPECT_FALSE(counting.empty());
  EXPECT_FALSE(marking.empty());
  EXPECT_GT(counting.candidates_pruned, 0u)
      << "a tight focal neighborhood must prune most outer points";
  EXPECT_GT(marking.candidates_pruned, 0u);
}

TEST_F(EvaluatorStatsTest, RangeInnerJoinFamilyReportsStats) {
  const RangeSelectInnerJoinQuery query{
      .outer = outer_.get(),
      .inner = inner_.get(),
      .join_k = 3,
      .range = BoundingBox(300, 250, 450, 380)};
  ExecStats naive, counting, marking;
  ASSERT_TRUE(RangeSelectInnerJoinNaive(query, nullptr, &naive).ok());
  ASSERT_TRUE(RangeSelectInnerJoinCounting(query, nullptr, &counting).ok());
  ASSERT_TRUE(RangeSelectInnerJoinBlockMarking(
                  query, PreprocessMode::kContour, nullptr, &marking)
                  .ok());
  EXPECT_FALSE(naive.empty());
  EXPECT_FALSE(counting.empty());
  EXPECT_FALSE(marking.empty());
}

TEST_F(EvaluatorStatsTest, SelectOuterJoinReportsStats) {
  const SelectOuterJoinQuery query{.outer = outer_.get(),
                                   .inner = inner_.get(),
                                   .join_k = 2,
                                   .focal = {.id = -1, .x = 500, .y = 400},
                                   .select_k = 10};
  ExecStats pushed, late;
  ASSERT_TRUE(SelectOuterJoinPushed(query, &pushed).ok());
  ASSERT_TRUE(SelectOuterJoinLate(query, &late).ok());
  EXPECT_FALSE(pushed.empty());
  EXPECT_FALSE(late.empty());
  EXPECT_GT(pushed.candidates_pruned, 0u)
      << "the pushdown skips all non-selected outer points";
  EXPECT_LT(pushed.neighborhoods_computed, late.neighborhoods_computed);
}

TEST_F(EvaluatorStatsTest, UnchainedJoinsReportStats) {
  const UnchainedJoinsQuery query{.a = outer_.get(),
                                  .b = inner_.get(),
                                  .c = third_.get(),
                                  .k_ab = 2,
                                  .k_cb = 2};
  ExecStats naive, marking;
  ASSERT_TRUE(UnchainedJoinsNaive(query, &naive).ok());
  ASSERT_TRUE(UnchainedJoinsBlockMarking(query, nullptr, &marking).ok());
  EXPECT_FALSE(naive.empty());
  EXPECT_FALSE(marking.empty());
}

TEST_F(EvaluatorStatsTest, ChainedJoinsFamilyReportsStats) {
  const ChainedJoinsQuery query{.a = third_.get(),
                                .b = inner_.get(),
                                .c = outer_.get(),
                                .k_ab = 2,
                                .k_bc = 2};
  ExecStats right_deep, intersection, nested;
  ASSERT_TRUE(ChainedJoinsRightDeep(query, nullptr, &right_deep).ok());
  ASSERT_TRUE(
      ChainedJoinsJoinIntersection(query, nullptr, &intersection).ok());
  ASSERT_TRUE(ChainedJoinsNested(query, true, nullptr, &nested).ok());
  EXPECT_FALSE(right_deep.empty());
  EXPECT_FALSE(intersection.empty());
  EXPECT_FALSE(nested.empty());
  EXPECT_LT(nested.neighborhoods_computed,
            right_deep.neighborhoods_computed)
      << "the nested join must not touch unreachable b's";
}

TEST_F(EvaluatorStatsTest, BaseOperationsReportStats) {
  ExecStats select_stats, join_stats, chain_stats;
  ASSERT_TRUE(KnnSelect(*outer_, {.id = -1, .x = 100, .y = 100}, 5,
                        &select_stats)
                  .ok());
  ASSERT_TRUE(KnnJoin(third_points_, *inner_, 2, &join_stats).ok());
  const ChainQuery chain{
      .relations = {third_.get(), inner_.get(), outer_.get()},
      .ks = {2, 2}};
  ASSERT_TRUE(ChainedPathJoin(chain, true, nullptr, &chain_stats).ok());
  EXPECT_FALSE(select_stats.empty());
  EXPECT_FALSE(join_stats.empty());
  EXPECT_FALSE(chain_stats.empty());
}

}  // namespace
}  // namespace knnq
