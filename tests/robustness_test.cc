// Robustness suite: randomized cross-evaluator fuzzing over random
// configurations, adversarial data layouts (density gaps, collinear
// points, heavy duplicates), and the contour-vs-exhaustive
// classification behaviour documented in DESIGN.md note 3.

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/chained_joins.h"
#include "src/core/select_inner_join.h"
#include "src/core/two_selects.h"
#include "src/core/unchained_joins.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeIndex;
using testing::MakeUniform;
using testing::RefSelectInnerJoin;
using testing::RefTwoSelects;

// --- Randomized fuzzing: many small random configurations ---

TEST(FuzzTest, SelectInnerJoinAgreesAcrossRandomConfigs) {
  Rng rng(20240610);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t outer_n = 20 + rng.NextIndex(250);
    const std::size_t inner_n = 20 + rng.NextIndex(800);
    const std::size_t join_k = 1 + rng.NextIndex(12);
    const std::size_t select_k = 1 + rng.NextIndex(12);
    const auto type = static_cast<IndexType>(rng.NextIndex(3));
    const std::size_t capacity = 2 + rng.NextIndex(30);

    const PointSet outer = MakeUniform(outer_n, rng.Next(), 0);
    const PointSet inner = MakeUniform(inner_n, rng.Next(), 100000);
    const auto outer_index = MakeIndex(outer, type, capacity);
    const auto inner_index = MakeIndex(inner, type, capacity);
    const SelectInnerJoinQuery query{
        .outer = outer_index.get(),
        .inner = inner_index.get(),
        .join_k = join_k,
        .focal = Point{.id = -1,
                       .x = rng.Uniform(-200, 1200),
                       .y = rng.Uniform(-200, 1000)},
        .select_k = select_k,
    };
    const JoinResult expected =
        RefSelectInnerJoin(outer, inner, join_k, query.focal, select_k);
    const std::string ctx =
        "trial " + std::to_string(trial) + " type " +
        ToString(type) + " outer " + std::to_string(outer_n) + " inner " +
        std::to_string(inner_n) + " kj " + std::to_string(join_k) +
        " ks " + std::to_string(select_k);
    EXPECT_EQ(*SelectInnerJoinNaive(query), expected) << ctx;
    EXPECT_EQ(*SelectInnerJoinCounting(query), expected) << ctx;
    EXPECT_EQ(*SelectInnerJoinBlockMarking(query), expected) << ctx;
  }
}

TEST(FuzzTest, TwoSelectsAgreesAcrossRandomConfigs) {
  Rng rng(987654321);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 30 + rng.NextIndex(1500);
    const std::size_t k1 = 1 + rng.NextIndex(40);
    const std::size_t k2 = 1 + rng.NextIndex(400);
    const auto type = static_cast<IndexType>(rng.NextIndex(3));
    const PointSet points = MakeUniform(n, rng.Next(), 0);
    const auto index = MakeIndex(points, type, 2 + rng.NextIndex(30));
    const TwoSelectsQuery query{
        .relation = index.get(),
        .f1 = Point{.id = -1,
                    .x = rng.Uniform(0, 1000),
                    .y = rng.Uniform(0, 800)},
        .k1 = k1,
        .f2 = Point{.id = -1,
                    .x = rng.Uniform(0, 1000),
                    .y = rng.Uniform(0, 800)},
        .k2 = k2,
    };
    const TwoSelectsResult expected =
        RefTwoSelects(points, query.f1, k1, query.f2, k2);
    const auto optimized = TwoSelectsOptimized(query);
    ASSERT_TRUE(optimized.ok());
    EXPECT_EQ(*optimized, expected)
        << "trial " << trial << " n=" << n << " k1=" << k1 << " k2=" << k2
        << " type=" << ToString(type);
  }
}

// --- Adversarial layouts ---

/// A relation with a dense band, a hard density gap, and a sparse far
/// region - the layout where block pruning rules earn their keep.
PointSet GapLayout(std::uint64_t seed, PointId first_id) {
  Rng rng(seed);
  PointSet points;
  PointId id = first_id;
  // Dense band around the center.
  for (int i = 0; i < 1200; ++i) {
    points.push_back(Point{.id = id++,
                           .x = rng.Uniform(300, 700),
                           .y = rng.Uniform(250, 550)});
  }
  // Nothing between the band and the sparse corner pocket.
  for (int i = 0; i < 25; ++i) {
    points.push_back(Point{.id = id++,
                           .x = rng.Uniform(930, 1000),
                           .y = rng.Uniform(730, 800)});
  }
  return points;
}

TEST(AdversarialTest, GapLayoutAllEvaluatorsAgree) {
  const PointSet outer = GapLayout(31337, 0);
  const PointSet inner = GapLayout(73313, 100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  for (const std::size_t join_k : {1u, 3u, 9u}) {
    for (const std::size_t select_k : {2u, 20u}) {
      const SelectInnerJoinQuery query{
          .outer = outer_index.get(),
          .inner = inner_index.get(),
          .join_k = join_k,
          .focal = Point{.id = -1, .x = 500, .y = 400},
          .select_k = select_k,
      };
      const JoinResult expected =
          RefSelectInnerJoin(outer, inner, join_k, query.focal, select_k);
      EXPECT_EQ(*SelectInnerJoinCounting(query), expected);
      EXPECT_EQ(
          *SelectInnerJoinBlockMarking(query, PreprocessMode::kContour),
          expected);
      EXPECT_EQ(
          *SelectInnerJoinBlockMarking(query, PreprocessMode::kExhaustive),
          expected);
    }
  }
}

TEST(AdversarialTest, ContourMayClassifyFewerBlocksButResultsMatch) {
  // DESIGN.md note 3: the contour rule may stop before probing blocks
  // the exhaustive pass would classify Contributing (conservatively).
  // On this gap layout the classifications differ while the answers
  // stay identical - the divergence is about wasted work, not results.
  const PointSet outer = GapLayout(555, 0);
  const PointSet inner = GapLayout(777, 100000);
  const auto outer_index = MakeIndex(outer, IndexType::kGrid, 8);
  const auto inner_index = MakeIndex(inner, IndexType::kGrid, 8);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 3,
      .focal = Point{.id = -1, .x = 500, .y = 400},
      .select_k = 3,
  };
  SelectInnerJoinStats contour_stats;
  SelectInnerJoinStats exhaustive_stats;
  const auto contour = SelectInnerJoinBlockMarking(
      query, PreprocessMode::kContour, &contour_stats);
  const auto exhaustive = SelectInnerJoinBlockMarking(
      query, PreprocessMode::kExhaustive, &exhaustive_stats);
  ASSERT_TRUE(contour.ok());
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_EQ(*contour, *exhaustive);
  EXPECT_LE(contour_stats.blocks_preprocessed,
            exhaustive_stats.blocks_preprocessed);
  // Ground truth for good measure.
  EXPECT_EQ(*contour, RefSelectInnerJoin(outer, inner, query.join_k,
                                         query.focal, query.select_k));
}

TEST(AdversarialTest, CollinearPointsWithExactTies) {
  // All points on one horizontal line at integer spacing: equidistant
  // pairs everywhere, exercising the (distance, id) tie-break through
  // every evaluator.
  PointSet line;
  for (int i = 0; i < 200; ++i) {
    line.push_back(Point{.id = i, .x = static_cast<double>(i), .y = 5.0});
  }
  const auto index = MakeIndex(line, IndexType::kGrid, 4);
  const TwoSelectsQuery query{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 50.0, .y = 5.0},
      .k1 = 7,
      .f2 = Point{.id = -1, .x = 53.0, .y = 5.0},
      .k2 = 9,
  };
  EXPECT_EQ(*TwoSelectsOptimized(query),
            RefTwoSelects(line, query.f1, 7, query.f2, 9));

  const SelectInnerJoinQuery join_query{
      .outer = index.get(),
      .inner = index.get(),
      .join_k = 4,
      .focal = Point{.id = -1, .x = 100.0, .y = 5.0},
      .select_k = 6,
  };
  const JoinResult expected =
      RefSelectInnerJoin(line, line, 4, join_query.focal, 6);
  EXPECT_EQ(*SelectInnerJoinCounting(join_query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(join_query), expected);
}

TEST(AdversarialTest, HeavyDuplicatesAcrossAllQueryClasses) {
  // 30 distinct locations, ~17 duplicates each: distances tie
  // constantly and block counts dwarf distinct positions.
  Rng rng(2468);
  PointSet points;
  for (int loc = 0; loc < 30; ++loc) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 800);
    for (int d = 0; d < 17; ++d) {
      points.push_back(Point{.id = loc * 17 + d, .x = x, .y = y});
    }
  }
  const auto index = MakeIndex(points, IndexType::kGrid, 8);

  const TwoSelectsQuery selects{
      .relation = index.get(),
      .f1 = Point{.id = -1, .x = 500, .y = 400},
      .k1 = 20,
      .f2 = Point{.id = -1, .x = 510, .y = 410},
      .k2 = 60,
  };
  EXPECT_EQ(*TwoSelectsOptimized(selects),
            RefTwoSelects(points, selects.f1, 20, selects.f2, 60));

  const SelectInnerJoinQuery join_query{
      .outer = index.get(),
      .inner = index.get(),
      .join_k = 21,
      .focal = Point{.id = -1, .x = 400, .y = 300},
      .select_k = 34,
  };
  const JoinResult expected =
      RefSelectInnerJoin(points, points, 21, join_query.focal, 34);
  EXPECT_EQ(*SelectInnerJoinNaive(join_query), expected);
  EXPECT_EQ(*SelectInnerJoinCounting(join_query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(join_query), expected);
}

TEST(AdversarialTest, FocalFarOutsideTheDataBounds) {
  const PointSet outer = MakeUniform(400, 135, 0);
  const PointSet inner = MakeCity(900, 136, 100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 3,
      .focal = Point{.id = -1, .x = -9000, .y = 12000},
      .select_k = 5,
  };
  const JoinResult expected =
      RefSelectInnerJoin(outer, inner, 3, query.focal, 5);
  EXPECT_EQ(*SelectInnerJoinNaive(query), expected);
  EXPECT_EQ(*SelectInnerJoinCounting(query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(query), expected);
}

TEST(AdversarialTest, SingleBlockIndexDegeneratesGracefully) {
  // With one block, every pruning rule must fall through to plain
  // evaluation rather than misfire.
  const PointSet points = MakeUniform(40, 137, 0);
  // A quadtree whose capacity exceeds the relation never splits: the
  // root is the single block.
  const auto index = MakeIndex(points, IndexType::kQuadtree, 1000);
  ASSERT_EQ(index->num_blocks(), 1u);
  const SelectInnerJoinQuery query{
      .outer = index.get(),
      .inner = index.get(),
      .join_k = 5,
      .focal = Point{.id = -1, .x = 500, .y = 400},
      .select_k = 5,
  };
  const JoinResult expected =
      RefSelectInnerJoin(points, points, 5, query.focal, 5);
  EXPECT_EQ(*SelectInnerJoinCounting(query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(query), expected);
}

}  // namespace
}  // namespace knnq
