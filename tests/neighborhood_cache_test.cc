// NeighborhoodCache tests: hit/miss accounting, LRU capacity
// eviction, cross-index-structure determinism of cached values,
// catalog-generation invalidation, and the engine-level guarantee the
// whole subsystem exists to preserve - a multi-threaded cached
// RunBatch returns results byte-identical to uncached serial
// execution over all six query shapes and all three index structures.

#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/neighborhood_cache.h"
#include "src/engine/query_engine.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::AllIndexTypes;
using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;

NeighborhoodCacheOptions SmallCache(std::size_t capacity_bytes,
                                    std::size_t shards = 1) {
  NeighborhoodCacheOptions options;
  options.capacity_bytes = capacity_bytes;
  options.num_shards = shards;
  return options;
}

TEST(NeighborhoodCacheTest, HitAndMissAccounting) {
  const PointSet points = MakeUniform(300, 11);
  const auto index = MakeIndex(points);
  NeighborhoodCache cache;

  CachingKnnSearcher searcher(*index, &cache);
  const Point q{.id = -1, .x = 500, .y = 400};
  const Neighborhood first = searcher.GetKnn(q, 7);
  EXPECT_EQ(searcher.stats().cache_hits, 0u);
  EXPECT_EQ(searcher.stats().cache_misses, 1u);

  const Neighborhood second = searcher.GetKnn(q, 7);
  EXPECT_EQ(searcher.stats().cache_hits, 1u);
  EXPECT_EQ(searcher.stats().cache_misses, 1u);
  EXPECT_EQ(first, second);

  // A different k is a different key.
  (void)searcher.GetKnn(q, 8);
  EXPECT_EQ(searcher.stats().cache_misses, 2u);

  const NeighborhoodCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
  // The lock-free footprint counter agrees with the shard walk.
  EXPECT_EQ(stats.bytes, cache.size_bytes());
  EXPECT_NEAR(stats.hit_rate(), 1.0 / 3.0, 1e-9);
}

TEST(NeighborhoodCacheTest, CachedValueMatchesFreshComputation) {
  const PointSet points = MakeCity(1000, 13);
  const auto index = MakeIndex(points);
  NeighborhoodCache cache;
  CachingKnnSearcher cached(*index, &cache);
  KnnSearcher plain(*index);

  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    const Point q{.id = -1,
                  .x = rng.Uniform(0, 1000),
                  .y = rng.Uniform(0, 800)};
    const std::size_t k = 1 + static_cast<std::size_t>(rng.NextIndex(12));
    // Probe twice: the second answer comes from the cache and must be
    // byte-identical to an uncached searcher's.
    (void)cached.GetKnn(q, k);
    EXPECT_EQ(cached.GetKnn(q, k), plain.GetKnn(q, k));
  }
  EXPECT_EQ(cache.GetStats().hits, 40u);
}

TEST(NeighborhoodCacheTest, NullCachePassesThrough) {
  const PointSet points = MakeUniform(200, 19);
  const auto index = MakeIndex(points);
  CachingKnnSearcher searcher(*index, nullptr);
  KnnSearcher plain(*index);
  const Point q{.id = -1, .x = 100, .y = 100};
  EXPECT_EQ(searcher.GetKnn(q, 5), plain.GetKnn(q, 5));
  EXPECT_EQ(searcher.stats().cache_hits, 0u);
  EXPECT_EQ(searcher.stats().cache_misses, 0u);
}

TEST(NeighborhoodCacheTest, CapacityEvictionIsLruAndBounded) {
  const PointSet points = MakeUniform(500, 23);
  const auto index = MakeIndex(points);
  // Room for only a handful of k=4 entries in a single shard.
  NeighborhoodCache cache(SmallCache(2048));
  CachingKnnSearcher searcher(*index, &cache);

  const Point hot{.id = -1, .x = 500, .y = 400};
  (void)searcher.GetKnn(hot, 4);
  for (int i = 0; i < 64; ++i) {
    // Keep the hot key recent while a stream of distinct keys churns
    // the rest of the shard.
    (void)searcher.GetKnn(hot, 4);
    (void)searcher.GetKnn(
        Point{.id = -1, .x = static_cast<double>(i * 13 % 1000),
              .y = static_cast<double>(i * 29 % 800)},
        4);
  }

  const NeighborhoodCacheStats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, 2048u);
  EXPECT_EQ(stats.bytes, cache.size_bytes());
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);

  // LRU kept the constantly-touched key through all that churn.
  Neighborhood out;
  EXPECT_TRUE(cache.Lookup(index.get(), hot, 4, &out));
  EXPECT_EQ(out, KnnSearcher(*index).GetKnn(hot, 4));
}

TEST(NeighborhoodCacheTest, OversizedEntryIsDropped) {
  const PointSet points = MakeUniform(400, 29);
  const auto index = MakeIndex(points);
  NeighborhoodCache cache(SmallCache(64));  // Smaller than any entry.
  CachingKnnSearcher searcher(*index, &cache);
  const Neighborhood nbr =
      searcher.GetKnn(Point{.id = -1, .x = 10, .y = 10}, 50);
  EXPECT_EQ(nbr.size(), 50u);  // The search itself is unaffected.
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.GetStats().bytes, 0u);
}

TEST(NeighborhoodCacheTest, CrossIndexStructureDeterminism) {
  // One shared cache over grid, quadtree and R-tree indexes of the
  // same relation: the entries are keyed per index object, yet hold
  // byte-identical neighborhoods, because getkNN is deterministic.
  const PointSet points = MakeClustered(4, 100, 31);
  NeighborhoodCache cache;
  std::vector<std::unique_ptr<SpatialIndex>> indexes;
  for (const IndexType type : AllIndexTypes()) {
    indexes.push_back(MakeIndex(points, type));
  }

  Rng rng(37);
  for (int i = 0; i < 25; ++i) {
    const Point q{.id = -1,
                  .x = rng.Uniform(0, 1000),
                  .y = rng.Uniform(0, 800)};
    const std::size_t k = 1 + static_cast<std::size_t>(rng.NextIndex(10));
    std::vector<Neighborhood> cached;
    for (const auto& index : indexes) {
      CachingKnnSearcher searcher(*index, &cache);
      (void)searcher.GetKnn(q, k);  // Fill.
      cached.push_back(searcher.GetKnn(q, k));  // Served from cache.
    }
    EXPECT_EQ(cached[0], cached[1]);
    EXPECT_EQ(cached[0], cached[2]);
    EXPECT_EQ(cached[0], BruteForceKnn(points, q, k));
  }
  // Per-structure keys: every (index, q, k) triple cached separately.
  EXPECT_EQ(cache.GetStats().entries, 3u * 25u);
}

TEST(NeighborhoodCacheTest, GenerationChangeInvalidates) {
  const PointSet points = MakeUniform(200, 41);
  const auto index = MakeIndex(points);
  NeighborhoodCache cache;
  cache.InvalidateIfGenerationChanged(1);
  CachingKnnSearcher searcher(*index, &cache);
  (void)searcher.GetKnn(Point{.id = -1, .x = 50, .y = 50}, 3);
  EXPECT_EQ(cache.GetStats().entries, 1u);

  cache.InvalidateIfGenerationChanged(1);  // Same generation: no-op.
  EXPECT_EQ(cache.GetStats().entries, 1u);

  cache.InvalidateIfGenerationChanged(2);  // Catalog changed: flush.
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(NeighborhoodCacheTest, PerRelationInvalidationDropsOnlyThatRelation) {
  const PointSet points_a = MakeUniform(200, 42);
  const PointSet points_b = MakeUniform(200, 43);
  const auto index_a = MakeIndex(points_a);
  const auto index_b = MakeIndex(points_b);
  NeighborhoodCache cache;
  CachingKnnSearcher searcher_a(*index_a, &cache);
  CachingKnnSearcher searcher_b(*index_b, &cache);
  const Point q{.id = -1, .x = 500, .y = 400};
  for (std::size_t k = 1; k <= 4; ++k) {
    (void)searcher_a.GetKnn(q, k);
    (void)searcher_b.GetKnn(q, k);
  }
  ASSERT_EQ(cache.GetStats().entries, 8u);

  // Dropping a's entries leaves b's untouched and accounted.
  cache.InvalidateRelation(index_a.get());
  NeighborhoodCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.invalidated, 4u);
  EXPECT_EQ(stats.bytes, cache.size_bytes());
  (void)searcher_b.GetKnn(q, 1);
  EXPECT_EQ(searcher_b.stats().cache_hits, 1u);
  (void)searcher_a.GetKnn(q, 1);
  EXPECT_EQ(searcher_a.stats().cache_hits, 0u);

  // The generation-keyed hook: first observation drops (untracked
  // entries may predate it), same generation is a no-op, a new
  // generation drops again.
  cache.InvalidateIfGenerationChanged(index_b.get(), 7);
  EXPECT_EQ(cache.GetStats().entries, 1u);  // Only a's re-probe lives.
  (void)searcher_b.GetKnn(q, 2);
  cache.InvalidateIfGenerationChanged(index_b.get(), 7);
  EXPECT_EQ(cache.GetStats().entries, 2u);  // No-op: entry survived.
  cache.InvalidateIfGenerationChanged(index_b.get(), 8);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

// --- Engine-level equivalence: the acceptance bar of this subsystem ---

Catalog MakeCatalog(IndexType type) {
  Catalog catalog;
  IndexOptions options;
  options.type = type;
  options.block_capacity = 16;  // Many blocks: pruning paths fire.
  EXPECT_TRUE(
      catalog.AddRelation("uniform", MakeUniform(600, 141, 0), options)
          .ok());
  EXPECT_TRUE(
      catalog.AddRelation("city", MakeCity(600, 142, 100000), options)
          .ok());
  EXPECT_TRUE(catalog
                  .AddRelation("clustered",
                               MakeClustered(3, 90, 143, 200000), options)
                  .ok());
  return catalog;
}

/// `rounds` cycles of all six query shapes; the modulus keeps focal
/// points and k values repeating, so the cache sees real sharing.
std::vector<QuerySpec> SkewedSpecs(std::size_t rounds) {
  std::vector<QuerySpec> specs;
  specs.reserve(rounds * 6);
  for (std::size_t i = 0; i < rounds; ++i) {
    const double dx = static_cast<double>((i * 37) % 200);
    const double dy = static_cast<double>((i * 53) % 150);
    const std::size_t k = 1 + i % 3;
    specs.push_back(TwoSelectsSpec{
        .relation = "city",
        .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
        .s2 = {.focal = {.id = -1, .x = dx + 40, .y = dy + 25},
               .k = k + 6},
    });
    specs.push_back(SelectInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 2},
    });
    specs.push_back(SelectOuterJoinSpec{
        .outer = "city",
        .inner = "uniform",
        .join_k = 1 + k % 3,
        .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 5 + k},
    });
    specs.push_back(UnchainedJoinsSpec{
        .a = "uniform",
        .b = "city",
        .c = "clustered",
        .k_ab = 1 + k % 3,
        .k_cb = 1 + (k + 1) % 3,
    });
    specs.push_back(ChainedJoinsSpec{
        .a = "clustered",
        .b = "city",
        .c = "uniform",
        .k_ab = 1 + k % 3,
        .k_bc = 1 + (k + 2) % 3,
    });
    specs.push_back(RangeInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .range = BoundingBox(dx, dy, dx + 150, dy + 120),
    });
  }
  return specs;
}

class CachedEngineEquivalenceTest
    : public ::testing::TestWithParam<IndexType> {};

TEST_P(CachedEngineEquivalenceTest, CachedBatchEqualsUncachedSerial) {
  // Two engines over identical catalogs: one with a cache on a 4-thread
  // pool, one uncached. Every batch result must be byte-identical to
  // the uncached serial reference; repeating the batch exercises the
  // fully warm cache as well as the cold one.
  EngineOptions cached_options;
  cached_options.num_threads = 4;
  cached_options.planner.cache_mb = 32;
  QueryEngine cached(MakeCatalog(GetParam()), cached_options);
  ASSERT_NE(cached.neighborhood_cache(), nullptr);

  EngineOptions plain_options;
  plain_options.num_threads = 1;
  QueryEngine plain(MakeCatalog(GetParam()), plain_options);
  ASSERT_EQ(plain.neighborhood_cache(), nullptr);

  const std::vector<QuerySpec> specs = SkewedSpecs(15);
  std::vector<EngineResult> serial;
  serial.reserve(specs.size());
  for (const QuerySpec& spec : specs) serial.push_back(plain.Run(spec));

  ExecStats total;
  for (int pass = 0; pass < 2; ++pass) {
    const std::vector<EngineResult> batch = cached.RunBatch(specs);
    ASSERT_EQ(batch.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << "query " << i << ": "
                                 << batch[i].status.ToString();
      ASSERT_TRUE(serial[i].ok());
      EXPECT_EQ(batch[i].algorithm, serial[i].algorithm) << "query " << i;
      EXPECT_TRUE(batch[i].output == serial[i].output)
          << "cached batch differs from uncached serial for query " << i
          << " (pass " << pass << ")";
      EXPECT_FALSE(batch[i].stats.empty()) << "query " << i;
      total.Merge(batch[i].stats);
    }
  }
  // The skewed workload must actually share work across queries.
  EXPECT_GT(total.cache_hits, 0u);
  EXPECT_GT(total.cache_bytes, 0u);
  EXPECT_GT(cached.neighborhood_cache()->GetStats().hit_rate(), 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, CachedEngineEquivalenceTest,
    ::testing::Values(IndexType::kGrid, IndexType::kQuadtree,
                      IndexType::kRTree),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return std::string(ToString(info.param));
    });

TEST(CachedEngineTest, StatsAndExplainSurfaceCacheCounters) {
  EngineOptions options;
  options.num_threads = 1;
  options.planner.cache_mb = 8;
  QueryEngine engine(MakeCatalog(IndexType::kGrid), options);
  const TwoSelectsSpec spec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = 500, .y = 400}, .k = 5},
      .s2 = {.focal = {.id = -1, .x = 520, .y = 410}, .k = 9},
  };
  const EngineResult cold = engine.Run(spec);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold.stats.cache_misses, 0u);
  EXPECT_GT(cold.stats.cache_bytes, 0u);

  const EngineResult warm = engine.Run(spec);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm.stats.cache_hits, 0u);
  EXPECT_NE(warm.explain.find("cache_hits="), std::string::npos)
      << warm.explain;
  EXPECT_TRUE(warm.output == cold.output);
}

}  // namespace
}  // namespace knnq
