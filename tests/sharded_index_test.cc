// ShardedIndex unit tests: partition routing, mirror consistency,
// merged scan order, distance-bound shard pruning, and copy-on-write
// composition via Clone / FromShards. Parameterized over both shard
// policies and all three child structures.

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "src/index/knn_searcher.h"
#include "src/index/sharded_index.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeClustered;
using testing::MakeUniform;

Result<std::unique_ptr<ShardedIndex>> BuildSharded(
    const PointSet& points, std::size_t shards,
    ShardPolicy policy = ShardPolicy::kBisection,
    IndexType type = IndexType::kGrid) {
  IndexOptions options;
  options.type = type;
  options.block_capacity = 16;
  options.shards = shards;
  options.shard_policy = policy;
  return ShardedIndex::Build(points, options);
}

TEST(ShardedIndexTest, BuildRejectsSingleShard) {
  IndexOptions options;
  options.shards = 1;
  EXPECT_FALSE(ShardedIndex::Build(MakeUniform(32, 1), options).ok());
}

TEST(ShardedIndexTest, FactoryBuildsShardedWhenRequested) {
  IndexOptions options;
  options.shards = 4;
  auto index = BuildIndex(MakeUniform(200, 2), options);
  ASSERT_TRUE(index.ok());
  auto* sharded = dynamic_cast<ShardedIndex*>(index->get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 4u);
}

class ShardedPolicyTest
    : public ::testing::TestWithParam<std::pair<ShardPolicy, IndexType>> {};

TEST_P(ShardedPolicyTest, EveryPointLivesInItsRoutedShard) {
  const auto [policy, type] = GetParam();
  const PointSet points = MakeClustered(4, 120, 7);
  auto built = BuildSharded(points, 6, policy, type);
  ASSERT_TRUE(built.ok());
  const ShardedIndex& index = **built;

  std::size_t total = 0;
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    total += index.shard(s).num_points();
    for (const Point& p : index.shard(s).points()) {
      EXPECT_EQ(index.partition()->Route(p.x, p.y), s)
          << "point " << p.id << " lives in shard " << s
          << " but routes elsewhere";
    }
  }
  EXPECT_EQ(total, points.size());
}

TEST_P(ShardedPolicyTest, MirrorIsTheConcatenationOfChildren) {
  const auto [policy, type] = GetParam();
  const PointSet points = MakeUniform(500, 11);
  auto built = BuildSharded(points, 5, policy, type);
  ASSERT_TRUE(built.ok());
  const ShardedIndex& index = **built;

  EXPECT_EQ(index.num_points(), points.size());
  std::set<PointId> seen;
  for (const Point& p : index.points()) seen.insert(p.id);
  EXPECT_EQ(seen.size(), points.size());

  // Blocks are dense, their spans nest in the mirror, and each block's
  // box sits inside its owning shard's scan bounds (the invariant the
  // merged scan's sentinel keys rely on).
  std::size_t blocks = 0;
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    blocks += index.shard(s).num_blocks();
  }
  EXPECT_EQ(index.num_blocks(), blocks);
  for (BlockId b = 0; b < index.num_blocks(); ++b) {
    const Block& block = index.blocks()[b];
    ASSERT_LE(block.end, index.num_points());
    const BoundingBox& frame = index.ShardScanBounds(index.ShardOfBlock(b));
    EXPECT_GE(block.box.min_x(), frame.min_x());
    EXPECT_GE(block.box.min_y(), frame.min_y());
    EXPECT_LE(block.box.max_x(), frame.max_x());
    EXPECT_LE(block.box.max_y(), frame.max_y());
    for (std::size_t i = block.begin; i < block.end; ++i) {
      EXPECT_TRUE(block.box.Contains(index.points()[i]));
    }
  }
}

TEST_P(ShardedPolicyTest, MergedScanYieldsEveryBlockInKeyOrder) {
  const auto [policy, type] = GetParam();
  auto built = BuildSharded(MakeUniform(600, 13), 7, policy, type);
  ASSERT_TRUE(built.ok());
  const ShardedIndex& index = **built;

  const Point query{.id = -1, .x = 320, .y = 410};
  for (const ScanOrder order : {ScanOrder::kMinDist, ScanOrder::kMaxDist}) {
    auto scan = index.NewScan(query, order);
    std::set<BlockId> seen;
    double prev = -1.0;
    while (scan->HasNext()) {
      double key = 0.0;
      const BlockId b = scan->Next(&key);
      ASSERT_LT(b, index.num_blocks());
      EXPECT_TRUE(seen.insert(b).second) << "block visited twice";
      EXPECT_GE(key, prev) << "keys must be non-decreasing";
      prev = key;
    }
    EXPECT_EQ(seen.size(), index.num_blocks());
    // A fully drained scan opened every shard: nothing was pruned.
    EXPECT_EQ(scan->shards_pruned(), 0u);
  }
}

TEST_P(ShardedPolicyTest, AbandonedScanReportsPrunedShards) {
  const auto [policy, type] = GetParam();
  // Clustered data: distant clusters land in distant shards.
  auto built = BuildSharded(MakeClustered(6, 100, 17), 6, policy, type);
  ASSERT_TRUE(built.ok());
  auto scan = (*built)->NewScan(Point{.id = -1, .x = 0, .y = 0},
                                ScanOrder::kMinDist);
  ASSERT_TRUE(scan->HasNext());
  double key = 0.0;
  scan->Next(&key);  // Touch one block, then abandon.
  EXPECT_GT(scan->shards_pruned(), 0u);
}

TEST_P(ShardedPolicyTest, GetKnnMatchesUnshardedByteForByte) {
  const auto [policy, type] = GetParam();
  const PointSet points = MakeClustered(5, 80, 19);
  auto plain = testing::MakeIndex(points, type);
  auto built = BuildSharded(points, 8, policy, type);
  ASSERT_TRUE(built.ok());

  KnnSearcher reference(*plain);
  KnnSearcher sharded(**built);
  EXPECT_TRUE(sharded.sharded());
  for (std::size_t i = 0; i < 40; ++i) {
    const Point q{.id = -1,
                  .x = static_cast<double>((i * 97) % 1000),
                  .y = static_cast<double>((i * 131) % 800)};
    const std::size_t k = 1 + i % 9;
    const Neighborhood expected = reference.GetKnn(q, k);
    const Neighborhood actual = sharded.GetKnn(q, k);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(actual[j].point.id, expected[j].point.id);
      EXPECT_EQ(actual[j].dist, expected[j].dist);
    }
  }
  // Scatter-gather skipped at least some far shards overall.
  EXPECT_GT(sharded.stats().shards_pruned, 0u);
}

TEST_P(ShardedPolicyTest, InPlaceMutationKeepsTheMirrorConsistent) {
  const auto [policy, type] = GetParam();
  auto built = BuildSharded(MakeUniform(200, 23), 4, policy, type);
  ASSERT_TRUE(built.ok());
  ShardedIndex& index = **built;

  const Point fresh{.id = 100000, .x = 512, .y = 256};
  ASSERT_TRUE(index.Insert(fresh).ok());
  EXPECT_EQ(index.num_points(), 201u);
  EXPECT_TRUE(index.HasPoint(100000));
  EXPECT_EQ(index.ShardOfPointId(100000),
            static_cast<int>(index.RouteShard(fresh)));
  const BlockId at = index.Locate(fresh);
  ASSERT_NE(at, kInvalidBlockId);
  EXPECT_TRUE(index.blocks()[at].box.Contains(fresh));

  ASSERT_TRUE(index.Erase(100000).ok());
  EXPECT_FALSE(index.HasPoint(100000));
  EXPECT_EQ(index.ShardOfPointId(100000), -1);
  EXPECT_TRUE(index.Erase(100000).code() == StatusCode::kNotFound);

  ASSERT_TRUE(index.BulkLoad(MakeUniform(120, 29)).ok());
  EXPECT_EQ(index.num_points(), 120u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ShardedPolicyTest,
    ::testing::Values(
        std::make_pair(ShardPolicy::kBisection, IndexType::kGrid),
        std::make_pair(ShardPolicy::kBisection, IndexType::kQuadtree),
        std::make_pair(ShardPolicy::kBisection, IndexType::kRTree),
        std::make_pair(ShardPolicy::kGrid, IndexType::kGrid)),
    [](const auto& info) {
      return std::string(ToString(info.param.first)) + "_" +
             ToString(info.param.second);
    });

TEST(ShardedIndexTest, BisectionBalancesClusteredData) {
  auto built = BuildSharded(MakeClustered(2, 400, 31), 8,
                            ShardPolicy::kBisection);
  ASSERT_TRUE(built.ok());
  std::size_t smallest = 800, largest = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    const std::size_t n = (*built)->shard(s).num_points();
    smallest = std::min(smallest, n);
    largest = std::max(largest, n);
  }
  // Median splits keep shard sizes within a small factor even with all
  // mass in two clusters (a fixed grid would leave most shards empty).
  EXPECT_GE(smallest, 800u / 16);
  EXPECT_LE(largest, 800u / 4);
}

TEST(ShardedIndexTest, CloneIsDeepAndShardedDmlViaFromShardsIsCow) {
  const PointSet points = MakeUniform(300, 37);
  auto built = BuildSharded(points, 4);
  ASSERT_TRUE(built.ok());
  const ShardedIndex& original = **built;

  // Replace one shard with a mutated clone; every other child object
  // is shared.
  const Point fresh{.id = 500000,
                    .x = original.shard(2).points().front().x,
                    .y = original.shard(2).points().front().y};
  const std::size_t target = original.RouteShard(fresh);
  std::vector<std::shared_ptr<SpatialIndex>> children;
  for (std::size_t s = 0; s < original.num_shards(); ++s) {
    children.push_back(original.shard_ptr(s));
  }
  std::shared_ptr<SpatialIndex> clone(children[target]->Clone());
  EXPECT_NE(clone->instance_id(), children[target]->instance_id());
  ASSERT_TRUE(clone->Insert(fresh).ok());
  children[target] = clone;

  auto rewrapped = ShardedIndex::FromShards(original.partition(),
                                            std::move(children));
  ASSERT_TRUE(rewrapped.ok());
  EXPECT_EQ((*rewrapped)->num_points(), 301u);
  EXPECT_TRUE((*rewrapped)->HasPoint(500000));
  // The original wrapper (the snapshot a concurrent reader pinned)
  // never sees the write.
  EXPECT_EQ(original.num_points(), 300u);
  EXPECT_FALSE(original.HasPoint(500000));
  for (std::size_t s = 0; s < original.num_shards(); ++s) {
    if (s == target) continue;
    EXPECT_EQ(original.shard_ptr(s).get(), &(*rewrapped)->shard(s))
        << "untouched shards must be shared, not copied";
  }
}

TEST(ShardedIndexTest, SearchStatsFoldShardsPrunedIntoExecStats) {
  auto built = BuildSharded(MakeClustered(6, 100, 41), 6);
  ASSERT_TRUE(built.ok());
  KnnSearcher searcher(**built);
  searcher.GetKnn(Point{.id = -1, .x = 10, .y = 10}, 3);
  ExecStats stats;
  stats.AddSearch(searcher.stats());
  EXPECT_EQ(stats.shards_pruned, searcher.stats().shards_pruned);
  EXPECT_NE(stats.ToString().find("shards_pruned="), std::string::npos);
}

}  // namespace
}  // namespace knnq
