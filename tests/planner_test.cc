// Planner tests: catalog management, legality rules, optimizer
// decisions, plan execution equivalence with direct core calls, and
// EXPLAIN output.

#include "gtest/gtest.h"
#include "src/core/select_outer_join.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"
#include "src/planner/rules.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeUniform;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        catalog_.AddRelation("uniform", MakeUniform(2000, 141, 0)).ok());
    ASSERT_TRUE(
        catalog_.AddRelation("city", MakeCity(2000, 142, 100000)).ok());
    ASSERT_TRUE(catalog_
                    .AddRelation("clustered",
                                 MakeClustered(2, 200, 143, 200000))
                    .ok());
    ASSERT_TRUE(
        catalog_.AddRelation("uniform2", MakeUniform(1500, 144, 300000))
            .ok());
  }

  Catalog catalog_;
};

TEST_F(PlannerTest, CatalogRejectsDuplicatesAndEmptyNames) {
  EXPECT_FALSE(catalog_.AddRelation("uniform", MakeUniform(10, 1)).ok());
  EXPECT_FALSE(catalog_.AddRelation("", MakeUniform(10, 1)).ok());
}

TEST_F(PlannerTest, CatalogLookups) {
  EXPECT_TRUE(catalog_.Has("city"));
  EXPECT_FALSE(catalog_.Has("nope"));
  EXPECT_FALSE(catalog_.Get("nope").ok());
  const auto relation = catalog_.Get("city");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ((*relation)->index->num_points(), 2000u);
  EXPECT_EQ(catalog_.Names().size(), 4u);
  EXPECT_FALSE(catalog_.UnionBounds().empty());
}

TEST_F(PlannerTest, CatalogCoverageDistinguishesShapes) {
  const BoundingBox frame = catalog_.UnionBounds();
  const auto uniform_cov = catalog_.CoverageOf("uniform", frame);
  const auto clustered_cov = catalog_.CoverageOf("clustered", frame);
  ASSERT_TRUE(uniform_cov.ok());
  ASSERT_TRUE(clustered_cov.ok());
  EXPECT_GT(uniform_cov->coverage(), clustered_cov->coverage());
}

TEST(RulesTest, LegalityMatchesThePaper) {
  EXPECT_TRUE(
      IsSemanticsPreserving(Rewrite::kPushSelectBelowOuterJoinInput));
  EXPECT_FALSE(
      IsSemanticsPreserving(Rewrite::kPushSelectBelowInnerJoinInput));
  EXPECT_FALSE(IsSemanticsPreserving(Rewrite::kCascadeUnchainedJoins));
  EXPECT_TRUE(IsSemanticsPreserving(Rewrite::kReorderChainedJoins));
  EXPECT_FALSE(IsSemanticsPreserving(Rewrite::kCascadeSelects));
  for (const Rewrite r :
       {Rewrite::kPushSelectBelowOuterJoinInput,
        Rewrite::kPushSelectBelowInnerJoinInput,
        Rewrite::kCascadeUnchainedJoins, Rewrite::kReorderChainedJoins,
        Rewrite::kCascadeSelects}) {
    EXPECT_FALSE(RuleRationale(r).empty());
  }
}

TEST_F(PlannerTest, TwoSelectsPicksOptimizedAlgorithm) {
  const TwoSelectsSpec spec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = 500, .y = 400}, .k = 10},
      .s2 = {.focal = {.id = -1, .x = 520, .y = 410}, .k = 100},
  };
  const auto plan = Optimize(catalog_, spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm(), Algorithm::kTwoSelectsOptimized);
  const auto output = plan->Execute();
  ASSERT_TRUE(output.ok());
  ASSERT_TRUE(std::holds_alternative<TwoSelectsResult>(*output));

  PlannerOptions naive;
  naive.force_naive = true;
  const auto baseline = Optimize(catalog_, spec, naive);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->algorithm(), Algorithm::kTwoSelectsNaive);
  const auto baseline_output = baseline->Execute();
  ASSERT_TRUE(baseline_output.ok());
  EXPECT_EQ(std::get<TwoSelectsResult>(*output),
            std::get<TwoSelectsResult>(*baseline_output));
}

TEST_F(PlannerTest, SelectInnerJoinSwitchesOnOuterCardinality) {
  const SelectInnerJoinSpec spec{
      .outer = "uniform",
      .inner = "city",
      .join_k = 3,
      .select = {.focal = {.id = -1, .x = 400, .y = 300}, .k = 6},
  };
  PlannerOptions small_cutoff;
  small_cutoff.counting_outer_cutoff = 100;  // uniform has 2000 points.
  const auto bm_plan = Optimize(catalog_, spec, small_cutoff);
  ASSERT_TRUE(bm_plan.ok());
  EXPECT_EQ(bm_plan->algorithm(), Algorithm::kSelectInnerJoinBlockMarking);

  PlannerOptions large_cutoff;
  large_cutoff.counting_outer_cutoff = 1000000;
  const auto counting_plan = Optimize(catalog_, spec, large_cutoff);
  ASSERT_TRUE(counting_plan.ok());
  EXPECT_EQ(counting_plan->algorithm(),
            Algorithm::kSelectInnerJoinCounting);

  // All three strategies agree on the answer.
  PlannerOptions naive;
  naive.force_naive = true;
  const auto naive_plan = Optimize(catalog_, spec, naive);
  ASSERT_TRUE(naive_plan.ok());
  const auto r1 = bm_plan->Execute();
  const auto r2 = counting_plan->Execute();
  const auto r3 = naive_plan->Execute();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(std::get<JoinResult>(*r1), std::get<JoinResult>(*r2));
  EXPECT_EQ(std::get<JoinResult>(*r1), std::get<JoinResult>(*r3));
}

TEST_F(PlannerTest, SelectOuterJoinAlwaysPushes) {
  const SelectOuterJoinSpec spec{
      .outer = "city",
      .inner = "uniform",
      .join_k = 2,
      .select = {.focal = {.id = -1, .x = 600, .y = 350}, .k = 12},
  };
  const auto plan = Optimize(catalog_, spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm(), Algorithm::kSelectOuterJoinPushed);

  PlannerOptions naive;
  naive.force_naive = true;
  const auto late = Optimize(catalog_, spec, naive);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->algorithm(), Algorithm::kSelectOuterJoinLate);
  // Figure 3: both QEPs agree.
  EXPECT_EQ(std::get<JoinResult>(*plan->Execute()),
            std::get<JoinResult>(*late->Execute()));
}

TEST_F(PlannerTest, UnchainedStartsWithTheClusteredRelation) {
  const UnchainedJoinsSpec spec{
      .a = "uniform",
      .b = "city",
      .c = "clustered",  // Much smaller coverage than "uniform".
      .k_ab = 2,
      .k_cb = 2,
  };
  const auto plan = Optimize(catalog_, spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm(), Algorithm::kUnchainedBlockMarking);
  EXPECT_NE(plan->Explain().find("[joins reordered]"), std::string::npos)
      << "planner must start with the clustered side:\n" << plan->Explain();

  // Swapped execution must still report triplets in spec order: compare
  // with the naive plan.
  PlannerOptions naive;
  naive.force_naive = true;
  const auto baseline = Optimize(catalog_, spec, naive);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->algorithm(), Algorithm::kUnchainedNaive);
  EXPECT_EQ(std::get<TripletResult>(*plan->Execute()),
            std::get<TripletResult>(*baseline->Execute()));
}

TEST_F(PlannerTest, UnchainedUniformPairFallsBackToIndependentJoins) {
  const UnchainedJoinsSpec spec{
      .a = "uniform", .b = "city", .c = "uniform2", .k_ab = 2, .k_cb = 2};
  const auto plan = Optimize(catalog_, spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm(), Algorithm::kUnchainedNaive)
      << "both outers near-uniform: preprocessing would not pay off";
}

TEST_F(PlannerTest, ChainedPicksCachedNestedJoin) {
  const ChainedJoinsSpec spec{
      .a = "clustered", .b = "city", .c = "uniform", .k_ab = 2, .k_bc = 3};
  const auto plan = Optimize(catalog_, spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm(), Algorithm::kChainedNestedJoin);
  EXPECT_NE(plan->Explain().find("[cached]"), std::string::npos);

  PlannerOptions naive;
  naive.force_naive = true;
  const auto baseline = Optimize(catalog_, spec, naive);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->algorithm(), Algorithm::kChainedJoinIntersection);
  EXPECT_EQ(std::get<TripletResult>(*plan->Execute()),
            std::get<TripletResult>(*baseline->Execute()));
}

TEST_F(PlannerTest, RejectsUnknownRelationsAndZeroK) {
  const TwoSelectsSpec unknown{
      .relation = "nope",
      .s1 = {.focal = {}, .k = 1},
      .s2 = {.focal = {}, .k = 1},
  };
  EXPECT_EQ(Optimize(catalog_, unknown).status().code(),
            StatusCode::kNotFound);

  const TwoSelectsSpec zero_k{
      .relation = "city",
      .s1 = {.focal = {}, .k = 0},
      .s2 = {.focal = {}, .k = 1},
  };
  EXPECT_EQ(Optimize(catalog_, zero_k).status().code(),
            StatusCode::kInvalidArgument);

  const ChainedJoinsSpec bad_chain{
      .a = "city", .b = "missing", .c = "uniform", .k_ab = 1, .k_bc = 1};
  EXPECT_FALSE(Optimize(catalog_, bad_chain).ok());
}

TEST_F(PlannerTest, RangeInnerJoinPlansAndExecutes) {
  const RangeInnerJoinSpec spec{
      .outer = "uniform",
      .inner = "city",
      .join_k = 3,
      .range = BoundingBox(300, 250, 600, 500),
  };
  PlannerOptions small_cutoff;
  small_cutoff.counting_outer_cutoff = 100;
  const auto bm = Optimize(catalog_, spec, small_cutoff);
  ASSERT_TRUE(bm.ok());
  EXPECT_EQ(bm->algorithm(), Algorithm::kRangeInnerJoinBlockMarking);

  PlannerOptions large_cutoff;
  large_cutoff.counting_outer_cutoff = 1000000;
  const auto counting = Optimize(catalog_, spec, large_cutoff);
  ASSERT_TRUE(counting.ok());
  EXPECT_EQ(counting->algorithm(), Algorithm::kRangeInnerJoinCounting);

  PlannerOptions naive;
  naive.force_naive = true;
  const auto baseline = Optimize(catalog_, spec, naive);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->algorithm(), Algorithm::kRangeInnerJoinNaive);

  const auto r1 = bm->Execute();
  const auto r2 = counting->Execute();
  const auto r3 = baseline->Execute();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(std::get<JoinResult>(*r1), std::get<JoinResult>(*r2));
  EXPECT_EQ(std::get<JoinResult>(*r1), std::get<JoinResult>(*r3));

  const RangeInnerJoinSpec empty_range{
      .outer = "uniform", .inner = "city", .join_k = 3,
      .range = BoundingBox()};
  EXPECT_FALSE(Optimize(catalog_, empty_range).ok());
}

TEST_F(PlannerTest, ExplainDescribesTheDecision) {
  const SelectInnerJoinSpec spec{
      .outer = "uniform",
      .inner = "city",
      .join_k = 3,
      .select = {.focal = {.id = -1, .x = 400, .y = 300}, .k = 6},
  };
  const auto plan = Optimize(catalog_, spec);
  ASSERT_TRUE(plan.ok());
  const std::string explain = plan->Explain();
  EXPECT_NE(explain.find("Query:"), std::string::npos);
  EXPECT_NE(explain.find("Plan:"), std::string::npos);
  EXPECT_NE(explain.find("Why:"), std::string::npos);
  EXPECT_NE(explain.find("Rule:"), std::string::npos);
  EXPECT_NE(explain.find("invalid"), std::string::npos)
      << "the inner-select rule must be cited:\n" << explain;
}

// Figure 3's equivalence, directly on the core operators.
TEST(SelectOuterJoinTest, PushedEqualsLateFilter) {
  const PointSet outer = MakeCity(800, 151, 0);
  const PointSet inner = MakeUniform(600, 152, 100000);
  const auto outer_index = testing::MakeIndex(outer);
  const auto inner_index = testing::MakeIndex(inner);
  for (const std::size_t select_k : {1u, 5u, 50u}) {
    const SelectOuterJoinQuery query{
        .outer = outer_index.get(),
        .inner = inner_index.get(),
        .join_k = 3,
        .focal = Point{.id = -1, .x = 321, .y = 432},
        .select_k = select_k,
    };
    const auto pushed = SelectOuterJoinPushed(query);
    const auto late = SelectOuterJoinLate(query);
    ASSERT_TRUE(pushed.ok());
    ASSERT_TRUE(late.ok());
    EXPECT_EQ(*pushed, *late) << "select_k=" << select_k;
    EXPECT_EQ(pushed->size(), std::min<std::size_t>(select_k, outer.size()) * 3);
  }
}

TEST(SelectOuterJoinTest, RejectsInvalidQueries) {
  const auto index = testing::MakeIndex(MakeUniform(10, 153));
  SelectOuterJoinQuery query{.outer = index.get(),
                             .inner = index.get(),
                             .join_k = 0,
                             .focal = {},
                             .select_k = 1};
  EXPECT_FALSE(SelectOuterJoinPushed(query).ok());
  EXPECT_FALSE(SelectOuterJoinLate(query).ok());
}

}  // namespace
}  // namespace knnq
