// Structure-independence tests: every SpatialIndex implementation must
// satisfy the same contract. Parameterized over {grid, quadtree, rtree}
// x {uniform, city, clustered} data.

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "src/index/grid_index.h"
#include "src/index/index_factory.h"
#include "src/index/quadtree_index.h"
#include "src/index/rtree_index.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;

enum class Dataset { kUniform, kCity, kClustered };

struct IndexCase {
  IndexType type;
  Dataset dataset;
  std::size_t n;
};

std::string CaseName(const ::testing::TestParamInfo<IndexCase>& info) {
  std::string name = ToString(info.param.type);
  switch (info.param.dataset) {
    case Dataset::kUniform:
      name += "_uniform";
      break;
    case Dataset::kCity:
      name += "_city";
      break;
    case Dataset::kClustered:
      name += "_clustered";
      break;
  }
  name += "_" + std::to_string(info.param.n);
  return name;
}

PointSet MakeDataset(Dataset dataset, std::size_t n, std::uint64_t seed) {
  switch (dataset) {
    case Dataset::kUniform:
      return MakeUniform(n, seed);
    case Dataset::kCity:
      return MakeCity(n, seed);
    case Dataset::kClustered:
      return MakeClustered(/*num_clusters=*/5, n / 5, seed);
  }
  return {};
}

class IndexContractTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  void SetUp() override {
    points_ = MakeDataset(GetParam().dataset, GetParam().n, /*seed=*/77);
    index_ = MakeIndex(points_, GetParam().type);
  }

  PointSet points_;
  std::unique_ptr<SpatialIndex> index_;
};

TEST_P(IndexContractTest, IndexesEveryPointExactlyOnce) {
  ASSERT_EQ(index_->num_points(), points_.size());
  std::multiset<PointId> expected;
  for (const Point& p : points_) expected.insert(p.id);
  std::multiset<PointId> actual;
  for (const Point& p : index_->points()) actual.insert(p.id);
  EXPECT_EQ(expected, actual);
}

TEST_P(IndexContractTest, BlocksPartitionThePointArray) {
  std::vector<bool> covered(index_->num_points(), false);
  std::size_t total = 0;
  for (const Block& block : index_->blocks()) {
    EXPECT_GT(block.count(), 0u) << "empty blocks must not materialize";
    total += block.count();
    for (std::size_t i = block.begin; i < block.end; ++i) {
      EXPECT_FALSE(covered[i]) << "blocks overlap in the point array";
      covered[i] = true;
    }
  }
  EXPECT_EQ(total, index_->num_points());
}

TEST_P(IndexContractTest, BlockBoxesContainTheirPoints) {
  for (BlockId id = 0; id < index_->num_blocks(); ++id) {
    const Block& block = index_->block(id);
    for (const Point& p : index_->BlockPoints(id)) {
      EXPECT_TRUE(block.box.Contains(p))
          << "block " << id << " box " << block.box.ToString()
          << " misses point " << p.ToString();
    }
  }
}

TEST_P(IndexContractTest, LocateFindsEveryIndexedPoint) {
  for (const Point& p : index_->points()) {
    const BlockId id = index_->Locate(p);
    ASSERT_NE(id, kInvalidBlockId) << p.ToString();
    const auto span = index_->BlockPoints(id);
    const bool found =
        std::any_of(span.begin(), span.end(),
                    [&](const Point& q) { return q.id == p.id; });
    EXPECT_TRUE(found) << "Locate returned a block without the point";
  }
}

TEST_P(IndexContractTest, MinDistScanYieldsAllBlocksInOrder) {
  const Point query{.id = -1, .x = 137.0, .y = 212.0};
  auto scan = index_->NewScan(query, ScanOrder::kMinDist);
  std::set<BlockId> seen;
  double prev = -1.0;
  while (scan->HasNext()) {
    double key = 0.0;
    const BlockId id = scan->Next(&key);
    EXPECT_GE(key, prev) << "MINDIST keys must be non-decreasing";
    EXPECT_NEAR(key, index_->block(id).box.MinDist(query), 1e-9);
    EXPECT_TRUE(seen.insert(id).second) << "block yielded twice";
    prev = key;
  }
  EXPECT_EQ(seen.size(), index_->num_blocks());
}

TEST_P(IndexContractTest, MaxDistScanYieldsAllBlocksInOrder) {
  const Point query{.id = -1, .x = 900.0, .y = 50.0};
  auto scan = index_->NewScan(query, ScanOrder::kMaxDist);
  std::set<BlockId> seen;
  double prev = -1.0;
  while (scan->HasNext()) {
    double key = 0.0;
    const BlockId id = scan->Next(&key);
    EXPECT_GE(key, prev) << "MAXDIST keys must be non-decreasing";
    EXPECT_NEAR(key, index_->block(id).box.MaxDist(query), 1e-9);
    EXPECT_TRUE(seen.insert(id).second) << "block yielded twice";
    prev = key;
  }
  EXPECT_EQ(seen.size(), index_->num_blocks());
}

TEST_P(IndexContractTest, ScansHandleQueriesOutsideTheBounds) {
  // Queries far outside the data's bounding box must still order all
  // blocks correctly (Procedure 1 scans from arbitrary outer points).
  for (const Point query : {Point{.id = -1, .x = -5000, .y = -5000},
                            Point{.id = -1, .x = 99999, .y = 400}}) {
    for (const ScanOrder order : {ScanOrder::kMinDist, ScanOrder::kMaxDist}) {
      auto scan = index_->NewScan(query, order);
      std::size_t count = 0;
      double prev = -1.0;
      while (scan->HasNext()) {
        double key = 0.0;
        scan->Next(&key);
        EXPECT_GE(key, prev);
        prev = key;
        ++count;
      }
      EXPECT_EQ(count, index_->num_blocks());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, IndexContractTest,
    ::testing::Values(
        IndexCase{IndexType::kGrid, Dataset::kUniform, 2000},
        IndexCase{IndexType::kGrid, Dataset::kCity, 2000},
        IndexCase{IndexType::kGrid, Dataset::kClustered, 2000},
        IndexCase{IndexType::kQuadtree, Dataset::kUniform, 2000},
        IndexCase{IndexType::kQuadtree, Dataset::kCity, 2000},
        IndexCase{IndexType::kQuadtree, Dataset::kClustered, 2000},
        IndexCase{IndexType::kRTree, Dataset::kUniform, 2000},
        IndexCase{IndexType::kRTree, Dataset::kCity, 2000},
        IndexCase{IndexType::kRTree, Dataset::kClustered, 2000},
        IndexCase{IndexType::kGrid, Dataset::kUniform, 37},
        IndexCase{IndexType::kQuadtree, Dataset::kUniform, 37},
        IndexCase{IndexType::kRTree, Dataset::kUniform, 37}),
    CaseName);

// --- Structure-specific behaviours ---

TEST(GridIndexTest, RejectsZeroTarget) {
  GridOptions options;
  options.target_points_per_cell = 0;
  auto result = GridIndex::Build(MakeUniform(10, 1), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridIndexTest, EmptyRelationYieldsZeroBlocks) {
  auto grid = GridIndex::Build({}, GridOptions{});
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ((*grid)->num_blocks(), 0u);
  EXPECT_EQ((*grid)->Locate(Point{.id = 0, .x = 1, .y = 1}),
            kInvalidBlockId);
  auto scan = (*grid)->NewScan(Point{.id = 0, .x = 0, .y = 0},
                               ScanOrder::kMinDist);
  EXPECT_FALSE(scan->HasNext());
}

TEST(GridIndexTest, SingleRepeatedPointCollapsesToOneCell) {
  PointSet points(50, Point{.id = 0, .x = 5, .y = 5});
  AssignSequentialIds(points);
  auto grid = GridIndex::Build(points, GridOptions{});
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ((*grid)->num_blocks(), 1u);
  EXPECT_EQ((*grid)->block(0).count(), 50u);
}

TEST(GridIndexTest, RespectsMaxCellsPerAxis) {
  GridOptions options;
  options.target_points_per_cell = 1;
  options.max_cells_per_axis = 4;
  auto grid = GridIndex::Build(MakeUniform(10000, 3), options);
  ASSERT_TRUE(grid.ok());
  EXPECT_LE((*grid)->cols(), 4u);
  EXPECT_LE((*grid)->rows(), 4u);
}

TEST(QuadtreeIndexTest, SplitsUntilCapacity) {
  QuadtreeOptions options;
  options.leaf_capacity = 8;
  auto tree = QuadtreeIndex::Build(MakeUniform(1000, 5), options);
  ASSERT_TRUE(tree.ok());
  for (const Block& block : (*tree)->blocks()) {
    EXPECT_LE(block.count(), 8u);
  }
  EXPECT_GT((*tree)->depth(), 2u);
}

TEST(QuadtreeIndexTest, MaxDepthStopsDuplicateSplitting) {
  // 100 identical points can never split below capacity; the depth cap
  // must terminate construction.
  PointSet points(100, Point{.id = 0, .x = 1, .y = 1});
  AssignSequentialIds(points);
  QuadtreeOptions options;
  options.leaf_capacity = 4;
  options.max_depth = 6;
  auto tree = QuadtreeIndex::Build(points, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE((*tree)->depth(), 6u);
  std::size_t total = 0;
  for (const Block& block : (*tree)->blocks()) total += block.count();
  EXPECT_EQ(total, 100u);
}

TEST(QuadtreeIndexTest, RejectsZeroCapacity) {
  QuadtreeOptions options;
  options.leaf_capacity = 0;
  EXPECT_FALSE(QuadtreeIndex::Build(MakeUniform(10, 1), options).ok());
}

TEST(RTreeIndexTest, LeavesRespectCapacityAndHeightIsLogarithmic) {
  RTreeOptions options;
  options.leaf_capacity = 32;
  options.fanout = 8;
  auto tree = RTreeIndex::Build(MakeUniform(5000, 9), options);
  ASSERT_TRUE(tree.ok());
  for (const Block& block : (*tree)->blocks()) {
    EXPECT_LE(block.count(), 32u);
  }
  EXPECT_GE((*tree)->height(), 2u);
  EXPECT_LE((*tree)->height(), 6u);
}

TEST(RTreeIndexTest, RejectsBadOptions) {
  RTreeOptions options;
  options.fanout = 1;
  EXPECT_FALSE(RTreeIndex::Build(MakeUniform(10, 1), options).ok());
  options.fanout = 8;
  options.leaf_capacity = 0;
  EXPECT_FALSE(RTreeIndex::Build(MakeUniform(10, 1), options).ok());
}

TEST(IndexFactoryTest, BuildsEveryType) {
  const PointSet points = MakeUniform(500, 21);
  for (const IndexType type : testing::AllIndexTypes()) {
    IndexOptions options;
    options.type = type;
    auto index = BuildIndex(points, options);
    ASSERT_TRUE(index.ok()) << ToString(type);
    EXPECT_EQ((*index)->num_points(), points.size());
    EXPECT_FALSE((*index)->Describe().empty());
  }
}

}  // namespace
}  // namespace knnq
