// Section 4.2 tests: two chained kNN-joins A -> B -> C. All three QEPs
// of Figure 13 must agree with each other and with brute force; the
// nested join's cache changes cost, never results.

#include "gtest/gtest.h"
#include "src/core/chained_joins.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;
using testing::RefChained;

struct ChainedCase {
  IndexType type;
  std::size_t k_ab;
  std::size_t k_bc;
};

std::string CaseName(const ::testing::TestParamInfo<ChainedCase>& info) {
  return std::string(ToString(info.param.type)) + "_kab" +
         std::to_string(info.param.k_ab) + "_kbc" +
         std::to_string(info.param.k_bc);
}

class ChainedPropertyTest : public ::testing::TestWithParam<ChainedCase> {};

TEST_P(ChainedPropertyTest, AllThreeQepsMatchBruteForce) {
  const ChainedCase& c = GetParam();
  const PointSet a = MakeUniform(120, /*seed=*/111, /*first_id=*/0);
  const PointSet b = MakeCity(600, /*seed=*/112, /*first_id=*/10000);
  const PointSet cc = MakeUniform(400, /*seed=*/113, /*first_id=*/20000);
  const auto a_index = MakeIndex(a, c.type);
  const auto b_index = MakeIndex(b, c.type);
  const auto c_index = MakeIndex(cc, c.type);
  const ChainedJoinsQuery query{
      .a = a_index.get(),
      .b = b_index.get(),
      .c = c_index.get(),
      .k_ab = c.k_ab,
      .k_bc = c.k_bc,
  };
  const TripletResult expected = RefChained(a, b, cc, c.k_ab, c.k_bc);

  const auto qep1 = ChainedJoinsRightDeep(query);
  ASSERT_TRUE(qep1.ok());
  EXPECT_EQ(*qep1, expected) << "QEP1 (right-deep) deviates";

  const auto qep2 = ChainedJoinsJoinIntersection(query);
  ASSERT_TRUE(qep2.ok());
  EXPECT_EQ(*qep2, expected) << "QEP2 (join intersection) deviates";

  const auto qep3_cached = ChainedJoinsNested(query, /*cache_bc=*/true);
  ASSERT_TRUE(qep3_cached.ok());
  EXPECT_EQ(*qep3_cached, expected) << "QEP3 (cached) deviates";

  const auto qep3_plain = ChainedJoinsNested(query, /*cache_bc=*/false);
  ASSERT_TRUE(qep3_plain.ok());
  EXPECT_EQ(*qep3_plain, expected) << "QEP3 (uncached) deviates";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChainedPropertyTest,
    ::testing::Values(ChainedCase{IndexType::kGrid, 2, 2},
                      ChainedCase{IndexType::kGrid, 2, 6},
                      ChainedCase{IndexType::kGrid, 6, 2},
                      ChainedCase{IndexType::kGrid, 4, 4},
                      ChainedCase{IndexType::kQuadtree, 2, 6},
                      ChainedCase{IndexType::kQuadtree, 4, 4},
                      ChainedCase{IndexType::kRTree, 2, 6},
                      ChainedCase{IndexType::kRTree, 4, 4}),
    CaseName);

TEST(ChainedJoinsTest, ExpectedCardinality) {
  // Every a contributes k_ab b's; every reached b contributes k_bc c's;
  // with |B| >= k_ab and |C| >= k_bc the result has exactly
  // |A| * k_ab * k_bc triplets (triplets repeat b's, not rows).
  const PointSet a = MakeUniform(30, 114, 0);
  const PointSet b = MakeUniform(300, 115, 10000);
  const PointSet cc = MakeUniform(300, 116, 20000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const auto c_index = MakeIndex(cc);
  const ChainedJoinsQuery query{.a = a_index.get(),
                                .b = b_index.get(),
                                .c = c_index.get(),
                                .k_ab = 3,
                                .k_bc = 5};
  EXPECT_EQ(ChainedJoinsNested(query)->size(), 30u * 3u * 5u);
}

TEST(ChainedJoinsTest, CacheSavesRepeatedComputations) {
  // With clustered A, many a's share the same nearest b's; the cache
  // must collapse those repeated (B JOIN C) probes (Section 4.2.1).
  const PointSet a = MakeClustered(2, 120, /*seed=*/117, /*first_id=*/0);
  const PointSet b = MakeCity(600, /*seed=*/118, /*first_id=*/10000);
  const PointSet cc = MakeCity(600, /*seed=*/119, /*first_id=*/20000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const auto c_index = MakeIndex(cc);
  const ChainedJoinsQuery query{.a = a_index.get(),
                                .b = b_index.get(),
                                .c = c_index.get(),
                                .k_ab = 4,
                                .k_bc = 4};

  ChainedJoinsStats cached_stats;
  ChainedJoinsStats plain_stats;
  const auto cached = ChainedJoinsNested(query, true, &cached_stats);
  const auto plain = ChainedJoinsNested(query, false, &plain_stats);
  EXPECT_EQ(*cached, *plain);
  EXPECT_GT(cached_stats.cache_hits, 0u);
  EXPECT_LT(cached_stats.b_neighborhoods_computed,
            plain_stats.b_neighborhoods_computed);
  // Uncached: one probe per produced (a, b) pair.
  EXPECT_EQ(plain_stats.b_neighborhoods_computed, a.size() * query.k_ab);
}

TEST(ChainedJoinsTest, NestedComputesFewerBNeighborhoodsThanRightDeep) {
  // QEP1 materializes B JOIN C for every b in B; QEP3 touches only b's
  // reachable from A - the pruning that makes it the preferred plan.
  const PointSet a = MakeClustered(1, 50, /*seed=*/120, /*first_id=*/0);
  const PointSet b = MakeUniform(1200, /*seed=*/121, /*first_id=*/10000);
  const PointSet cc = MakeUniform(500, /*seed=*/122, /*first_id=*/20000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const auto c_index = MakeIndex(cc);
  const ChainedJoinsQuery query{.a = a_index.get(),
                                .b = b_index.get(),
                                .c = c_index.get(),
                                .k_ab = 3,
                                .k_bc = 3};
  ChainedJoinsStats nested_stats;
  ChainedJoinsStats right_deep_stats;
  const auto nested = ChainedJoinsNested(query, true, &nested_stats);
  const auto right_deep = ChainedJoinsRightDeep(query, &right_deep_stats);
  EXPECT_EQ(*nested, *right_deep);
  EXPECT_EQ(right_deep_stats.b_neighborhoods_computed, b.size());
  EXPECT_LT(nested_stats.b_neighborhoods_computed, b.size() / 4);
}

TEST(ChainedJoinsTest, EmptyRelationsYieldEmptyResults) {
  const auto empty = MakeIndex(PointSet{});
  const auto small = MakeIndex(MakeUniform(20, 123));
  for (const auto& [a, b, c] :
       {std::tuple{empty.get(), small.get(), small.get()},
        std::tuple{small.get(), empty.get(), small.get()},
        std::tuple{small.get(), small.get(), empty.get()}}) {
    const ChainedJoinsQuery query{
        .a = a, .b = b, .c = c, .k_ab = 2, .k_bc = 2};
    EXPECT_TRUE(ChainedJoinsRightDeep(query)->empty());
    EXPECT_TRUE(ChainedJoinsJoinIntersection(query)->empty());
    EXPECT_TRUE(ChainedJoinsNested(query)->empty());
  }
}

TEST(ChainedJoinsTest, RejectsInvalidQueries) {
  const auto index = MakeIndex(MakeUniform(10, 124));
  ChainedJoinsQuery query{.a = index.get(),
                          .b = index.get(),
                          .c = index.get(),
                          .k_ab = 2,
                          .k_bc = 0};
  EXPECT_FALSE(ChainedJoinsRightDeep(query).ok());
  EXPECT_FALSE(ChainedJoinsJoinIntersection(query).ok());
  EXPECT_FALSE(ChainedJoinsNested(query).ok());
  query.k_bc = 2;
  query.c = nullptr;
  EXPECT_FALSE(ChainedJoinsNested(query).ok());
}

TEST(ChainedJoinsTest, PaperFigure13Scenario) {
  // Figure 13's layout: b1 is near no a (so QEP3 never probes it), b2
  // and b3 are each the 2-NN set of both a's.
  const PointSet a = {{.id = 1, .x = 0, .y = 0}, {.id = 2, .x = 1, .y = 0}};
  const PointSet b = {{.id = 11, .x = 30, .y = 30},   // b1: unreachable.
                      {.id = 12, .x = 2, .y = 1},     // b2.
                      {.id = 13, .x = 3, .y = -1}};   // b3.
  const PointSet cc = {{.id = 21, .x = 2, .y = 2},
                       {.id = 22, .x = 4, .y = 0},
                       {.id = 23, .x = 28, .y = 28},
                       {.id = 24, .x = 5, .y = -2}};
  const auto a_index = MakeIndex(a, IndexType::kGrid, 1);
  const auto b_index = MakeIndex(b, IndexType::kGrid, 1);
  const auto c_index = MakeIndex(cc, IndexType::kGrid, 1);
  const ChainedJoinsQuery query{.a = a_index.get(),
                                .b = b_index.get(),
                                .c = c_index.get(),
                                .k_ab = 2,
                                .k_bc = 2};
  const TripletResult expected = RefChained(a, b, cc, 2, 2);
  EXPECT_EQ(*ChainedJoinsRightDeep(query), expected);
  EXPECT_EQ(*ChainedJoinsJoinIntersection(query), expected);
  EXPECT_EQ(*ChainedJoinsNested(query), expected);

  // QEP3 probes only the reachable b's (b2, b3), once each thanks to
  // the cache; QEP1 probes all three.
  ChainedJoinsStats stats;
  ASSERT_TRUE(ChainedJoinsNested(query, true, &stats).ok());
  EXPECT_EQ(stats.b_neighborhoods_computed, 2u);
  EXPECT_EQ(stats.cache_hits, 2u);  // b2 and b3 hit once each via a2.
}

}  // namespace
}  // namespace knnq
