// Section 3 tests: kNN-select on the inner relation of a kNN-join.
// The pivotal property: Counting and Block-Marking (both preprocessing
// modes) return exactly the conceptually correct result, which in turn
// equals an index-free brute-force evaluation - across index
// structures, data shapes, and k combinations.

#include "gtest/gtest.h"
#include "src/core/select_inner_join.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;
using testing::RefSelectInnerJoin;

struct SijCase {
  IndexType type;
  std::size_t outer_n;
  std::size_t inner_n;
  std::size_t join_k;
  std::size_t select_k;
};

std::string CaseName(const ::testing::TestParamInfo<SijCase>& info) {
  return std::string(ToString(info.param.type)) + "_o" +
         std::to_string(info.param.outer_n) + "_i" +
         std::to_string(info.param.inner_n) + "_kj" +
         std::to_string(info.param.join_k) + "_ks" +
         std::to_string(info.param.select_k);
}

class SelectInnerJoinPropertyTest
    : public ::testing::TestWithParam<SijCase> {};

TEST_P(SelectInnerJoinPropertyTest, AllEvaluatorsAgreeWithBruteForce) {
  const SijCase& c = GetParam();
  const PointSet outer = MakeUniform(c.outer_n, /*seed=*/61, /*first_id=*/0);
  const PointSet inner =
      MakeCity(c.inner_n, /*seed=*/62, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer, c.type);
  const auto inner_index = MakeIndex(inner, c.type);
  const Point focal{.id = -1, .x = 700, .y = 300};

  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = c.join_k,
      .focal = focal,
      .select_k = c.select_k,
  };
  const JoinResult expected =
      RefSelectInnerJoin(outer, inner, c.join_k, focal, c.select_k);

  const auto naive = SelectInnerJoinNaive(query);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(*naive, expected) << "naive deviates from brute force";

  const auto counting = SelectInnerJoinCounting(query);
  ASSERT_TRUE(counting.ok());
  EXPECT_EQ(*counting, expected) << "Counting deviates";

  const auto contour =
      SelectInnerJoinBlockMarking(query, PreprocessMode::kContour);
  ASSERT_TRUE(contour.ok());
  EXPECT_EQ(*contour, expected) << "Block-Marking (contour) deviates";

  const auto exhaustive =
      SelectInnerJoinBlockMarking(query, PreprocessMode::kExhaustive);
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_EQ(*exhaustive, expected) << "Block-Marking (exhaustive) deviates";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectInnerJoinPropertyTest,
    ::testing::Values(
        SijCase{IndexType::kGrid, 150, 800, 2, 2},
        SijCase{IndexType::kGrid, 150, 800, 2, 10},
        SijCase{IndexType::kGrid, 150, 800, 10, 2},
        SijCase{IndexType::kGrid, 400, 1500, 5, 5},
        SijCase{IndexType::kGrid, 400, 1500, 1, 25},
        SijCase{IndexType::kQuadtree, 150, 800, 2, 10},
        SijCase{IndexType::kQuadtree, 400, 1500, 5, 5},
        SijCase{IndexType::kRTree, 150, 800, 2, 10},
        SijCase{IndexType::kRTree, 400, 1500, 5, 5}),
    CaseName);

TEST(SelectInnerJoinTest, ClusteredOuterAgreesAcrossEvaluators) {
  const PointSet outer = MakeClustered(4, 150, /*seed=*/63, /*first_id=*/0);
  const PointSet inner = MakeCity(1200, /*seed=*/64, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 3,
      .focal = Point{.id = -1, .x = 200, .y = 600},
      .select_k = 8,
  };
  const JoinResult expected = RefSelectInnerJoin(
      outer, inner, query.join_k, query.focal, query.select_k);
  EXPECT_EQ(*SelectInnerJoinNaive(query), expected);
  EXPECT_EQ(*SelectInnerJoinCounting(query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(query), expected);
}

TEST(SelectInnerJoinTest, CountingPrunesDistantOuterPoints) {
  // Outer points far from the focal point have dense inner
  // neighborhoods between them and the focal neighborhood, so most must
  // be pruned without a neighborhood computation.
  const PointSet outer = MakeUniform(500, 65, /*first_id=*/0);
  const PointSet inner = MakeUniform(5000, 66, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .focal = Point{.id = -1, .x = 500, .y = 400},
      .select_k = 2,
  };
  SelectInnerJoinStats stats;
  ASSERT_TRUE(SelectInnerJoinCounting(query, &stats).ok());
  EXPECT_GT(stats.pruned_points, outer.size() / 2)
      << "Counting should prune most outer points";
  EXPECT_EQ(stats.pruned_points + stats.neighborhoods_computed,
            outer.size());
}

TEST(SelectInnerJoinTest, BlockMarkingSkipsMostBlocks) {
  const PointSet outer = MakeUniform(3000, 67, /*first_id=*/0);
  const PointSet inner = MakeUniform(5000, 68, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .focal = Point{.id = -1, .x = 500, .y = 400},
      .select_k = 2,
  };
  SelectInnerJoinStats stats;
  ASSERT_TRUE(SelectInnerJoinBlockMarking(query, PreprocessMode::kContour,
                                          &stats)
                  .ok());
  EXPECT_LT(stats.contributing_blocks, outer_index->num_blocks() / 4)
      << "most outer blocks should be Non-Contributing";
  EXPECT_LT(stats.neighborhoods_computed, outer.size() / 4)
      << "points in Non-Contributing blocks must not be joined";
  // The contour rule must stop before probing every block.
  EXPECT_LT(stats.blocks_preprocessed, outer_index->num_blocks());
}

TEST(SelectInnerJoinTest, ContourProbesFewerBlocksThanExhaustive) {
  const PointSet outer = MakeUniform(3000, 69);
  const PointSet inner = MakeUniform(3000, 70, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .focal = Point{.id = -1, .x = 500, .y = 400},
      .select_k = 4,
  };
  SelectInnerJoinStats contour_stats;
  SelectInnerJoinStats exhaustive_stats;
  const auto contour = SelectInnerJoinBlockMarking(
      query, PreprocessMode::kContour, &contour_stats);
  const auto exhaustive = SelectInnerJoinBlockMarking(
      query, PreprocessMode::kExhaustive, &exhaustive_stats);
  EXPECT_EQ(*contour, *exhaustive);
  EXPECT_LT(contour_stats.blocks_preprocessed,
            exhaustive_stats.blocks_preprocessed);
  EXPECT_EQ(exhaustive_stats.blocks_preprocessed,
            outer_index->num_blocks());
}

TEST(SelectInnerJoinTest, SelectWiderThanInnerRelationKeepsJoinSemantics) {
  // select_k > |E2|: the select returns all of E2, so the query
  // degenerates to the plain kNN-join.
  const PointSet outer = MakeUniform(80, 71);
  const PointSet inner = MakeUniform(40, 72, /*first_id=*/100000);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(inner);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 3,
      .focal = Point{.id = -1, .x = 0, .y = 0},
      .select_k = 1000,
  };
  const JoinResult expected =
      RefSelectInnerJoin(outer, inner, 3, query.focal, 1000);
  EXPECT_EQ(expected.size(), outer.size() * 3);
  EXPECT_EQ(*SelectInnerJoinNaive(query), expected);
  EXPECT_EQ(*SelectInnerJoinCounting(query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(query), expected);
}

TEST(SelectInnerJoinTest, EmptyInnerYieldsEmptyResult) {
  const PointSet outer = MakeUniform(20, 73);
  const auto outer_index = MakeIndex(outer);
  const auto inner_index = MakeIndex(PointSet{});
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .focal = Point{.id = -1, .x = 0, .y = 0},
      .select_k = 2,
  };
  EXPECT_TRUE(SelectInnerJoinNaive(query)->empty());
  EXPECT_TRUE(SelectInnerJoinCounting(query)->empty());
  EXPECT_TRUE(SelectInnerJoinBlockMarking(query)->empty());
}

TEST(SelectInnerJoinTest, EmptyOuterYieldsEmptyResult) {
  const auto outer_index = MakeIndex(PointSet{});
  const auto inner_index = MakeIndex(MakeUniform(100, 74));
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .focal = Point{.id = -1, .x = 0, .y = 0},
      .select_k = 2,
  };
  EXPECT_TRUE(SelectInnerJoinNaive(query)->empty());
  EXPECT_TRUE(SelectInnerJoinCounting(query)->empty());
  EXPECT_TRUE(SelectInnerJoinBlockMarking(query)->empty());
}

TEST(SelectInnerJoinTest, RejectsInvalidQueries) {
  const auto index = MakeIndex(MakeUniform(10, 75));
  SelectInnerJoinQuery query{
      .outer = index.get(),
      .inner = index.get(),
      .join_k = 0,
      .focal = Point{.id = -1, .x = 0, .y = 0},
      .select_k = 2,
  };
  EXPECT_FALSE(SelectInnerJoinNaive(query).ok());
  EXPECT_FALSE(SelectInnerJoinCounting(query).ok());
  EXPECT_FALSE(SelectInnerJoinBlockMarking(query).ok());
  query.join_k = 2;
  query.select_k = 0;
  EXPECT_FALSE(SelectInnerJoinNaive(query).ok());
  query.select_k = 2;
  query.outer = nullptr;
  EXPECT_FALSE(SelectInnerJoinCounting(query).ok());
}

TEST(SelectInnerJoinTest, PaperFigure1Scenario) {
  // The running example of Section 1: mechanic shops (outer), hotels
  // (inner), shopping center (focal), k = 2 for both predicates. A
  // hand-constructed layout mirroring Figure 1's geometry: hotel h1 is
  // near mechanics m1/m2, h2 near m3, h3 far from everything; the
  // shopping center's 2-NN are h1 and h2.
  const PointSet mechanics = {
      {.id = 1, .x = 10, .y = 50},   // m1: nearest hotels h1, h2.
      {.id = 2, .x = 20, .y = 50},   // m2: nearest hotels h1, h2.
      {.id = 3, .x = 60, .y = 50},   // m3: nearest hotels h2, h3.
      {.id = 4, .x = 95, .y = 50},   // m4: nearest hotels h3, h4.
  };
  const PointSet hotels = {
      {.id = 101, .x = 15, .y = 55},   // h1.
      {.id = 102, .x = 50, .y = 55},   // h2.
      {.id = 103, .x = 80, .y = 55},   // h3.
      {.id = 104, .x = 100, .y = 55},  // h4.
  };
  const Point shopping_center{.id = -1, .x = 30, .y = 60};
  // 2-NN of the shopping center: h1 (distance ~15.8) and h2 (~20.6).

  const auto outer_index = MakeIndex(mechanics, IndexType::kGrid, 2);
  const auto inner_index = MakeIndex(hotels, IndexType::kGrid, 2);
  const SelectInnerJoinQuery query{
      .outer = outer_index.get(),
      .inner = inner_index.get(),
      .join_k = 2,
      .focal = shopping_center,
      .select_k = 2,
  };

  // Correct answer: every (m, h) pair where h is a 2-NN of m AND one of
  // {h1, h2}: m1 -> h1, h2; m2 -> h1, h2; m3 -> h2 (its other neighbor
  // h3 fails the select); m4 -> nothing (neighbors h3, h4 both fail).
  JoinResult expected = {
      JoinPair{mechanics[0], hotels[0]}, JoinPair{mechanics[0], hotels[1]},
      JoinPair{mechanics[1], hotels[0]}, JoinPair{mechanics[1], hotels[1]},
      JoinPair{mechanics[2], hotels[1]},
  };
  Canonicalize(expected);
  EXPECT_EQ(*SelectInnerJoinNaive(query), expected);
  EXPECT_EQ(*SelectInnerJoinCounting(query), expected);
  EXPECT_EQ(*SelectInnerJoinBlockMarking(query), expected);

  // The INVALID plan of Figure 2 - pushing the select below the join's
  // inner side - returns a different (wrong) result: every mechanic
  // paired with both h1 and h2.
  const Neighborhood sigma = BruteForceKnn(hotels, shopping_center, 2);
  PointSet pushed_inner;
  for (const Neighbor& n : sigma) pushed_inner.push_back(n.point);
  JoinResult wrong;
  for (const Point& m : mechanics) {
    for (const Neighbor& n : BruteForceKnn(pushed_inner, m, 2)) {
      wrong.push_back(JoinPair{m, n.point});
    }
  }
  Canonicalize(wrong);
  EXPECT_EQ(wrong.size(), 8u);
  EXPECT_NE(wrong, expected)
      << "pushing the select below the inner side must change results "
         "(that is exactly why it is invalid)";
}

}  // namespace
}  // namespace knnq
