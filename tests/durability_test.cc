// Durability tests: WAL encode/scan round trips, the corruption
// matrix (torn tail, flipped CRC byte, non-monotone LSNs, bad magic —
// each must recover to the last good prefix with a positioned error,
// never crash or silently diverge), snapshot round trips, and the
// recovery differentials:
//
//   * graceful restart — serve, mutate, reopen the data dir, and every
//     query shape must answer byte-identically to a twin engine that
//     applied the same ops in memory;
//   * kill-mid-churn — fork a child that churns DML into a durable
//     engine, SIGKILL it mid-write, recover in the parent, and compare
//     the recovered engine against a twin replaying ops 1..last_lsn.
//     Single-writer determinism makes the twin exact: generated op k
//     commits as LSN k, so recovery to LSN L means state(ops 1..L).
//
// Both differentials run sharded and unsharded (the COW and legacy
// write paths hit different WalSink call sites).

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/dataset_io.h"
#include "src/durability/durability_manager.h"
#include "src/durability/snapshot.h"
#include "src/durability/wal.h"
#include "src/engine/query_engine.h"
#include "src/lang/parser.h"
#include "src/lang/unparser.h"
#include "src/planner/catalog.h"
#include "src/server/wire.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::EncodeWalRecord;
using durability::ReadSnapshot;
using durability::ScanWal;
using durability::SnapshotImage;
using durability::SnapshotRelation;
using durability::WalSyncPolicy;
using durability::WalWriter;
using durability::WriteSnapshot;

// ------------------------------------------------------------- helpers

/// A fresh per-test data dir under the gtest temp root.
std::string FreshDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/knnq_dur_" + name;
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/catalog.snapshot").c_str());
  ::rmdir(dir.c_str());
  EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  return dir;
}

std::string SlurpFile(const std::string& path) {
  auto text = ReadTextFile(path);
  EXPECT_TRUE(text.ok()) << text.status().ToString();
  return text.ok() ? *text : std::string();
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Deterministic churn: op k is a pure function of k, so a twin engine
/// replaying ops 1..L reproduces exactly the state a recovery to LSN L
/// must have. Mostly inserts with auto-assigned ids; every 7th op
/// erases a low id (absent ids affect 0 rows, which is fine — the WAL
/// replays the outcome either way).
DmlRequest ChurnOp(std::uint64_t k) {
  std::uint64_t s = k * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  const auto next = [&s] {
    s ^= s >> 27;
    s *= 0x94D049BB133111EBull;
    s ^= s >> 31;
    return s;
  };
  const std::string relation = (next() % 2 == 0) ? "a" : "b";
  if (k % 7 == 0) {
    return DmlRequest::MutateOps(
        relation,
        {MutationOp::Erase(static_cast<PointId>(next() % 400))});
  }
  const double x = static_cast<double>(next() % 100000) / 100.0;
  const double y = static_cast<double>(next() % 80000) / 100.0;
  std::vector<MutationOp> ops;
  ops.push_back(MutationOp::Insert(x, y));
  if (k % 5 == 0) ops.push_back(MutationOp::Insert(y, x));
  return DmlRequest::MutateOps(relation, ops);
}

/// The six query shapes of the suite's differential harnesses, over
/// the churned relations a and b (and static c for the three-relation
/// shapes).
const char* kQueryShapes[] = {
    "SELECT KNN(a, 5, AT(120, 100)) INTERSECT KNN(a, 9, AT(150, 130));",
    "JOIN KNN(a, b, 3) WHERE INNER IN KNN(b, 10, AT(100, 100));",
    "JOIN KNN(a, b, 3) WHERE OUTER IN KNN(a, 6, AT(140, 90));",
    "JOIN KNN(a, b, 2) WHERE INNER IN RANGE(0, 0, 500, 400);",
    "JOIN KNN(a, b, 2) THEN KNN(b, c, 3);",
    "JOIN KNN(a, b, 3) INTERSECT KNN(c, b, 2);",
};

/// Runs one KNNQL query and renders the full wire record — the
/// byte-compare currency of the differentials.
std::string QueryRecord(QueryEngine& engine, const std::string& text) {
  const auto script = knnql::ParseScript(text);
  EXPECT_TRUE(script.ok()) << text;
  if (!script.ok() || script->empty()) return "<parse error>";
  const auto* query =
      std::get_if<knnql::Query>(&script->front().body);
  EXPECT_NE(query, nullptr) << text;
  if (query == nullptr) return "<not a query>";
  auto spec = engine.BindQuery(*query);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString() << "\n " << text;
  if (!spec.ok()) return "<bind error>";
  const EngineResult run = engine.Run(*spec);
  EXPECT_TRUE(run.ok()) << run.status.ToString() << "\n " << text;
  if (!run.ok()) return "<run error>";
  return server::JsonQueryRecord(knnql::Unparse(*spec), run);
}

/// The wire record carries volatile stats (wall time); strip them the
/// way server_test does before comparing.
std::string StripStats(const std::string& record) {
  const std::size_t begin = record.find("\"stats\": {");
  if (begin == std::string::npos) return record;
  const std::size_t end = record.find('}', begin);
  if (end == std::string::npos) return record;
  return record.substr(0, begin) + record.substr(end + 1);
}

void ExpectEnginesAgree(QueryEngine& recovered, QueryEngine& twin) {
  for (const char* shape : kQueryShapes) {
    SCOPED_TRACE(shape);
    EXPECT_EQ(StripStats(QueryRecord(recovered, shape)),
              StripStats(QueryRecord(twin, shape)));
  }
}

Catalog SeedRelations() {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddRelation("a", testing::MakeCity(600, 11)).ok());
  EXPECT_TRUE(
      catalog.AddRelation("b", testing::MakeUniform(500, 12)).ok());
  EXPECT_TRUE(
      catalog.AddRelation("c", testing::MakeClustered(5, 80, 13)).ok());
  return catalog;
}

EngineOptions DurableEngineOptions(std::size_t shards, WalSink* wal) {
  EngineOptions options;
  options.num_threads = 1;
  options.shards = shards;
  options.wal = wal;
  return options;
}

DmlRequest SampleMutate(std::uint64_t salt) {
  return DmlRequest::MutateOps(
      "a", {MutationOp::Insert(1.5 + static_cast<double>(salt), 2.25),
            MutationOp::Erase(static_cast<PointId>(salt))});
}

// --------------------------------------------------------- WAL basics

TEST(WalTest, AppendScanRoundTrip) {
  const std::string dir = FreshDataDir("roundtrip");
  const std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path, {}, 0);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(writer->Append(1, SampleMutate(7)).ok());
    PointSet loaded;
    loaded.push_back({.id = 4, .x = 0.5, .y = -1.25});
    loaded.push_back({.id = 9, .x = 100.0, .y = 200.0});
    ASSERT_TRUE(
        writer->Append(2, DmlRequest::Load("b", std::move(loaded))).ok());
  }
  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->truncated);
  EXPECT_EQ(scan->last_lsn, 2u);
  ASSERT_EQ(scan->records.size(), 2u);

  const DmlRequest& mutate = scan->records[0].request;
  EXPECT_EQ(scan->records[0].lsn, 1u);
  EXPECT_EQ(mutate.kind, DmlRequest::Kind::kMutate);
  EXPECT_EQ(mutate.relation, "a");
  ASSERT_EQ(mutate.ops.size(), 2u);
  EXPECT_EQ(mutate.ops[0].kind, MutationOp::Kind::kInsert);
  EXPECT_EQ(mutate.ops[0].point.x, 8.5);
  EXPECT_EQ(mutate.ops[1].kind, MutationOp::Kind::kErase);
  EXPECT_EQ(mutate.ops[1].erase_id, 7);

  const DmlRequest& load = scan->records[1].request;
  EXPECT_EQ(scan->records[1].lsn, 2u);
  EXPECT_EQ(load.kind, DmlRequest::Kind::kLoad);
  EXPECT_EQ(load.relation, "b");
  ASSERT_EQ(load.points.size(), 2u);
  EXPECT_EQ(load.points[0].id, 4);
  EXPECT_EQ(load.points[0].y, -1.25);
  EXPECT_EQ(load.points[1].x, 100.0);
}

TEST(WalTest, TornTailTruncatesToGoodPrefixAndLogStaysAppendable) {
  const std::string dir = FreshDataDir("torn");
  const std::string path = dir + "/wal.log";
  std::uint64_t two_records = 0;
  {
    auto writer = WalWriter::Open(path, {}, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, SampleMutate(1)).ok());
    ASSERT_TRUE(writer->Append(2, SampleMutate(2)).ok());
    two_records = writer->size_bytes();
    ASSERT_TRUE(writer->Append(3, SampleMutate(3)).ok());
  }
  // Crash mid-write: the last record loses its tail.
  const std::string bytes = SlurpFile(path);
  ASSERT_GT(bytes.size(), two_records + 5);
  DumpFile(path, bytes.substr(0, two_records + 5));

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->truncated);
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->last_lsn, 2u);
  EXPECT_EQ(scan->good_bytes, two_records);
  EXPECT_NE(scan->tail_error.find("torn record"), std::string::npos)
      << scan->tail_error;
  EXPECT_NE(scan->tail_error.find(std::to_string(two_records)),
            std::string::npos)
      << "tail_error should name the byte offset: " << scan->tail_error;

  // Recovery reopens over the good prefix and keeps appending.
  auto writer = WalWriter::Open(path, {}, scan->good_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(3, SampleMutate(33)).ok());
  auto rescan = ScanWal(path);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->truncated);
  EXPECT_EQ(rescan->records.size(), 3u);
  EXPECT_EQ(rescan->last_lsn, 3u);
}

TEST(WalTest, FlippedCrcByteStopsTheScanWithAPositionedError) {
  const std::string dir = FreshDataDir("crcflip");
  const std::string path = dir + "/wal.log";
  std::uint64_t one_record = 0;
  {
    auto writer = WalWriter::Open(path, {}, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, SampleMutate(1)).ok());
    one_record = writer->size_bytes();
    ASSERT_TRUE(writer->Append(2, SampleMutate(2)).ok());
    ASSERT_TRUE(writer->Append(3, SampleMutate(3)).ok());
  }
  std::string bytes = SlurpFile(path);
  // Flip one byte inside record 2's body (offset +8 skips its header).
  bytes[one_record + 12] = static_cast<char>(bytes[one_record + 12] ^ 0x40);
  DumpFile(path, bytes);

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->truncated);
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->last_lsn, 1u);
  EXPECT_EQ(scan->good_bytes, one_record);
  EXPECT_NE(scan->tail_error.find("CRC mismatch"), std::string::npos)
      << scan->tail_error;
  EXPECT_NE(scan->tail_error.find(std::to_string(one_record)),
            std::string::npos)
      << scan->tail_error;
}

TEST(WalTest, NonMonotoneLsnStopsTheScan) {
  const std::string dir = FreshDataDir("duplsn");
  const std::string path = dir + "/wal.log";
  std::string bytes(durability::kWalMagic);
  bytes += EncodeWalRecord(1, SampleMutate(1));
  bytes += EncodeWalRecord(5, SampleMutate(2));
  bytes += EncodeWalRecord(5, SampleMutate(3));  // Duplicate LSN.
  DumpFile(path, bytes);

  auto scan = ScanWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->truncated);
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->last_lsn, 5u);
  EXPECT_NE(scan->tail_error.find("not greater"), std::string::npos)
      << scan->tail_error;
}

TEST(WalTest, BadMagicIsARefusalNotACrash) {
  const std::string dir = FreshDataDir("badmagic");
  const std::string path = dir + "/wal.log";
  DumpFile(path, "definitely not a WAL file");
  auto scan = ScanWal(path);
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.status().message().find("bad magic"), std::string::npos)
      << scan.status().ToString();
  EXPECT_NE(scan.status().message().find(path), std::string::npos);
}

// ---------------------------------------------------------- snapshots

TEST(SnapshotTest, RoundTripPreservesEveryField) {
  const std::string dir = FreshDataDir("snap");
  const std::string path = dir + "/catalog.snapshot";
  SnapshotImage image;
  image.lsn = 42;
  SnapshotRelation rel;
  rel.name = "houses";
  rel.type = IndexType::kRTree;
  rel.next_id = 901;
  rel.last_lsn = 40;
  rel.points.push_back({.id = 1, .x = 0.125, .y = -3.5});
  rel.points.push_back({.id = 900, .x = 17.0, .y = 0.0});
  image.relations.push_back(rel);
  ASSERT_TRUE(WriteSnapshot(path, image).ok());

  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->lsn, 42u);
  ASSERT_EQ(loaded->relations.size(), 1u);
  const SnapshotRelation& out = loaded->relations[0];
  EXPECT_EQ(out.name, "houses");
  EXPECT_EQ(out.type, IndexType::kRTree);
  EXPECT_EQ(out.next_id, 901);
  EXPECT_EQ(out.last_lsn, 40u);
  ASSERT_EQ(out.points.size(), 2u);
  EXPECT_EQ(out.points[0].x, 0.125);
  EXPECT_EQ(out.points[1].id, 900);
}

TEST(SnapshotTest, CorruptionIsRefusedNamingTheFile) {
  const std::string dir = FreshDataDir("snapcorrupt");
  const std::string path = dir + "/catalog.snapshot";
  SnapshotImage image;
  image.lsn = 7;
  ASSERT_TRUE(WriteSnapshot(path, image).ok());
  std::string bytes = SlurpFile(path);
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  DumpFile(path, bytes);
  auto loaded = ReadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status().ToString();
}

// ------------------------------------------- recovery differentials

/// Applies ops 1..upto to a WAL-free twin over the same seed catalog.
std::unique_ptr<QueryEngine> BuildTwin(std::size_t shards,
                                       std::uint64_t upto) {
  auto twin = std::make_unique<QueryEngine>(
      SeedRelations(), DurableEngineOptions(shards, nullptr));
  for (std::uint64_t k = 1; k <= upto; ++k) {
    (void)twin->ExecuteDml(ChurnOp(k));
  }
  return twin;
}

class RecoveryDifferentialTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecoveryDifferentialTest, GracefulRestartMatchesTwin) {
  const std::size_t shards = GetParam();
  const std::string dir =
      FreshDataDir("graceful_" + std::to_string(shards));
  constexpr std::uint64_t kOps = 48;

  DurabilityOptions options;
  options.data_dir = dir;
  options.sync = WalSyncPolicy::kNone;  // Graceful close needs no fsync.
  {
    auto manager = DurabilityManager::Open(options);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    QueryEngine engine(SeedRelations(),
                       DurableEngineOptions(shards, manager->get()));
    auto report = (*manager)->Recover(&engine);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->from_snapshot);  // First boot: baseline cut.
    for (std::uint64_t k = 1; k <= kOps; ++k) {
      (void)engine.ExecuteDml(ChurnOp(k));
    }
    // Mid-run manual snapshot: recovery must compose snapshot + tail.
    if (shards == 1) {
      auto cut = (*manager)->Snapshot(&engine);
      ASSERT_TRUE(cut.ok()) << cut.status().ToString();
      EXPECT_EQ(*cut, kOps);
    }
    for (std::uint64_t k = kOps + 1; k <= kOps + 16; ++k) {
      (void)engine.ExecuteDml(ChurnOp(k));
    }
  }

  auto manager = DurabilityManager::Open(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  Catalog recovered_catalog;
  ASSERT_TRUE((*manager)->SeedCatalog(&recovered_catalog).ok());
  QueryEngine recovered(std::move(recovered_catalog),
                        DurableEngineOptions(shards, manager->get()));
  auto report = (*manager)->Recover(&recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->from_snapshot);
  EXPECT_EQ(report->last_lsn, kOps + 16);
  EXPECT_FALSE(report->wal_truncated);

  auto twin = BuildTwin(shards, kOps + 16);
  ExpectEnginesAgree(recovered, *twin);
}

TEST_P(RecoveryDifferentialTest, KillMidChurnMatchesTwin) {
  const std::size_t shards = GetParam();
  const std::string dir = FreshDataDir("kill_" + std::to_string(shards));
  DurabilityOptions options;
  options.data_dir = dir;
  options.sync = WalSyncPolicy::kAlways;

  // The child churns; the parent SIGKILLs it mid-write. fork() happens
  // before this test constructs any engine, so the parent is
  // effectively single-threaded at the fork point.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto manager = DurabilityManager::Open(options);
    if (!manager.ok()) _exit(2);
    QueryEngine engine(SeedRelations(),
                       DurableEngineOptions(shards, manager->get()));
    if (!(*manager)->Recover(&engine).ok()) _exit(3);
    for (std::uint64_t k = 1; k <= 200000; ++k) {
      (void)engine.ExecuteDml(ChurnOp(k));
    }
    _exit(0);  // Outlived the drill; recovery still must work.
  }
  // Let the churn commit some writes, then pull the plug.
  ::usleep(150 * 1000);
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus) || WIFEXITED(wstatus));
  if (WIFEXITED(wstatus)) {
    ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child setup failed";
  }

  auto manager = DurabilityManager::Open(options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  Catalog recovered_catalog;
  ASSERT_TRUE((*manager)->SeedCatalog(&recovered_catalog).ok());
  QueryEngine recovered(std::move(recovered_catalog),
                        DurableEngineOptions(shards, manager->get()));
  auto report = (*manager)->Recover(&recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->from_snapshot);  // The baseline from first boot.
  ASSERT_GT(report->last_lsn, 0u) << "kill fired before any commit";

  // Single writer: generated op k committed as LSN k, so the twin
  // replays exactly ops 1..last_lsn.
  auto twin = BuildTwin(shards, report->last_lsn);
  ExpectEnginesAgree(recovered, *twin);
}

INSTANTIATE_TEST_SUITE_P(ShardSweep, RecoveryDifferentialTest,
                         ::testing::Values(std::size_t{1},
                                           std::size_t{4}));

// ------------------------------------------------------ auto-snapshot

TEST(DurabilityManagerTest, AutoSnapshotCutsAtTheIntervalAndRecovers) {
  const std::string dir = FreshDataDir("autosnap");
  DurabilityOptions options;
  options.data_dir = dir;
  options.sync = WalSyncPolicy::kNone;
  options.snapshot_interval_ops = 5;
  {
    auto manager = DurabilityManager::Open(options);
    ASSERT_TRUE(manager.ok());
    QueryEngine engine(SeedRelations(),
                       DurableEngineOptions(1, manager->get()));
    ASSERT_TRUE((*manager)->Recover(&engine).ok());
    for (std::uint64_t k = 1; k <= 12; ++k) {
      (void)engine.ExecuteDml(ChurnOp(k));
    }
  }
  // 12 ops at interval 5: the second auto cut landed at LSN 10, and
  // the WAL holds only the two ops after it.
  auto snapshot = ReadSnapshot(dir + "/catalog.snapshot");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->lsn, 10u);
  auto scan = ScanWal(dir + "/wal.log");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->last_lsn, 12u);

  auto manager = DurabilityManager::Open(options);
  ASSERT_TRUE(manager.ok());
  Catalog catalog;
  ASSERT_TRUE((*manager)->SeedCatalog(&catalog).ok());
  QueryEngine recovered(std::move(catalog),
                        DurableEngineOptions(1, manager->get()));
  auto report = (*manager)->Recover(&recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->snapshot_lsn, 10u);
  EXPECT_EQ(report->replayed_records, 2u);
  EXPECT_EQ(report->last_lsn, 12u);
  auto twin = BuildTwin(1, 12);
  ExpectEnginesAgree(recovered, *twin);
}

}  // namespace
}  // namespace knnq
