// Tests for the base operations (kNN-select, kNN-join) and the shared
// result containers.

#include "gtest/gtest.h"
#include "src/core/knn_join.h"
#include "src/core/knn_select.h"
#include "src/core/result_types.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeIndex;
using testing::MakeUniform;

TEST(KnnSelectTest, MatchesBruteForce) {
  const PointSet points = MakeUniform(800, 31);
  const auto index = MakeIndex(points);
  const Point focal{.id = -1, .x = 321, .y = 123};
  const auto result = KnnSelect(*index, focal, 12);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(IdsOf(*result), IdsOf(BruteForceKnn(points, focal, 12)));
}

TEST(KnnSelectTest, RejectsZeroK) {
  const auto index = MakeIndex(MakeUniform(10, 1));
  const auto result = KnnSelect(*index, Point{.id = -1, .x = 0, .y = 0}, 0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(KnnJoinTest, MatchesBruteForcePairs) {
  const PointSet outer = MakeUniform(60, 41, /*first_id=*/0);
  const PointSet inner = MakeUniform(200, 42, /*first_id=*/1000);
  const auto inner_index = MakeIndex(inner);
  const auto result = KnnJoin(outer, *inner_index, 3);
  ASSERT_TRUE(result.ok());

  JoinResult expected;
  for (const Point& e1 : outer) {
    for (const Neighbor& n : BruteForceKnn(inner, e1, 3)) {
      expected.push_back(JoinPair{e1, n.point});
    }
  }
  Canonicalize(expected);
  EXPECT_EQ(*result, expected);
}

TEST(KnnJoinTest, EveryOuterPointProducesKPairs) {
  const PointSet outer = MakeUniform(50, 43);
  const PointSet inner = MakeUniform(500, 44, /*first_id=*/1000);
  const auto inner_index = MakeIndex(inner);
  const auto result = KnnJoin(outer, *inner_index, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), outer.size() * 4);
}

TEST(KnnJoinTest, InnerSmallerThanKProducesAllPairs) {
  const PointSet outer = MakeUniform(10, 45);
  const PointSet inner = MakeUniform(3, 46, /*first_id=*/1000);
  const auto inner_index = MakeIndex(inner);
  const auto result = KnnJoin(outer, *inner_index, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), outer.size() * inner.size());
}

TEST(KnnJoinTest, EmptyOuterYieldsNoPairs) {
  const auto inner_index = MakeIndex(MakeUniform(100, 47));
  const auto result = KnnJoin(PointSet{}, *inner_index, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(KnnJoinTest, RejectsZeroK) {
  const auto inner_index = MakeIndex(MakeUniform(100, 48));
  EXPECT_FALSE(KnnJoin(MakeUniform(5, 49), *inner_index, 0).ok());
}

TEST(KnnJoinTest, StreamingMatchesMaterialized) {
  const PointSet outer = MakeUniform(40, 51);
  const PointSet inner = MakeUniform(300, 52, /*first_id=*/1000);
  const auto inner_index = MakeIndex(inner);
  JoinResult streamed;
  ASSERT_TRUE(KnnJoinStreaming(outer, *inner_index, 3,
                               [&](const Point& a, const Point& b) {
                                 streamed.push_back(JoinPair{a, b});
                               })
                  .ok());
  Canonicalize(streamed);
  EXPECT_EQ(streamed, *KnnJoin(outer, *inner_index, 3));
}

TEST(ResultTypesTest, CanonicalizeSortsPairs) {
  JoinResult pairs = {
      JoinPair{{.id = 2, .x = 0, .y = 0}, {.id = 1, .x = 0, .y = 0}},
      JoinPair{{.id = 1, .x = 0, .y = 0}, {.id = 9, .x = 0, .y = 0}},
      JoinPair{{.id = 1, .x = 0, .y = 0}, {.id = 2, .x = 0, .y = 0}},
  };
  Canonicalize(pairs);
  EXPECT_EQ(pairs[0].outer.id, 1);
  EXPECT_EQ(pairs[0].inner.id, 2);
  EXPECT_EQ(pairs[1].inner.id, 9);
  EXPECT_EQ(pairs[2].outer.id, 2);
}

TEST(ResultTypesTest, IntersectNeighborhoodsById) {
  const Neighborhood p = {{{.id = 1, .x = 0, .y = 0}, 1.0},
                          {{.id = 2, .x = 0, .y = 0}, 2.0},
                          {{.id = 3, .x = 0, .y = 0}, 3.0}};
  const Neighborhood q = {{{.id = 3, .x = 0, .y = 0}, 0.5},
                          {{.id = 4, .x = 0, .y = 0}, 0.7},
                          {{.id = 1, .x = 0, .y = 0}, 0.9}};
  const std::vector<Point> both = IntersectNeighborhoods(p, q);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].id, 1);
  EXPECT_EQ(both[1].id, 3);
}

TEST(ResultTypesTest, SummarizeTruncates) {
  JoinResult pairs;
  for (int i = 0; i < 20; ++i) {
    pairs.push_back(JoinPair{{.id = i, .x = 0, .y = 0},
                             {.id = i + 100, .x = 0, .y = 0}});
  }
  const std::string s = Summarize(pairs, 3);
  EXPECT_NE(s.find("20 pairs"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace knnq
