// Tests for the locality algorithm [15] and the locality-based getkNN:
// the primitive every query evaluator builds on. The key property: the
// locality-based neighborhood equals the brute-force neighborhood for
// every index structure, dataset shape, k, and query position.

#include <algorithm>
#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "src/index/knn_searcher.h"
#include "src/index/locality.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::AllIndexTypes;
using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;

struct SearchCase {
  IndexType type;
  std::size_t n;
  std::size_t k;
};

std::string CaseName(const ::testing::TestParamInfo<SearchCase>& info) {
  return std::string(ToString(info.param.type)) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k);
}

class KnnSearchPropertyTest : public ::testing::TestWithParam<SearchCase> {};

TEST_P(KnnSearchPropertyTest, MatchesBruteForceOnUniformData) {
  const PointSet points = MakeUniform(GetParam().n, /*seed=*/101);
  const auto index = MakeIndex(points, GetParam().type);
  KnnSearcher searcher(*index);
  Rng rng(55);
  for (int i = 0; i < 60; ++i) {
    const Point q{.id = -1,
                  .x = rng.Uniform(-100, 1100),
                  .y = rng.Uniform(-100, 900)};
    const Neighborhood expected = BruteForceKnn(points, q, GetParam().k);
    const Neighborhood actual = searcher.GetKnn(q, GetParam().k);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(expected[j].point.id, actual[j].point.id)
          << "query " << q.ToString() << " rank " << j;
      EXPECT_DOUBLE_EQ(expected[j].dist, actual[j].dist);
    }
  }
}

TEST_P(KnnSearchPropertyTest, MatchesBruteForceOnCityData) {
  const PointSet points = MakeCity(GetParam().n, /*seed=*/202);
  const auto index = MakeIndex(points, GetParam().type);
  KnnSearcher searcher(*index);
  Rng rng(66);
  for (int i = 0; i < 40; ++i) {
    const Point q{.id = -1,
                  .x = rng.Uniform(0, 1000),
                  .y = rng.Uniform(0, 800)};
    EXPECT_EQ(IdsOf(BruteForceKnn(points, q, GetParam().k)),
              IdsOf(searcher.GetKnn(q, GetParam().k)));
  }
}

TEST_P(KnnSearchPropertyTest, MatchesBruteForceOnClusteredData) {
  const PointSet points =
      MakeClustered(/*num_clusters=*/6, GetParam().n / 6, /*seed=*/303);
  const auto index = MakeIndex(points, GetParam().type);
  KnnSearcher searcher(*index);
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    const Point q{.id = -1,
                  .x = rng.Uniform(0, 1000),
                  .y = rng.Uniform(0, 800)};
    EXPECT_EQ(IdsOf(BruteForceKnn(points, q, GetParam().k)),
              IdsOf(searcher.GetKnn(q, GetParam().k)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnSearchPropertyTest,
    ::testing::Values(SearchCase{IndexType::kGrid, 600, 1},
                      SearchCase{IndexType::kGrid, 600, 7},
                      SearchCase{IndexType::kGrid, 600, 50},
                      SearchCase{IndexType::kGrid, 3000, 10},
                      SearchCase{IndexType::kQuadtree, 600, 1},
                      SearchCase{IndexType::kQuadtree, 600, 7},
                      SearchCase{IndexType::kQuadtree, 3000, 50},
                      SearchCase{IndexType::kRTree, 600, 1},
                      SearchCase{IndexType::kRTree, 600, 7},
                      SearchCase{IndexType::kRTree, 3000, 50}),
    CaseName);

TEST(KnnSearcherTest, KLargerThanRelationReturnsEverything) {
  const PointSet points = MakeUniform(25, 1);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    const Neighborhood nbr =
        searcher.GetKnn(Point{.id = -1, .x = 0, .y = 0}, 100);
    EXPECT_EQ(nbr.size(), 25u) << ToString(type);
  }
}

TEST(KnnSearcherTest, KZeroReturnsEmpty) {
  const PointSet points = MakeUniform(25, 1);
  const auto index = MakeIndex(points);
  KnnSearcher searcher(*index);
  EXPECT_TRUE(searcher.GetKnn(Point{.id = -1, .x = 0, .y = 0}, 0).empty());
}

TEST(KnnSearcherTest, EmptyIndexReturnsEmpty) {
  const auto index = MakeIndex(PointSet{});
  KnnSearcher searcher(*index);
  EXPECT_TRUE(searcher.GetKnn(Point{.id = -1, .x = 0, .y = 0}, 5).empty());
}

TEST(KnnSearcherTest, TieBreaksById) {
  // Four points at identical distance from the origin query: ranking
  // must fall back to ids, lowest first.
  PointSet points = {
      {.id = 40, .x = 1, .y = 0},  {.id = 10, .x = -1, .y = 0},
      {.id = 30, .x = 0, .y = 1},  {.id = 20, .x = 0, .y = -1},
      {.id = 50, .x = 5, .y = 5},
  };
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type, /*block_capacity=*/2);
    KnnSearcher searcher(*index);
    const Neighborhood nbr =
        searcher.GetKnn(Point{.id = -1, .x = 0, .y = 0}, 3);
    ASSERT_EQ(nbr.size(), 3u);
    EXPECT_EQ(nbr[0].point.id, 10) << ToString(type);
    EXPECT_EQ(nbr[1].point.id, 20) << ToString(type);
    EXPECT_EQ(nbr[2].point.id, 30) << ToString(type);
  }
}

TEST(KnnSearcherTest, DuplicatePointsAllRanked) {
  PointSet points(10, Point{.id = 0, .x = 3, .y = 3});
  AssignSequentialIds(points);
  points.push_back(Point{.id = 100, .x = 50, .y = 50});
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type, /*block_capacity=*/4);
    KnnSearcher searcher(*index);
    const Neighborhood nbr =
        searcher.GetKnn(Point{.id = -1, .x = 3, .y = 3}, 5);
    ASSERT_EQ(nbr.size(), 5u) << ToString(type);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(nbr[i].point.id, static_cast<PointId>(i));
      EXPECT_EQ(nbr[i].dist, 0.0);
    }
  }
}

TEST(KnnSearcherTest, QueryOnDataPointIncludesItself) {
  const PointSet points = MakeUniform(100, 7);
  const auto index = MakeIndex(points);
  KnnSearcher searcher(*index);
  const Neighborhood nbr = searcher.GetKnn(points[42], 1);
  ASSERT_EQ(nbr.size(), 1u);
  EXPECT_EQ(nbr[0].point.id, points[42].id);
  EXPECT_EQ(nbr[0].dist, 0.0);
}

// --- Locality-specific properties ---

TEST(LocalityTest, LocalityContainsTheTrueNeighborhoodBlocks) {
  const PointSet points = MakeUniform(1500, 11);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    Rng rng(12);
    for (int i = 0; i < 25; ++i) {
      const Point q{.id = -1,
                    .x = rng.Uniform(0, 1000),
                    .y = rng.Uniform(0, 800)};
      const std::size_t k = 1 + static_cast<std::size_t>(rng.NextIndex(20));
      const Locality locality = ComputeLocality(*index, q, k);
      // Definition 2: the k nearest points all live in locality blocks.
      std::vector<bool> in_locality(index->num_blocks(), false);
      for (const BlockId id : locality.blocks) in_locality[id] = true;
      for (const Neighbor& n : BruteForceKnn(points, q, k)) {
        const BlockId home = index->Locate(n.point);
        ASSERT_NE(home, kInvalidBlockId);
        EXPECT_TRUE(in_locality[home])
            << ToString(type) << ": neighbor " << n.point.ToString()
            << " outside the locality";
      }
    }
  }
}

TEST(LocalityTest, LocalityBlocksAreWithinTheBound) {
  const PointSet points = MakeUniform(1500, 13);
  const auto index = MakeIndex(points);
  const Point q{.id = -1, .x = 500, .y = 400};
  const Locality locality = ComputeLocality(*index, q, 10);
  for (const BlockId id : locality.blocks) {
    EXPECT_LE(index->block(id).box.MinDist(q),
              locality.max_dist_bound + 1e-9);
  }
}

TEST(LocalityTest, RestrictedLocalityIsASubset) {
  const PointSet points = MakeUniform(1500, 17);
  const auto index = MakeIndex(points);
  const Point q{.id = -1, .x = 500, .y = 400};
  const Locality full = ComputeLocality(*index, q, 40);
  const Locality restricted = ComputeLocality(*index, q, 40,
                                              /*restrict_to_threshold=*/30.0);
  EXPECT_LT(restricted.blocks.size(), full.blocks.size());
  std::vector<bool> in_full(index->num_blocks(), false);
  for (const BlockId id : full.blocks) in_full[id] = true;
  for (const BlockId id : restricted.blocks) {
    EXPECT_TRUE(in_full[id]);
    EXPECT_LE(index->block(id).box.MinDist(q), 30.0);
  }
}

TEST(LocalityTest, KBeyondRelationTakesAllBlocks) {
  const PointSet points = MakeUniform(300, 19);
  const auto index = MakeIndex(points);
  const Locality locality =
      ComputeLocality(*index, Point{.id = -1, .x = 0, .y = 0}, 10000);
  EXPECT_EQ(locality.blocks.size(), index->num_blocks());
  EXPECT_TRUE(std::isinf(locality.max_dist_bound));
}

TEST(LocalityTest, StatsCountWork) {
  const PointSet points = MakeUniform(1500, 23);
  const auto index = MakeIndex(points);
  SearchStats stats;
  ComputeLocality(*index, Point{.id = -1, .x = 500, .y = 400}, 10,
                  std::numeric_limits<double>::infinity(), &stats);
  EXPECT_EQ(stats.localities_computed, 1u);
  EXPECT_GT(stats.blocks_scanned, 0u);
}

TEST(RestrictedSearchTest, ThresholdBelowFirstBlockMindistIsEmpty) {
  // A query far outside the data's extent with a threshold smaller
  // than every block's MINDIST: the clipped locality is empty, so the
  // neighborhood is too - no block may be scanned "just in case".
  const PointSet points = MakeUniform(800, 31);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    const Point far_away{.id = -1, .x = 5000, .y = 5000};
    // The frame ends at (1000, 800); every block is > 4000 away.
    const Neighborhood nbr =
        searcher.GetKnnRestricted(far_away, 10, /*threshold=*/100.0);
    EXPECT_TRUE(nbr.empty()) << ToString(type);
  }
}

TEST(RestrictedSearchTest, ZeroThresholdOnDataPointKeepsOnlyIt) {
  // threshold = 0 still admits blocks at MINDIST 0 and points at
  // distance exactly 0: probing a data point returns that point (and
  // any exact duplicates), nothing else.
  const PointSet points = MakeUniform(500, 37);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    const Neighborhood nbr =
        searcher.GetKnnRestricted(points[123], 10, /*threshold=*/0.0);
    ASSERT_EQ(nbr.size(), 1u) << ToString(type);
    EXPECT_EQ(nbr[0].point.id, points[123].id);
    EXPECT_EQ(nbr[0].dist, 0.0);
  }
}

TEST(RestrictedSearchTest, ThresholdCoveringRelationEqualsFullSearch) {
  // A threshold beyond the farthest point clips nothing: the restricted
  // search must be byte-identical to the unrestricted one, for every
  // index structure and for k both below and above the relation size.
  const PointSet points = MakeCity(700, 41);
  const Point q{.id = -1, .x = 480, .y = 390};
  constexpr double kWholeWorld = 1e7;
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    for (const std::size_t k : {std::size_t{1}, std::size_t{25},
                                std::size_t{2000}}) {
      const Neighborhood full = searcher.GetKnn(q, k);
      const Neighborhood restricted =
          searcher.GetKnnRestricted(q, k, kWholeWorld);
      ASSERT_EQ(full.size(), restricted.size())
          << ToString(type) << " k=" << k;
      for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(full[i], restricted[i]) << ToString(type) << " k=" << k
                                          << " rank " << i;
      }
    }
  }
}

TEST(RestrictedSearchTest, ExactWithinThresholdRegion) {
  // GetKnnRestricted must rank all points within the threshold exactly;
  // beyond the threshold it may differ (DESIGN.md note 5).
  const PointSet points = MakeUniform(2000, 29);
  const auto index = MakeIndex(points);
  KnnSearcher searcher(*index);
  const Point q{.id = -1, .x = 500, .y = 400};
  const std::size_t k = 60;
  const double threshold = 50.0;
  const Neighborhood full = searcher.GetKnn(q, k);
  const Neighborhood restricted = searcher.GetKnnRestricted(q, k, threshold);
  // Members of the true neighborhood within the threshold must appear
  // in the restricted neighborhood, and vice versa.
  for (const Neighbor& n : full) {
    if (n.dist <= threshold) {
      EXPECT_TRUE(Contains(restricted, n.point.id)) << n.point.ToString();
    }
  }
  for (const Neighbor& n : restricted) {
    if (n.dist <= threshold) {
      EXPECT_TRUE(Contains(full, n.point.id)) << n.point.ToString();
    }
  }
}

}  // namespace
}  // namespace knnq
