// Tests for the raw-speed kernel layer: the batched distance kernel
// (scalar and SIMD paths must agree with the per-point reference
// bit-for-bit), the allocation-free TopKQueue, the SoA column mirror,
// bound-based block skipping, and the per-searcher arena's steady-state
// reuse. The overarching contract is byte-identity: none of these
// optimizations may change a single result bit.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/point.h"
#include "src/index/distance_kernel.h"
#include "src/index/knn_searcher.h"
#include "src/index/spatial_index.h"
#include "src/index/topk.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::AllIndexTypes;
using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;

/// Restores the process-wide SIMD toggle no matter how a test exits.
struct SimdGuard {
  ~SimdGuard() { SetSimdEnabled(true); }
};

std::vector<double> Column(const PointSet& points, bool ys) {
  std::vector<double> column;
  column.reserve(points.size());
  for (const Point& p : points) column.push_back(ys ? p.y : p.x);
  return column;
}

// --- Distance kernel: scalar and SIMD paths vs the Point reference ---

TEST(DistanceKernelTest, BatchMatchesPerPointReferenceBitForBit) {
  SimdGuard guard;
  const PointSet points = MakeCity(1337, 5);  // Odd size: exercises tails.
  const std::vector<double> xs = Column(points, false);
  const std::vector<double> ys = Column(points, true);
  const Point q{.id = -1, .x = 483.25, .y = 391.75};
  std::vector<double> out(points.size());
  for (const bool simd : {false, true}) {
    SetSimdEnabled(simd);
    SquaredDistanceBatch(xs.data(), ys.data(), points.size(), q.x, q.y,
                         out.data());
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double expected = SquaredDistance(points[i], q);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(expected))
          << "simd=" << simd << " i=" << i;
    }
  }
}

TEST(DistanceKernelTest, MinMaxMatchReductionOverBatch) {
  SimdGuard guard;
  const PointSet points = MakeClustered(5, 199, 7);  // 995: non-multiple of 4.
  const std::vector<double> xs = Column(points, false);
  const std::vector<double> ys = Column(points, true);
  const Point q{.id = -1, .x = 100.5, .y = 700.25};
  std::vector<double> out(points.size());
  SetSimdEnabled(false);
  SquaredDistanceBatch(xs.data(), ys.data(), points.size(), q.x, q.y,
                       out.data());
  double min_sq = std::numeric_limits<double>::infinity();
  double max_sq = 0.0;
  for (const double sq : out) {
    min_sq = sq < min_sq ? sq : min_sq;
    max_sq = sq > max_sq ? sq : max_sq;
  }
  for (const bool simd : {false, true}) {
    SetSimdEnabled(simd);
    EXPECT_EQ(MinSquaredDistance(xs.data(), ys.data(), points.size(), q.x,
                                 q.y),
              min_sq)
        << "simd=" << simd;
    EXPECT_EQ(MaxSquaredDistance(xs.data(), ys.data(), points.size(), q.x,
                                 q.y),
              max_sq)
        << "simd=" << simd;
  }
}

TEST(DistanceKernelTest, EmptySpanEdgeCases) {
  EXPECT_TRUE(std::isinf(MinSquaredDistance(nullptr, nullptr, 0, 1, 2)));
  EXPECT_EQ(MaxSquaredDistance(nullptr, nullptr, 0, 1, 2), 0.0);
}

TEST(DistanceKernelTest, ToggleRoundTrips) {
  SimdGuard guard;
  SetSimdEnabled(false);
  EXPECT_FALSE(SimdEnabled());
  SetSimdEnabled(true);
  EXPECT_TRUE(SimdEnabled());
}

// --- TopKQueue vs std::priority_queue: identical selection + order ---

TEST(TopKQueueTest, MatchesPriorityQueueSelectionAndOrder) {
  const PointSet points = MakeUniform(500, 11);
  const Point q{.id = -1, .x = 510, .y = 390};
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{7}, std::size_t{499}, std::size_t{1000}}) {
    // Reference: the old evaluator's shape — a max-heap of (sq, id)
    // capped at k, then extracted in ascending order.
    const auto less = [](const TopKEntry& a, const TopKEntry& b) {
      if (a.sq_dist != b.sq_dist) return a.sq_dist < b.sq_dist;
      return a.id < b.id;
    };
    std::priority_queue<TopKEntry, std::vector<TopKEntry>, decltype(less)>
        reference(less);
    std::vector<TopKEntry> storage;
    TopKQueue topk(k, storage);
    for (const Point& p : points) {
      const TopKEntry e{SquaredDistance(p, q), p.id, p.x, p.y};
      if (reference.size() < k) {
        reference.push(e);
      } else if (k > 0 && less(e, reference.top())) {
        reference.pop();
        reference.push(e);
      }
      topk.Push(e);
    }
    const std::vector<TopKEntry>& sorted = topk.SortAscending();
    ASSERT_EQ(sorted.size(), reference.size()) << "k=" << k;
    for (std::size_t i = sorted.size(); i-- > 0;) {
      EXPECT_EQ(sorted[i].id, reference.top().id) << "k=" << k;
      EXPECT_EQ(sorted[i].sq_dist, reference.top().sq_dist);
      reference.pop();
    }
  }
}

TEST(TopKQueueTest, ThresholdIsInfiniteUntilFull) {
  std::vector<TopKEntry> storage;
  TopKQueue topk(2, storage);
  EXPECT_TRUE(std::isinf(topk.threshold()));
  topk.Push({4.0, 1, 0, 0});
  EXPECT_TRUE(std::isinf(topk.threshold()));
  topk.Push({9.0, 2, 0, 0});
  EXPECT_EQ(topk.threshold(), 9.0);
  topk.Push({1.0, 3, 0, 0});  // Displaces 9.0.
  EXPECT_EQ(topk.threshold(), 4.0);
  topk.Push({16.0, 4, 0, 0});  // Beyond the threshold: ignored.
  EXPECT_EQ(topk.threshold(), 4.0);
}

TEST(TopKQueueTest, KZeroAcceptsNothing) {
  std::vector<TopKEntry> storage;
  TopKQueue topk(0, storage);
  topk.Push({1.0, 1, 0, 0});
  EXPECT_EQ(topk.size(), 0u);
  EXPECT_TRUE(topk.SortAscending().empty());
}

TEST(TopKQueueTest, ReusesBorrowedStorageCapacity) {
  std::vector<TopKEntry> storage;
  {
    TopKQueue topk(64, storage);
    for (PointId id = 0; id < 64; ++id) {
      topk.Push({static_cast<double>(id), id, 0, 0});
    }
    (void)topk.SortAscending();
  }
  const std::size_t capacity = storage.capacity();
  ASSERT_GT(capacity, 0u);
  {
    TopKQueue topk(64, storage);  // Second query: same storage, no growth.
    for (PointId id = 0; id < 64; ++id) {
      topk.Push({static_cast<double>(id), id, 0, 0});
    }
    (void)topk.SortAscending();
  }
  EXPECT_EQ(storage.capacity(), capacity);
}

// --- SoA columns mirror the AoS truth after builds ---

TEST(SoAColumnsTest, ColumnsConsistentAfterBuildForAllStructures) {
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(MakeCity(900, 13), type);
    EXPECT_TRUE(index->ColumnsConsistent()) << ToString(type);
    // BlockSoA spans tile the whole relation.
    std::size_t covered = 0;
    for (BlockId id = 0; id < index->num_blocks(); ++id) {
      covered += index->BlockSoA(id).size;
    }
    EXPECT_EQ(covered, index->num_points()) << ToString(type);
  }
}

// --- SIMD on/off A/B: end-to-end results are byte-identical ---

TEST(SimdAbTest, GetKnnByteIdenticalWithSimdOnAndOff) {
  SimdGuard guard;
  const PointSet points = MakeClustered(6, 150, 17);
  Rng rng(19);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    for (int i = 0; i < 30; ++i) {
      const Point q{.id = -1,
                    .x = rng.Uniform(-50, 1050),
                    .y = rng.Uniform(-50, 850)};
      const std::size_t k = 1 + static_cast<std::size_t>(rng.NextIndex(40));
      SetSimdEnabled(true);
      const Neighborhood with_simd = searcher.GetKnn(q, k);
      SetSimdEnabled(false);
      const Neighborhood without = searcher.GetKnn(q, k);
      ASSERT_EQ(with_simd.size(), without.size()) << ToString(type);
      for (std::size_t j = 0; j < with_simd.size(); ++j) {
        EXPECT_EQ(with_simd[j].point.id, without[j].point.id);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(with_simd[j].dist),
                  std::bit_cast<std::uint64_t>(without[j].dist))
            << ToString(type) << " rank " << j;
      }
    }
  }
}

// --- Bound-based block skipping ---

TEST(BlockSkipTest, KCoveringRelationSkipsNothing) {
  // With k >= n every block contributes; the bound can never close the
  // scan early, so the skip counter must stay zero.
  const PointSet points = MakeUniform(400, 23);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    (void)searcher.GetKnn(Point{.id = -1, .x = 500, .y = 400}, 400);
    EXPECT_EQ(searcher.stats().blocks_skipped, 0u) << ToString(type);
  }
}

TEST(BlockSkipTest, SmallKOverManyBlocksSkips) {
  // k=1 over a many-block relation: the locality over-approximates, so
  // the MINDIST-ordered scan must cut off well before the end.
  const PointSet points = MakeUniform(3000, 29);
  for (const IndexType type : AllIndexTypes()) {
    const auto index = MakeIndex(points, type);
    KnnSearcher searcher(*index);
    (void)searcher.GetKnn(Point{.id = -1, .x = 500, .y = 400}, 1);
    EXPECT_GT(searcher.stats().blocks_skipped, 0u) << ToString(type);
  }
}

TEST(BlockSkipTest, CounterIsMonotonicAndScannedPlusSkippedCoverLocality) {
  const PointSet points = MakeUniform(2000, 31);
  const auto index = MakeIndex(points);
  KnnSearcher searcher(*index);
  Rng rng(37);
  std::size_t last = 0;
  for (int i = 0; i < 20; ++i) {
    const Point q{.id = -1,
                  .x = rng.Uniform(0, 1000),
                  .y = rng.Uniform(0, 800)};
    (void)searcher.GetKnn(q, 5);
    EXPECT_GE(searcher.stats().blocks_skipped, last);
    last = searcher.stats().blocks_skipped;
  }
  EXPECT_GT(last, 0u);
}

// --- Arena: allocation-free steady state ---

TEST(ArenaTest, FootprintIsStableAcrossRepeatedQueries) {
  const PointSet points = MakeCity(2500, 41);
  const auto index = MakeIndex(points);
  KnnSearcher searcher(*index);
  Rng rng(43);
  // Warm-up pass: capacities grow to the workload's high-water mark.
  std::vector<Point> queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back(Point{.id = -1,
                            .x = rng.Uniform(0, 1000),
                            .y = rng.Uniform(0, 800)});
    (void)searcher.GetKnn(queries.back(), 12);
  }
  const std::size_t warm = searcher.arena().bytes();
  const std::size_t warm_gauge = searcher.stats().arena_bytes;
  EXPECT_GT(warm, 0u);
  // The reported gauge covers the arena plus the recycled locality
  // scratch, so it can only exceed the arena proper.
  EXPECT_GE(warm_gauge, warm);
  // Steady state: replaying the same workload allocates nothing new.
  for (const Point& q : queries) (void)searcher.GetKnn(q, 12);
  EXPECT_EQ(searcher.arena().bytes(), warm)
      << "arena grew on a replayed workload - the steady state allocates";
  EXPECT_EQ(searcher.stats().arena_bytes, warm_gauge);
}

}  // namespace
}  // namespace knnq
