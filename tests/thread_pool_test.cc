// ThreadPool: bounded-queue backpressure and drain-then-stop shutdown,
// the primitives the server's admission control and graceful shutdown
// are built on.

#include "src/engine/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "gtest/gtest.h"

namespace knnq {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 1, .max_queue = 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> ran{0};
  // Occupy the single worker...
  ASSERT_TRUE(pool.TrySubmit([opened, &ran] {
    opened.wait();
    ran.fetch_add(1);
  }));
  // ...wait until it is RUNNING (not queued), then fill the queue.
  while (!pool.TrySubmit([opened, &ran] {
    opened.wait();
    ran.fetch_add(1);
  })) {
    std::this_thread::yield();
  }
  // Worker busy + queue full: the bound must hold from now on.
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  gate.set_value();
  pool.Drain();
  EXPECT_EQ(ran.load(), 2);
  // Room again after the drain.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  pool.Drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, TrySubmitRunsEverythingItAccepted) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2, .max_queue = 4});
  std::atomic<int> ran{0};
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (pool.TrySubmit([&ran] { ran.fetch_add(1); })) ++accepted;
  }
  pool.Drain();
  EXPECT_EQ(ran.load(), accepted);
  EXPECT_GT(accepted, 0);
}

TEST(ThreadPoolTest, SubmitBlocksUntilSpaceWithBoundedQueue) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 1, .max_queue = 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.TrySubmit([opened] { opened.wait(); }));
  while (!pool.TrySubmit([&ran] { ran.fetch_add(1); })) {
    std::this_thread::yield();
  }
  // Queue full: this Submit must block until the gate opens, then
  // still run its task.
  std::atomic<bool> submitted{false};
  std::thread blocked([&] {
    pool.Submit([&ran] { ran.fetch_add(1); });
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());
  gate.set_value();
  blocked.join();
  EXPECT_TRUE(submitted.load());
  pool.Drain();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ThreadPool pool(ThreadPoolOptions{.num_threads = 1});
  pool.Submit([opened] { opened.wait(); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // Shutdown must finish all ten queued tasks (the destructor would
  // have discarded them), even when it starts while the worker is
  // still blocked on the first.
  std::thread stopper([&pool] { pool.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_value();
  stopper.join();
  EXPECT_EQ(ran.load(), 10);
  // Idempotent, and post-shutdown submissions report the drop (false)
  // instead of running or silently vanishing.
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, DrainOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Drain();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace knnq
