// Mutable-relation tests: the differential mutation harness (the
// oracle the suite lacked), per-structure maintenance unit tests, the
// engine's reader/writer protocol under concurrency, per-relation
// cache invalidation, and RunScript's DML interleaving.
//
// The differential harness is the heart: a seeded random interleaving
// of insert/delete/query batches where, after every checkpoint, all
// six query shapes over {grid, quadtree, rtree} must return results
// byte-identical on three evaluators —
//   (a) the incrementally maintained engine under test,
//   (b) an engine over indexes rebuilt from scratch from shadow truth,
//   (c) the conceptually correct naive plans (force_naive) over (b) —
// and, at the final checkpoint, the index-free brute-force references
// of tests/test_util.h.

#include <atomic>
#include <cstddef>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/neighborhood_cache.h"
#include "src/engine/query_engine.h"
#include "src/index/index_factory.h"
#include "src/index/knn_searcher.h"
#include "src/planner/catalog.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::AllIndexTypes;
using testing::MakeClustered;
using testing::MakeCity;
using testing::MakeUniform;
using testing::RefChained;
using testing::RefSelectInnerJoin;
using testing::RefTwoSelects;
using testing::RefUnchained;

// --- Brute-force references for the two shapes test_util lacks ---

JoinResult RefSelectOuterJoin(const PointSet& outer, const PointSet& inner,
                              std::size_t join_k, const Point& focal,
                              std::size_t select_k) {
  const Neighborhood nbr_f = BruteForceKnn(outer, focal, select_k);
  JoinResult pairs;
  for (const Point& e1 : outer) {
    if (!Contains(nbr_f, e1.id)) continue;
    for (const Neighbor& n : BruteForceKnn(inner, e1, join_k)) {
      pairs.push_back(JoinPair{e1, n.point});
    }
  }
  Canonicalize(pairs);
  return pairs;
}

JoinResult RefRangeInnerJoin(const PointSet& outer, const PointSet& inner,
                             std::size_t join_k, const BoundingBox& range) {
  JoinResult pairs;
  for (const Point& e1 : outer) {
    for (const Neighbor& n : BruteForceKnn(inner, e1, join_k)) {
      if (range.Contains(n.point)) pairs.push_back(JoinPair{e1, n.point});
    }
  }
  Canonicalize(pairs);
  return pairs;
}

// --- The differential harness ---

IndexOptions SmallBlocks(IndexType type) {
  IndexOptions options;
  options.type = type;
  options.block_capacity = 16;
  return options;
}

/// The six paper query shapes over relations A, B, C, parameterized so
/// checkpoints probe different regions / k values.
std::vector<QuerySpec> SixShapes(double dx, double dy, std::size_t k) {
  return {
      TwoSelectsSpec{
          .relation = "A",
          .s1 = {.focal = {.id = -1, .x = 200 + dx, .y = 160 + dy}, .k = k},
          .s2 = {.focal = {.id = -1, .x = 240 + dx, .y = 200 + dy},
                 .k = k + 5}},
      SelectInnerJoinSpec{
          .outer = "B",
          .inner = "A",
          .join_k = 1 + k % 4,
          .select = {.focal = {.id = -1, .x = 500 - dx, .y = 400 - dy},
                     .k = k + 3}},
      SelectOuterJoinSpec{
          .outer = "A",
          .inner = "C",
          .join_k = 2,
          .select = {.focal = {.id = -1, .x = 300 + dy, .y = 300 + dx},
                     .k = k + 6}},
      UnchainedJoinsSpec{
          .a = "A", .b = "B", .c = "C", .k_ab = 1 + k % 3, .k_cb = 2},
      ChainedJoinsSpec{
          .a = "C", .b = "A", .c = "B", .k_ab = 2, .k_bc = 1 + k % 3},
      RangeInnerJoinSpec{
          .outer = "C",
          .inner = "B",
          .join_k = 1 + k % 4,
          .range = BoundingBox(100 + dx, 80 + dy, 600 + dx, 500 + dy)},
  };
}

struct Shadow {
  std::string name;
  PointSet truth;
};

Catalog CatalogFrom(const std::vector<Shadow>& shadows, IndexType type) {
  Catalog catalog;
  for (const Shadow& shadow : shadows) {
    EXPECT_TRUE(
        catalog.AddRelation(shadow.name, shadow.truth, SmallBlocks(type))
            .ok());
  }
  return catalog;
}

EngineOptions WithThreads(std::size_t threads) {
  EngineOptions options;
  options.num_threads = threads;
  return options;
}

class DifferentialMutationTest
    : public ::testing::TestWithParam<IndexType> {};

TEST_P(DifferentialMutationTest, IncrementalEqualsRebuiltEqualsNaive) {
  const IndexType type = GetParam();
  std::vector<Shadow> shadows = {
      {"A", MakeUniform(260, 71, 0)},
      {"B", MakeCity(260, 72, 100000)},
      {"C", MakeClustered(4, 60, 73, 200000)},
  };
  QueryEngine engine(CatalogFrom(shadows, type),
                     WithThreads(2));

  std::mt19937_64 rng(20260729);
  std::uniform_real_distribution<double> coord(-80.0, 1080.0);
  PointId next_id = 500000;
  std::size_t mutations = 0;

  constexpr std::size_t kBatches = 45;
  constexpr std::size_t kOpsPerBatch = 25;
  for (std::size_t batch = 0; batch < kBatches; ++batch) {
    Shadow& shadow = shadows[batch % shadows.size()];
    std::vector<MutationOp> ops;
    for (std::size_t i = 0; i < kOpsPerBatch; ++i) {
      const bool insert = shadow.truth.empty() || rng() % 100 < 58;
      if (insert) {
        double x = coord(rng);
        double y = coord(rng) * 0.8;
        if (rng() % 8 == 0 && !shadow.truth.empty()) {
          // Duplicate an existing coordinate: the split/merge paths
          // must survive ties.
          const Point& twin = shadow.truth[rng() % shadow.truth.size()];
          x = twin.x;
          y = twin.y;
        }
        const Point p{next_id++, x, y};
        shadow.truth.push_back(p);
        ops.push_back(MutationOp{.kind = MutationOp::Kind::kInsert,
                                 .point = p});
      } else {
        const std::size_t victim = rng() % shadow.truth.size();
        ops.push_back(MutationOp::Erase(shadow.truth[victim].id));
        shadow.truth.erase(shadow.truth.begin() +
                           static_cast<std::ptrdiff_t>(victim));
      }
    }
    mutations += ops.size();
    const EngineResult applied = engine.Mutate(shadow.name, ops);
    ASSERT_TRUE(applied.ok()) << applied.status.ToString();
    ASSERT_EQ(applied.rows_affected, ops.size());

    // The SoA columns must mirror the AoS points bit-for-bit after
    // every batch: the distance kernels read only the columns, so any
    // divergence silently corrupts results.
    ASSERT_TRUE(
        (*engine.catalog().Get(shadow.name))->index->ColumnsConsistent())
        << shadow.name << " columns diverged after " << mutations
        << " mutations (batch " << batch << ")";

    if ((batch + 1) % 5 != 0 && batch + 1 != kBatches) continue;

    // Checkpoint: incremental vs rebuilt vs naive, all six shapes.
    QueryEngine rebuilt(CatalogFrom(shadows, type),
                        WithThreads(1));
    EngineOptions naive_options;
    naive_options.num_threads = 1;
    naive_options.planner.force_naive = true;
    QueryEngine naive(CatalogFrom(shadows, type), naive_options);

    const auto specs = SixShapes(static_cast<double>(batch % 7) * 40.0,
                                 static_cast<double>(batch % 5) * 30.0,
                                 2 + batch % 6);
    for (const QuerySpec& spec : specs) {
      const EngineResult incremental = engine.Run(spec);
      const EngineResult fresh = rebuilt.Run(spec);
      const EngineResult conceptual = naive.Run(spec);
      ASSERT_TRUE(incremental.ok()) << incremental.status.ToString();
      ASSERT_TRUE(fresh.ok()) << fresh.status.ToString();
      ASSERT_TRUE(conceptual.ok()) << conceptual.status.ToString();
      EXPECT_EQ(incremental.output, fresh.output)
          << "incremental != rebuilt after " << mutations
          << " mutations (batch " << batch << ")";
      EXPECT_EQ(incremental.output, conceptual.output)
          << "incremental != naive after " << mutations
          << " mutations (batch " << batch << ")";
    }
  }
  ASSERT_GE(mutations, 1000u);

  // Final checkpoint against the index-free brute-force references.
  const PointSet& a = shadows[0].truth;
  const PointSet& b = shadows[1].truth;
  const PointSet& c = shadows[2].truth;
  const auto specs = SixShapes(40.0, 30.0, 3);
  const std::vector<QueryOutput> expected = {
      QueryOutput(RefTwoSelects(
          a, std::get<TwoSelectsSpec>(specs[0]).s1.focal, 3,
          std::get<TwoSelectsSpec>(specs[0]).s2.focal, 8)),
      QueryOutput(RefSelectInnerJoin(
          b, a, std::get<SelectInnerJoinSpec>(specs[1]).join_k,
          std::get<SelectInnerJoinSpec>(specs[1]).select.focal, 6)),
      QueryOutput(RefSelectOuterJoin(
          a, c, 2, std::get<SelectOuterJoinSpec>(specs[2]).select.focal,
          9)),
      QueryOutput(RefUnchained(a, b, c,
                               std::get<UnchainedJoinsSpec>(specs[3]).k_ab,
                               2)),
      QueryOutput(RefChained(c, a, b, 2,
                             std::get<ChainedJoinsSpec>(specs[4]).k_bc)),
      QueryOutput(RefRangeInnerJoin(
          c, b, std::get<RangeInnerJoinSpec>(specs[5]).join_k,
          std::get<RangeInnerJoinSpec>(specs[5]).range)),
  };
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EngineResult run = engine.Run(specs[i]);
    ASSERT_TRUE(run.ok()) << run.status.ToString();
    EXPECT_EQ(run.output, expected[i])
        << "incremental engine diverged from the brute-force oracle on "
           "shape "
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, DifferentialMutationTest,
                         ::testing::ValuesIn(AllIndexTypes()),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

// --- Structure-level unit tests ---

class IndexMutationTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(IndexMutationTest, InsertEraseBulkLoadBasics) {
  const PointSet base = MakeUniform(120, 9, 0);
  IndexOptions options = SmallBlocks(GetParam());
  auto built = BuildIndex(base, options);
  ASSERT_TRUE(built.ok());
  SpatialIndex& index = **built;

  // Reject non-finite coordinates.
  EXPECT_FALSE(
      index.Insert({900, std::numeric_limits<double>::quiet_NaN(), 1})
          .ok());
  EXPECT_FALSE(
      index.Insert({901, 1, std::numeric_limits<double>::infinity()})
          .ok());

  // Insert far outside the built extent (forces the rebuild path).
  EXPECT_TRUE(index.Insert({1000, -5000.0, 9000.0}).ok());
  EXPECT_EQ(index.num_points(), base.size() + 1);
  EXPECT_NE(index.Locate({1000, -5000.0, 9000.0}), kInvalidBlockId);

  // Erase it again; erasing an unknown id is NotFound.
  EXPECT_TRUE(index.Erase(1000).ok());
  EXPECT_EQ(index.Erase(1000).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.num_points(), base.size());
  EXPECT_TRUE(index.ColumnsConsistent());

  // BulkLoad replaces the whole relation, keeping object identity.
  const SpatialIndex* before = &index;
  const PointSet fresh = MakeClustered(3, 30, 10, 5000);
  EXPECT_TRUE(index.BulkLoad(fresh).ok());
  EXPECT_EQ(&index, before);
  EXPECT_EQ(index.num_points(), fresh.size());
  EXPECT_TRUE(index.ColumnsConsistent());
  KnnSearcher searcher(index);
  const Point probe{-1, 500, 400};
  EXPECT_EQ(searcher.GetKnn(probe, 7), BruteForceKnn(fresh, probe, 7));
}

TEST_P(IndexMutationTest, DrainToEmptyAndRegrow) {
  PointSet truth = MakeUniform(60, 11, 0);
  auto built = BuildIndex(truth, SmallBlocks(GetParam()));
  ASSERT_TRUE(built.ok());
  SpatialIndex& index = **built;
  for (const Point& p : truth) {
    ASSERT_TRUE(index.Erase(p.id).ok());
  }
  EXPECT_EQ(index.num_points(), 0u);
  EXPECT_EQ(index.num_blocks(), 0u);
  // An empty index accepts inserts again.
  PointSet regrown;
  for (PointId id = 0; id < 40; ++id) {
    const Point p{id, static_cast<double>(id % 8) * 50.0,
                  static_cast<double>(id / 8) * 60.0};
    regrown.push_back(p);
    ASSERT_TRUE(index.Insert(p).ok());
  }
  KnnSearcher searcher(index);
  const Point probe{-1, 120, 90};
  EXPECT_EQ(searcher.GetKnn(probe, 9), BruteForceKnn(regrown, probe, 9));
  EXPECT_TRUE(index.ColumnsConsistent());
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexMutationTest,
                         ::testing::ValuesIn(AllIndexTypes()),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

// --- Catalog semantics ---

TEST(CatalogMutationTest, AssignsIdsAndBumpsGenerationsPerRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddRelation("a", MakeUniform(50, 1, 0)).ok());
  ASSERT_TRUE(catalog.AddRelation("b", MakeUniform(50, 2, 0)).ok());
  const std::uint64_t gen_b = (*catalog.Get("b"))->generation;

  auto outcome = catalog.Mutate(
      "a", {MutationOp::Insert(1, 2), MutationOp::Insert(3, 4)});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rows_affected, 2u);
  // Auto-assigned ids continue past the existing maximum (49).
  const SpatialIndex* index = (*catalog.Get("a"))->index.get();
  BlockId block;
  EXPECT_NE(index->Locate({50, 1, 2}), kInvalidBlockId);
  EXPECT_NE(index->Locate({51, 3, 4}), kInvalidBlockId);
  (void)block;

  // Deleting a missing id affects 0 rows and does NOT bump generation.
  const std::uint64_t gen_a = (*catalog.Get("a"))->generation;
  auto noop = catalog.Mutate("a", {MutationOp::Erase(987654)});
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->rows_affected, 0u);
  EXPECT_EQ((*catalog.Get("a"))->generation, gen_a);

  // Mutating a never touches b's generation.
  EXPECT_EQ((*catalog.Get("b"))->generation, gen_b);

  // Unknown relations fail.
  EXPECT_FALSE(catalog.Mutate("ghost", {MutationOp::Insert(0, 0)}).ok());

  // LoadRelation replaces in place and can create.
  auto loaded = catalog.LoadRelation("a", MakeUniform(20, 3, 0));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows_affected, 20u);
  EXPECT_EQ((*catalog.Get("a"))->index->num_points(), 20u);
  auto created = catalog.LoadRelation("fresh", MakeUniform(10, 4, 0));
  ASSERT_TRUE(created.ok());
  EXPECT_TRUE(catalog.Has("fresh"));
}

// --- Per-relation cache invalidation (the regression the satellite
// demands: updating A keeps B's neighborhoods hot) ---

TEST(PerRelationInvalidationTest, MutatingOneRelationKeepsOthersHot) {
  Catalog catalog;
  const IndexOptions grid = SmallBlocks(IndexType::kGrid);
  ASSERT_TRUE(catalog.AddRelation("a", MakeUniform(400, 21, 0), grid).ok());
  ASSERT_TRUE(
      catalog.AddRelation("b", MakeCity(400, 22, 100000), grid).ok());
  EngineOptions options;
  options.num_threads = 1;
  options.planner.cache_mb = 16;
  QueryEngine engine(std::move(catalog), options);

  const QuerySpec on_a = TwoSelectsSpec{
      .relation = "a",
      .s1 = {.focal = {.id = -1, .x = 300, .y = 200}, .k = 6},
      .s2 = {.focal = {.id = -1, .x = 320, .y = 220}, .k = 9}};
  const QuerySpec on_b = TwoSelectsSpec{
      .relation = "b",
      .s1 = {.focal = {.id = -1, .x = 300, .y = 200}, .k = 6},
      .s2 = {.focal = {.id = -1, .x = 320, .y = 220}, .k = 9}};

  // Warm both relations, then confirm both are fully cache-served.
  ASSERT_TRUE(engine.Run(on_a).ok());
  ASSERT_TRUE(engine.Run(on_b).ok());
  EngineResult warm_a = engine.Run(on_a);
  EngineResult warm_b = engine.Run(on_b);
  EXPECT_GT(warm_a.stats.cache_hits, 0u);
  EXPECT_EQ(warm_a.stats.cache_misses, 0u);
  EXPECT_GT(warm_b.stats.cache_hits, 0u);
  EXPECT_EQ(warm_b.stats.cache_misses, 0u);

  // Mutate a: only a's entries may be dropped.
  const EngineResult mutated =
      engine.Mutate("a", {MutationOp::Insert(301, 201)});
  ASSERT_TRUE(mutated.ok());

  EngineResult after_b = engine.Run(on_b);
  EXPECT_GT(after_b.stats.cache_hits, 0u)
      << "mutating relation a evicted relation b's cached neighborhoods";
  EXPECT_EQ(after_b.stats.cache_misses, 0u);

  EngineResult after_a = engine.Run(on_a);
  EXPECT_EQ(after_a.stats.cache_hits, 0u)
      << "relation a served stale neighborhoods after its mutation";
  EXPECT_GT(after_a.stats.cache_misses, 0u);
  EXPECT_EQ(after_a.output, QueryOutput(RefTwoSelects(
                                engine.catalog()
                                    .Get("a")
                                    .value()
                                    ->index->points(),
                                {-1, 300, 200}, 6, {-1, 320, 220}, 9)));

  const NeighborhoodCacheStats stats =
      engine.neighborhood_cache()->GetStats();
  EXPECT_GT(stats.invalidated, 0u);
}

// --- Concurrent readers vs. Mutate: what TSan watches ---

TEST(ConcurrentMutationTest, ReadersRaceOneWriterSafely) {
  std::vector<Shadow> shadows = {
      {"A", MakeUniform(300, 31, 0)},
      {"B", MakeCity(300, 32, 100000)},
      {"C", MakeClustered(3, 70, 33, 200000)},
  };
  EngineOptions options;
  options.num_threads = 4;
  options.planner.cache_mb = 8;
  QueryEngine engine(CatalogFrom(shadows, IndexType::kGrid), options);

  constexpr std::size_t kReaderRounds = 20;
  std::atomic<int> readers_active{2};
  std::atomic<std::size_t> queries_ok{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&engine, &readers_active, &queries_ok, r] {
      for (std::size_t round = 0; round < kReaderRounds; ++round) {
        const auto specs =
            SixShapes(static_cast<double>((round + r) % 9) * 25.0,
                      static_cast<double>(round % 4) * 35.0,
                      2 + round % 5);
        for (const EngineResult& result : engine.RunBatch(specs)) {
          ASSERT_TRUE(result.ok()) << result.status.ToString();
          ++queries_ok;
        }
      }
      readers_active.fetch_sub(1);
    });
  }

  // Keep writing for as long as the readers are querying (and at least
  // a few batches), so reads and writes genuinely interleave.
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> coord(0.0, 1000.0);
  PointId next_id = 900000;
  for (int batch = 0; batch < 30 || readers_active.load() > 0; ++batch) {
    Shadow& shadow = shadows[batch % shadows.size()];
    std::vector<MutationOp> ops;
    for (int i = 0; i < 8; ++i) {
      if (shadow.truth.empty() || rng() % 100 < 60) {
        const Point p{next_id++, coord(rng), coord(rng) * 0.8};
        shadow.truth.push_back(p);
        ops.push_back(
            MutationOp{.kind = MutationOp::Kind::kInsert, .point = p});
      } else {
        const std::size_t victim = rng() % shadow.truth.size();
        ops.push_back(MutationOp::Erase(shadow.truth[victim].id));
        shadow.truth.erase(shadow.truth.begin() +
                           static_cast<std::ptrdiff_t>(victim));
      }
    }
    const EngineResult applied = engine.Mutate(shadow.name, ops);
    ASSERT_TRUE(applied.ok()) << applied.status.ToString();
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(queries_ok.load(), 2 * kReaderRounds * 6);

  // After the dust settles, the engine agrees with a rebuild of the
  // shadow truth — the writer was the only mutator.
  QueryEngine rebuilt(CatalogFrom(shadows, IndexType::kGrid),
                      WithThreads(1));
  for (const QuerySpec& spec : SixShapes(0, 0, 3)) {
    const EngineResult live = engine.Run(spec);
    const EngineResult fresh = rebuilt.Run(spec);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(live.output, fresh.output);
  }
}

// --- RunScript: DML interleaved with queries ---

TEST(RunScriptDmlTest, StatementsSeeEarlierMutations) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation("spots", MakeUniform(200, 41, 0),
                               SmallBlocks(IndexType::kQuadtree))
                  .ok());
  QueryEngine engine(std::move(catalog), WithThreads(2));

  // Two sentinel points right on the focal; visible only after INSERT,
  // one gone again after DELETE (auto-assigned ids 200 and 201).
  const std::string script =
      "SELECT KNN(spots, 2, AT(1500, 1500)) INTERSECT "
      "KNN(spots, 2, AT(1500, 1500));\n"
      "INSERT INTO spots VALUES (1500, 1500), (1501, 1501);\n"
      "SELECT KNN(spots, 2, AT(1500, 1500)) INTERSECT "
      "KNN(spots, 2, AT(1500, 1500));\n"
      "DELETE FROM spots WHERE ID = 200;\n"
      "SELECT KNN(spots, 2, AT(1500, 1500)) INTERSECT "
      "KNN(spots, 2, AT(1500, 1500));\n";
  auto results = engine.RunScript(script);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 5u);
  for (const EngineResult& result : *results) {
    ASSERT_TRUE(result.ok()) << result.status.ToString();
  }
  EXPECT_FALSE((*results)[0].is_mutation);
  EXPECT_TRUE((*results)[1].is_mutation);
  EXPECT_EQ((*results)[1].rows_affected, 2u);
  EXPECT_EQ((*results)[3].rows_affected, 1u);

  const auto ids_of = [](const QueryOutput& output) {
    std::vector<PointId> ids;
    for (const Point& p : std::get<TwoSelectsResult>(output)) {
      ids.push_back(p.id);
    }
    return ids;
  };
  // Before the INSERT neither sentinel exists; after, both are the two
  // nearest; after the DELETE only 201 remains.
  const auto before = ids_of((*results)[0].output);
  EXPECT_EQ(std::count(before.begin(), before.end(), 200), 0);
  const auto inserted = ids_of((*results)[2].output);
  EXPECT_EQ(std::count(inserted.begin(), inserted.end(), 200), 1);
  EXPECT_EQ(std::count(inserted.begin(), inserted.end(), 201), 1);
  const auto deleted = ids_of((*results)[4].output);
  EXPECT_EQ(std::count(deleted.begin(), deleted.end(), 200), 0);
  EXPECT_EQ(std::count(deleted.begin(), deleted.end(), 201), 1);

  // ParseBatch refuses DML with a positioned diagnostic.
  auto specs = engine.ParseBatch("INSERT INTO spots VALUES (1, 2);");
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.status().message().find("DML"), std::string::npos);
  EXPECT_EQ(specs.status().message().rfind("1:1:", 0), 0u)
      << specs.status().message();
}

}  // namespace
}  // namespace knnq
