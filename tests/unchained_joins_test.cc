// Section 4.1 tests: two unchained kNN-joins (A JOIN B) INTERSECT_B
// (C JOIN B).

#include "gtest/gtest.h"
#include "src/core/unchained_joins.h"
#include "tests/test_util.h"

namespace knnq {
namespace {

using testing::MakeCity;
using testing::MakeClustered;
using testing::MakeIndex;
using testing::MakeUniform;
using testing::RefUnchained;
using testing::TestFrame;

struct UnchainedCase {
  IndexType type;
  std::size_t k_ab;
  std::size_t k_cb;
};

std::string CaseName(const ::testing::TestParamInfo<UnchainedCase>& info) {
  return std::string(ToString(info.param.type)) + "_kab" +
         std::to_string(info.param.k_ab) + "_kcb" +
         std::to_string(info.param.k_cb);
}

class UnchainedPropertyTest
    : public ::testing::TestWithParam<UnchainedCase> {};

TEST_P(UnchainedPropertyTest, BlockMarkingMatchesNaiveAndBruteForce) {
  const UnchainedCase& c = GetParam();
  const PointSet a = MakeClustered(3, 60, /*seed=*/81, /*first_id=*/0);
  const PointSet b = MakeCity(900, /*seed=*/82, /*first_id=*/10000);
  const PointSet cc = MakeUniform(250, /*seed=*/83, /*first_id=*/20000);
  const auto a_index = MakeIndex(a, c.type);
  const auto b_index = MakeIndex(b, c.type);
  const auto c_index = MakeIndex(cc, c.type);
  const UnchainedJoinsQuery query{
      .a = a_index.get(),
      .b = b_index.get(),
      .c = c_index.get(),
      .k_ab = c.k_ab,
      .k_cb = c.k_cb,
  };
  const TripletResult expected = RefUnchained(a, b, cc, c.k_ab, c.k_cb);
  const auto naive = UnchainedJoinsNaive(query);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(*naive, expected);
  const auto marked = UnchainedJoinsBlockMarking(query);
  ASSERT_TRUE(marked.ok());
  EXPECT_EQ(*marked, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UnchainedPropertyTest,
    ::testing::Values(UnchainedCase{IndexType::kGrid, 2, 2},
                      UnchainedCase{IndexType::kGrid, 2, 8},
                      UnchainedCase{IndexType::kGrid, 8, 2},
                      UnchainedCase{IndexType::kGrid, 5, 5},
                      UnchainedCase{IndexType::kQuadtree, 2, 8},
                      UnchainedCase{IndexType::kQuadtree, 5, 5},
                      UnchainedCase{IndexType::kRTree, 2, 8},
                      UnchainedCase{IndexType::kRTree, 5, 5}),
    CaseName);

TEST(UnchainedJoinsTest, ResultIsOrderIndependent) {
  // Evaluating (A JOIN B) first or (C JOIN B) first must produce the
  // same triplets; only the cost differs (Section 4.1.2).
  const PointSet a = MakeClustered(2, 80, /*seed=*/84, /*first_id=*/0);
  const PointSet b = MakeUniform(700, /*seed=*/85, /*first_id=*/10000);
  const PointSet cc = MakeClustered(5, 50, /*seed=*/86, /*first_id=*/20000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const auto c_index = MakeIndex(cc);

  const UnchainedJoinsQuery forward{.a = a_index.get(),
                                    .b = b_index.get(),
                                    .c = c_index.get(),
                                    .k_ab = 3,
                                    .k_cb = 4};
  // Swapped: start with C. The triplet roles swap with the relations,
  // so (a, b, c) of the swapped query is (c, b, a) of the original.
  const UnchainedJoinsQuery swapped{.a = c_index.get(),
                                    .b = b_index.get(),
                                    .c = a_index.get(),
                                    .k_ab = 4,
                                    .k_cb = 3};
  const auto fwd = UnchainedJoinsBlockMarking(forward);
  const auto swp = UnchainedJoinsBlockMarking(swapped);
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(swp.ok());
  TripletResult swapped_back;
  for (const Triplet& t : *swp) {
    swapped_back.push_back(Triplet{.a = t.c, .b = t.b, .c = t.a});
  }
  Canonicalize(swapped_back);
  EXPECT_EQ(*fwd, swapped_back);
}

TEST(UnchainedJoinsTest, ClusteredFirstJoinPrunesBlocks) {
  // A tightly clustered; C spread out. Starting with A leaves most of
  // B Safe, so most C-blocks must be classified Non-Contributing.
  const PointSet a = MakeClustered(1, 150, /*seed=*/87, /*first_id=*/0);
  const PointSet b = MakeUniform(2000, /*seed=*/88, /*first_id=*/10000);
  const PointSet cc = MakeUniform(2000, /*seed=*/89, /*first_id=*/20000);
  const auto a_index = MakeIndex(a);
  const auto b_index = MakeIndex(b);
  const auto c_index = MakeIndex(cc);
  const UnchainedJoinsQuery query{.a = a_index.get(),
                                  .b = b_index.get(),
                                  .c = c_index.get(),
                                  .k_ab = 2,
                                  .k_cb = 2};
  UnchainedJoinsStats stats;
  ASSERT_TRUE(UnchainedJoinsBlockMarking(query, &stats).ok());
  EXPECT_LT(stats.candidate_blocks, b_index->num_blocks() / 4);
  EXPECT_LT(stats.contributing_blocks, c_index->num_blocks() / 2);
  EXPECT_LT(stats.neighborhoods_computed, cc.size());
}

TEST(UnchainedJoinsTest, ChooseOrderPrefersSmallerCoverage) {
  const PointSet clustered = MakeClustered(2, 100, /*seed=*/90);
  const PointSet spread = MakeUniform(200, /*seed=*/91);
  const CoverageStats cov_clustered =
      EstimateCoverage(clustered, TestFrame());
  const CoverageStats cov_spread = EstimateCoverage(spread, TestFrame());
  ASSERT_LT(cov_clustered.coverage(), cov_spread.coverage());
  EXPECT_EQ(ChooseUnchainedOrder(cov_clustered, cov_spread),
            UnchainedOrder::kStartWithA);
  EXPECT_EQ(ChooseUnchainedOrder(cov_spread, cov_clustered),
            UnchainedOrder::kStartWithC);
}

TEST(UnchainedJoinsTest, EmptyARemovesAllTriplets) {
  const auto a_index = MakeIndex(PointSet{});
  const auto b_index = MakeIndex(MakeUniform(100, 92, 10000));
  const auto c_index = MakeIndex(MakeUniform(50, 93, 20000));
  const UnchainedJoinsQuery query{.a = a_index.get(),
                                  .b = b_index.get(),
                                  .c = c_index.get(),
                                  .k_ab = 2,
                                  .k_cb = 2};
  EXPECT_TRUE(UnchainedJoinsNaive(query)->empty());
  EXPECT_TRUE(UnchainedJoinsBlockMarking(query)->empty());
}

TEST(UnchainedJoinsTest, EmptyBRemovesAllTriplets) {
  const auto a_index = MakeIndex(MakeUniform(50, 94, 0));
  const auto b_index = MakeIndex(PointSet{});
  const auto c_index = MakeIndex(MakeUniform(50, 95, 20000));
  const UnchainedJoinsQuery query{.a = a_index.get(),
                                  .b = b_index.get(),
                                  .c = c_index.get(),
                                  .k_ab = 2,
                                  .k_cb = 2};
  EXPECT_TRUE(UnchainedJoinsNaive(query)->empty());
  EXPECT_TRUE(UnchainedJoinsBlockMarking(query)->empty());
}

TEST(UnchainedJoinsTest, RejectsInvalidQueries) {
  const auto index = MakeIndex(MakeUniform(10, 96));
  UnchainedJoinsQuery query{.a = index.get(),
                            .b = index.get(),
                            .c = index.get(),
                            .k_ab = 0,
                            .k_cb = 2};
  EXPECT_FALSE(UnchainedJoinsNaive(query).ok());
  EXPECT_FALSE(UnchainedJoinsBlockMarking(query).ok());
  query.k_ab = 2;
  query.b = nullptr;
  EXPECT_FALSE(UnchainedJoinsNaive(query).ok());
}

TEST(UnchainedJoinsTest, PaperFigure10Scenario) {
  // Figures 8-10: joining first in either direction is wrong; the
  // correct result comes from independent evaluation. Layout: b2 is
  // near both the a-cluster and the c-cluster; b1 is the a-side's
  // nearest but far from c; b3 vice versa.
  const PointSet a = {{.id = 1, .x = 0, .y = 0}, {.id = 2, .x = 2, .y = 0}};
  const PointSet b = {{.id = 11, .x = 1, .y = 2},    // b1: near a only.
                      {.id = 12, .x = 5, .y = 5},    // b2: in the middle.
                      {.id = 13, .x = 9, .y = 8}};   // b3: near c only.
  const PointSet cc = {{.id = 21, .x = 10, .y = 10},
                       {.id = 22, .x = 12, .y = 10}};
  const auto a_index = MakeIndex(a, IndexType::kGrid, 1);
  const auto b_index = MakeIndex(b, IndexType::kGrid, 1);
  const auto c_index = MakeIndex(cc, IndexType::kGrid, 1);
  const UnchainedJoinsQuery query{.a = a_index.get(),
                                  .b = b_index.get(),
                                  .c = c_index.get(),
                                  .k_ab = 2,
                                  .k_cb = 2};
  // 2-NN of a1, a2 in B: {b1, b2}. 2-NN of c1, c2 in B: {b2, b3}.
  // Intersection on B: b2 only -> 4 triplets.
  TripletResult expected = {
      Triplet{1, 12, 21}, Triplet{1, 12, 22},
      Triplet{2, 12, 21}, Triplet{2, 12, 22},
  };
  Canonicalize(expected);
  EXPECT_EQ(*UnchainedJoinsNaive(query), expected);
  EXPECT_EQ(*UnchainedJoinsBlockMarking(query), expected);
}

}  // namespace
}  // namespace knnq
