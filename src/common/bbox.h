// Axis-aligned bounding boxes and the MINDIST / MAXDIST metrics.
//
// MINDIST(p, b) and MAXDIST(p, b) (Roussopoulos et al. [13]) are the
// minimum and maximum possible distance between point p and any location
// inside box b. Every pruning rule in the paper is phrased in terms of
// these two metrics, so they live here next to the box type.

#ifndef KNNQ_SRC_COMMON_BBOX_H_
#define KNNQ_SRC_COMMON_BBOX_H_

#include <string>

#include "src/common/point.h"

namespace knnq {

/// A closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
/// A default-constructed box is empty (inverted bounds) and grows via
/// Extend.
class BoundingBox {
 public:
  /// Creates an empty box: Contains() is false for every point and
  /// Extend establishes the first bounds.
  BoundingBox();

  /// Creates the box with the given corners. Requires min <= max per axis.
  BoundingBox(double min_x, double min_y, double max_x, double max_y);

  /// Returns the smallest box containing all of `points` (empty box for an
  /// empty set).
  static BoundingBox Of(const PointSet& points);

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  bool empty() const { return min_x_ > max_x_; }
  double width() const { return empty() ? 0.0 : max_x_ - min_x_; }
  double height() const { return empty() ? 0.0 : max_y_ - min_y_; }
  double Area() const { return width() * height(); }

  /// Center of the box. Undefined for an empty box (guarded by DCHECK).
  Point Center() const;

  /// Length of the box diagonal; the paper's `block.diagonal`.
  double Diagonal() const;

  /// Grows the box to contain `p`.
  void Extend(const Point& p);
  /// Grows the box to contain `other`.
  void Extend(const BoundingBox& other);

  /// Expands each side outward by `margin` (>= 0).
  BoundingBox Inflated(double margin) const;

  bool Contains(const Point& p) const {
    return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
  }

  bool Intersects(const BoundingBox& other) const;

  /// Squared MINDIST: 0 when `p` is inside the box.
  double SquaredMinDist(const Point& p) const;
  /// Squared MAXDIST: distance to the farthest corner.
  double SquaredMaxDist(const Point& p) const;

  /// MINDIST(p, box) per [13].
  double MinDist(const Point& p) const;
  /// MAXDIST(p, box) per [13].
  double MaxDist(const Point& p) const;

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }

  std::string ToString() const;

 private:
  double min_x_;
  double min_y_;
  double max_x_;
  double max_y_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_COMMON_BBOX_H_
