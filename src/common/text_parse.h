// Strict textual parsing of the scalar shapes user input arrives in:
// numbers, "X,Y" points and "X1,Y1,X2,Y2" boxes.
//
// One set of rules serves every front door — the CLI's flag values and
// the KNNQL lexer (src/lang/lexer.h) — so a coordinate that parses in
// one place parses everywhere, with the same error message.

#ifndef KNNQ_SRC_COMMON_TEXT_PARSE_H_
#define KNNQ_SRC_COMMON_TEXT_PARSE_H_

#include <string>
#include <string_view>

#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/common/status.h"

namespace knnq {

/// `text` without leading/trailing whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// Shortest decimal rendering of `value` that ParseDouble parses back
/// to exactly `value` (std::to_chars). The inverse of ParseDouble;
/// shared by the KNNQL unparser and every JSON/metrics renderer so the
/// same number always prints the same bytes.
std::string FormatDouble(double value);

/// Parses `text` as one finite double, consuming all of it. The
/// grammar is std::from_chars' decimal grammar (plus leading
/// whitespace and an optional '+'), so '.' is the radix point no
/// matter what LC_NUMERIC the process runs under. Accepts "3", "-0.5",
/// "1.25e-3"; rejects empty input, trailing junk ("1.2.3"), hex
/// ("0x10"), infinities, NaN and out-of-range magnitudes.
Result<double> ParseDouble(std::string_view text);

/// Parses `text` as one non-negative integer, consuming all of it.
Result<std::size_t> ParseSize(std::string_view text);

/// Parses "X,Y" into a point with id -1 (focal points are not relation
/// members). Whitespace around each coordinate is allowed.
Result<Point> ParsePointText(std::string_view text);

/// Parses "X1,Y1,X2,Y2" into a box, requiring min,max corner order.
Result<BoundingBox> ParseBoxText(std::string_view text);

}  // namespace knnq

#endif  // KNNQ_SRC_COMMON_TEXT_PARSE_H_
