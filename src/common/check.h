// Lightweight invariant-checking macros.
//
// KNNQ_CHECK aborts on violation in all build types; it guards conditions
// that indicate programmer error (out-of-range block ids, broken internal
// invariants), never user input. User-facing validation returns Status.

#ifndef KNNQ_SRC_COMMON_CHECK_H_
#define KNNQ_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define KNNQ_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "KNNQ_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define KNNQ_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "KNNQ_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                              \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define KNNQ_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define KNNQ_DCHECK(cond) KNNQ_CHECK(cond)
#endif

#endif  // KNNQ_SRC_COMMON_CHECK_H_
