#include "src/common/random.h"

#include <cmath>
#include <numbers>

#include "src/common/check.h"

namespace knnq {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  KNNQ_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextIndex(std::uint64_t n) {
  KNNQ_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  KNNQ_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextIndex(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double sd) {
  KNNQ_DCHECK(sd >= 0.0);
  return mean + sd * NextGaussian();
}

bool Rng::Bernoulli(double p) {
  return NextDouble() < p;
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    KNNQ_DCHECK(w >= 0.0);
    total += w;
  }
  KNNQ_CHECK_MSG(total > 0.0, "WeightedIndex requires positive total weight");
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bin.
}

Rng Rng::Fork() {
  return Rng(Next() ^ 0xA02BDBF7BB3C0A7ULL);
}

}  // namespace knnq
