#include "src/common/point.h"

#include <cmath>
#include <cstdio>

namespace knnq {

std::string Point::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%lld @ %.6g, %.6g)",
                static_cast<long long>(id), x, y);
  return buf;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

void AssignSequentialIds(PointSet& points, PointId first_id) {
  PointId next = first_id;
  for (Point& p : points) p.id = next++;
}

}  // namespace knnq
