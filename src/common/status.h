// Status / Result<T>: exception-free error propagation.
//
// The library never throws. Operations that can fail on user input (bad
// configuration, malformed files, k = 0) return Status or Result<T>;
// internal invariant violations abort via KNNQ_CHECK.

#ifndef KNNQ_SRC_COMMON_STATUS_H_
#define KNNQ_SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace knnq {

/// Coarse error taxonomy, RocksDB-style.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kUnsupported,
  kInternal,
  /// KNNQL syntax errors (lexer/parser/binder diagnostics). Separate
  /// from kInvalidArgument so wire protocols and --json consumers can
  /// tell "your statement is malformed" from "your parameters are bad"
  /// without string-matching the message.
  kParseError,
  /// Transient refusal: the serving layer is at capacity (admission
  /// queue full, shutting down). Clients should back off and retry.
  kUnavailable,
};

/// Machine-readable CamelCase name of `code`, e.g. "InvalidArgument",
/// "ParseError". Stable: wire protocols and --json output emit it.
const char* CodeName(StatusCode code);

/// Success-or-error result of an operation, carrying a message on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error, a minimal absl::StatusOr analogue.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in factory functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status: allows `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    KNNQ_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value; aborts if not ok().
  const T& value() const& {
    KNNQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    KNNQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    KNNQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_COMMON_STATUS_H_
