// Wall-clock timing for the benchmark harness and examples.

#ifndef KNNQ_SRC_COMMON_STOPWATCH_H_
#define KNNQ_SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace knnq {

/// Measures elapsed wall-clock time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset.
  double ElapsedSeconds() const;

  /// Elapsed milliseconds since construction or the last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_COMMON_STOPWATCH_H_
