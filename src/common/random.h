// Deterministic pseudo-random number generation.
//
// All data generators and property tests draw from Rng so that every
// experiment is reproducible from a single seed. The engine is
// xoshiro256**, seeded via splitmix64 — small, fast, and identical across
// platforms (unlike distribution adapters in <random>, whose outputs are
// implementation-defined).

#ifndef KNNQ_SRC_COMMON_RANDOM_H_
#define KNNQ_SRC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace knnq {

/// Deterministic random engine with convenience samplers.
class Rng {
 public:
  /// Seeds the engine; equal seeds yield equal streams on every platform.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t NextIndex(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double Gaussian(double mean, double sd);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to
  /// non-negative `weights`. Requires a positive total weight.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator; stream `i` of a parent is
  /// stable regardless of how much the parent is used afterwards.
  Rng Fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace knnq

#endif  // KNNQ_SRC_COMMON_RANDOM_H_
