#include "src/common/stopwatch.h"

namespace knnq {

double Stopwatch::ElapsedSeconds() const {
  const auto elapsed = Clock::now() - start_;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace knnq
