// Point: the unit of data in every relation.
//
// The paper (Section 2) models each relation as a finite set of points in
// the 2-D Euclidean plane. knnq additionally assigns each point a stable
// integer id: ids make join outputs well-defined sets, give kNN a
// deterministic tie-break (rank by (distance, id)), and let result sets be
// compared literally in tests.

#ifndef KNNQ_SRC_COMMON_POINT_H_
#define KNNQ_SRC_COMMON_POINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace knnq {

/// Stable identifier of a point within its relation.
using PointId = std::int64_t;

/// A 2-D point with a stable id.
struct Point {
  PointId id = 0;
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.id == b.id && a.x == b.x && a.y == b.y;
  }

  /// "(id @ x, y)" rendering for logs and test failures.
  std::string ToString() const;
};

/// A relation: an ordered container of points. Algorithms treat it as a
/// set; the order is a storage detail.
using PointSet = std::vector<Point>;

/// Returns squared Euclidean distance between two points. Squared
/// distances order identically to true distances and avoid sqrt in inner
/// loops; take std::sqrt only at API boundaries that expose distances.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Returns Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Renumbers `points` with consecutive ids starting at `first_id`.
/// Generators call this so that relations built from multiple fragments
/// end up with unique ids.
void AssignSequentialIds(PointSet& points, PointId first_id = 0);

}  // namespace knnq

#endif  // KNNQ_SRC_COMMON_POINT_H_
