#include "src/common/text_parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <system_error>
#include <vector>

#include "src/common/check.h"

namespace knnq {

std::string FormatDouble(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  KNNQ_CHECK(ec == std::errc());
  return std::string(buffer, end);
}

std::string_view TrimWhitespace(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(
                              text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

namespace {

/// Splits on ',' and diagnoses by position: a wrong field count names
/// the count (and a trailing comma when that is the cause), a bad
/// field names which field and why.
Result<std::vector<double>> ParseFields(std::string_view text,
                                        std::size_t count,
                                        const std::string& expected) {
  std::vector<std::string_view> fields;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t comma = text.find(',', begin);
    fields.push_back(text.substr(begin, comma == std::string_view::npos
                                            ? std::string_view::npos
                                            : comma - begin));
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  const std::string prefix = "must look like " + expected + ": ";
  if (fields.size() != count) {
    std::string detail =
        "got " + std::to_string(fields.size()) +
        (fields.size() == 1 ? " field" : " fields") + ", expected " +
        std::to_string(count);
    if (fields.size() == count + 1 &&
        TrimWhitespace(fields.back()).empty()) {
      detail +=
          " (trailing comma after field " + std::to_string(count) + "?)";
    }
    return Status::InvalidArgument(prefix + detail);
  }
  std::vector<double> values;
  values.reserve(count);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    auto value = ParseDouble(TrimWhitespace(fields[i]));
    if (!value.ok()) {
      return Status::InvalidArgument(prefix + "field " +
                                     std::to_string(i + 1) + ": " +
                                     value.status().message());
    }
    values.push_back(*value);
  }
  return values;
}

}  // namespace

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got empty text");
  }
  // std::from_chars parses a locale-independent decimal grammar: a
  // server running under a comma-decimal LC_NUMERIC still reads "1.5"
  // as three halves (strtod, the predecessor, honored the locale). It
  // also has no hex forms - "0x10" stops at 'x' and fails the
  // full-consume check - so the grammar stays decimal-only without a
  // special case. Two strtod-isms are preserved by hand: leading
  // whitespace and an explicit '+' sign.
  std::string_view body = text;
  while (!body.empty() &&
         std::isspace(static_cast<unsigned char>(body.front()))) {
    body.remove_prefix(1);
  }
  if (!body.empty() && body.front() == '+') body.remove_prefix(1);
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(body.data(), body.data() + body.size(), value);
  if (end != body.data() + body.size() ||
      (ec != std::errc() && ec != std::errc::result_out_of_range)) {
    return Status::InvalidArgument("malformed number '" +
                                   std::string(text) + "'");
  }
  if (ec == std::errc::result_out_of_range || !std::isfinite(value)) {
    return Status::InvalidArgument("number '" + std::string(text) +
                                   "' is not finite");
  }
  return value;
}

Result<std::size_t> ParseSize(std::string_view text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string_view::npos) {
    return Status::InvalidArgument("expected a non-negative integer, got '" +
                                   std::string(text) + "'");
  }
  const std::string owned(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  constexpr unsigned long long kMax = SIZE_MAX;
  if (end != owned.c_str() + owned.size() || errno == ERANGE ||
      value > kMax) {
    return Status::InvalidArgument("integer out of range: '" + owned + "'");
  }
  return static_cast<std::size_t>(value);
}

Result<Point> ParsePointText(std::string_view text) {
  auto fields = ParseFields(text, 2, "X,Y");
  if (!fields.ok()) return fields.status();
  return Point{.id = -1, .x = (*fields)[0], .y = (*fields)[1]};
}

Result<BoundingBox> ParseBoxText(std::string_view text) {
  auto fields = ParseFields(text, 4, "X1,Y1,X2,Y2");
  if (!fields.ok()) return fields.status();
  const double x1 = (*fields)[0], y1 = (*fields)[1];
  const double x2 = (*fields)[2], y2 = (*fields)[3];
  if (x1 > x2 || y1 > y2) {
    return Status::InvalidArgument("corners must be min,max");
  }
  return BoundingBox(x1, y1, x2, y2);
}

}  // namespace knnq
