#include "src/common/text_parse.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <system_error>
#include <vector>

#include "src/common/check.h"

namespace knnq {

std::string FormatDouble(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  KNNQ_CHECK(ec == std::errc());
  return std::string(buffer, end);
}

std::string_view TrimWhitespace(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(
                              text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

namespace {

/// Splits on ','; a wrong field count yields the not-ok result.
Result<std::vector<double>> ParseFields(std::string_view text,
                                        std::size_t count,
                                        const std::string& expected) {
  std::vector<double> fields;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string_view field =
        text.substr(begin, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - begin);
    auto value = ParseDouble(TrimWhitespace(field));
    if (!value.ok() || fields.size() == count) {
      return Status::InvalidArgument("must look like " + expected);
    }
    fields.push_back(*value);
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  if (fields.size() != count) {
    return Status::InvalidArgument("must look like " + expected);
  }
  return fields;
}

}  // namespace

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got empty text");
  }
  // strtod needs NUL termination; the inputs here are short flag values
  // and lexer token slices, so the copy is irrelevant.
  const std::string owned(text);
  // strtod also understands hex literals ("0x10") and hex floats
  // ("0x1p3"); the documented grammar is decimal only, so a stray 'x'
  // must read as a typo, not as base sixteen.
  if (owned.find_first_of("xX") != std::string::npos) {
    return Status::InvalidArgument("malformed number '" + owned + "'");
  }
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return Status::InvalidArgument("malformed number '" + owned + "'");
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("number '" + owned + "' is not finite");
  }
  return value;
}

Result<std::size_t> ParseSize(std::string_view text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string_view::npos) {
    return Status::InvalidArgument("expected a non-negative integer, got '" +
                                   std::string(text) + "'");
  }
  const std::string owned(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(owned.c_str(), &end, 10);
  constexpr unsigned long long kMax = SIZE_MAX;
  if (end != owned.c_str() + owned.size() || errno == ERANGE ||
      value > kMax) {
    return Status::InvalidArgument("integer out of range: '" + owned + "'");
  }
  return static_cast<std::size_t>(value);
}

Result<Point> ParsePointText(std::string_view text) {
  auto fields = ParseFields(text, 2, "X,Y");
  if (!fields.ok()) return fields.status();
  return Point{.id = -1, .x = (*fields)[0], .y = (*fields)[1]};
}

Result<BoundingBox> ParseBoxText(std::string_view text) {
  auto fields = ParseFields(text, 4, "X1,Y1,X2,Y2");
  if (!fields.ok()) return fields.status();
  const double x1 = (*fields)[0], y1 = (*fields)[1];
  const double x2 = (*fields)[2], y2 = (*fields)[3];
  if (x1 > x2 || y1 > y2) {
    return Status::InvalidArgument("corners must be min,max");
  }
  return BoundingBox(x1, y1, x2, y2);
}

}  // namespace knnq
