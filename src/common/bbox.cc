#include "src/common/bbox.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/check.h"

namespace knnq {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

BoundingBox::BoundingBox()
    : min_x_(kInf), min_y_(kInf), max_x_(-kInf), max_y_(-kInf) {}

BoundingBox::BoundingBox(double min_x, double min_y, double max_x,
                         double max_y)
    : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {
  KNNQ_CHECK_MSG(min_x <= max_x && min_y <= max_y,
                 "BoundingBox corners must satisfy min <= max");
}

BoundingBox BoundingBox::Of(const PointSet& points) {
  BoundingBox box;
  for (const Point& p : points) box.Extend(p);
  return box;
}

Point BoundingBox::Center() const {
  KNNQ_DCHECK(!empty());
  return Point{.id = -1,
               .x = (min_x_ + max_x_) / 2.0,
               .y = (min_y_ + max_y_) / 2.0};
}

double BoundingBox::Diagonal() const {
  if (empty()) return 0.0;
  return std::hypot(width(), height());
}

void BoundingBox::Extend(const Point& p) {
  min_x_ = std::min(min_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_x_ = std::max(max_x_, p.x);
  max_y_ = std::max(max_y_, p.y);
}

void BoundingBox::Extend(const BoundingBox& other) {
  if (other.empty()) return;
  min_x_ = std::min(min_x_, other.min_x_);
  min_y_ = std::min(min_y_, other.min_y_);
  max_x_ = std::max(max_x_, other.max_x_);
  max_y_ = std::max(max_y_, other.max_y_);
}

BoundingBox BoundingBox::Inflated(double margin) const {
  KNNQ_DCHECK(margin >= 0.0);
  if (empty()) return *this;
  return BoundingBox(min_x_ - margin, min_y_ - margin, max_x_ + margin,
                     max_y_ + margin);
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  if (empty() || other.empty()) return false;
  return min_x_ <= other.max_x_ && other.min_x_ <= max_x_ &&
         min_y_ <= other.max_y_ && other.min_y_ <= max_y_;
}

double BoundingBox::SquaredMinDist(const Point& p) const {
  KNNQ_DCHECK(!empty());
  const double dx = std::max({min_x_ - p.x, 0.0, p.x - max_x_});
  const double dy = std::max({min_y_ - p.y, 0.0, p.y - max_y_});
  return dx * dx + dy * dy;
}

double BoundingBox::SquaredMaxDist(const Point& p) const {
  KNNQ_DCHECK(!empty());
  const double dx = std::max(std::abs(p.x - min_x_), std::abs(p.x - max_x_));
  const double dy = std::max(std::abs(p.y - min_y_), std::abs(p.y - max_y_));
  return dx * dx + dy * dy;
}

double BoundingBox::MinDist(const Point& p) const {
  return std::sqrt(SquaredMinDist(p));
}

double BoundingBox::MaxDist(const Point& p) const {
  return std::sqrt(SquaredMaxDist(p));
}

std::string BoundingBox::ToString() const {
  if (empty()) return "[empty]";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g] x [%.6g, %.6g]", min_x_,
                max_x_, min_y_, max_y_);
  return buf;
}

}  // namespace knnq
