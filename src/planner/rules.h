// The paper's algebraic legality rules ([19], Sections 1 and 3-5),
// encoded as queryable facts. The optimizer consults them before
// applying a rewrite, and error messages cite them when a user requests
// an invalid plan shape.

#ifndef KNNQ_SRC_PLANNER_RULES_H_
#define KNNQ_SRC_PLANNER_RULES_H_

#include <string>

namespace knnq {

/// Rewrites a relational optimizer might attempt on two-kNN-predicate
/// queries.
enum class Rewrite {
  /// Push a kNN-select below the OUTER input of a kNN-join.
  kPushSelectBelowOuterJoinInput,
  /// Push a kNN-select below the INNER input of a kNN-join.
  kPushSelectBelowInnerJoinInput,
  /// Evaluate one of two unchained kNN-joins on the other's output.
  kCascadeUnchainedJoins,
  /// Reorder two chained kNN-joins (right-deep <-> left-deep <-> split).
  kReorderChainedJoins,
  /// Feed one kNN-select's output into another kNN-select.
  kCascadeSelects,
};

/// True when the rewrite preserves the conceptually correct semantics.
bool IsSemanticsPreserving(Rewrite rewrite);

/// One-sentence justification, citing the paper's figure or section.
std::string RuleRationale(Rewrite rewrite);

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_RULES_H_
