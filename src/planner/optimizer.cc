#include "src/planner/optimizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/unchained_joins.h"
#include "src/lang/unparser.h"
#include "src/planner/rules.h"

namespace knnq {

/// Grants the optimizer write access to PhysicalPlan's bound state.
class PlanBuilder {
 public:
  static PhysicalPlan Build(Algorithm algorithm, const SpatialIndex* r1,
                            const SpatialIndex* r2, const SpatialIndex* r3,
                            const Point& f1, const Point& f2, std::size_t k1,
                            std::size_t k2, bool swapped,
                            PreprocessMode preprocess, bool cache,
                            std::string query_text, std::string rationale,
                            std::string rule_note,
                            const BoundingBox& range = BoundingBox()) {
    PhysicalPlan plan;
    plan.range_ = range;
    plan.algorithm_ = algorithm;
    plan.r1_ = r1;
    plan.r2_ = r2;
    plan.r3_ = r3;
    plan.f1_ = f1;
    plan.f2_ = f2;
    plan.k1_ = k1;
    plan.k2_ = k2;
    plan.swapped_ = swapped;
    plan.preprocess_ = preprocess;
    plan.cache_ = cache;
    plan.query_text_ = std::move(query_text);
    plan.rationale_ = std::move(rationale);
    plan.rule_note_ = std::move(rule_note);
    return plan;
  }
};

namespace {

Status CheckK(std::size_t k, const char* what) {
  if (k == 0) {
    return Status::InvalidArgument(std::string(what) + " requires k > 0");
  }
  return Status::Ok();
}

Result<const SpatialIndex*> Resolve(const Catalog& catalog,
                                    const std::string& name) {
  auto relation = catalog.Get(name);
  if (!relation.ok()) return relation.status();
  return (*relation)->index.get();
}

Result<PhysicalPlan> PlanTwoSelects(const Catalog& catalog,
                                    const TwoSelectsSpec& spec,
                                    const PlannerOptions& options) {
  if (Status s = CheckK(spec.s1.k, "select"); !s.ok()) return s;
  if (Status s = CheckK(spec.s2.k, "select"); !s.ok()) return s;
  auto relation = Resolve(catalog, spec.relation);
  if (!relation.ok()) return relation.status();

  const bool naive = options.force_naive;
  std::ostringstream why;
  if (naive) {
    why << "forced conceptually correct QEP (both selects in full)";
  } else {
    why << "2-kNN-select clips the k=" << std::max(spec.s1.k, spec.s2.k)
        << " locality with the k=" << std::min(spec.s1.k, spec.s2.k)
        << " result's search threshold (Procedure 5)";
  }
  return PlanBuilder::Build(
      naive ? Algorithm::kTwoSelectsNaive : Algorithm::kTwoSelectsOptimized,
      *relation, nullptr, nullptr, spec.s1.focal, spec.s2.focal, spec.s1.k,
      spec.s2.k, /*swapped=*/false, options.preprocess_mode,
      /*cache=*/false, knnql::Unparse(spec), why.str(),
      RuleRationale(Rewrite::kCascadeSelects));
}

Result<PhysicalPlan> PlanSelectInnerJoin(const Catalog& catalog,
                                         const SelectInnerJoinSpec& spec,
                                         const PlannerOptions& options) {
  if (Status s = CheckK(spec.join_k, "join"); !s.ok()) return s;
  if (Status s = CheckK(spec.select.k, "select"); !s.ok()) return s;
  auto outer = Resolve(catalog, spec.outer);
  if (!outer.ok()) return outer.status();
  auto inner = Resolve(catalog, spec.inner);
  if (!inner.ok()) return inner.status();

  Algorithm algorithm;
  std::ostringstream why;
  if (options.force_naive) {
    algorithm = Algorithm::kSelectInnerJoinNaive;
    why << "forced conceptually correct QEP (full join, filter after)";
  } else if ((*outer)->num_points() < options.counting_outer_cutoff) {
    algorithm = Algorithm::kSelectInnerJoinCounting;
    why << "outer has " << (*outer)->num_points() << " points < cutoff "
        << options.counting_outer_cutoff
        << ": per-tuple Counting beats per-block preprocessing "
           "(Section 3.3, Fig. 20)";
  } else {
    algorithm = Algorithm::kSelectInnerJoinBlockMarking;
    why << "outer has " << (*outer)->num_points() << " points >= cutoff "
        << options.counting_outer_cutoff
        << ": Block-Marking amortizes pruning per block "
           "(Section 3.3, Fig. 21)";
  }
  return PlanBuilder::Build(
      algorithm, *outer, *inner, nullptr, spec.select.focal, Point{},
      spec.join_k, spec.select.k, /*swapped=*/false, options.preprocess_mode,
      /*cache=*/false, knnql::Unparse(spec), why.str(),
      RuleRationale(Rewrite::kPushSelectBelowInnerJoinInput));
}

Result<PhysicalPlan> PlanSelectOuterJoin(const Catalog& catalog,
                                         const SelectOuterJoinSpec& spec,
                                         const PlannerOptions& options) {
  if (Status s = CheckK(spec.join_k, "join"); !s.ok()) return s;
  if (Status s = CheckK(spec.select.k, "select"); !s.ok()) return s;
  auto outer = Resolve(catalog, spec.outer);
  if (!outer.ok()) return outer.status();
  auto inner = Resolve(catalog, spec.inner);
  if (!inner.ok()) return inner.status();

  const bool naive = options.force_naive;
  return PlanBuilder::Build(
      naive ? Algorithm::kSelectOuterJoinLate
            : Algorithm::kSelectOuterJoinPushed,
      *outer, *inner, nullptr, spec.select.focal, Point{}, spec.join_k,
      spec.select.k, /*swapped=*/false, options.preprocess_mode,
      /*cache=*/false, knnql::Unparse(spec),
      naive ? "forced late filter (join everything, then select)"
            : "selection on the OUTER side pushes below the join safely; "
              "only the k selected points are joined",
      RuleRationale(Rewrite::kPushSelectBelowOuterJoinInput));
}

Result<PhysicalPlan> PlanUnchained(const Catalog& catalog,
                                   const UnchainedJoinsSpec& spec,
                                   const PlannerOptions& options) {
  if (Status s = CheckK(spec.k_ab, "join"); !s.ok()) return s;
  if (Status s = CheckK(spec.k_cb, "join"); !s.ok()) return s;
  auto a = Resolve(catalog, spec.a);
  if (!a.ok()) return a.status();
  auto b = Resolve(catalog, spec.b);
  if (!b.ok()) return b.status();
  auto c = Resolve(catalog, spec.c);
  if (!c.ok()) return c.status();

  // Coverage over a common frame drives both decisions of Section 4.1.2.
  // The probe resolution adapts to cardinality so that a uniform
  // relation reads as high coverage regardless of its size: with ~8
  // points per probe cell, uniform occupancy approaches 1 while tight
  // clusters stay near their area fraction.
  BoundingBox frame = (*a)->bounds();
  frame.Extend((*c)->bounds());
  const std::size_t max_n =
      std::max((*a)->num_points(), (*c)->num_points());
  const std::size_t probe_cells = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::sqrt(static_cast<double>(max_n) / 8.0)),
      8, 64);
  const CoverageStats cov_a =
      EstimateCoverage((*a)->points(), frame, probe_cells);
  const CoverageStats cov_c =
      EstimateCoverage((*c)->points(), frame, probe_cells);

  std::ostringstream why;
  why << "coverage(" << spec.a << ")=" << cov_a.coverage() << ", coverage("
      << spec.c << ")=" << cov_c.coverage() << " over the common frame; ";

  Algorithm algorithm;
  bool swapped = false;
  if (options.force_naive) {
    algorithm = Algorithm::kUnchainedNaive;
    why << "forced conceptually correct QEP (independent joins)";
  } else if (cov_a.coverage() > options.uniform_coverage_cutoff &&
             cov_c.coverage() > options.uniform_coverage_cutoff) {
    algorithm = Algorithm::kUnchainedNaive;
    why << "both outer relations are near-uniform: Block-Marking "
           "preprocessing would not pay off (Section 4.1.2)";
  } else {
    algorithm = Algorithm::kUnchainedBlockMarking;
    swapped = ChooseUnchainedOrder(cov_a, cov_c) ==
              UnchainedOrder::kStartWithC;
    why << "start with the smaller-coverage relation ("
        << (swapped ? spec.c : spec.a)
        << ") so more blocks of the other side prune (Section 4.1.2)";
  }
  return PlanBuilder::Build(algorithm, *a, *b, *c, Point{}, Point{},
                            spec.k_ab, spec.k_cb, swapped,
                            options.preprocess_mode, /*cache=*/false,
                            knnql::Unparse(spec), why.str(),
                            RuleRationale(Rewrite::kCascadeUnchainedJoins));
}

Result<PhysicalPlan> PlanChained(const Catalog& catalog,
                                 const ChainedJoinsSpec& spec,
                                 const PlannerOptions& options) {
  if (Status s = CheckK(spec.k_ab, "join"); !s.ok()) return s;
  if (Status s = CheckK(spec.k_bc, "join"); !s.ok()) return s;
  auto a = Resolve(catalog, spec.a);
  if (!a.ok()) return a.status();
  auto b = Resolve(catalog, spec.b);
  if (!b.ok()) return b.status();
  auto c = Resolve(catalog, spec.c);
  if (!c.ok()) return c.status();

  const bool naive = options.force_naive;
  return PlanBuilder::Build(
      naive ? Algorithm::kChainedJoinIntersection
            : Algorithm::kChainedNestedJoin,
      *a, *b, *c, Point{}, Point{}, spec.k_ab, spec.k_bc,
      /*swapped=*/false, options.preprocess_mode, options.cache_chained,
      knnql::Unparse(spec),
      naive ? "forced conceptually correct QEP (both joins independently, "
              "intersect on B)"
            : "nested join touches only b's reachable from A; the hash "
              "cache collapses repeated (B JOIN C) probes (Section 4.2.1)",
      RuleRationale(Rewrite::kReorderChainedJoins));
}

Result<PhysicalPlan> PlanRangeInnerJoin(const Catalog& catalog,
                                        const RangeInnerJoinSpec& spec,
                                        const PlannerOptions& options) {
  if (Status s = CheckK(spec.join_k, "join"); !s.ok()) return s;
  if (spec.range.empty()) {
    return Status::InvalidArgument("selection rectangle must be non-empty");
  }
  auto outer = Resolve(catalog, spec.outer);
  if (!outer.ok()) return outer.status();
  auto inner = Resolve(catalog, spec.inner);
  if (!inner.ok()) return inner.status();

  // The Counting/Block-Marking trade-off is the same as the kNN-select
  // case: the range behaves as a select whose "neighborhood" is fixed.
  Algorithm algorithm;
  std::ostringstream why;
  if (options.force_naive) {
    algorithm = Algorithm::kRangeInnerJoinNaive;
    why << "forced conceptually correct QEP (full join, filter after)";
  } else if ((*outer)->num_points() < options.counting_outer_cutoff) {
    algorithm = Algorithm::kRangeInnerJoinCounting;
    why << "outer has " << (*outer)->num_points() << " points < cutoff "
        << options.counting_outer_cutoff << ": per-tuple Counting";
  } else {
    algorithm = Algorithm::kRangeInnerJoinBlockMarking;
    why << "outer has " << (*outer)->num_points() << " points >= cutoff "
        << options.counting_outer_cutoff << ": Block-Marking";
  }
  return PlanBuilder::Build(
      algorithm, *outer, *inner, nullptr, Point{}, Point{}, spec.join_k, 0,
      /*swapped=*/false, options.preprocess_mode, /*cache=*/false,
      knnql::Unparse(spec), why.str(),
      RuleRationale(Rewrite::kPushSelectBelowInnerJoinInput), spec.range);
}

}  // namespace

Result<PhysicalPlan> Optimize(const Catalog& catalog, const QuerySpec& spec,
                              const PlannerOptions& options) {
  return std::visit(
      [&](const auto& concrete) -> Result<PhysicalPlan> {
        using T = std::decay_t<decltype(concrete)>;
        if constexpr (std::is_same_v<T, TwoSelectsSpec>) {
          return PlanTwoSelects(catalog, concrete, options);
        } else if constexpr (std::is_same_v<T, SelectInnerJoinSpec>) {
          return PlanSelectInnerJoin(catalog, concrete, options);
        } else if constexpr (std::is_same_v<T, SelectOuterJoinSpec>) {
          return PlanSelectOuterJoin(catalog, concrete, options);
        } else if constexpr (std::is_same_v<T, UnchainedJoinsSpec>) {
          return PlanUnchained(catalog, concrete, options);
        } else if constexpr (std::is_same_v<T, RangeInnerJoinSpec>) {
          return PlanRangeInnerJoin(catalog, concrete, options);
        } else {
          return PlanChained(catalog, concrete, options);
        }
      },
      spec);
}

}  // namespace knnq
