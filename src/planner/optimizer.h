// Optimize(): turn a declarative QuerySpec into an executable
// PhysicalPlan, choosing among the paper's algorithms with the
// statistics-driven heuristics of Sections 3.3, 4.1.2 and 4.2.1:
//
//   * two selects        -> 2-kNN-select (smaller k evaluated first).
//   * select-inner-join  -> Counting for small outer relations,
//                           Block-Marking for large ones (Section 3.3's
//                           density trade-off, Figures 20-21).
//   * select-outer-join  -> always push the select (valid rewrite).
//   * unchained joins    -> independent evaluation when both outer
//                           relations cover most of the space (the
//                           preprocessing would not pay off); otherwise
//                           Block-Marking starting from the
//                           smaller-coverage relation (Section 4.1.2).
//   * chained joins      -> nested join with the neighborhood cache
//                           (Section 4.2.1).
//
// The conceptually correct baselines remain reachable through
// PlannerOptions::force_naive for comparisons and benchmarking.

#ifndef KNNQ_SRC_PLANNER_OPTIMIZER_H_
#define KNNQ_SRC_PLANNER_OPTIMIZER_H_

#include "src/common/status.h"
#include "src/core/select_inner_join.h"
#include "src/planner/catalog.h"
#include "src/planner/physical_plan.h"
#include "src/planner/query_spec.h"

namespace knnq {

/// Tunables of the planning heuristics.
struct PlannerOptions {
  /// Select-inner-join: use Counting while the outer relation has fewer
  /// points than this; Block-Marking above (Section 3.3). The default
  /// approximates the crossover of Figures 20-21 at this repo's scales.
  std::size_t counting_outer_cutoff = 65536;

  /// Unchained joins: when BOTH outer relations' coverage exceeds this,
  /// data is effectively uniform and preprocessing would not pay off;
  /// evaluate independently (Section 4.1.2, third bullet).
  double uniform_coverage_cutoff = 0.55;

  /// Block-Marking preprocessing flavor.
  PreprocessMode preprocess_mode = PreprocessMode::kContour;

  /// Chained joins: memoize b-neighborhoods (Section 4.2.1).
  bool cache_chained = true;

  /// Byte budget (in MiB) of the engine-owned cross-query neighborhood
  /// cache (src/engine/neighborhood_cache.h); 0 disables it. Helps
  /// skewed batches (repeated focal points / repeated join specs) and
  /// is near-neutral on uniform ones; see README "Cross-query
  /// neighborhood cache" for sizing guidance.
  std::size_t cache_mb = 0;

  /// Force the conceptually correct QEP regardless of statistics - the
  /// baseline every experiment compares against.
  bool force_naive = false;
};

/// Plans `spec` against `catalog`. Fails on unknown relations or
/// invalid predicates (k == 0).
Result<PhysicalPlan> Optimize(const Catalog& catalog, const QuerySpec& spec,
                              const PlannerOptions& options = {});

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_OPTIMIZER_H_
