#include "src/planner/physical_plan.h"

#include <sstream>

#include "src/common/stopwatch.h"
#include "src/engine/executor.h"

namespace knnq {

const char* ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTwoSelectsNaive:
      return "TwoSelects(naive)";
    case Algorithm::kTwoSelectsOptimized:
      return "2-kNN-select";
    case Algorithm::kSelectInnerJoinNaive:
      return "SelectInnerJoin(naive)";
    case Algorithm::kSelectInnerJoinCounting:
      return "Counting";
    case Algorithm::kSelectInnerJoinBlockMarking:
      return "Block-Marking";
    case Algorithm::kSelectOuterJoinPushed:
      return "SelectOuterJoin(pushed)";
    case Algorithm::kSelectOuterJoinLate:
      return "SelectOuterJoin(late-filter)";
    case Algorithm::kUnchainedNaive:
      return "UnchainedJoins(independent)";
    case Algorithm::kUnchainedBlockMarking:
      return "UnchainedJoins(Block-Marking)";
    case Algorithm::kChainedRightDeep:
      return "ChainedJoins(right-deep)";
    case Algorithm::kChainedJoinIntersection:
      return "ChainedJoins(join-intersection)";
    case Algorithm::kChainedNestedJoin:
      return "ChainedJoins(nested)";
    case Algorithm::kRangeInnerJoinNaive:
      return "RangeInnerJoin(naive)";
    case Algorithm::kRangeInnerJoinCounting:
      return "RangeInnerJoin(Counting)";
    case Algorithm::kRangeInnerJoinBlockMarking:
      return "RangeInnerJoin(Block-Marking)";
  }
  return "unknown";
}

std::string PhysicalPlan::Explain(const ExecStats* stats) const {
  std::ostringstream out;
  out << "Query: " << query_text_ << "\n";
  out << "Plan:  " << ToString(algorithm_);
  if (algorithm_ == Algorithm::kChainedNestedJoin) {
    out << (cache_ ? " [cached]" : " [uncached]");
  }
  if (algorithm_ == Algorithm::kSelectInnerJoinBlockMarking ||
      algorithm_ == Algorithm::kUnchainedBlockMarking) {
    out << (preprocess_ == PreprocessMode::kContour ? " [contour]"
                                                    : " [exhaustive]");
  }
  if (swapped_) out << " [joins reordered]";
  out << "\n";
  if (!rationale_.empty()) out << "Why:   " << rationale_ << "\n";
  if (!rule_note_.empty()) out << "Rule:  " << rule_note_ << "\n";
  if (stats != nullptr) out << "Stats: " << stats->ToString() << "\n";
  return out.str();
}

Result<QueryOutput> PhysicalPlan::Execute(ExecStats* stats) const {
  return Execute(ExecutorRegistry::Default(), stats);
}

Result<QueryOutput> PhysicalPlan::Execute(const ExecutorRegistry& registry,
                                          ExecStats* stats,
                                          NeighborhoodCache* cache) const {
  const Executor* executor = registry.Find(algorithm_);
  if (executor == nullptr) {
    return Status::Internal(std::string("no executor registered for ") +
                            ToString(algorithm_));
  }
  ExecStats local;
  ExecStats* out = stats != nullptr ? stats : &local;
  *out = ExecStats{};
  Stopwatch timer;
  Result<QueryOutput> result = executor->Execute(*this, out, cache);
  out->wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace knnq
