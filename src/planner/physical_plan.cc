#include "src/planner/physical_plan.h"

#include <sstream>

#include "src/core/chained_joins.h"
#include "src/core/range_select_inner_join.h"
#include "src/core/select_outer_join.h"
#include "src/core/unchained_joins.h"

namespace knnq {

const char* ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kTwoSelectsNaive:
      return "TwoSelects(naive)";
    case Algorithm::kTwoSelectsOptimized:
      return "2-kNN-select";
    case Algorithm::kSelectInnerJoinNaive:
      return "SelectInnerJoin(naive)";
    case Algorithm::kSelectInnerJoinCounting:
      return "Counting";
    case Algorithm::kSelectInnerJoinBlockMarking:
      return "Block-Marking";
    case Algorithm::kSelectOuterJoinPushed:
      return "SelectOuterJoin(pushed)";
    case Algorithm::kSelectOuterJoinLate:
      return "SelectOuterJoin(late-filter)";
    case Algorithm::kUnchainedNaive:
      return "UnchainedJoins(independent)";
    case Algorithm::kUnchainedBlockMarking:
      return "UnchainedJoins(Block-Marking)";
    case Algorithm::kChainedRightDeep:
      return "ChainedJoins(right-deep)";
    case Algorithm::kChainedJoinIntersection:
      return "ChainedJoins(join-intersection)";
    case Algorithm::kChainedNestedJoin:
      return "ChainedJoins(nested)";
    case Algorithm::kRangeInnerJoinNaive:
      return "RangeInnerJoin(naive)";
    case Algorithm::kRangeInnerJoinCounting:
      return "RangeInnerJoin(Counting)";
    case Algorithm::kRangeInnerJoinBlockMarking:
      return "RangeInnerJoin(Block-Marking)";
  }
  return "unknown";
}

std::string PhysicalPlan::Explain() const {
  std::ostringstream out;
  out << "Query: " << query_text_ << "\n";
  out << "Plan:  " << ToString(algorithm_);
  if (algorithm_ == Algorithm::kChainedNestedJoin) {
    out << (cache_ ? " [cached]" : " [uncached]");
  }
  if (algorithm_ == Algorithm::kSelectInnerJoinBlockMarking ||
      algorithm_ == Algorithm::kUnchainedBlockMarking) {
    out << (preprocess_ == PreprocessMode::kContour ? " [contour]"
                                                    : " [exhaustive]");
  }
  if (swapped_) out << " [joins reordered]";
  out << "\n";
  if (!rationale_.empty()) out << "Why:   " << rationale_ << "\n";
  if (!rule_note_.empty()) out << "Rule:  " << rule_note_ << "\n";
  return out.str();
}

Result<QueryOutput> PhysicalPlan::Execute() const {
  switch (algorithm_) {
    case Algorithm::kTwoSelectsNaive:
    case Algorithm::kTwoSelectsOptimized: {
      const TwoSelectsQuery query{
          .relation = r1_, .f1 = f1_, .k1 = k1_, .f2 = f2_, .k2 = k2_};
      auto result = (algorithm_ == Algorithm::kTwoSelectsOptimized)
                        ? TwoSelectsOptimized(query)
                        : TwoSelectsNaive(query);
      if (!result.ok()) return result.status();
      return QueryOutput(std::move(result.value()));
    }

    case Algorithm::kSelectInnerJoinNaive:
    case Algorithm::kSelectInnerJoinCounting:
    case Algorithm::kSelectInnerJoinBlockMarking: {
      const SelectInnerJoinQuery query{.outer = r1_,
                                       .inner = r2_,
                                       .join_k = k1_,
                                       .focal = f1_,
                                       .select_k = k2_};
      Result<JoinResult> result =
          (algorithm_ == Algorithm::kSelectInnerJoinCounting)
              ? SelectInnerJoinCounting(query)
          : (algorithm_ == Algorithm::kSelectInnerJoinBlockMarking)
              ? SelectInnerJoinBlockMarking(query, preprocess_)
              : SelectInnerJoinNaive(query);
      if (!result.ok()) return result.status();
      return QueryOutput(std::move(result.value()));
    }

    case Algorithm::kSelectOuterJoinPushed:
    case Algorithm::kSelectOuterJoinLate: {
      const SelectOuterJoinQuery query{.outer = r1_,
                                       .inner = r2_,
                                       .join_k = k1_,
                                       .focal = f1_,
                                       .select_k = k2_};
      auto result = (algorithm_ == Algorithm::kSelectOuterJoinPushed)
                        ? SelectOuterJoinPushed(query)
                        : SelectOuterJoinLate(query);
      if (!result.ok()) return result.status();
      return QueryOutput(std::move(result.value()));
    }

    case Algorithm::kUnchainedNaive:
    case Algorithm::kUnchainedBlockMarking: {
      // When swapped_, the physical A-side is the spec's C-side; swap
      // the triplet roles back so callers always see spec order.
      const UnchainedJoinsQuery query{.a = swapped_ ? r3_ : r1_,
                                      .b = r2_,
                                      .c = swapped_ ? r1_ : r3_,
                                      .k_ab = swapped_ ? k2_ : k1_,
                                      .k_cb = swapped_ ? k1_ : k2_};
      auto result = (algorithm_ == Algorithm::kUnchainedBlockMarking)
                        ? UnchainedJoinsBlockMarking(query)
                        : UnchainedJoinsNaive(query);
      if (!result.ok()) return result.status();
      TripletResult triplets = std::move(result.value());
      if (swapped_) {
        for (Triplet& t : triplets) std::swap(t.a, t.c);
        Canonicalize(triplets);
      }
      return QueryOutput(std::move(triplets));
    }

    case Algorithm::kRangeInnerJoinNaive:
    case Algorithm::kRangeInnerJoinCounting:
    case Algorithm::kRangeInnerJoinBlockMarking: {
      const RangeSelectInnerJoinQuery query{
          .outer = r1_, .inner = r2_, .join_k = k1_, .range = range_};
      Result<JoinResult> result =
          (algorithm_ == Algorithm::kRangeInnerJoinCounting)
              ? RangeSelectInnerJoinCounting(query)
          : (algorithm_ == Algorithm::kRangeInnerJoinBlockMarking)
              ? RangeSelectInnerJoinBlockMarking(query, preprocess_)
              : RangeSelectInnerJoinNaive(query);
      if (!result.ok()) return result.status();
      return QueryOutput(std::move(result.value()));
    }

    case Algorithm::kChainedRightDeep:
    case Algorithm::kChainedJoinIntersection:
    case Algorithm::kChainedNestedJoin: {
      const ChainedJoinsQuery query{
          .a = r1_, .b = r2_, .c = r3_, .k_ab = k1_, .k_bc = k2_};
      Result<TripletResult> result =
          (algorithm_ == Algorithm::kChainedRightDeep)
              ? ChainedJoinsRightDeep(query)
          : (algorithm_ == Algorithm::kChainedJoinIntersection)
              ? ChainedJoinsJoinIntersection(query)
              : ChainedJoinsNested(query, cache_);
      if (!result.ok()) return result.status();
      return QueryOutput(std::move(result.value()));
    }
  }
  return Status::Internal("unhandled algorithm in PhysicalPlan::Execute");
}

}  // namespace knnq
