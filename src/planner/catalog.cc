#include "src/planner/catalog.h"

#include <algorithm>
#include <utility>

namespace knnq {

namespace {

PointId NextIdAfter(const PointSet& points) {
  PointId next = 0;
  for (const Point& p : points) next = std::max(next, p.id + 1);
  return next;
}

}  // namespace

Status Catalog::AddRelation(const std::string& name, PointSet points,
                            const IndexOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (relations_.contains(name)) {
    return Status::InvalidArgument("relation already registered: " + name);
  }
  const PointId next_id = NextIdAfter(points);
  auto index = BuildIndex(std::move(points), options);
  if (!index.ok()) return index.status();
  relations_.emplace(name, Relation{.name = name,
                                    .index = std::move(index.value()),
                                    .generation = 1,
                                    .next_id = next_id});
  ++generation_;
  return Status::Ok();
}

Result<Relation*> Catalog::GetMutable(const std::string& name) {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return &it->second;
}

Result<MutationOutcome> Catalog::Mutate(const std::string& name,
                                        const std::vector<MutationOp>& ops) {
  auto relation = GetMutable(name);
  if (!relation.ok()) return relation.status();
  Relation& rel = **relation;

  std::size_t rows = 0;
  for (const MutationOp& op : ops) {
    if (op.kind == MutationOp::Kind::kInsert) {
      Point p = op.point;
      if (p.id < 0) p.id = rel.next_id;
      if (Status s = rel.index->Insert(p); !s.ok()) {
        if (rows > 0) {
          ++rel.generation;
          ++generation_;
        }
        return s;
      }
      rel.next_id = std::max(rel.next_id, p.id + 1);
      ++rows;
    } else {
      const Status erased = rel.index->Erase(op.erase_id);
      if (erased.ok()) {
        ++rows;
      } else if (erased.code() != StatusCode::kNotFound) {
        if (rows > 0) {
          ++rel.generation;
          ++generation_;
        }
        return erased;
      }
    }
  }
  if (rows > 0) {
    ++rel.generation;
    ++generation_;
  }
  return MutationOutcome{.rows_affected = rows,
                         .generation = rel.generation,
                         .index = rel.index.get()};
}

Result<MutationOutcome> Catalog::LoadRelation(const std::string& name,
                                              PointSet points,
                                              const IndexOptions& options) {
  if (!relations_.contains(name)) {
    const std::size_t rows = points.size();
    if (Status s = AddRelation(name, std::move(points), options); !s.ok()) {
      return s;
    }
    const Relation& rel = relations_.at(name);
    return MutationOutcome{.rows_affected = rows,
                           .generation = rel.generation,
                           .index = rel.index.get()};
  }
  Relation& rel = relations_.at(name);
  const std::size_t rows = points.size();
  const PointId next_id = NextIdAfter(points);
  if (Status s = rel.index->BulkLoad(std::move(points)); !s.ok()) return s;
  rel.next_id = next_id;
  ++rel.generation;
  ++generation_;
  return MutationOutcome{.rows_affected = rows,
                         .generation = rel.generation,
                         .index = rel.index.get()};
}

Result<MutationOutcome> Catalog::ReplaceIndex(
    const std::string& name, std::shared_ptr<SpatialIndex> index,
    PointId next_id, std::size_t rows_affected) {
  if (index == nullptr) {
    return Status::InvalidArgument("ReplaceIndex: null index");
  }
  auto relation = GetMutable(name);
  if (!relation.ok()) return relation.status();
  Relation& rel = **relation;
  rel.index = std::move(index);
  rel.next_id = next_id;
  ++rel.generation;
  ++generation_;
  return MutationOutcome{.rows_affected = rows_affected,
                         .generation = rel.generation,
                         .index = rel.index.get()};
}

Status Catalog::AdoptRelation(const std::string& name,
                              std::shared_ptr<SpatialIndex> index,
                              PointId next_id) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (relations_.contains(name)) {
    return Status::InvalidArgument("relation already registered: " + name);
  }
  if (index == nullptr) {
    return Status::InvalidArgument("AdoptRelation: null index");
  }
  relations_.emplace(name, Relation{.name = name,
                                    .index = std::move(index),
                                    .generation = 1,
                                    .next_id = next_id});
  ++generation_;
  return Status::Ok();
}

void Catalog::StampLsn(const std::string& name, std::uint64_t lsn) {
  const auto it = relations_.find(name);
  if (it == relations_.end()) return;
  it->second.last_lsn = std::max(it->second.last_lsn, lsn);
}

Result<const Relation*> Catalog::Get(const std::string& name) const {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return &it->second;
}

bool Catalog::Has(const std::string& name) const {
  return relations_.contains(name);
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, unused] : relations_) names.push_back(name);
  return names;
}

Result<CoverageStats> Catalog::CoverageOf(const std::string& name,
                                          const BoundingBox& frame) const {
  auto relation = Get(name);
  if (!relation.ok()) return relation.status();
  return EstimateCoverage((*relation)->index->points(), frame);
}

BoundingBox Catalog::UnionBounds() const {
  BoundingBox bounds;
  for (const auto& [unused, relation] : relations_) {
    bounds.Extend(relation.index->bounds());
  }
  return bounds;
}

}  // namespace knnq
