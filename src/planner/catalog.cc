#include "src/planner/catalog.h"

#include <utility>

namespace knnq {

Status Catalog::AddRelation(const std::string& name, PointSet points,
                            const IndexOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must not be empty");
  }
  if (relations_.contains(name)) {
    return Status::InvalidArgument("relation already registered: " + name);
  }
  auto index = BuildIndex(std::move(points), options);
  if (!index.ok()) return index.status();
  relations_.emplace(
      name, Relation{.name = name, .index = std::move(index.value())});
  ++generation_;
  return Status::Ok();
}

Result<const Relation*> Catalog::Get(const std::string& name) const {
  const auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return &it->second;
}

bool Catalog::Has(const std::string& name) const {
  return relations_.contains(name);
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, unused] : relations_) names.push_back(name);
  return names;
}

Result<CoverageStats> Catalog::CoverageOf(const std::string& name,
                                          const BoundingBox& frame) const {
  auto relation = Get(name);
  if (!relation.ok()) return relation.status();
  return EstimateCoverage((*relation)->index->points(), frame);
}

BoundingBox Catalog::UnionBounds() const {
  BoundingBox bounds;
  for (const auto& [unused, relation] : relations_) {
    bounds.Extend(relation.index->bounds());
  }
  return bounds;
}

}  // namespace knnq
