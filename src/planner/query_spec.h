// Declarative query specifications: the five two-predicate query shapes
// the paper studies, phrased over catalog relation names. The optimizer
// turns a spec into a physical plan; the spec itself fixes the
// *semantics* (always the conceptually correct evaluation of [19]),
// never the algorithm.

#ifndef KNNQ_SRC_PLANNER_QUERY_SPEC_H_
#define KNNQ_SRC_PLANNER_QUERY_SPEC_H_

#include <string>
#include <variant>

#include "src/common/bbox.h"
#include "src/common/point.h"

namespace knnq {

/// One kNN predicate: "the k nearest to focal".
struct KnnPredicate {
  Point focal;
  std::size_t k = 0;

  friend bool operator==(const KnnPredicate&,
                         const KnnPredicate&) = default;
};

/// sigma_{s1}(E) INTERSECT sigma_{s2}(E)  (Section 5).
struct TwoSelectsSpec {
  std::string relation;
  KnnPredicate s1;
  KnnPredicate s2;

  friend bool operator==(const TwoSelectsSpec&,
                         const TwoSelectsSpec&) = default;
};

/// (E1 JOIN_kNN E2) INTERSECT (E1 x sigma(E2))  (Section 3): the select
/// constrains the join's INNER relation.
struct SelectInnerJoinSpec {
  std::string outer;
  std::string inner;
  std::size_t join_k = 0;
  KnnPredicate select;

  friend bool operator==(const SelectInnerJoinSpec&,
                         const SelectInnerJoinSpec&) = default;
};

/// sigma(E1) JOIN_kNN E2  (Section 3's completeness case): the select
/// constrains the join's OUTER relation; pushdown is valid.
struct SelectOuterJoinSpec {
  std::string outer;
  std::string inner;
  std::size_t join_k = 0;
  KnnPredicate select;

  friend bool operator==(const SelectOuterJoinSpec&,
                         const SelectOuterJoinSpec&) = default;
};

/// (A JOIN_kNN B) INTERSECT_B (C JOIN_kNN B)  (Section 4.1).
struct UnchainedJoinsSpec {
  std::string a;
  std::string b;
  std::string c;
  std::size_t k_ab = 0;
  std::size_t k_cb = 0;

  friend bool operator==(const UnchainedJoinsSpec&,
                         const UnchainedJoinsSpec&) = default;
};

/// (A JOIN_kNN B) then (B JOIN_kNN C)  (Section 4.2).
struct ChainedJoinsSpec {
  std::string a;
  std::string b;
  std::string c;
  std::size_t k_ab = 0;
  std::size_t k_bc = 0;

  friend bool operator==(const ChainedJoinsSpec&,
                         const ChainedJoinsSpec&) = default;
};

/// (E1 JOIN_kNN E2) INTERSECT (E1 x Range_rect(E2))  (footnote 1 of
/// Section 3): a rectangular range constrains the join's INNER
/// relation; the same pushdown trap as the kNN-select applies.
struct RangeInnerJoinSpec {
  std::string outer;
  std::string inner;
  std::size_t join_k = 0;
  BoundingBox range;

  friend bool operator==(const RangeInnerJoinSpec&,
                         const RangeInnerJoinSpec&) = default;
};

/// Any supported query.
using QuerySpec =
    std::variant<TwoSelectsSpec, SelectInnerJoinSpec, SelectOuterJoinSpec,
                 UnchainedJoinsSpec, ChainedJoinsSpec, RangeInnerJoinSpec>;

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_QUERY_SPEC_H_
