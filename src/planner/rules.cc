#include "src/planner/rules.h"

namespace knnq {

bool IsSemanticsPreserving(Rewrite rewrite) {
  switch (rewrite) {
    case Rewrite::kPushSelectBelowOuterJoinInput:
      return true;  // Figure 3: both QEPs agree.
    case Rewrite::kPushSelectBelowInnerJoinInput:
      return false;  // Figures 1 vs 2: the join loses inner candidates.
    case Rewrite::kCascadeUnchainedJoins:
      return false;  // Figures 8 and 9: both cascade orders are wrong.
    case Rewrite::kReorderChainedJoins:
      return true;  // Figure 13: all three QEPs agree.
    case Rewrite::kCascadeSelects:
      return false;  // Figures 14 and 15: both cascade orders are wrong.
  }
  return false;
}

std::string RuleRationale(Rewrite rewrite) {
  switch (rewrite) {
    case Rewrite::kPushSelectBelowOuterJoinInput:
      return "valid: dropping outer points only removes join rows the "
             "final select filter would discard (paper Fig. 3)";
    case Rewrite::kPushSelectBelowInnerJoinInput:
      return "invalid: the join would see only the k selected inner "
             "points instead of the whole inner relation, so every outer "
             "point pairs with them regardless of true proximity (paper "
             "Figs. 1-2)";
    case Rewrite::kCascadeUnchainedJoins:
      return "invalid: whichever join runs first filters the shared "
             "inner relation and corrupts the other join's neighborhoods "
             "(paper Figs. 8-9); evaluate independently and intersect on "
             "B (Fig. 10)";
    case Rewrite::kReorderChainedJoins:
      return "valid: the first join acts as a select on the OUTER side "
             "of the second, which is a valid pushdown (paper Fig. 13)";
    case Rewrite::kCascadeSelects:
      return "invalid: the second select would choose among only k "
             "survivors of the first (paper Figs. 14-15); evaluate "
             "independently and intersect (Fig. 16)";
  }
  return "unknown rewrite";
}

}  // namespace knnq
