// Catalog: named relations registered with the planner.
//
// Each relation owns its spatial index; the planner resolves query
// specs against catalog names and derives statistics (cardinality,
// block coverage) for its cost heuristics.
//
// Relations are mutable: Mutate applies an ordered batch of inserts /
// erases through the index's incremental maintenance, and LoadRelation
// replaces (or creates) a relation wholesale. Every change bumps the
// mutated relation's own generation — the key caches use to invalidate
// per relation instead of wholesale — plus the catalog-wide generation.
//
// The catalog itself does no locking. QueryEngine wraps every mutation
// in its writer lock and every query in a reader lock; standalone users
// must serialize writes against all reads themselves.

#ifndef KNNQ_SRC_PLANNER_CATALOG_H_
#define KNNQ_SRC_PLANNER_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/distribution_stats.h"
#include "src/index/index_factory.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// A registered relation.
struct Relation {
  std::string name;
  /// Shared so readers can PIN a snapshot (copy the pointer under the
  /// engine's read lock, then execute against it lock-free) while a
  /// copy-on-write commit republishes the relation with ReplaceIndex.
  /// The legacy in-place mutation paths (Mutate / LoadRelation) keep
  /// mutating the SAME object — safe only under the historical
  /// writer-excludes-all-readers locking.
  std::shared_ptr<SpatialIndex> index;
  /// Bumped by every mutation of THIS relation (and by its creation).
  /// Caches keyed by relation identity compare this to invalidate only
  /// what actually changed.
  std::uint64_t generation = 0;
  /// The id the next auto-assigned insert receives (max indexed id + 1).
  PointId next_id = 0;
  /// The log sequence number of the last durable write applied to this
  /// relation. 0 until the durability layer stamps one; the snapshot
  /// writer persists it so recovery knows which WAL records are
  /// already reflected. Preserved across ReplaceIndex (the index swap
  /// is an implementation detail of the same logical relation).
  std::uint64_t last_lsn = 0;
};

/// One write against a relation, applied in batch order by Mutate.
struct MutationOp {
  enum class Kind { kInsert, kErase };
  Kind kind = Kind::kInsert;
  /// kInsert: the point to add. A negative id means "assign the
  /// relation's next free id".
  Point point;
  /// kErase: the id to remove. Erasing an absent id affects 0 rows and
  /// is not an error (SQL DELETE semantics).
  PointId erase_id = 0;

  static MutationOp Insert(double x, double y, PointId id = -1) {
    return MutationOp{.kind = Kind::kInsert,
                      .point = {.id = id, .x = x, .y = y}};
  }
  static MutationOp Erase(PointId id) {
    return MutationOp{.kind = Kind::kErase, .point = {}, .erase_id = id};
  }
};

/// What a Mutate call did.
struct MutationOutcome {
  /// Rows actually inserted or erased (absent-id erases do not count).
  std::size_t rows_affected = 0;
  /// The relation's generation after the call.
  std::uint64_t generation = 0;
  /// The mutated relation's index — the identity caches key on.
  const SpatialIndex* index = nullptr;
};

/// Name -> relation registry. See the header comment for the
/// concurrency contract.
class Catalog {
 public:
  /// Indexes `points` and registers them under `name`. Fails on a
  /// duplicate name or invalid index options.
  Status AddRelation(const std::string& name, PointSet points,
                     const IndexOptions& options = {});

  /// Applies `ops` in order to relation `name`. Fails on an unknown
  /// relation or an invalid insert (non-finite coordinates); ops before
  /// the failing one stay applied. Bumps the relation's generation when
  /// at least one row changed.
  Result<MutationOutcome> Mutate(const std::string& name,
                                 const std::vector<MutationOp>& ops);

  /// Replaces relation `name`'s contents with `points` (BulkLoad, same
  /// index object and structure), or registers a new relation built
  /// with `options` when the name is unknown.
  Result<MutationOutcome> LoadRelation(const std::string& name,
                                       PointSet points,
                                       const IndexOptions& options = {});

  /// The copy-on-write commit: publishes `index` as relation `name`'s
  /// index in one pointer swap — the old index object stays alive for
  /// as long as any reader pins it. Sets next_id (callers own the id
  /// sequence: mutation commits pass a monotone value, LOAD resets)
  /// and bumps both generations. `rows_affected` is echoed into the
  /// outcome.
  Result<MutationOutcome> ReplaceIndex(const std::string& name,
                                       std::shared_ptr<SpatialIndex> index,
                                       PointId next_id,
                                       std::size_t rows_affected);

  /// Registers a new relation that adopts a pre-built `index` wholesale
  /// (the copy-on-write analog of AddRelation). Fails on a duplicate or
  /// empty name or a null index.
  Status AdoptRelation(const std::string& name,
                       std::shared_ptr<SpatialIndex> index, PointId next_id);

  /// Records that relation `name` reflects every durable write up to
  /// and including `lsn`. No generation bump: the stamp is recovery
  /// metadata, not a visible data change. No-op on an unknown name.
  void StampLsn(const std::string& name, std::uint64_t lsn);

  /// Looks a relation up by name.
  Result<const Relation*> Get(const std::string& name) const;

  /// True when `name` is registered.
  bool Has(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Block coverage of `name`'s points measured over `frame` (pass a
  /// common frame to compare two relations; see Section 4.1.2).
  Result<CoverageStats> CoverageOf(const std::string& name,
                                   const BoundingBox& frame) const;

  /// The union of all registered relations' bounding boxes; the default
  /// frame for coverage comparisons.
  BoundingBox UnionBounds() const;

  /// Bumped by every successful AddRelation / Mutate / LoadRelation.
  /// Coarse whole-catalog change detection; per-relation consumers use
  /// Relation::generation instead.
  std::uint64_t generation() const { return generation_; }

 private:
  /// Mutable lookup for the mutation paths.
  Result<Relation*> GetMutable(const std::string& name);

  std::map<std::string, Relation> relations_;
  std::uint64_t generation_ = 0;
};

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_CATALOG_H_
