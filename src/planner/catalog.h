// Catalog: named relations registered with the planner.
//
// Each relation owns its spatial index; the planner resolves query
// specs against catalog names and derives statistics (cardinality,
// block coverage) for its cost heuristics.

#ifndef KNNQ_SRC_PLANNER_CATALOG_H_
#define KNNQ_SRC_PLANNER_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/distribution_stats.h"
#include "src/index/index_factory.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// A registered relation.
struct Relation {
  std::string name;
  std::unique_ptr<SpatialIndex> index;
};

/// Name -> relation registry. Not thread-safe for mutation.
class Catalog {
 public:
  /// Indexes `points` and registers them under `name`. Fails on a
  /// duplicate name or invalid index options.
  Status AddRelation(const std::string& name, PointSet points,
                     const IndexOptions& options = {});

  /// Looks a relation up by name.
  Result<const Relation*> Get(const std::string& name) const;

  /// True when `name` is registered.
  bool Has(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Block coverage of `name`'s points measured over `frame` (pass a
  /// common frame to compare two relations; see Section 4.1.2).
  Result<CoverageStats> CoverageOf(const std::string& name,
                                   const BoundingBox& frame) const;

  /// The union of all registered relations' bounding boxes; the default
  /// frame for coverage comparisons.
  BoundingBox UnionBounds() const;

  /// Bumped by every successful AddRelation. Caches keyed by relation
  /// identity (QueryEngine's NeighborhoodCache) compare generations to
  /// detect catalog changes and invalidate themselves.
  std::uint64_t generation() const { return generation_; }

 private:
  std::map<std::string, Relation> relations_;
  std::uint64_t generation_ = 0;
};

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_CATALOG_H_
