// PhysicalPlan: a fully bound, executable evaluation strategy produced
// by Optimize(). Carries the chosen algorithm, the bound relations, the
// decision rationale (for EXPLAIN), and runs the matching src/core
// evaluator on Execute().

#ifndef KNNQ_SRC_PLANNER_PHYSICAL_PLAN_H_
#define KNNQ_SRC_PLANNER_PHYSICAL_PLAN_H_

#include <string>
#include <variant>

#include "src/common/status.h"
#include "src/core/result_types.h"
#include "src/core/select_inner_join.h"
#include "src/core/two_selects.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// Every executable strategy the optimizer can pick.
enum class Algorithm {
  kTwoSelectsNaive,
  kTwoSelectsOptimized,
  kSelectInnerJoinNaive,
  kSelectInnerJoinCounting,
  kSelectInnerJoinBlockMarking,
  kSelectOuterJoinPushed,
  kSelectOuterJoinLate,
  kUnchainedNaive,
  kUnchainedBlockMarking,
  kChainedRightDeep,
  kChainedJoinIntersection,
  kChainedNestedJoin,
  kRangeInnerJoinNaive,
  kRangeInnerJoinCounting,
  kRangeInnerJoinBlockMarking,
};

/// Short stable name, e.g. "Counting" or "NestedJoin(cached)".
const char* ToString(Algorithm algorithm);

/// The result of any supported query shape.
using QueryOutput =
    std::variant<TwoSelectsResult, JoinResult, TripletResult>;

/// An executable plan. Create via Optimize() in optimizer.h.
class PhysicalPlan {
 public:
  Algorithm algorithm() const { return algorithm_; }

  /// Why the optimizer picked this strategy.
  const std::string& rationale() const { return rationale_; }

  /// Multi-line EXPLAIN rendering: query shape, chosen algorithm,
  /// bound relations, rationale, and the legality rule that constrains
  /// the shape.
  std::string Explain() const;

  /// Runs the plan. Safe to call repeatedly; plans are immutable.
  Result<QueryOutput> Execute() const;

 private:
  friend class PlanBuilder;

  Algorithm algorithm_ = Algorithm::kTwoSelectsNaive;

  // Bound inputs; which fields matter depends on the algorithm.
  const SpatialIndex* r1_ = nullptr;  // E / E1 / A.
  const SpatialIndex* r2_ = nullptr;  // E2 / B.
  const SpatialIndex* r3_ = nullptr;  // C.
  Point f1_;
  Point f2_;
  std::size_t k1_ = 0;
  std::size_t k2_ = 0;
  /// Range-inner-join only: the selection rectangle.
  BoundingBox range_;

  /// Unchained only: relations were swapped so the clustered side
  /// drives the first join; Execute swaps triplet roles back.
  bool swapped_ = false;
  /// Block-Marking preprocessing flavor.
  PreprocessMode preprocess_ = PreprocessMode::kContour;
  /// Chained nested join: memoize b-neighborhoods.
  bool cache_ = true;

  std::string query_text_;
  std::string rationale_;
  std::string rule_note_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_PHYSICAL_PLAN_H_
