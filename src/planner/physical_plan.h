// PhysicalPlan: a fully bound, executable evaluation strategy produced
// by Optimize(). Carries the chosen algorithm, the bound relations and
// the decision rationale (for EXPLAIN). Execution is delegated to the
// engine layer: Execute() looks the algorithm up in the process-wide
// ExecutorRegistry (src/engine/executor.h), so adding an algorithm
// means registering an executor, not editing a switch here.

#ifndef KNNQ_SRC_PLANNER_PHYSICAL_PLAN_H_
#define KNNQ_SRC_PLANNER_PHYSICAL_PLAN_H_

#include <string>
#include <variant>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/core/result_types.h"
#include "src/core/select_inner_join.h"
#include "src/core/two_selects.h"
#include "src/index/spatial_index.h"

namespace knnq {

class ExecutorRegistry;    // src/engine/executor.h
class NeighborhoodCache;   // src/engine/neighborhood_cache.h

/// Every executable strategy the optimizer can pick.
enum class Algorithm {
  kTwoSelectsNaive,
  kTwoSelectsOptimized,
  kSelectInnerJoinNaive,
  kSelectInnerJoinCounting,
  kSelectInnerJoinBlockMarking,
  kSelectOuterJoinPushed,
  kSelectOuterJoinLate,
  kUnchainedNaive,
  kUnchainedBlockMarking,
  kChainedRightDeep,
  kChainedJoinIntersection,
  kChainedNestedJoin,
  kRangeInnerJoinNaive,
  kRangeInnerJoinCounting,
  kRangeInnerJoinBlockMarking,
};

/// Short stable name, e.g. "Counting" or "NestedJoin(cached)".
const char* ToString(Algorithm algorithm);

/// The result of any supported query shape.
using QueryOutput =
    std::variant<TwoSelectsResult, JoinResult, TripletResult>;

/// An executable plan. Create via Optimize() in optimizer.h.
///
/// The bound state is exposed read-only so engine executors can run the
/// plan without befriending it; plans are immutable once built.
class PhysicalPlan {
 public:
  Algorithm algorithm() const { return algorithm_; }

  /// Why the optimizer picked this strategy.
  const std::string& rationale() const { return rationale_; }

  /// Multi-line EXPLAIN rendering: query shape, chosen algorithm,
  /// bound relations, rationale, and the legality rule that constrains
  /// the shape. With `stats` given (from a prior Execute), a final
  /// "Stats:" line reports the uniform execution counters.
  std::string Explain(const ExecStats* stats = nullptr) const;

  /// Runs the plan through ExecutorRegistry::Default(). Safe to call
  /// repeatedly and from several threads at once; plans are immutable.
  /// `stats` (optional) is overwritten with the execution's counters
  /// and wall time.
  Result<QueryOutput> Execute(ExecStats* stats = nullptr) const;

  /// Runs the plan through a caller-supplied registry - the extension
  /// point for engines that register their own executors. Fails with
  /// Internal when the registry has no executor for this algorithm.
  /// `cache` (optional) is a shared cross-query neighborhood memo
  /// (src/engine/neighborhood_cache.h) forwarded to the executor.
  Result<QueryOutput> Execute(const ExecutorRegistry& registry,
                              ExecStats* stats = nullptr,
                              NeighborhoodCache* cache = nullptr) const;

  // --- Bound inputs, read by the engine's executors. ---
  // Which fields are meaningful depends on the algorithm.

  /// E / E1 / A.
  const SpatialIndex* r1() const { return r1_; }
  /// E2 / B.
  const SpatialIndex* r2() const { return r2_; }
  /// C.
  const SpatialIndex* r3() const { return r3_; }
  const Point& f1() const { return f1_; }
  const Point& f2() const { return f2_; }
  std::size_t k1() const { return k1_; }
  std::size_t k2() const { return k2_; }
  /// Range-inner-join only: the selection rectangle.
  const BoundingBox& range() const { return range_; }
  /// Unchained only: relations were swapped so the clustered side
  /// drives the first join; the executor swaps triplet roles back.
  bool swapped() const { return swapped_; }
  /// Block-Marking preprocessing flavor.
  PreprocessMode preprocess() const { return preprocess_; }
  /// Chained nested join: memoize b-neighborhoods.
  bool cache() const { return cache_; }

 private:
  friend class PlanBuilder;

  Algorithm algorithm_ = Algorithm::kTwoSelectsNaive;

  const SpatialIndex* r1_ = nullptr;
  const SpatialIndex* r2_ = nullptr;
  const SpatialIndex* r3_ = nullptr;
  Point f1_;
  Point f2_;
  std::size_t k1_ = 0;
  std::size_t k2_ = 0;
  BoundingBox range_;

  bool swapped_ = false;
  PreprocessMode preprocess_ = PreprocessMode::kContour;
  bool cache_ = true;

  std::string query_text_;
  std::string rationale_;
  std::string rule_note_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_PLANNER_PHYSICAL_PLAN_H_
