#include "src/lang/binder.h"

#include <string>
#include <utility>
#include <variant>

namespace knnq::knnql {

namespace {

Status CheckRelation(const Catalog* catalog, const std::string& name,
                     SourcePos pos) {
  if (catalog != nullptr && !catalog->Has(name)) {
    return ErrorAt(pos, "unknown relation '" + name + "'");
  }
  return Status::Ok();
}

/// The WHERE clause must re-state the join input it constrains; a
/// different name is the paper's invalid-pushdown trap in the making.
Status CheckSideMatches(const KnnSelectExpr& select,
                        const std::string& join_input, const char* side) {
  if (select.relation != join_input) {
    return ErrorAt(select.relation_pos,
                   std::string("the ") + side +
                       " selection must name the join's " + side +
                       " relation '" + join_input + "', got '" +
                       select.relation + "'");
  }
  return Status::Ok();
}

KnnPredicate ToPredicate(const KnnSelectExpr& expr) {
  return KnnPredicate{
      .focal = {.id = -1, .x = expr.x, .y = expr.y},
      .k = expr.k,
  };
}

Result<QuerySpec> BindSelect(const SelectQuery& query,
                             const Catalog* catalog) {
  if (query.s2.relation != query.s1.relation) {
    return ErrorAt(query.s2.relation_pos,
                   "both selects of a SELECT ... INTERSECT query run over "
                   "one relation; expected '" +
                       query.s1.relation + "', got '" + query.s2.relation +
                       "'");
  }
  if (Status s = CheckRelation(catalog, query.s1.relation,
                               query.s1.relation_pos);
      !s.ok()) {
    return s;
  }
  return QuerySpec(TwoSelectsSpec{
      .relation = query.s1.relation,
      .s1 = ToPredicate(query.s1),
      .s2 = ToPredicate(query.s2),
  });
}

Status CheckJoin(const KnnJoinExpr& join, const Catalog* catalog) {
  if (Status s = CheckRelation(catalog, join.outer, join.outer_pos);
      !s.ok()) {
    return s;
  }
  return CheckRelation(catalog, join.inner, join.inner_pos);
}

Result<QuerySpec> BindJoinWhereKnn(const JoinWhereKnnQuery& query,
                                   const Catalog* catalog) {
  if (Status s = CheckJoin(query.join, catalog); !s.ok()) return s;
  if (query.side == JoinSide::kInner) {
    if (Status s = CheckSideMatches(query.select, query.join.inner,
                                    "inner");
        !s.ok()) {
      return s;
    }
    return QuerySpec(SelectInnerJoinSpec{
        .outer = query.join.outer,
        .inner = query.join.inner,
        .join_k = query.join.k,
        .select = ToPredicate(query.select),
    });
  }
  if (Status s = CheckSideMatches(query.select, query.join.outer, "outer");
      !s.ok()) {
    return s;
  }
  return QuerySpec(SelectOuterJoinSpec{
      .outer = query.join.outer,
      .inner = query.join.inner,
      .join_k = query.join.k,
      .select = ToPredicate(query.select),
  });
}

Result<QuerySpec> BindJoinWhereRange(const JoinWhereRangeQuery& query,
                                     const Catalog* catalog) {
  if (Status s = CheckJoin(query.join, catalog); !s.ok()) return s;
  return QuerySpec(RangeInnerJoinSpec{
      .outer = query.join.outer,
      .inner = query.join.inner,
      .join_k = query.join.k,
      .range = query.range,
  });
}

Result<QuerySpec> BindJoinThen(const JoinThenQuery& query,
                               const Catalog* catalog) {
  if (Status s = CheckJoin(query.first, catalog); !s.ok()) return s;
  if (Status s = CheckJoin(query.second, catalog); !s.ok()) return s;
  if (query.second.outer != query.first.inner) {
    return ErrorAt(query.second.outer_pos,
                   "a chained join continues from the first join's inner "
                   "relation '" +
                       query.first.inner + "', got '" + query.second.outer +
                       "'");
  }
  return QuerySpec(ChainedJoinsSpec{
      .a = query.first.outer,
      .b = query.first.inner,
      .c = query.second.inner,
      .k_ab = query.first.k,
      .k_bc = query.second.k,
  });
}

Result<QuerySpec> BindJoinIntersect(const JoinIntersectQuery& query,
                                    const Catalog* catalog) {
  if (Status s = CheckJoin(query.first, catalog); !s.ok()) return s;
  if (Status s = CheckJoin(query.second, catalog); !s.ok()) return s;
  if (query.second.inner != query.first.inner) {
    return ErrorAt(query.second.inner_pos,
                   "unchained joins intersect on a shared inner relation; "
                   "expected '" +
                       query.first.inner + "', got '" + query.second.inner +
                       "'");
  }
  return QuerySpec(UnchainedJoinsSpec{
      .a = query.first.outer,
      .b = query.first.inner,
      .c = query.second.outer,
      .k_ab = query.first.k,
      .k_cb = query.second.k,
  });
}

}  // namespace

Result<QuerySpec> Bind(const Query& query, const Catalog* catalog) {
  return std::visit(
      [&](const auto& concrete) -> Result<QuerySpec> {
        using T = std::decay_t<decltype(concrete)>;
        if constexpr (std::is_same_v<T, SelectQuery>) {
          return BindSelect(concrete, catalog);
        } else if constexpr (std::is_same_v<T, JoinWhereKnnQuery>) {
          return BindJoinWhereKnn(concrete, catalog);
        } else if constexpr (std::is_same_v<T, JoinWhereRangeQuery>) {
          return BindJoinWhereRange(concrete, catalog);
        } else if constexpr (std::is_same_v<T, JoinThenQuery>) {
          return BindJoinThen(concrete, catalog);
        } else {
          return BindJoinIntersect(concrete, catalog);
        }
      },
      query);
}

Result<DmlSpec> BindDml(const StatementBody& body, const Catalog* catalog) {
  if (const auto* insert = std::get_if<InsertStatement>(&body)) {
    if (Status s = CheckRelation(catalog, insert->relation,
                                 insert->relation_pos);
        !s.ok()) {
      return s;
    }
    DmlSpec spec;
    spec.kind = DmlSpec::Kind::kInsert;
    spec.relation = insert->relation;
    spec.rows.reserve(insert->values.size());
    for (const InsertStatement::Value& value : insert->values) {
      spec.rows.push_back(Point{.id = -1, .x = value.x, .y = value.y});
    }
    return spec;
  }
  if (const auto* del = std::get_if<DeleteStatement>(&body)) {
    if (Status s =
            CheckRelation(catalog, del->relation, del->relation_pos);
        !s.ok()) {
      return s;
    }
    DmlSpec spec;
    spec.kind = DmlSpec::Kind::kDelete;
    spec.relation = del->relation;
    spec.id = del->id;
    return spec;
  }
  // LOAD may create the relation, so no existence check.
  const auto& load = std::get<LoadStatement>(body);
  DmlSpec spec;
  spec.kind = DmlSpec::Kind::kLoad;
  spec.relation = load.relation;
  spec.path = load.path;
  return spec;
}

Result<std::vector<BoundStatement>> BindScript(const Script& script,
                                               const Catalog* catalog) {
  std::vector<BoundStatement> bound;
  bound.reserve(script.size());
  for (const Statement& statement : script) {
    BoundStatement entry;
    entry.explain = statement.explain;
    entry.analyze = statement.analyze;
    entry.pos = statement.pos;
    if (const auto* query = std::get_if<Query>(&statement.body)) {
      auto spec = Bind(*query, catalog);
      if (!spec.ok()) return spec.status();
      entry.op = std::move(spec.value());
    } else {
      auto spec = BindDml(statement.body, catalog);
      if (!spec.ok()) return spec.status();
      entry.op = std::move(spec.value());
    }
    bound.push_back(std::move(entry));
  }
  return bound;
}

}  // namespace knnq::knnql
