#include "src/lang/parser.h"

#include <charconv>
#include <string>
#include <string_view>
#include <system_error>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/text_parse.h"
#include "src/lang/lexer.h"

namespace knnq::knnql {

namespace {

/// "line:col: expected X, got Y". When the offender is the end of the
/// input the statement may simply be unfinished, so the status carries
/// kOutOfRange for IsIncompleteInput(); real syntax errors carry
/// kParseError, the machine-readable code structured consumers key on.
Status Expected(const Token& got, const std::string& what) {
  const std::string message =
      got.pos.ToString() + ": expected " + what + ", got " + got.Describe();
  if (got.kind == TokenKind::kEof) {
    return Status::OutOfRange(message);
  }
  return Status::ParseError(message);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> ParseScript() {
    Script script;
    SkipSemicolons();
    while (Peek().kind != TokenKind::kEof) {
      auto statement = ParseOneStatement();
      if (!statement.ok()) return statement.status();
      script.push_back(std::move(statement.value()));
      SkipSemicolons();
    }
    return script;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = next_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Token Take() {
    Token token = Peek();
    if (next_ + 1 < tokens_.size()) ++next_;
    return token;
  }

  Result<Token> Eat(TokenKind kind) {
    if (Peek().kind != kind) return Expected(Peek(), ToString(kind));
    return Take();
  }

  void SkipSemicolons() {
    while (Peek().kind == TokenKind::kSemicolon) Take();
  }

  static bool StartsDml(TokenKind kind) {
    return kind == TokenKind::kInsert || kind == TokenKind::kDelete ||
           kind == TokenKind::kLoad;
  }

  Result<Statement> ParseOneStatement() {
    Statement statement;
    statement.pos = Peek().pos;
    if (Peek().kind == TokenKind::kExplain) {
      Take();
      statement.explain = true;
      if (Peek().kind == TokenKind::kAnalyze) {
        Take();
        statement.analyze = true;
      }
      if (StartsDml(Peek().kind)) {
        return ErrorAt(Peek().pos,
                       "EXPLAIN applies to queries; " + Peek().text +
                           " statements have no plan");
      }
    }
    if (StartsDml(Peek().kind)) {
      auto dml = ParseDml();
      if (!dml.ok()) return dml.status();
      statement.body = std::move(dml.value());
    } else {
      auto query = ParseQuery();
      if (!query.ok()) return query.status();
      statement.body = std::move(query.value());
    }
    // ';' terminates; end of input is accepted after a complete
    // statement so that one-shot "-e" strings need no trailing
    // semicolon.
    if (Peek().kind != TokenKind::kSemicolon &&
        Peek().kind != TokenKind::kEof) {
      return Expected(Peek(), "';'");
    }
    return statement;
  }

  Result<Query> ParseQuery() {
    if (Peek().kind == TokenKind::kSelect) return ParseSelectQuery();
    if (Peek().kind == TokenKind::kJoin) return ParseJoinQuery();
    return Expected(Peek(), "SELECT, JOIN, INSERT, DELETE or LOAD");
  }

  Result<StatementBody> ParseDml() {
    switch (Peek().kind) {
      case TokenKind::kInsert:
        return ParseInsert();
      case TokenKind::kDelete:
        return ParseDelete();
      default:
        return ParseLoad();
    }
  }

  /// INSERT INTO identifier VALUES ( x , y ) { , ( x , y ) }
  Result<StatementBody> ParseInsert() {
    Take();  // INSERT
    if (auto t = Eat(TokenKind::kInto); !t.ok()) return t.status();
    auto name = Eat(TokenKind::kIdentifier);
    if (!name.ok()) return name.status();
    InsertStatement insert;
    insert.relation = name->text;
    insert.relation_pos = name->pos;
    if (auto t = Eat(TokenKind::kValues); !t.ok()) return t.status();
    while (true) {
      InsertStatement::Value value;
      value.pos = Peek().pos;
      if (auto t = Eat(TokenKind::kLeftParen); !t.ok()) return t.status();
      auto x = ParseNumber();
      if (!x.ok()) return x.status();
      value.x = *x;
      if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
      auto y = ParseNumber();
      if (!y.ok()) return y.status();
      value.y = *y;
      if (auto t = Eat(TokenKind::kRightParen); !t.ok()) return t.status();
      insert.values.push_back(value);
      if (Peek().kind != TokenKind::kComma) break;
      Take();
    }
    return StatementBody(std::move(insert));
  }

  /// DELETE FROM identifier WHERE ID = integer
  Result<StatementBody> ParseDelete() {
    Take();  // DELETE
    if (auto t = Eat(TokenKind::kFrom); !t.ok()) return t.status();
    auto name = Eat(TokenKind::kIdentifier);
    if (!name.ok()) return name.status();
    DeleteStatement del;
    del.relation = name->text;
    del.relation_pos = name->pos;
    if (auto t = Eat(TokenKind::kWhere); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kId); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kEquals); !t.ok()) return t.status();
    auto id = ParsePointId();
    if (!id.ok()) return id.status();
    std::tie(del.id, del.id_pos) = *id;
    return StatementBody(std::move(del));
  }

  /// LOAD identifier FROM string
  Result<StatementBody> ParseLoad() {
    Take();  // LOAD
    auto name = Eat(TokenKind::kIdentifier);
    if (!name.ok()) return name.status();
    LoadStatement load;
    load.relation = name->text;
    load.relation_pos = name->pos;
    if (auto t = Eat(TokenKind::kFrom); !t.ok()) return t.status();
    auto path = Eat(TokenKind::kString);
    if (!path.ok()) return path.status();
    load.path = path->text;
    load.path_pos = path->pos;
    if (load.path.empty()) {
      return ErrorAt(path->pos, "LOAD needs a non-empty file path");
    }
    return StatementBody(std::move(load));
  }

  Result<Query> ParseSelectQuery() {
    if (auto t = Eat(TokenKind::kSelect); !t.ok()) return t.status();
    auto s1 = ParseKnnSelect();
    if (!s1.ok()) return s1.status();
    if (auto t = Eat(TokenKind::kIntersect); !t.ok()) return t.status();
    auto s2 = ParseKnnSelect();
    if (!s2.ok()) return s2.status();
    return Query(SelectQuery{std::move(s1.value()), std::move(s2.value())});
  }

  Result<Query> ParseJoinQuery() {
    if (auto t = Eat(TokenKind::kJoin); !t.ok()) return t.status();
    auto join = ParseKnnJoin();
    if (!join.ok()) return join.status();

    switch (Peek().kind) {
      case TokenKind::kWhere:
        return ParseWhereTail(std::move(join.value()));
      case TokenKind::kThen: {
        Take();
        auto second = ParseKnnJoin();
        if (!second.ok()) return second.status();
        return Query(JoinThenQuery{std::move(join.value()),
                                   std::move(second.value())});
      }
      case TokenKind::kIntersect: {
        Take();
        auto second = ParseKnnJoin();
        if (!second.ok()) return second.status();
        return Query(JoinIntersectQuery{std::move(join.value()),
                                        std::move(second.value())});
      }
      default:
        return Expected(Peek(),
                        "WHERE, THEN or INTERSECT (a kNN-join needs a "
                        "second predicate)");
    }
  }

  Result<Query> ParseWhereTail(KnnJoinExpr join) {
    Take();  // WHERE
    const Token side = Peek();
    if (side.kind != TokenKind::kInner && side.kind != TokenKind::kOuter) {
      return Expected(side, "INNER or OUTER");
    }
    Take();
    if (auto t = Eat(TokenKind::kIn); !t.ok()) return t.status();

    if (Peek().kind == TokenKind::kRange) {
      const SourcePos range_pos = Peek().pos;
      if (side.kind == TokenKind::kOuter) {
        return ErrorAt(range_pos,
                       "a RANGE selection applies to the INNER join "
                       "input (use WHERE INNER IN RANGE(...))");
      }
      auto range = ParseRange();
      if (!range.ok()) return range.status();
      return Query(JoinWhereRangeQuery{std::move(join),
                                       std::move(range.value()), range_pos});
    }

    auto select = ParseKnnSelect();
    if (!select.ok()) return select.status();
    JoinWhereKnnQuery query;
    query.join = std::move(join);
    query.side = side.kind == TokenKind::kInner ? JoinSide::kInner
                                                : JoinSide::kOuter;
    query.side_pos = side.pos;
    query.select = std::move(select.value());
    return Query(std::move(query));
  }

  /// KNN ( identifier , k , AT ( x , y ) )
  Result<KnnSelectExpr> ParseKnnSelect() {
    KnnSelectExpr expr;
    if (auto t = Eat(TokenKind::kKnn); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kLeftParen); !t.ok()) return t.status();
    auto name = Eat(TokenKind::kIdentifier);
    if (!name.ok()) return name.status();
    expr.relation = name->text;
    expr.relation_pos = name->pos;
    if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
    auto k = ParseK();
    if (!k.ok()) return k.status();
    std::tie(expr.k, expr.k_pos) = *k;
    if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kAt); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kLeftParen); !t.ok()) return t.status();
    auto x = ParseNumber();
    if (!x.ok()) return x.status();
    expr.x = *x;
    if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
    auto y = ParseNumber();
    if (!y.ok()) return y.status();
    expr.y = *y;
    if (auto t = Eat(TokenKind::kRightParen); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kRightParen); !t.ok()) return t.status();
    return expr;
  }

  /// KNN ( outer , inner , k )
  Result<KnnJoinExpr> ParseKnnJoin() {
    KnnJoinExpr expr;
    if (auto t = Eat(TokenKind::kKnn); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kLeftParen); !t.ok()) return t.status();
    auto outer = Eat(TokenKind::kIdentifier);
    if (!outer.ok()) return outer.status();
    expr.outer = outer->text;
    expr.outer_pos = outer->pos;
    if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
    auto inner = Eat(TokenKind::kIdentifier);
    if (!inner.ok()) return inner.status();
    expr.inner = inner->text;
    expr.inner_pos = inner->pos;
    if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
    auto k = ParseK();
    if (!k.ok()) return k.status();
    std::tie(expr.k, expr.k_pos) = *k;
    if (auto t = Eat(TokenKind::kRightParen); !t.ok()) return t.status();
    return expr;
  }

  /// RANGE ( x1 , y1 , x2 , y2 ) with min,max corner order.
  Result<BoundingBox> ParseRange() {
    const SourcePos pos = Peek().pos;
    if (auto t = Eat(TokenKind::kRange); !t.ok()) return t.status();
    if (auto t = Eat(TokenKind::kLeftParen); !t.ok()) return t.status();
    double corner[4] = {};
    for (int i = 0; i < 4; ++i) {
      if (i > 0) {
        if (auto t = Eat(TokenKind::kComma); !t.ok()) return t.status();
      }
      auto value = ParseNumber();
      if (!value.ok()) return value.status();
      corner[i] = *value;
    }
    if (auto t = Eat(TokenKind::kRightParen); !t.ok()) return t.status();
    if (corner[0] > corner[2] || corner[1] > corner[3]) {
      return ErrorAt(pos, "RANGE corners must be min,max order");
    }
    return BoundingBox(corner[0], corner[1], corner[2], corner[3]);
  }

  /// A point id operand: any integer literal (ids are signed).
  Result<std::pair<PointId, SourcePos>> ParsePointId() {
    auto token = Eat(TokenKind::kNumber);
    if (!token.ok()) return token.status();
    std::string_view text = token->text;
    if (!text.empty() && text.front() == '+') text.remove_prefix(1);
    PointId value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return ErrorAt(token->pos,
                     "a point id must be an integer, got " +
                         token->Describe());
    }
    return std::make_pair(value, token->pos);
  }

  /// A k operand: a positive integer literal.
  Result<std::pair<std::size_t, SourcePos>> ParseK() {
    auto token = Eat(TokenKind::kNumber);
    if (!token.ok()) return token.status();
    auto k = ParseSize(token->text);
    if (!k.ok()) {
      return ErrorAt(token->pos,
                     "k must be a positive integer, got " + token->Describe());
    }
    if (*k == 0) {
      return ErrorAt(token->pos, "k must be > 0");
    }
    return std::make_pair(*k, token->pos);
  }

  Result<double> ParseNumber() {
    auto token = Eat(TokenKind::kNumber);
    if (!token.ok()) return token.status();
    auto value = ParseDouble(token->text);
    if (!value.ok()) {
      return ErrorAt(token->pos, value.status().message());
    }
    return *value;
  }

  std::vector<Token> tokens_;
  std::size_t next_ = 0;
};

}  // namespace

Result<Script> ParseScript(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens.value())).ParseScript();
}

Result<Statement> ParseStatement(std::string_view text) {
  auto script = ParseScript(text);
  if (!script.ok()) return script.status();
  if (script->empty()) {
    return Status::OutOfRange("expected a statement, got empty input");
  }
  if (script->size() > 1) {
    return ErrorAt((*script)[1].pos, "expected exactly one statement");
  }
  return std::move((*script)[0]);
}

bool IsIncompleteInput(const Status& status) {
  return status.code() == StatusCode::kOutOfRange;
}

}  // namespace knnq::knnql
