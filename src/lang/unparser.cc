#include "src/lang/unparser.h"

#include <variant>

#include "src/common/text_parse.h"

namespace knnq::knnql {

namespace {

std::string Knn(const std::string& relation, const KnnPredicate& p) {
  return "KNN(" + relation + ", " + std::to_string(p.k) + ", AT(" +
         FormatNumber(p.focal.x) + ", " + FormatNumber(p.focal.y) + "))";
}

std::string KnnJoin(const std::string& outer, const std::string& inner,
                    std::size_t k) {
  return "KNN(" + outer + ", " + inner + ", " + std::to_string(k) + ")";
}

}  // namespace

std::string FormatNumber(double value) { return FormatDouble(value); }

std::string Unparse(const TwoSelectsSpec& spec) {
  return "SELECT " + Knn(spec.relation, spec.s1) + " INTERSECT " +
         Knn(spec.relation, spec.s2) + ";";
}

std::string Unparse(const SelectInnerJoinSpec& spec) {
  return "JOIN " + KnnJoin(spec.outer, spec.inner, spec.join_k) +
         " WHERE INNER IN " + Knn(spec.inner, spec.select) + ";";
}

std::string Unparse(const SelectOuterJoinSpec& spec) {
  return "JOIN " + KnnJoin(spec.outer, spec.inner, spec.join_k) +
         " WHERE OUTER IN " + Knn(spec.outer, spec.select) + ";";
}

std::string Unparse(const UnchainedJoinsSpec& spec) {
  return "JOIN " + KnnJoin(spec.a, spec.b, spec.k_ab) + " INTERSECT " +
         KnnJoin(spec.c, spec.b, spec.k_cb) + ";";
}

std::string Unparse(const ChainedJoinsSpec& spec) {
  return "JOIN " + KnnJoin(spec.a, spec.b, spec.k_ab) + " THEN " +
         KnnJoin(spec.b, spec.c, spec.k_bc) + ";";
}

std::string Unparse(const RangeInnerJoinSpec& spec) {
  return "JOIN " + KnnJoin(spec.outer, spec.inner, spec.join_k) +
         " WHERE INNER IN RANGE(" + FormatNumber(spec.range.min_x()) +
         ", " + FormatNumber(spec.range.min_y()) + ", " +
         FormatNumber(spec.range.max_x()) + ", " +
         FormatNumber(spec.range.max_y()) + ");";
}

std::string Unparse(const QuerySpec& spec) {
  return std::visit(
      [](const auto& concrete) { return Unparse(concrete); }, spec);
}

std::string Unparse(const DmlSpec& spec) {
  switch (spec.kind) {
    case DmlSpec::Kind::kInsert: {
      std::string out = "INSERT INTO " + spec.relation + " VALUES ";
      for (std::size_t i = 0; i < spec.rows.size(); ++i) {
        if (i > 0) out += ", ";
        out += "(" + FormatNumber(spec.rows[i].x) + ", " +
               FormatNumber(spec.rows[i].y) + ")";
      }
      return out + ";";
    }
    case DmlSpec::Kind::kDelete:
      return "DELETE FROM " + spec.relation +
             " WHERE ID = " + std::to_string(spec.id) + ";";
    case DmlSpec::Kind::kLoad:
      return "LOAD " + spec.relation + " FROM '" + spec.path + "';";
  }
  return ";";
}

}  // namespace knnq::knnql
