// Hand-written KNNQL lexer.
//
// Turns source text into a token stream with 1-based line:column
// positions. Keywords are matched case-insensitively; identifiers are
// case-sensitive; "--" starts a comment running to end of line (SQL
// style). Numbers accept everything ParseDouble (src/common/text_parse.h)
// accepts — the lexer and the CLI flag parser agree on what a number is.
// Single-quoted strings ('file.csv', no escapes, single line) carry the
// LOAD statement's path operand.

#ifndef KNNQ_SRC_LANG_LEXER_H_
#define KNNQ_SRC_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/lang/token.h"

namespace knnq::knnql {

/// Tokenizes all of `text`. The returned stream always ends with one
/// kEof token carrying the position just past the last character. Fails
/// with a positioned diagnostic on an unexpected character or a
/// malformed number ("1.2.3", "4e", "12abc").
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_LEXER_H_
