// KNNQL semantic binder: AST -> planner QuerySpec (queries) or DmlSpec
// (INSERT / DELETE / LOAD).
//
// Binding checks what the grammar cannot:
//   * every relation name resolves in the Catalog (skipped when no
//     catalog is given — the unparser round-trip tests bind shapes
//     whose relations exist nowhere; LOAD is exempt: it may create the
//     relation);
//   * SELECT ... INTERSECT ... names the same relation twice (the
//     two-selects shape is defined over ONE relation);
//   * WHERE INNER/OUTER IN KNN(r, ...) names the join input it
//     constrains (r must equal the join's inner/outer relation);
//   * JOIN ... THEN KNN(b, c, k): the second join starts from the
//     first join's inner relation;
//   * JOIN ... INTERSECT KNN(c, b, k): both joins share the inner
//     relation B they intersect on.
//
// Every violation is reported at the line:column of the offending name.

#ifndef KNNQ_SRC_LANG_BINDER_H_
#define KNNQ_SRC_LANG_BINDER_H_

#include <string>
#include <variant>
#include <vector>

#include "src/common/point.h"
#include "src/common/status.h"
#include "src/lang/ast.h"
#include "src/planner/catalog.h"
#include "src/planner/query_spec.h"

namespace knnq::knnql {

/// The bound form of a DML statement: relation checked, values
/// collected, ready for QueryEngine::Mutate / LoadRelation.
struct DmlSpec {
  enum class Kind { kInsert, kDelete, kLoad };
  Kind kind = Kind::kInsert;
  std::string relation;
  /// kInsert: the rows to add, ids all -1 (engine-assigned).
  std::vector<Point> rows;
  /// kDelete: the id to remove.
  PointId id = 0;
  /// kLoad: the dataset file path.
  std::string path;

  friend bool operator==(const DmlSpec&, const DmlSpec&) = default;
};

/// A bound statement: the executable operation plus presentation flags
/// and the statement's source position.
struct BoundStatement {
  bool explain = false;
  /// EXPLAIN ANALYZE: execute and report the span tree too.
  bool analyze = false;
  std::variant<QuerySpec, DmlSpec> op;
  SourcePos pos;
};

/// Binds one parsed query. `catalog` may be null to skip existence
/// checks (syntax-only binding).
Result<QuerySpec> Bind(const Query& query, const Catalog* catalog);

/// Binds one parsed DML statement (`body` must hold one of the DML
/// alternatives). `catalog` may be null to skip existence checks.
Result<DmlSpec> BindDml(const StatementBody& body, const Catalog* catalog);

/// Binds every statement of a parsed script, failing on the first
/// semantic error.
Result<std::vector<BoundStatement>> BindScript(const Script& script,
                                               const Catalog* catalog);

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_BINDER_H_
