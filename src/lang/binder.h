// KNNQL semantic binder: AST -> planner QuerySpec.
//
// Binding checks what the grammar cannot:
//   * every relation name resolves in the Catalog (skipped when no
//     catalog is given — the unparser round-trip tests bind shapes
//     whose relations exist nowhere);
//   * SELECT ... INTERSECT ... names the same relation twice (the
//     two-selects shape is defined over ONE relation);
//   * WHERE INNER/OUTER IN KNN(r, ...) names the join input it
//     constrains (r must equal the join's inner/outer relation);
//   * JOIN ... THEN KNN(b, c, k): the second join starts from the
//     first join's inner relation;
//   * JOIN ... INTERSECT KNN(c, b, k): both joins share the inner
//     relation B they intersect on.
//
// Every violation is reported at the line:column of the offending name.

#ifndef KNNQ_SRC_LANG_BINDER_H_
#define KNNQ_SRC_LANG_BINDER_H_

#include <vector>

#include "src/common/status.h"
#include "src/lang/ast.h"
#include "src/planner/catalog.h"
#include "src/planner/query_spec.h"

namespace knnq::knnql {

/// A bound statement: the executable spec plus presentation flags.
struct BoundStatement {
  bool explain = false;
  QuerySpec spec;
};

/// Binds one parsed query. `catalog` may be null to skip existence
/// checks (syntax-only binding).
Result<QuerySpec> Bind(const Query& query, const Catalog* catalog);

/// Binds every statement of a parsed script, failing on the first
/// semantic error.
Result<std::vector<BoundStatement>> BindScript(const Script& script,
                                               const Catalog* catalog);

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_BINDER_H_
