// KNNQL abstract syntax: the parsed, *unbound* form of a query.
//
// Names are still strings and every component remembers its source
// position, so the binder (src/lang/binder.h) can report semantic
// errors — unknown relation, mismatched join sides — at the exact
// line:column of the offending name. Binding an AST yields the
// planner's QuerySpec; the AST itself never reaches the optimizer.

#ifndef KNNQ_SRC_LANG_AST_H_
#define KNNQ_SRC_LANG_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/lang/token.h"

namespace knnq::knnql {

/// KNN(relation, k, AT(x, y)) — a kNN-select predicate.
struct KnnSelectExpr {
  std::string relation;
  SourcePos relation_pos;
  std::size_t k = 0;
  SourcePos k_pos;
  double x = 0.0;
  double y = 0.0;
};

/// KNN(outer, inner, k) — a kNN-join.
struct KnnJoinExpr {
  std::string outer;
  SourcePos outer_pos;
  std::string inner;
  SourcePos inner_pos;
  std::size_t k = 0;
  SourcePos k_pos;
};

/// SELECT knn INTERSECT knn — the two-selects shape.
struct SelectQuery {
  KnnSelectExpr s1;
  KnnSelectExpr s2;
};

/// Which join input a WHERE clause constrains.
enum class JoinSide { kInner, kOuter };

/// JOIN knn-join WHERE side IN knn — select-inner / select-outer join.
struct JoinWhereKnnQuery {
  KnnJoinExpr join;
  JoinSide side = JoinSide::kInner;
  SourcePos side_pos;
  KnnSelectExpr select;
};

/// JOIN knn-join WHERE INNER IN RANGE(x1, y1, x2, y2).
struct JoinWhereRangeQuery {
  KnnJoinExpr join;
  BoundingBox range;
  SourcePos range_pos;
};

/// JOIN knn-join THEN knn-join — chained joins (A->B then B->C).
struct JoinThenQuery {
  KnnJoinExpr first;
  KnnJoinExpr second;
};

/// JOIN knn-join INTERSECT knn-join — unchained joins sharing B.
struct JoinIntersectQuery {
  KnnJoinExpr first;
  KnnJoinExpr second;
};

using Query = std::variant<SelectQuery, JoinWhereKnnQuery,
                           JoinWhereRangeQuery, JoinThenQuery,
                           JoinIntersectQuery>;

// --- DML statements (mutating relations) ---

/// INSERT INTO relation VALUES (x, y) [, (x, y)]... — ids are assigned
/// by the engine (the relation's next free id).
struct InsertStatement {
  struct Value {
    double x = 0.0;
    double y = 0.0;
    SourcePos pos;
  };
  std::string relation;
  SourcePos relation_pos;
  std::vector<Value> values;
};

/// DELETE FROM relation WHERE ID = n. Deleting an absent id affects 0
/// rows (SQL semantics), it is not an error.
struct DeleteStatement {
  std::string relation;
  SourcePos relation_pos;
  PointId id = 0;
  SourcePos id_pos;
};

/// LOAD relation FROM 'file' — replaces the relation's contents with
/// the dataset file (creating the relation when it does not exist).
struct LoadStatement {
  std::string relation;
  SourcePos relation_pos;
  std::string path;
  SourcePos path_pos;
};

/// What one statement does: evaluate a query or mutate a relation.
using StatementBody =
    std::variant<Query, InsertStatement, DeleteStatement, LoadStatement>;

/// One parsed statement. EXPLAIN applies to queries only (the parser
/// rejects EXPLAIN on DML). EXPLAIN ANALYZE additionally executes the
/// query and reports its span tree (analyze implies explain).
struct Statement {
  bool explain = false;
  bool analyze = false;
  StatementBody body;
  /// Where the statement started, for script-level error reporting.
  SourcePos pos;
};

using Script = std::vector<Statement>;

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_AST_H_
