// KNNQL front door: parse + bind in one call.
//
// KNNQL is the textual form of the planner's QuerySpec — one statement
// per paper query shape (see src/lang/parser.h for the grammar and
// README "KNNQL" for examples):
//
//   SELECT KNN(hotels, 5, AT(3, 4)) INTERSECT KNN(hotels, 8, AT(1, 2));
//   JOIN KNN(mechanics, hotels, 3) WHERE INNER IN KNN(hotels, 10, AT(1, 2));
//   JOIN KNN(stations, depots, 3) WHERE OUTER IN KNN(stations, 9, AT(1, 2));
//   JOIN KNN(trucks, depots, 2) WHERE INNER IN RANGE(0, 0, 100, 80);
//   JOIN KNN(depots, warehouses, 3) THEN KNN(warehouses, customers, 5);
//   JOIN KNN(depots, warehouses, 3) INTERSECT KNN(sites, warehouses, 5);
//
// plus the DML statements that mutate relations in place:
//
//   INSERT INTO hotels VALUES (3.5, 4.25), (10, 12);
//   DELETE FROM hotels WHERE ID = 42;
//   LOAD hotels FROM 'hotels.csv';
//
// These helpers run the full lexer -> parser -> binder pipeline and
// return planner specs ready for Optimize()/QueryEngine. Lower layers
// (lexer.h, parser.h, binder.h, unparser.h) stay available for tools
// that need the AST or positions.

#ifndef KNNQ_SRC_LANG_KNNQL_H_
#define KNNQ_SRC_LANG_KNNQL_H_

#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/lang/binder.h"
#include "src/lang/unparser.h"
#include "src/planner/query_spec.h"

namespace knnq::knnql {

/// Parses and binds exactly one statement (an EXPLAIN prefix is
/// accepted and ignored). `catalog` may be null to skip relation
/// existence checks.
Result<QuerySpec> ParseQuerySpec(std::string_view text,
                                 const Catalog* catalog = nullptr);

/// Parses and binds a whole script; statements keep their EXPLAIN flag.
Result<std::vector<BoundStatement>> ParseBoundScript(
    std::string_view text, const Catalog* catalog = nullptr);

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_KNNQL_H_
