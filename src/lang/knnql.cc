#include "src/lang/knnql.h"

#include <utility>
#include <variant>

#include "src/lang/parser.h"

namespace knnq::knnql {

Result<QuerySpec> ParseQuerySpec(std::string_view text,
                                 const Catalog* catalog) {
  auto statement = ParseStatement(text);
  if (!statement.ok()) return statement.status();
  const auto* query = std::get_if<Query>(&statement->body);
  if (query == nullptr) {
    return ErrorAt(statement->pos,
                   "expected a query, got a DML statement");
  }
  return Bind(*query, catalog);
}

Result<std::vector<BoundStatement>> ParseBoundScript(
    std::string_view text, const Catalog* catalog) {
  auto script = ParseScript(text);
  if (!script.ok()) return script.status();
  return BindScript(*script, catalog);
}

}  // namespace knnq::knnql
