// Recursive-descent KNNQL parser.
//
// Grammar (see README "KNNQL" for the full EBNF):
//
//   script     = { statement } ;
//   statement  = ( [ "EXPLAIN" ] query | dml ) ( ";" | end-of-input ) ;
//   query      = "SELECT" knn-select "INTERSECT" knn-select
//              | "JOIN" knn-join join-tail ;
//   join-tail  = "WHERE" "INNER" "IN" ( knn-select | range )
//              | "WHERE" "OUTER" "IN" knn-select
//              | "THEN" knn-join
//              | "INTERSECT" knn-join ;
//   knn-select = "KNN" "(" identifier "," integer ","
//                "AT" "(" number "," number ")" ")" ;
//   knn-join   = "KNN" "(" identifier "," identifier "," integer ")" ;
//   range      = "RANGE" "(" number "," number "," number "," number ")" ;
//   dml        = "INSERT" "INTO" identifier "VALUES" value { "," value }
//              | "DELETE" "FROM" identifier "WHERE" "ID" "=" integer
//              | "LOAD" identifier "FROM" string ;
//   value      = "(" number "," number ")" ;
//
// A bare "JOIN knn-join" (no tail) is rejected with a diagnostic: every
// paper query has two predicates, and the single-join form is what the
// base `knn` CLI command covers. EXPLAIN on a DML statement is rejected
// (there is no plan to show).
//
// All diagnostics are positioned ("line:col: expected ..."). Errors
// caused by the input *ending* mid-statement carry StatusCode::
// kOutOfRange so interactive callers can distinguish "keep typing" from
// "this is wrong"; IsIncompleteInput() tests for that.

#ifndef KNNQ_SRC_LANG_PARSER_H_
#define KNNQ_SRC_LANG_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/lang/ast.h"

namespace knnq::knnql {

/// Parses a whole script (zero or more statements).
Result<Script> ParseScript(std::string_view text);

/// Parses exactly one statement; fails if trailing statements follow.
Result<Statement> ParseStatement(std::string_view text);

/// True when `status` means the statement was syntactically fine so far
/// but the input ended before it was complete (REPL: read more lines).
bool IsIncompleteInput(const Status& status);

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_PARSER_H_
