// KNNQL unparser: QuerySpec -> canonical text.
//
// The canonical form is what Parse produces positions against: upper
// keywords, one space after commas, shortest-round-trip number
// rendering, a trailing ';'. The guarantee tests rely on:
//
//   Bind(Parse(Unparse(spec))) == spec
//
// holds for every spec whose relation names are KNNQL identifiers
// ([A-Za-z_][A-Za-z0-9_]*). It is also the "Query:" line of
// PhysicalPlan::Explain(), so every EXPLAIN echoes a string the parser
// accepts back.

#ifndef KNNQ_SRC_LANG_UNPARSER_H_
#define KNNQ_SRC_LANG_UNPARSER_H_

#include <string>

#include "src/lang/binder.h"
#include "src/planner/query_spec.h"

namespace knnq::knnql {

/// Shortest decimal rendering of `value` that strtod parses back to
/// exactly `value` (std::to_chars). Shared by every spec formatter.
std::string FormatNumber(double value);

std::string Unparse(const TwoSelectsSpec& spec);
std::string Unparse(const SelectInnerJoinSpec& spec);
std::string Unparse(const SelectOuterJoinSpec& spec);
std::string Unparse(const UnchainedJoinsSpec& spec);
std::string Unparse(const ChainedJoinsSpec& spec);
std::string Unparse(const RangeInnerJoinSpec& spec);

/// Canonical text of any spec, with the trailing ';'.
std::string Unparse(const QuerySpec& spec);

/// Canonical text of a DML statement ("INSERT INTO r VALUES (1, 2);",
/// "DELETE FROM r WHERE ID = 7;", "LOAD r FROM 'file.csv';"); the same
/// round-trip guarantee as queries: BindDml(Parse(Unparse(dml))) == dml.
std::string Unparse(const DmlSpec& spec);

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_UNPARSER_H_
