// KNNQL tokens. Every token remembers where it started (1-based
// line:column) so that the parser and binder can anchor diagnostics to
// the exact offending character — the "3:14: expected ')'" contract.

#ifndef KNNQ_SRC_LANG_TOKEN_H_
#define KNNQ_SRC_LANG_TOKEN_H_

#include <string>

#include "src/common/status.h"

namespace knnq::knnql {

/// A position in the source text, 1-based.
struct SourcePos {
  int line = 1;
  int column = 1;

  /// "line:column" rendering used as the diagnostic prefix.
  std::string ToString() const;
};

/// Builds the canonical positioned diagnostic: "line:col: message",
/// carrying StatusCode::kParseError for structured consumers.
Status ErrorAt(SourcePos pos, const std::string& message);

enum class TokenKind {
  // Keywords (matched case-insensitively, canonically upper-case).
  kSelect,
  kJoin,
  kKnn,
  kAt,
  kRange,
  kIntersect,
  kWhere,
  kThen,
  kInner,
  kOuter,
  kIn,
  kExplain,
  kAnalyze,
  // DML keywords.
  kInsert,
  kInto,
  kValues,
  kDelete,
  kFrom,
  kId,
  kLoad,
  // Literals and names.
  kIdentifier,
  kNumber,
  /// A single-quoted string ('path.csv'); text holds the content
  /// without the quotes.
  kString,
  // Punctuation.
  kLeftParen,
  kRightParen,
  kComma,
  kSemicolon,
  kEquals,
  // End of input.
  kEof,
};

/// Printable token-kind name for diagnostics, e.g. "')'" or "a number".
const char* ToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  /// The token's spelling; keywords keep the user's casing.
  std::string text;
  SourcePos pos;

  /// Diagnostic rendering: the spelling in quotes, or "end of input".
  std::string Describe() const;
};

}  // namespace knnq::knnql

#endif  // KNNQ_SRC_LANG_TOKEN_H_
