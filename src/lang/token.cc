#include "src/lang/token.h"

namespace knnq::knnql {

std::string SourcePos::ToString() const {
  return std::to_string(line) + ":" + std::to_string(column);
}

Status ErrorAt(SourcePos pos, const std::string& message) {
  return Status::ParseError(pos.ToString() + ": " + message);
}

const char* ToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kJoin:
      return "JOIN";
    case TokenKind::kKnn:
      return "KNN";
    case TokenKind::kAt:
      return "AT";
    case TokenKind::kRange:
      return "RANGE";
    case TokenKind::kIntersect:
      return "INTERSECT";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kThen:
      return "THEN";
    case TokenKind::kInner:
      return "INNER";
    case TokenKind::kOuter:
      return "OUTER";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kExplain:
      return "EXPLAIN";
    case TokenKind::kAnalyze:
      return "ANALYZE";
    case TokenKind::kInsert:
      return "INSERT";
    case TokenKind::kInto:
      return "INTO";
    case TokenKind::kValues:
      return "VALUES";
    case TokenKind::kDelete:
      return "DELETE";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kId:
      return "ID";
    case TokenKind::kLoad:
      return "LOAD";
    case TokenKind::kIdentifier:
      return "a relation name";
    case TokenKind::kNumber:
      return "a number";
    case TokenKind::kString:
      return "a 'quoted' string";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kEof:
      return "end of input";
  }
  return "unknown";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kEof) return "end of input";
  return "'" + text + "'";
}

}  // namespace knnq::knnql
