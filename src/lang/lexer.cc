#include "src/lang/lexer.h"

#include <cctype>
#include <string>

#include "src/common/text_parse.h"

namespace knnq::knnql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

TokenKind KeywordOrIdentifier(std::string_view text) {
  std::string upper(text);
  for (char& c : upper) c = static_cast<char>(std::toupper(
                             static_cast<unsigned char>(c)));
  if (upper == "SELECT") return TokenKind::kSelect;
  if (upper == "JOIN") return TokenKind::kJoin;
  if (upper == "KNN") return TokenKind::kKnn;
  if (upper == "AT") return TokenKind::kAt;
  if (upper == "RANGE") return TokenKind::kRange;
  if (upper == "INTERSECT") return TokenKind::kIntersect;
  if (upper == "WHERE") return TokenKind::kWhere;
  if (upper == "THEN") return TokenKind::kThen;
  if (upper == "INNER") return TokenKind::kInner;
  if (upper == "OUTER") return TokenKind::kOuter;
  if (upper == "IN") return TokenKind::kIn;
  if (upper == "EXPLAIN") return TokenKind::kExplain;
  if (upper == "ANALYZE") return TokenKind::kAnalyze;
  if (upper == "INSERT") return TokenKind::kInsert;
  if (upper == "INTO") return TokenKind::kInto;
  if (upper == "VALUES") return TokenKind::kValues;
  if (upper == "DELETE") return TokenKind::kDelete;
  if (upper == "FROM") return TokenKind::kFrom;
  if (upper == "ID") return TokenKind::kId;
  if (upper == "LOAD") return TokenKind::kLoad;
  return TokenKind::kIdentifier;
}

/// Cursor over the source with line:column bookkeeping.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return offset_ >= text_.size(); }
  char Peek(std::size_t ahead = 0) const {
    return offset_ + ahead < text_.size() ? text_[offset_ + ahead] : '\0';
  }
  SourcePos pos() const { return pos_; }

  void Advance() {
    if (AtEnd()) return;
    if (text_[offset_] == '\n') {
      ++pos_.line;
      pos_.column = 1;
    } else {
      ++pos_.column;
    }
    ++offset_;
  }

  std::size_t offset() const { return offset_; }
  std::string_view Slice(std::size_t from) const {
    return text_.substr(from, offset_ - from);
  }

 private:
  std::string_view text_;
  std::size_t offset_ = 0;
  SourcePos pos_;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  Cursor cursor(text);

  while (!cursor.AtEnd()) {
    const char c = cursor.Peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      cursor.Advance();
      continue;
    }
    // "--" comment to end of line.
    if (c == '-' && cursor.Peek(1) == '-') {
      while (!cursor.AtEnd() && cursor.Peek() != '\n') cursor.Advance();
      continue;
    }

    const SourcePos pos = cursor.pos();
    // Punctuation.
    if (c == '(' || c == ')' || c == ',' || c == ';' || c == '=') {
      TokenKind kind = TokenKind::kComma;
      if (c == '(') kind = TokenKind::kLeftParen;
      if (c == ')') kind = TokenKind::kRightParen;
      if (c == ';') kind = TokenKind::kSemicolon;
      if (c == '=') kind = TokenKind::kEquals;
      tokens.push_back(Token{kind, std::string(1, c), pos});
      cursor.Advance();
      continue;
    }
    // 'string' literal (LOAD paths). No escapes; a newline before the
    // closing quote means the literal was never closed.
    if (c == '\'') {
      cursor.Advance();
      const std::size_t start = cursor.offset();
      while (!cursor.AtEnd() && cursor.Peek() != '\'' &&
             cursor.Peek() != '\n') {
        cursor.Advance();
      }
      if (cursor.Peek() != '\'') {
        return ErrorAt(pos, "unterminated string literal");
      }
      tokens.push_back(Token{TokenKind::kString,
                             std::string(cursor.Slice(start)), pos});
      cursor.Advance();  // Closing quote.
      continue;
    }
    // Keyword or identifier.
    if (IsIdentStart(c)) {
      const std::size_t start = cursor.offset();
      while (!cursor.AtEnd() && IsIdentChar(cursor.Peek())) cursor.Advance();
      const std::string_view word = cursor.Slice(start);
      tokens.push_back(
          Token{KeywordOrIdentifier(word), std::string(word), pos});
      continue;
    }
    // Number: optional sign, digits/dots, optional exponent. Trailing
    // identifier characters or extra dots are swallowed into the token
    // so that ParseDouble reports "1.2.3" or "12abc" as one malformed
    // number at the token's start rather than two confusing tokens.
    if (IsDigit(c) || c == '.' ||
        ((c == '-' || c == '+') &&
         (IsDigit(cursor.Peek(1)) || cursor.Peek(1) == '.'))) {
      const std::size_t start = cursor.offset();
      if (c == '-' || c == '+') cursor.Advance();
      while (IsDigit(cursor.Peek()) || cursor.Peek() == '.') {
        cursor.Advance();
      }
      if (cursor.Peek() == 'e' || cursor.Peek() == 'E') {
        cursor.Advance();
        if (cursor.Peek() == '-' || cursor.Peek() == '+') cursor.Advance();
        while (IsDigit(cursor.Peek())) cursor.Advance();
      }
      while (IsIdentChar(cursor.Peek()) || cursor.Peek() == '.') {
        cursor.Advance();
      }
      const std::string_view number = cursor.Slice(start);
      if (auto parsed = ParseDouble(number); !parsed.ok()) {
        return ErrorAt(pos, parsed.status().message());
      }
      tokens.push_back(
          Token{TokenKind::kNumber, std::string(number), pos});
      continue;
    }

    return ErrorAt(pos, std::string("unexpected character '") + c + "'");
  }

  tokens.push_back(Token{TokenKind::kEof, "", cursor.pos()});
  return tokens;
}

}  // namespace knnq::knnql
