#include "src/server/wire.h"

#include <utility>
#include <variant>
#include <vector>

#include "src/lang/unparser.h"
#include "src/obs/log.h"
#include "src/planner/physical_plan.h"

namespace knnq::server {

std::string JsonEscape(std::string_view text) {
  return obs::JsonEscape(text);
}

std::string JsonPoint(const Point& p) {
  return "{\"id\": " + std::to_string(p.id) +
         ", \"x\": " + knnql::FormatNumber(p.x) +
         ", \"y\": " + knnql::FormatNumber(p.y) + "}";
}

std::string JsonRows(const QueryOutput& output) {
  std::string out;
  std::visit(
      [&](const auto& result) {
        using T = std::decay_t<decltype(result)>;
        if constexpr (std::is_same_v<T, TwoSelectsResult>) {
          out = "\"result_type\": \"points\", \"rows\": [";
          for (std::size_t i = 0; i < result.size(); ++i) {
            if (i > 0) out += ", ";
            out += JsonPoint(result[i]);
          }
        } else if constexpr (std::is_same_v<T, JoinResult>) {
          out = "\"result_type\": \"pairs\", \"rows\": [";
          for (std::size_t i = 0; i < result.size(); ++i) {
            if (i > 0) out += ", ";
            out += "{\"outer\": " + JsonPoint(result[i].outer) +
                   ", \"inner\": " + JsonPoint(result[i].inner) + "}";
          }
        } else {
          out = "\"result_type\": \"triplets\", \"rows\": [";
          for (std::size_t i = 0; i < result.size(); ++i) {
            if (i > 0) out += ", ";
            out += "{\"a\": " + std::to_string(result[i].a) +
                   ", \"b\": " + std::to_string(result[i].b) +
                   ", \"c\": " + std::to_string(result[i].c) + "}";
          }
        }
        out += "]";
      },
      output);
  return out;
}

std::string JsonStats(const ExecStats& stats) { return stats.ToJson(); }

std::string JsonQueryRecord(const std::string& text,
                            const EngineResult& run) {
  return "{\"query\": \"" + JsonEscape(text) +
         "\", \"status\": \"ok\", \"algorithm\": \"" +
         ToString(run.algorithm) + "\", " + JsonRows(run.output) +
         ", \"stats\": " + JsonStats(run.stats) + "}";
}

std::string JsonExplainRecord(const std::string& text,
                              const std::string& explain) {
  return "{\"query\": \"" + JsonEscape(text) +
         "\", \"status\": \"ok\", \"explain\": \"" + JsonEscape(explain) +
         "\"}";
}

std::string JsonAnalyzeRecord(const std::string& text,
                              const EngineResult& run) {
  const std::size_t rows = std::visit(
      [](const auto& result) { return result.size(); }, run.output);
  std::string out = "{\"query\": \"" + JsonEscape(text) +
                    "\", \"status\": \"ok\", \"algorithm\": \"" +
                    ToString(run.algorithm) + "\", \"explain\": \"" +
                    JsonEscape(run.explain) +
                    "\", \"rows\": " + std::to_string(rows) +
                    ", \"stats\": " + JsonStats(run.stats);
  if (run.trace != nullptr) {
    out += ", \"trace\": " + obs::ToJson(run.trace->root());
  }
  out += "}";
  return out;
}

std::string JsonDmlRecord(const std::string& text,
                          const EngineResult& run) {
  return "{\"statement\": \"" + JsonEscape(text) +
         "\", \"status\": \"ok\", \"rows_affected\": " +
         std::to_string(run.rows_affected) + "}";
}

std::string JsonErrorRecord(std::string_view kind, std::string_view text,
                            const Status& status) {
  std::string out = "{";
  if (!kind.empty()) {
    out += "\"";
    out += kind;
    out += "\": \"" + JsonEscape(text) + "\", ";
  }
  out += "\"status\": \"error\", \"code\": \"";
  out += CodeName(status.code());
  out += "\", \"error\": \"" + JsonEscape(status.ToString()) + "\"}";
  return out;
}

std::string WithId(std::uint64_t id, const std::string& record) {
  return "{\"id\": " + std::to_string(id) + ", " + record.substr(1);
}

void StatementSplitter::Feed(std::string_view bytes) {
  buffer_.append(bytes);
}

std::optional<std::string> StatementSplitter::Next() {
  while (scan_pos_ < buffer_.size()) {
    const char c = buffer_[scan_pos_];
    if (in_comment_) {
      if (c == '\n') in_comment_ = false;
    } else if (in_string_) {
      // The lexer never lets a string literal span lines (a newline
      // before the closing quote is "unterminated"); mirroring that
      // here keeps one unpaired quote from desyncing the framing for
      // the rest of the connection.
      if (c == '\'' || c == '\n') in_string_ = false;
    } else if (c == '\'') {
      in_string_ = true;
    } else if (c == '-' && scan_pos_ + 1 < buffer_.size() &&
               buffer_[scan_pos_ + 1] == '-') {
      in_comment_ = true;
      ++scan_pos_;
    } else if (c == ';') {
      std::string statement = buffer_.substr(0, scan_pos_ + 1);
      buffer_.erase(0, scan_pos_ + 1);
      // The terminator closed the statement at top level, so the next
      // one starts with a clean scan state.
      scan_pos_ = 0;
      return statement;
    }
    ++scan_pos_;
  }
  // A lone '-' at the end of the buffer may yet become a comment
  // opener; rewind one byte so the next Feed re-examines the pair.
  if (!in_comment_ && !in_string_ && scan_pos_ > 0 &&
      buffer_.back() == '-') {
    --scan_pos_;
  }
  return std::nullopt;
}

bool StatementSplitter::PendingHasContent() const {
  bool comment = false;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    const char c = buffer_[i];
    if (comment) {
      if (c == '\n') comment = false;
      continue;
    }
    if (c == '-' && i + 1 < buffer_.size() && buffer_[i + 1] == '-') {
      comment = true;
      ++i;
      continue;
    }
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return true;
  }
  return false;
}

Result<std::vector<std::string>> SplitStatements(std::string_view script) {
  StatementSplitter splitter;
  splitter.Feed(script);
  std::vector<std::string> statements;
  while (auto statement = splitter.Next()) {
    statements.push_back(std::move(*statement));
  }
  if (splitter.PendingHasContent()) {
    return Status::ParseError(
        "script ends mid-statement (missing the terminating ';')");
  }
  return statements;
}

}  // namespace knnq::server
