// Closed-loop load generator for the KNNQL wire protocol, shared by
// the tools/knnq_loadgen binary and bench/bench_server.cc.
//
// Each client owns one connection and replays the statement list
// `repeat` times, sending a statement only after the previous
// response arrived (closed loop: offered load == concurrency). Every
// response is checked - the id must match the request's position in
// the connection's stream and the status must be "ok" - so a run
// doubles as a protocol-conformance sweep, and the acceptance gate
// "zero response/ordering errors" falls out of the report.

#ifndef KNNQ_SRC_SERVER_LOADGEN_H_
#define KNNQ_SRC_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace knnq::server {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Concurrent connections, each a closed loop.
  std::size_t clients = 4;

  /// Workload replays per client.
  std::size_t repeat = 1;

  /// Per-response receive timeout; expiring counts a protocol error
  /// and ends that client's run.
  int recv_timeout_ms = 30000;

  /// Crash-drill hook: once this many statements have been sent across
  /// all clients, SIGKILL `kill_pid` (the server under test) and let
  /// the runs wind down. Connection failures after the kill fires are
  /// counted as post_kill_disconnects, not protocol errors, so
  /// clean() still gates the pre-kill traffic. 0 disables.
  std::size_t kill_after_ops = 0;

  /// Process to SIGKILL when kill_after_ops trips. Must be set (> 0)
  /// when kill_after_ops is.
  int kill_pid = 0;
};

struct LoadgenReport {
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t ok_responses = 0;
  /// Well-formed responses carrying "status": "error".
  std::size_t error_responses = 0;
  /// Broken framing: id mismatches, short reads, timeouts, connect
  /// failures.
  std::size_t protocol_errors = 0;
  /// Clients cut off after the crash drill's SIGKILL fired: expected
  /// casualties, tracked apart from protocol errors.
  std::size_t post_kill_disconnects = 0;
  /// The kill_after_ops trigger fired (the server was SIGKILLed).
  bool killed = false;
  double wall_seconds = 0.0;

  /// Exact percentiles over every request's latency (sorted samples,
  /// not histogram buckets).
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  double qps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(ok_responses + error_responses) /
                     wall_seconds
               : 0.0;
  }
  bool clean() const {
    return error_responses == 0 && protocol_errors == 0;
  }
};

/// Replays `statements` (raw KNNQL, each ';'-terminated) against a
/// live server. Statements that frame no response - comment-only or
/// empty - are filtered out up front so the closed loop cannot stall.
/// Fails only on setup errors (no statements, bad address); per-client
/// trouble lands in the report's error counters.
Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options,
                                 const std::vector<std::string>& statements);

/// Connects, sends one admin verb ("SHUTDOWN", "STATS", ...) and
/// returns the response line. The CI smoke step's graceful-shutdown
/// hook.
Result<std::string> SendAdminVerb(const std::string& host,
                                  std::uint16_t port,
                                  const std::string& verb);

/// Outcome of one HTTP GET against the observability plane.
struct HttpGetResult {
  /// The response's status code (200, 503, ...).
  int status = 0;
  std::string body;
};

/// Minimal HTTP/1.1 GET (Connection: close) used by `knnq_loadgen
/// --scrape-http` and the HTTP-plane tests. Fails on connect errors,
/// an unparsable response, or `timeout_ms` expiring before the server
/// closes; a non-200 status is NOT an error here (callers decide).
Result<HttpGetResult> HttpGet(const std::string& host, std::uint16_t port,
                              const std::string& path,
                              int timeout_ms = 10000);

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_LOADGEN_H_
