// Session: one connection's half of the wire protocol, socket-free so
// tests can drive it directly. Bytes go in via Consume(); complete
// statements are framed by StatementSplitter, parsed incrementally
// (multi-line statements simply stay pending until their ';' arrives),
// and dispatched:
//
//   * queries bind against the live catalog and execute asynchronously
//     on the engine's worker pool - pipelined queries from one
//     connection run concurrently and may complete out of order, which
//     the `id` tag in every response makes legal;
//   * EXPLAIN plans synchronously and returns the rendering; EXPLAIN
//     ANALYZE additionally executes (still synchronously, without
//     admission) and returns the measured span tree;
//   * DML is a barrier within the connection: the session waits for
//     its own in-flight queries, then applies the mutation on the
//     calling thread. Cross-connection ordering is the engine's
//     reader/writer protocol;
//   * admin verbs (STATS; METRICS; HISTORY; PING; SHUTDOWN;) are
//     answered without touching the parser.
//
// Backpressure: a query is admitted only while the connection's own
// in-flight count is under `max_conn_inflight` AND the server-wide
// AdmissionController grants a slot; otherwise the session answers a
// structured `overloaded` error (code "Unavailable") immediately.

#ifndef KNNQ_SRC_SERVER_SESSION_H_
#define KNNQ_SRC_SERVER_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "src/engine/query_engine.h"
#include "src/server/admission.h"
#include "src/server/metrics.h"
#include "src/server/wire.h"

namespace knnq::server {

/// Per-connection protocol limits (a slice of ServerOptions).
struct SessionLimits {
  /// In-flight queries one connection may have; further pipelined
  /// queries are refused as overloaded. At least 1.
  std::size_t max_conn_inflight = 16;

  /// Longest unterminated statement the session buffers before it
  /// answers an error and asks the server to drop the connection.
  std::size_t max_request_bytes = 1 << 20;

  /// Directory LOAD statements may read from. Paths are canonicalized
  /// (symlinks and ".." resolved) and must land inside it; empty
  /// refuses LOAD entirely. Network peers must not be able to make
  /// the server read arbitrary server-side files.
  std::string load_dir;
};

class Session {
 public:
  struct Callbacks {
    /// Writes one response line (no trailing newline in `line`).
    /// Must be thread-safe: engine workers and the connection thread
    /// both respond. A false return means the peer is gone; the
    /// session keeps draining without writing.
    std::function<bool(const std::string& line)> write;

    /// Renders the STATS record body (without the id field); the
    /// server assembles engine + cache + server metrics.
    std::function<std::string()> render_stats;

    /// Renders the METRICS record body: the Prometheus text exposition
    /// wrapped as `{"status": "ok", "prometheus": "..."}`. Null falls
    /// back to render_stats (METRICS then aliases STATS).
    std::function<std::string()> render_metrics;

    /// Renders the HISTORY record body: the ring-buffer time series
    /// wrapped as `{"status": "ok", "history": {...}}`. Null disables
    /// the verb (it then answers an Unsupported error).
    std::function<std::string()> render_history;

    /// SHUTDOWN verb; null disables the verb (it then answers an
    /// Unsupported error).
    std::function<void()> request_shutdown;

    /// SNAPSHOT verb: cuts a durable point-in-time snapshot and
    /// returns its record body `{"status": "ok", "snapshot_lsn": N}`
    /// (or an error record). Null disables the verb — the server
    /// wires it only when serving with --data-dir.
    std::function<std::string()> snapshot;
  };

  Session(QueryEngine* engine, const SessionLimits& limits,
          ServerMetrics* metrics, AdmissionController* admission,
          Callbacks callbacks);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feeds bytes and dispatches every statement they complete. May
  /// block on a DML barrier. Returns false when the connection must
  /// close (oversized request); the error response was already sent.
  bool Consume(std::string_view bytes);

  /// Input ended. Flags a mid-statement disconnect in the metrics.
  void FinishInput();

  /// Blocks until every query this session submitted has completed
  /// (responses written). Connections drain before closing.
  void WaitIdle();

  /// Queries submitted and not yet completed.
  std::size_t in_flight() const;

  /// Bytes of a partially received statement. Connection-thread only
  /// (same thread that calls Consume); guards idle-timeout closes.
  bool has_buffered_input() const { return splitter_.pending_bytes() > 0; }

 private:
  void Dispatch(const std::string& text);
  void DispatchAdmin(std::string_view verb);
  void DispatchQuery(const knnql::Statement& statement,
                     std::uint64_t parse_ns);
  void DispatchDml(const knnql::Statement& statement);

  /// Sends `record` tagged with a fresh id.
  void Respond(const std::string& record);

  /// Marks one admitted query finished (wakes DML barriers / drains).
  void OnQueryDone();

  /// Answers the max_request_bytes violation; always returns false
  /// (the connection must close).
  bool RejectOversized();

  QueryEngine* engine_;
  SessionLimits limits_;
  ServerMetrics* metrics_;
  AdmissionController* admission_;
  Callbacks callbacks_;
  StatementSplitter splitter_;

  /// Next response id, 1-based, assigned in statement order.
  std::uint64_t next_id_ = 1;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;
};

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_SESSION_H_
