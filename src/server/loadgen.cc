#include "src/server/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/common/stopwatch.h"
#include "src/lang/parser.h"

namespace knnq::server {

namespace {

/// Connects a TCP client socket, or -1 with errno set (inet_pton sets
/// none, so a bad address is surfaced as EINVAL; close() must not
/// clobber the errno the caller is about to format).
int Connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Buffered line reader over one socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads through the next '\n' (stripped). False on EOF, error or
  /// timeout.
  bool ReadLine(std::string* line, int timeout_ms) {
    for (;;) {
      const std::size_t eol = buffer_.find('\n');
      if (eol != std::string::npos) {
        line->assign(buffer_, 0, eol);
        buffer_.erase(0, eol + 1);
        return true;
      }
      pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// True when `response` carries the expected id tag. Responses start
/// `{"id": N, ...`; a prefix check avoids a JSON parser dependency.
bool HasId(const std::string& response, std::uint64_t id) {
  const std::string prefix = "{\"id\": " + std::to_string(id) + ",";
  return response.rfind(prefix, 0) == 0;
}

bool IsOk(const std::string& response) {
  return response.find("\"status\": \"ok\"") != std::string::npos;
}

struct ClientResult {
  std::size_t requests = 0;
  std::size_t ok_responses = 0;
  std::size_t error_responses = 0;
  std::size_t protocol_errors = 0;
  std::size_t post_kill_disconnects = 0;
  std::vector<double> latencies_ms;
};

/// Shared crash-drill trigger: the client whose send crosses the
/// threshold SIGKILLs the server; everyone's later failures count as
/// expected casualties, not protocol errors.
struct KillSwitch {
  std::atomic<std::size_t> sent{0};
  std::atomic<bool> fired{false};
};

void RunClient(int fd, const std::vector<std::string>& statements,
               const LoadgenOptions& options, KillSwitch* kill_switch,
               ClientResult* out) {
  LineReader reader(fd);
  std::string response;
  std::uint64_t next_id = 1;
  // A failure after the kill fired is the drill working as intended.
  const auto fail = [&] {
    if (kill_switch->fired.load(std::memory_order_acquire)) {
      ++out->post_kill_disconnects;
    } else {
      ++out->protocol_errors;
    }
  };
  out->latencies_ms.reserve(statements.size() * options.repeat);
  for (std::size_t r = 0; r < options.repeat; ++r) {
    for (const std::string& statement : statements) {
      ++out->requests;
      Stopwatch timer;
      if (!SendAll(fd, statement) || !SendAll(fd, "\n")) {
        fail();
        return;
      }
      if (options.kill_after_ops > 0) {
        const std::size_t n =
            kill_switch->sent.fetch_add(1, std::memory_order_relaxed) + 1;
        // fired is set BEFORE the signal so a sibling client that
        // observes the dead server also observes the trigger.
        if (n >= options.kill_after_ops &&
            !kill_switch->fired.exchange(true,
                                         std::memory_order_acq_rel)) {
          ::kill(options.kill_pid, SIGKILL);
        }
      }
      if (!reader.ReadLine(&response, options.recv_timeout_ms)) {
        fail();
        return;
      }
      out->latencies_ms.push_back(timer.ElapsedMillis());
      if (!HasId(response, next_id)) {
        // An ordering error poisons every later id; stop the client.
        fail();
        return;
      }
      ++next_id;
      if (IsOk(response)) {
        ++out->ok_responses;
      } else {
        ++out->error_responses;
      }
    }
  }
}

}  // namespace

Result<LoadgenReport> RunLoadgen(
    const LoadgenOptions& options,
    const std::vector<std::string>& statements) {
  if (options.clients == 0) {
    return Status::InvalidArgument("loadgen needs at least one client");
  }
  if (options.kill_after_ops > 0 && options.kill_pid <= 0) {
    return Status::InvalidArgument(
        "--kill-after-ops needs --kill-pid PID (the server to SIGKILL)");
  }
  // Statements that frame no response (comment-only, bare ';') would
  // stall the closed loop; drop them here. Unparseable text stays: the
  // server answers it with an error record, which is a response.
  std::vector<std::string> replay;
  replay.reserve(statements.size());
  for (const std::string& statement : statements) {
    const auto script = knnql::ParseScript(statement);
    if (script.ok() && script->empty()) continue;
    replay.push_back(statement);
  }
  if (replay.empty()) {
    return Status::InvalidArgument(
        "workload contains no response-producing statements");
  }

  std::vector<int> fds(options.clients, -1);
  for (std::size_t i = 0; i < options.clients; ++i) {
    fds[i] = Connect(options.host, options.port);
    if (fds[i] < 0) {
      for (const int fd : fds) {
        if (fd >= 0) ::close(fd);
      }
      return Status::IoError("connect " + options.host + ":" +
                             std::to_string(options.port) + ": " +
                             std::strerror(errno));
    }
  }

  std::vector<ClientResult> results(options.clients);
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  KillSwitch kill_switch;
  Stopwatch wall;
  for (std::size_t i = 0; i < options.clients; ++i) {
    threads.emplace_back([&, i] {
      RunClient(fds[i], replay, options, &kill_switch, &results[i]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadgenReport report;
  report.wall_seconds = wall.ElapsedSeconds();
  report.clients = options.clients;
  report.killed = kill_switch.fired.load(std::memory_order_acquire);
  std::vector<double> latencies;
  for (std::size_t i = 0; i < options.clients; ++i) {
    ::close(fds[i]);
    report.requests += results[i].requests;
    report.ok_responses += results[i].ok_responses;
    report.error_responses += results[i].error_responses;
    report.protocol_errors += results[i].protocol_errors;
    report.post_kill_disconnects += results[i].post_kill_disconnects;
    latencies.insert(latencies.end(), results[i].latencies_ms.begin(),
                     results[i].latencies_ms.end());
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    // Nearest-rank: the ceil(p*n)-th smallest sample, matching the
    // histogram percentiles in src/server/metrics.cc.
    const auto at = [&](double p) {
      const auto rank = static_cast<std::size_t>(
          std::ceil(p * static_cast<double>(latencies.size())));
      return latencies[std::min(latencies.size(), std::max<std::size_t>(
                                                      rank, 1)) -
                       1];
    };
    double sum = 0.0;
    for (const double ms : latencies) sum += ms;
    report.mean_ms = sum / static_cast<double>(latencies.size());
    report.p50_ms = at(0.50);
    report.p95_ms = at(0.95);
    report.p99_ms = at(0.99);
    report.max_ms = latencies.back();
  }
  return report;
}

Result<std::string> SendAdminVerb(const std::string& host,
                                  std::uint16_t port,
                                  const std::string& verb) {
  const int fd = Connect(host, port);
  if (fd < 0) {
    return Status::IoError("connect " + host + ":" +
                           std::to_string(port) + ": " +
                           std::strerror(errno));
  }
  std::string line;
  const bool ok =
      SendAll(fd, verb + ";\n") &&
      LineReader(fd).ReadLine(&line, /*timeout_ms=*/10000);
  ::close(fd);
  if (!ok) {
    return Status::IoError("no response to admin verb " + verb);
  }
  return line;
}

Result<HttpGetResult> HttpGet(const std::string& host, std::uint16_t port,
                              const std::string& path, int timeout_ms) {
  const int fd = Connect(host, port);
  if (fd < 0) {
    return Status::IoError("connect " + host + ":" +
                           std::to_string(port) + ": " +
                           std::strerror(errno));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    const int saved = errno;
    ::close(fd);
    return Status::IoError(std::string("send: ") + std::strerror(saved));
  }
  // Connection: close framing - read to EOF under one wall deadline.
  std::string raw;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (remaining <= 0) {
      ::close(fd);
      return Status::IoError("http response timed out: " + path);
    }
    pollfd pfd{.fd = fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) continue;
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 NNN reason\r\n" headers "\r\n\r\n" body.
  if (raw.rfind("HTTP/1.", 0) != 0) {
    return Status::IoError("not an http response: " + raw.substr(0, 32));
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::IoError("malformed http status line");
  }
  HttpGetResult result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  if (result.status < 100 || result.status > 599) {
    return Status::IoError("malformed http status code");
  }
  std::size_t body = raw.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::IoError("http response missing header terminator");
  }
  result.body = raw.substr(body + 4);
  return result;
}

}  // namespace knnq::server
