// Admission control: the server's global bound on concurrently
// admitted queries. A slot is held from dispatch until the engine's
// completion callback runs; when every slot is taken, new work is
// refused with a structured `overloaded` error instead of queueing
// unboundedly. Graceful shutdown drains by waiting for the gauge to
// reach zero.

#ifndef KNNQ_SRC_SERVER_ADMISSION_H_
#define KNNQ_SRC_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace knnq::server {

/// Counting gate, all member functions thread-safe.
class AdmissionController {
 public:
  /// `max_in_flight` of 0 means unlimited (the gauge still tracks).
  explicit AdmissionController(std::size_t max_in_flight)
      : max_in_flight_(max_in_flight) {}

  /// Claims a slot; false when the gate is full.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_in_flight_ > 0 && in_flight_ >= max_in_flight_) return false;
    ++in_flight_;
    return true;
  }

  /// Returns a slot claimed by TryAcquire. Notifies under the lock so
  /// a WaitUntilIdle caller may destroy the gate as soon as it
  /// returns.
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (in_flight_ == 0) idle_cv_.notify_all();
  }

  /// Blocks until no slot is held - the shutdown drain barrier.
  void WaitUntilIdle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }

  std::size_t max_in_flight() const { return max_in_flight_; }

 private:
  const std::size_t max_in_flight_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
};

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_ADMISSION_H_
