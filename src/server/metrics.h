// Server observability: request/connection counters and latency
// histograms, all updated lock-free from connection and worker threads,
// snapshotted by the STATS admin verb (JSON) and exported through an
// obs::MetricsRegistry by the METRICS verb (Prometheus text format).

#ifndef KNNQ_SRC_SERVER_METRICS_H_
#define KNNQ_SRC_SERVER_METRICS_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics_registry.h"

namespace knnq::server {

/// The historical names; the instruments themselves moved to src/obs.
using LatencySummary = obs::HistogramSummary;
using LatencyHistogram = obs::Histogram;

/// One relaxed-atomic counter bundle per server. Everything is
/// monotone except in-flight gauges, which the admission controller
/// owns; snapshotting is field-by-field relaxed reads.
struct ServerMetrics {
  obs::Counter connections_opened;
  obs::Counter connections_closed;
  obs::Counter requests;
  obs::Counter responses;
  obs::Counter queries_ok;
  obs::Counter mutations_ok;
  obs::Counter explains_ok;
  obs::Counter admin_requests;
  obs::Counter errors;
  /// Structured `overloaded` rejections (admission or pool full).
  obs::Counter overload_rejections;
  /// Accepts refused at ServerOptions::max_connections.
  obs::Counter connection_rejections;
  /// Response writes that hit the SO_SNDTIMEO deadline (peer stopped
  /// reading); each marks its connection broken.
  obs::Counter write_timeouts;
  obs::Counter parse_errors;
  obs::Counter oversized_requests;
  obs::Counter idle_timeouts;
  /// Connections that vanished mid-statement (framing diagnostics).
  obs::Counter disconnects_mid_statement;

  LatencyHistogram query_latency;
  LatencyHistogram mutation_latency;
  /// Front-door costs: statement-text parsing and binding, timed on
  /// the connection thread. Prometheus-only (not in the STATS JSON,
  /// whose shape is frozen).
  LatencyHistogram parse_latency;
  LatencyHistogram bind_latency;

  /// Registers every member under its knnq_server_* Prometheus name.
  /// `this` must outlive `registry`.
  void RegisterAll(obs::MetricsRegistry* registry) const;

  /// The `"server"` object of the STATS response. `active_connections`
  /// and `in_flight` are passed in by the server (they are gauges the
  /// registry and admission controller own).
  std::string ToJson(std::size_t active_connections,
                     std::size_t in_flight) const;
};

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_METRICS_H_
