// Server observability: request/connection counters and latency
// histograms, all updated lock-free from connection and worker threads
// and snapshotted by the STATS admin verb.

#ifndef KNNQ_SRC_SERVER_METRICS_H_
#define KNNQ_SRC_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace knnq::server {

/// Point-in-time percentile summary of a LatencyHistogram.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  /// `{"count": ..., "mean_ms": ..., "p50_ms": ..., ...}`.
  std::string ToJson() const;
};

/// Log-bucketed latency histogram: bucket i holds samples in
/// [2^i, 2^(i+1)) microseconds, so the whole range from 1 us to over
/// an hour fits in 48 buckets with <= 2x quantization error - plenty
/// for p50/p95/p99 serving dashboards. Record and Summarize are both
/// thread-safe (relaxed atomics; percentiles are an instantaneous
/// approximation, not a consistent snapshot).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void Record(double seconds);

  /// Percentiles use each bucket's upper bound, biasing the estimate
  /// conservatively (reported latency >= true latency).
  LatencySummary Summarize() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_us_{0};
};

/// One relaxed-atomic counter bundle per server. Everything is
/// monotone except in-flight gauges, which the admission controller
/// owns; snapshotting is field-by-field relaxed reads.
struct ServerMetrics {
  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> queries_ok{0};
  std::atomic<std::uint64_t> mutations_ok{0};
  std::atomic<std::uint64_t> explains_ok{0};
  std::atomic<std::uint64_t> admin_requests{0};
  std::atomic<std::uint64_t> errors{0};
  /// Structured `overloaded` rejections (admission or pool full).
  std::atomic<std::uint64_t> overload_rejections{0};
  /// Accepts refused at ServerOptions::max_connections.
  std::atomic<std::uint64_t> connection_rejections{0};
  /// Response writes that hit the SO_SNDTIMEO deadline (peer stopped
  /// reading); each marks its connection broken.
  std::atomic<std::uint64_t> write_timeouts{0};
  std::atomic<std::uint64_t> parse_errors{0};
  std::atomic<std::uint64_t> oversized_requests{0};
  std::atomic<std::uint64_t> idle_timeouts{0};
  /// Connections that vanished mid-statement (framing diagnostics).
  std::atomic<std::uint64_t> disconnects_mid_statement{0};

  LatencyHistogram query_latency;
  LatencyHistogram mutation_latency;

  /// The `"server"` object of the STATS response. `active_connections`
  /// and `in_flight` are passed in by the server (they are gauges the
  /// registry and admission controller own).
  std::string ToJson(std::size_t active_connections,
                     std::size_t in_flight) const;
};

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_METRICS_H_
