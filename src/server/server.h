// Server: the TCP front end that puts the wire protocol of
// src/server/wire.h on a socket.
//
// Architecture: one accept thread, one reader thread per connection
// (serving-scale fan-in is bounded by admission control, not by the
// connection count), query execution on the shared QueryEngine worker
// pool. Responses are written by whichever thread finishes the work -
// engine workers for queries, the connection thread for everything
// else - under a per-connection write lock, one JSONL line per
// response.
//
// Graceful shutdown (Stop): stop accepting, half-close every
// connection's read side, let each connection drain its in-flight
// queries and flush their responses, join everything, close. No
// accepted statement is dropped for a peer that keeps reading; a peer
// that does not is cut off after ServerOptions::shutdown_grace_ms so
// the drain always terminates.

#ifndef KNNQ_SRC_SERVER_SERVER_H_
#define KNNQ_SRC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/engine/query_engine.h"
#include "src/obs/history.h"
#include "src/obs/http_server.h"
#include "src/obs/metrics_registry.h"
#include "src/server/admission.h"
#include "src/server/metrics.h"
#include "src/server/session.h"

namespace knnq::server {

struct ServerOptions {
  /// Listen address. The default binds loopback only; "0.0.0.0"
  /// exposes the server.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  std::uint16_t port = 0;

  /// Server-wide bound on concurrently executing queries; the
  /// admission gate rejects beyond it with a structured `overloaded`
  /// error. 0 means unlimited.
  std::size_t max_inflight = 64;

  /// Upper bound on concurrently open connections (each costs a
  /// thread and a read buffer); an accept beyond it is answered with
  /// one structured `overloaded` error line and closed. 0 means
  /// unlimited.
  std::size_t max_connections = 256;

  /// Per-connection protocol limits.
  SessionLimits limits;

  /// Close connections idle (no bytes, nothing in flight) this long;
  /// 0 disables the timeout.
  int idle_timeout_ms = 0;

  /// Wall-clock deadline for writing one response (SO_SNDTIMEO bounds
  /// each send() so the clock is actually checked). A peer that
  /// pipelines queries and then stops - or merely trickle-reads -
  /// would otherwise park the engine workers delivering its responses
  /// in send() forever, wedging the pool. On expiry the connection is
  /// marked broken and drains without responses. 0 disables the
  /// deadline (Stop's grace escalation still bounds shutdown).
  int write_timeout_ms = 10000;

  /// Graceful-shutdown escalation: after Stop() half-closes read
  /// sides, a connection that goes this long with NO write progress
  /// is cut with a full socket shutdown, so writers blocked on a dead
  /// peer fail with EPIPE instead of hanging the drain. A healthy
  /// peer that keeps reading keeps draining - progress resets its
  /// clock. 0 never escalates (the drain may then hang on a dead
  /// peer if write_timeout_ms is also 0).
  int shutdown_grace_ms = 5000;

  /// SO_SNDBUF for accepted sockets; 0 keeps the OS default. Mostly a
  /// test hook: tiny buffers make write-timeout paths reproducible.
  int sndbuf_bytes = 0;

  /// Whether the SHUTDOWN admin verb may stop the server. Off by
  /// default: any peer that can connect could otherwise stop a server
  /// exposed beyond loopback. CI smoke opts in explicitly.
  bool allow_remote_shutdown = false;

  /// SNAPSHOT admin verb handler: returns the new snapshot's LSN or
  /// the failure. Null (default) disables the verb; `knnq_cli serve
  /// --data-dir` wires it to the DurabilityManager.
  std::function<Result<std::uint64_t>()> snapshot_handler;

  /// HTTP observability plane (GET /metrics, /healthz, /readyz,
  /// /statusz). Off by default; `knnq_cli serve --http-port` enables
  /// it. Start it with StartHttp() — before Start(), so /readyz can
  /// answer "recovery in progress" while the WAL replays.
  bool http_enabled = false;
  std::string http_host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back with http_port()).
  std::uint16_t http_port = 0;
  /// Limits of the HTTP plane itself (scrape connections, timeouts).
  obs::HttpServerOptions http;

  /// Ring-buffer time-series sampling period (--history-interval-ms)
  /// and retention; 600 x 1 s = 10 minutes.
  int history_interval_ms = 1000;
  std::size_t history_capacity = 600;

  /// After the KNNQL drain completes, Stop() keeps the HTTP plane up
  /// for this window answering /readyz with 503 "draining", the
  /// standard load-balancer drain pattern: the LB observes not-ready
  /// and stops routing BEFORE the process disappears. 0 tears the
  /// plane down immediately.
  int drain_linger_ms = 0;

  /// Readiness hook: false when WAL appends are failing (commits can
  /// no longer be made durable). Null when not serving durably.
  std::function<bool()> wal_writable;

  /// The "wal" object of /statusz (DurabilityManager::StatusJson).
  /// Null renders "wal": null.
  std::function<std::string()> wal_status;
};

class Server {
 public:
  /// `engine` must outlive the server and should be constructed with
  /// EngineOptions::pool_queue_limit > 0 so engine-side backpressure
  /// engages.
  Server(QueryEngine* engine, ServerOptions options);

  /// Stops (gracefully) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept thread.
  Status Start();

  /// Starts the HTTP observability plane (when options.http_enabled)
  /// and the history sampler. Call BEFORE Start() — and before a
  /// durable recovery, bracketed by BeginRecovery/EndRecovery — so
  /// /healthz and /readyz answer while the WAL replays. No-op when
  /// the plane is disabled (the sampler still starts, feeding the
  /// HISTORY verb).
  Status StartHttp();

  /// Brackets a durable recovery: between the two, /readyz answers
  /// 503 with "recovery in progress".
  void BeginRecovery() {
    recovering_.store(true, std::memory_order_release);
  }
  void EndRecovery() {
    recovering_.store(false, std::memory_order_release);
  }

  /// The bound port (after Start); useful with options.port = 0.
  std::uint16_t port() const { return port_; }

  /// The HTTP plane's bound port (after StartHttp); 0 when disabled.
  std::uint16_t http_port() const {
    return http_ != nullptr ? http_->port() : 0;
  }

  /// Requests a stop from any thread (signal handlers included: an
  /// atomic store plus a write to a pipe). Does not wait. Call Start
  /// first.
  void RequestStop();

  /// Blocks until RequestStop (SHUTDOWN verb, signal, or any caller).
  /// Must not race Stop() - the usual shape is Start / WaitUntil /
  /// Stop on the owning thread.
  void WaitUntilStopRequested();

  /// Graceful shutdown as described above. Idempotent; implies
  /// RequestStop.
  void Stop();

  const ServerMetrics& metrics() const { return metrics_; }

  /// The scrape-time registry behind METRICS. Exposed so subsystems
  /// created outside the server (the durability manager) can register
  /// their instruments before Start().
  obs::MetricsRegistry* registry() { return &registry_; }

  std::size_t active_connections() const;
  std::size_t in_flight() const { return admission_.in_flight(); }

  /// The full STATS record body (server + engine + cache objects),
  /// the payload of the STATS admin verb.
  std::string RenderStats() const;

  /// Every registered metric - server counters and latency histograms,
  /// engine cumulative totals, cache stats - in Prometheus text
  /// exposition format; the payload of the METRICS admin verb AND the
  /// GET /metrics body (byte-identical by construction: one renderer).
  std::string RenderPrometheus() const;

  /// Readiness reasons, empty when ready to serve: recovery finished,
  /// accept loop up, not draining, admission not saturated, WAL
  /// writable.
  std::vector<std::string> NotReadyReasons() const;

  /// The GET /statusz body: build info, uptime, readiness, server /
  /// engine / cache / WAL snapshots, HTTP plane stats and the sampled
  /// time series.
  std::string RenderStatusz() const;

  /// The ring-buffer time series as JSON - the HISTORY verb payload
  /// and the "history" object of /statusz.
  std::string RenderHistory() const;

  /// The sampler behind RenderHistory, exposed for tests.
  obs::MetricsHistory* history() { return history_.get(); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::unique_ptr<Session> session;
    std::mutex write_mu;
    std::atomic<bool> done{false};
    /// Writes failed (peer gone): stop attempting responses.
    std::atomic<bool> broken{false};
    /// Total response bytes that reached the socket; Stop()'s
    /// escalation distinguishes a draining peer (advancing) from a
    /// stuck one (stalled) by watching it.
    std::atomic<std::uint64_t> bytes_written{0};
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  bool WriteLine(Connection* conn, const std::string& line);
  /// Joins and erases finished connections (accept-thread only).
  void ReapFinished();
  /// Answers `fd` with one `overloaded` error line (best effort,
  /// non-blocking) and closes it: the max_connections refusal.
  void RefuseConnection(int fd);

  /// Stops the HTTP plane (after the drain-linger window when
  /// `linger`) and the history sampler. Idempotent.
  void StopObservability(bool linger);

  QueryEngine* engine_;
  ServerOptions options_;
  ServerMetrics metrics_;
  AdmissionController admission_;
  /// Scrape-time registry behind RenderPrometheus: server counters and
  /// histograms register directly, engine and cache stats through
  /// callbacks that snapshot at scrape time.
  obs::MetricsRegistry registry_;

  /// The HTTP observability plane; null until StartHttp() with
  /// options.http_enabled.
  std::unique_ptr<obs::HttpServer> http_;
  /// Ring-buffer time series over selected registry sources.
  std::unique_ptr<obs::MetricsHistory> history_;
  /// True between BeginRecovery and EndRecovery (WAL replay).
  std::atomic<bool> recovering_{false};
  /// Construction time, the uptime gauge's epoch.
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  /// Self-pipe waking the accept loop on RequestStop.
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::atomic<bool> stop_requested_{false};
  /// Mutable: NotReadyReasons() is const and checks started_.
  mutable std::mutex stop_mu_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex connections_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_SERVER_H_
