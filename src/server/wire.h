// Wire protocol building blocks of the KNNQL network server.
//
// The protocol is newline-delimited KNNQL in, JSONL out: clients send
// statements terminated by ';' (a statement may span lines, and one
// line may carry several pipelined statements); the server answers one
// JSON object per statement, tagged with a per-connection `id` so
// responses may complete out of order.
//
// Two pieces live here because the CLI shares them:
//
//   * the JSON record renderers. `knnq_cli query --json` and the
//     server emit THE SAME bytes for the same statement outcome (the
//     server merely splices in its `id` field), which is what makes
//     the server's differential test - responses byte-identical to
//     local execution - meaningful;
//   * StatementSplitter, the incremental frame scanner that cuts a
//     byte stream into statements at top-level ';' boundaries,
//     respecting '...' string literals and -- comments.

#ifndef KNNQ_SRC_SERVER_WIRE_H_
#define KNNQ_SRC_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/engine/query_engine.h"

namespace knnq::server {

/// JSON string escaping (quotes, backslash, control characters).
std::string JsonEscape(std::string_view text);

/// `{"id": <id>, "x": <x>, "y": <y>}` with shortest-round-trip numbers.
std::string JsonPoint(const Point& p);

/// The result rows as a JSON field pair: `"result_type": ...,
/// "rows": [...]`. Points carry coordinates; triplets are id-only,
/// like their C++ counterparts.
std::string JsonRows(const QueryOutput& output);

/// The ExecStats object every successful query record embeds.
std::string JsonStats(const ExecStats& stats);

/// `{"query": "<text>", "status": "ok", "algorithm": ..., "result_type":
/// ..., "rows": [...], "stats": {...}}` - `run` must be a successful
/// query result.
std::string JsonQueryRecord(const std::string& text,
                            const EngineResult& run);

/// `{"query": "<text>", "status": "ok", "explain": "<plan>"}`.
std::string JsonExplainRecord(const std::string& text,
                              const std::string& explain);

/// The EXPLAIN ANALYZE record: plan rendering plus the measured span
/// tree. `{"query": ..., "status": "ok", "algorithm": ..., "explain":
/// ..., "rows": N, "stats": {...}, "trace": {...}}` - `run` must be a
/// successful query result from QueryEngine::RunAnalyzed (the "trace"
/// field is omitted when the result carries no trace).
std::string JsonAnalyzeRecord(const std::string& text,
                              const EngineResult& run);

/// `{"statement": "<text>", "status": "ok", "rows_affected": N}` -
/// `run` must be a successful DML result.
std::string JsonDmlRecord(const std::string& text, const EngineResult& run);

/// Structured failure record. `kind` is the field naming the failed
/// statement ("query" or "statement"); empty omits it (script-level
/// parse errors have no canonical text to echo). Carries the
/// machine-readable `"code"` (CodeName of the status) alongside the
/// human message.
std::string JsonErrorRecord(std::string_view kind, std::string_view text,
                            const Status& status);

/// Splices a response id into a rendered record:
/// `{"id": 7, <rest of the record>}`. `record` must be a JSON object.
std::string WithId(std::uint64_t id, const std::string& record);

/// Incremental statement framing: feed raw bytes, pull complete
/// statements. A statement is everything through the next ';' that is
/// outside a '...' string literal and outside a -- comment; the
/// terminator stays part of the statement text. Bytes after the last
/// top-level ';' remain pending until more input arrives. Like the
/// lexer, string literals end at the line break (an unpaired quote
/// frames as a statement the parser then rejects - it cannot desync
/// the stream).
class StatementSplitter {
 public:
  /// Appends raw bytes to the pending buffer.
  void Feed(std::string_view bytes);

  /// Extracts the next complete statement (including its ';'), or
  /// nullopt when the buffer holds none. O(new bytes) amortized: the
  /// scan never revisits consumed or already-scanned input.
  std::optional<std::string> Next();

  /// Bytes buffered but not yet terminated by a top-level ';'.
  std::size_t pending_bytes() const { return buffer_.size(); }

  /// True when the pending tail contains statement text - anything
  /// beyond whitespace and comments. Distinguishes a clean EOF from a
  /// mid-statement disconnect.
  bool PendingHasContent() const;

 private:
  std::string buffer_;
  /// Scan state over buffer_[0, scan_pos_): resumes where Feed left
  /// off instead of rescanning.
  std::size_t scan_pos_ = 0;
  bool in_string_ = false;
  bool in_comment_ = false;
};

/// Splits a whole script into its statements (each including its
/// terminating ';'). Trailing non-comment text with no terminator is
/// an error - scripts sent over the wire must end every statement.
Result<std::vector<std::string>> SplitStatements(std::string_view script);

}  // namespace knnq::server

#endif  // KNNQ_SRC_SERVER_WIRE_H_
