#include "src/server/session.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <system_error>
#include <utility>
#include <variant>

#include "src/common/stopwatch.h"
#include "src/common/text_parse.h"
#include "src/lang/parser.h"
#include "src/lang/unparser.h"

namespace knnq::server {

namespace {

/// Canonicalizes a statement for admin-verb matching: comments
/// dropped, whitespace and the terminating ';' trimmed, upper-cased.
/// Returns empty when the statement cannot be a verb (multiple words).
std::string AdminVerbOf(std::string_view text) {
  std::string flat;
  flat.reserve(text.size());
  bool comment = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (comment) {
      if (c == '\n') comment = false;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      comment = true;
      ++i;
      continue;
    }
    if (c == ';') break;
    flat += c;
  }
  const std::string_view trimmed = TrimWhitespace(flat);
  std::string verb;
  verb.reserve(trimmed.size());
  for (const char c : trimmed) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) return "";
    verb += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return verb;
}

/// The LOAD confinement check. Network peers name server-side files,
/// so the path must canonicalize (symlinks and ".." resolved; the
/// file itself may not exist yet, hence weakly_) into `load_dir`.
/// Relative paths resolve under `load_dir`, not the server's CWD; on
/// success `*path` holds the resolved form the engine should open.
Status ConfineLoadPath(std::string* path, const std::string& load_dir) {
  if (load_dir.empty()) {
    return Status::Unsupported("LOAD is disabled on this server: '" +
                               *path + "' refused (no load directory "
                               "configured)");
  }
  std::error_code ec;
  const std::filesystem::path root =
      std::filesystem::weakly_canonical(load_dir, ec);
  if (ec) {
    return Status::InvalidArgument("bad load directory '" + load_dir +
                                   "': " + ec.message());
  }
  const std::filesystem::path resolved = std::filesystem::weakly_canonical(
      root / std::filesystem::path(*path), ec);
  if (ec) {
    return Status::InvalidArgument("bad LOAD path '" + *path +
                                   "': " + ec.message());
  }
  const auto diff = std::mismatch(root.begin(), root.end(),
                                  resolved.begin(), resolved.end());
  if (diff.first != root.end()) {
    return Status::InvalidArgument("LOAD path '" + *path +
                                   "' escapes the load directory '" +
                                   load_dir + "'");
  }
  *path = resolved.string();
  return Status::Ok();
}

}  // namespace

Session::Session(QueryEngine* engine, const SessionLimits& limits,
                 ServerMetrics* metrics, AdmissionController* admission,
                 Callbacks callbacks)
    : engine_(engine),
      limits_(limits),
      metrics_(metrics),
      admission_(admission),
      callbacks_(std::move(callbacks)) {
  if (limits_.max_conn_inflight == 0) limits_.max_conn_inflight = 1;
}

bool Session::Consume(std::string_view bytes) {
  splitter_.Feed(bytes);
  while (auto statement = splitter_.Next()) {
    // The size limit applies to COMPLETE statements too: one that
    // arrived whole in a single read must not slip past the bound the
    // unterminated-statement check below enforces.
    if (limits_.max_request_bytes > 0 &&
        statement->size() > limits_.max_request_bytes) {
      return RejectOversized();
    }
    Dispatch(*statement);
  }
  if (limits_.max_request_bytes > 0 &&
      splitter_.pending_bytes() > limits_.max_request_bytes) {
    return RejectOversized();
  }
  return true;
}

bool Session::RejectOversized() {
  metrics_->oversized_requests.fetch_add(1, std::memory_order_relaxed);
  metrics_->errors.fetch_add(1, std::memory_order_relaxed);
  Respond(JsonErrorRecord(
      "", "",
      Status::InvalidArgument(
          "statement exceeds max_request_bytes=" +
          std::to_string(limits_.max_request_bytes) +
          "; closing connection")));
  return false;
}

void Session::FinishInput() {
  if (splitter_.PendingHasContent()) {
    metrics_->disconnects_mid_statement.fetch_add(
        1, std::memory_order_relaxed);
  }
}

void Session::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t Session::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

void Session::OnQueryDone() {
  // Notify UNDER the lock: the drain path destroys this session as
  // soon as WaitIdle returns, so the notify must complete before the
  // waiter can possibly re-acquire the mutex and exit.
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  if (pending_ == 0) idle_cv_.notify_all();
}

void Session::Respond(const std::string& record) {
  const std::uint64_t id = next_id_++;
  callbacks_.write(WithId(id, record));
  metrics_->responses.fetch_add(1, std::memory_order_relaxed);
}

void Session::Dispatch(const std::string& text) {
  metrics_->requests.fetch_add(1, std::memory_order_relaxed);

  const std::string verb = AdminVerbOf(text);
  if (verb == "STATS" || verb == "METRICS" || verb == "PING" ||
      verb == "SHUTDOWN") {
    DispatchAdmin(verb);
    return;
  }

  const auto script = knnql::ParseScript(text);
  if (!script.ok()) {
    metrics_->parse_errors.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonErrorRecord("", "", script.status()));
    return;
  }
  if (script->empty()) {
    // Comments / a bare ';' frame no statement: nothing to answer,
    // and the request does not consume an id.
    metrics_->requests.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const knnql::Statement& statement = script->front();
  if (std::holds_alternative<knnql::Query>(statement.body)) {
    DispatchQuery(statement);
  } else {
    DispatchDml(statement);
  }
}

void Session::DispatchAdmin(std::string_view verb) {
  metrics_->admin_requests.fetch_add(1, std::memory_order_relaxed);
  if (verb == "PING") {
    Respond("{\"status\": \"ok\", \"pong\": true}");
    return;
  }
  if (verb == "SHUTDOWN") {
    if (callbacks_.request_shutdown == nullptr) {
      metrics_->errors.fetch_add(1, std::memory_order_relaxed);
      Respond(JsonErrorRecord(
          "", "",
          Status::Unsupported("SHUTDOWN is disabled on this server")));
      return;
    }
    Respond("{\"status\": \"ok\", \"shutting_down\": true}");
    callbacks_.request_shutdown();
    return;
  }
  Respond(callbacks_.render_stats());
}

void Session::DispatchQuery(const knnql::Statement& statement) {
  const auto& query = std::get<knnql::Query>(statement.body);
  auto spec = engine_->BindQuery(query);
  if (!spec.ok()) {
    metrics_->parse_errors.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonErrorRecord("", "", spec.status()));
    return;
  }
  const std::string text = knnql::Unparse(*spec);

  if (statement.explain) {
    const auto explain = engine_->Explain(*spec);
    if (!explain.ok()) {
      metrics_->errors.fetch_add(1, std::memory_order_relaxed);
      Respond(JsonErrorRecord("query", text, explain.status()));
      return;
    }
    metrics_->explains_ok.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonExplainRecord(text, *explain));
    return;
  }

  // Backpressure, connection-local bound first: a pipelined flood on
  // one connection must not starve the global gate.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ >= limits_.max_conn_inflight) {
      metrics_->overload_rejections.fetch_add(1,
                                              std::memory_order_relaxed);
      metrics_->errors.fetch_add(1, std::memory_order_relaxed);
      Respond(JsonErrorRecord(
          "query", text,
          Status::Unavailable(
              "overloaded: connection at max_conn_inflight=" +
              std::to_string(limits_.max_conn_inflight))));
      return;
    }
    ++pending_;
  }
  if (!admission_->TryAcquire()) {
    OnQueryDone();
    metrics_->overload_rejections.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonErrorRecord(
        "query", text,
        Status::Unavailable(
            "overloaded: server at max_inflight=" +
            std::to_string(admission_->max_in_flight()))));
    return;
  }

  const std::uint64_t id = next_id_++;
  Stopwatch queued;
  const bool submitted = engine_->TrySubmitQuery(
      std::move(*spec), [this, id, text, queued](EngineResult run) {
        std::string record =
            run.ok() ? JsonQueryRecord(text, run)
                     : JsonErrorRecord("query", text, run.status);
        callbacks_.write(WithId(id, record));
        metrics_->responses.fetch_add(1, std::memory_order_relaxed);
        if (run.ok()) {
          metrics_->queries_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          metrics_->errors.fetch_add(1, std::memory_order_relaxed);
        }
        metrics_->query_latency.Record(queued.ElapsedSeconds());
        admission_->Release();
        OnQueryDone();
      });
  if (!submitted) {
    // The pool's bounded queue refused; undo the reserved id so the
    // error response reuses it (ids stay dense and ordered).
    --next_id_;
    admission_->Release();
    OnQueryDone();
    metrics_->overload_rejections.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonErrorRecord(
        "query", text,
        Status::Unavailable("overloaded: engine queue is full")));
  }
}

void Session::DispatchDml(const knnql::Statement& statement) {
  auto dml = knnql::BindDml(statement.body, /*catalog=*/nullptr);
  if (!dml.ok()) {
    metrics_->parse_errors.fetch_add(1, std::memory_order_relaxed);
    metrics_->errors.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonErrorRecord("", "", dml.status()));
    return;
  }
  const std::string text = knnql::Unparse(*dml);

  if (dml->kind == knnql::DmlSpec::Kind::kLoad) {
    if (Status confined = ConfineLoadPath(&dml->path, limits_.load_dir);
        !confined.ok()) {
      metrics_->errors.fetch_add(1, std::memory_order_relaxed);
      Respond(JsonErrorRecord("statement", text, confined));
      return;
    }
  }

  // DML is a barrier within the connection: every query this session
  // already admitted completes first, so a closed-loop client sees
  // strictly sequential semantics on its own connection.
  WaitIdle();

  Stopwatch timer;
  const EngineResult run = engine_->ExecuteDml(*dml);
  metrics_->mutation_latency.Record(timer.ElapsedSeconds());
  if (!run.ok()) {
    metrics_->errors.fetch_add(1, std::memory_order_relaxed);
    Respond(JsonErrorRecord("statement", text, run.status));
    return;
  }
  metrics_->mutations_ok.fetch_add(1, std::memory_order_relaxed);
  Respond(JsonDmlRecord(text, run));
}

}  // namespace knnq::server
