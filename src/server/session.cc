#include "src/server/session.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <system_error>
#include <utility>
#include <variant>

#include "src/common/stopwatch.h"
#include "src/common/text_parse.h"
#include "src/lang/parser.h"
#include "src/lang/unparser.h"

namespace knnq::server {

namespace {

/// Canonicalizes a statement for admin-verb matching: comments
/// dropped, whitespace and the terminating ';' trimmed, upper-cased.
/// Returns empty when the statement cannot be a verb (multiple words).
std::string AdminVerbOf(std::string_view text) {
  std::string flat;
  flat.reserve(text.size());
  bool comment = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (comment) {
      if (c == '\n') comment = false;
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      comment = true;
      ++i;
      continue;
    }
    if (c == ';') break;
    flat += c;
  }
  const std::string_view trimmed = TrimWhitespace(flat);
  std::string verb;
  verb.reserve(trimmed.size());
  for (const char c : trimmed) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) return "";
    verb += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return verb;
}

/// The LOAD confinement check. Network peers name server-side files,
/// so the path must canonicalize (symlinks and ".." resolved; the
/// file itself may not exist yet, hence weakly_) into `load_dir`.
/// Relative paths resolve under `load_dir`, not the server's CWD; on
/// success `*path` holds the resolved form the engine should open.
Status ConfineLoadPath(std::string* path, const std::string& load_dir) {
  if (load_dir.empty()) {
    return Status::Unsupported("LOAD is disabled on this server: '" +
                               *path + "' refused (no load directory "
                               "configured)");
  }
  std::error_code ec;
  const std::filesystem::path root =
      std::filesystem::weakly_canonical(load_dir, ec);
  if (ec) {
    return Status::InvalidArgument("bad load directory '" + load_dir +
                                   "': " + ec.message());
  }
  const std::filesystem::path resolved = std::filesystem::weakly_canonical(
      root / std::filesystem::path(*path), ec);
  if (ec) {
    return Status::InvalidArgument("bad LOAD path '" + *path +
                                   "': " + ec.message());
  }
  const auto diff = std::mismatch(root.begin(), root.end(),
                                  resolved.begin(), resolved.end());
  if (diff.first != root.end()) {
    return Status::InvalidArgument("LOAD path '" + *path +
                                   "' escapes the load directory '" +
                                   load_dir + "'");
  }
  *path = resolved.string();
  return Status::Ok();
}

}  // namespace

Session::Session(QueryEngine* engine, const SessionLimits& limits,
                 ServerMetrics* metrics, AdmissionController* admission,
                 Callbacks callbacks)
    : engine_(engine),
      limits_(limits),
      metrics_(metrics),
      admission_(admission),
      callbacks_(std::move(callbacks)) {
  if (limits_.max_conn_inflight == 0) limits_.max_conn_inflight = 1;
}

bool Session::Consume(std::string_view bytes) {
  splitter_.Feed(bytes);
  while (auto statement = splitter_.Next()) {
    // The size limit applies to COMPLETE statements too: one that
    // arrived whole in a single read must not slip past the bound the
    // unterminated-statement check below enforces.
    if (limits_.max_request_bytes > 0 &&
        statement->size() > limits_.max_request_bytes) {
      return RejectOversized();
    }
    Dispatch(*statement);
  }
  if (limits_.max_request_bytes > 0 &&
      splitter_.pending_bytes() > limits_.max_request_bytes) {
    return RejectOversized();
  }
  return true;
}

bool Session::RejectOversized() {
  metrics_->oversized_requests.Add();
  metrics_->errors.Add();
  Respond(JsonErrorRecord(
      "", "",
      Status::InvalidArgument(
          "statement exceeds max_request_bytes=" +
          std::to_string(limits_.max_request_bytes) +
          "; closing connection")));
  return false;
}

void Session::FinishInput() {
  if (splitter_.PendingHasContent()) {
    metrics_->disconnects_mid_statement.Add();
  }
}

void Session::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t Session::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

void Session::OnQueryDone() {
  // Notify UNDER the lock: the drain path destroys this session as
  // soon as WaitIdle returns, so the notify must complete before the
  // waiter can possibly re-acquire the mutex and exit.
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
  if (pending_ == 0) idle_cv_.notify_all();
}

void Session::Respond(const std::string& record) {
  const std::uint64_t id = next_id_++;
  callbacks_.write(WithId(id, record));
  metrics_->responses.Add();
}

void Session::Dispatch(const std::string& text) {
  const std::string verb = AdminVerbOf(text);
  if (verb == "STATS" || verb == "METRICS" || verb == "PING" ||
      verb == "SHUTDOWN" || verb == "SNAPSHOT" || verb == "HISTORY") {
    metrics_->requests.Add();
    DispatchAdmin(verb);
    return;
  }

  Stopwatch parse_timer;
  const auto script = knnql::ParseScript(text);
  const double parse_seconds = parse_timer.ElapsedSeconds();
  metrics_->parse_latency.Record(parse_seconds);
  if (!script.ok()) {
    metrics_->requests.Add();
    metrics_->parse_errors.Add();
    metrics_->errors.Add();
    Respond(JsonErrorRecord("", "", script.status()));
    return;
  }
  if (script->empty()) {
    // Comments / a bare ';' frame no statement: nothing to answer,
    // no request counted, and no id consumed.
    return;
  }
  metrics_->requests.Add();
  const knnql::Statement& statement = script->front();
  if (std::holds_alternative<knnql::Query>(statement.body)) {
    DispatchQuery(statement,
                  static_cast<std::uint64_t>(parse_seconds * 1e9));
  } else {
    DispatchDml(statement);
  }
}

void Session::DispatchAdmin(std::string_view verb) {
  metrics_->admin_requests.Add();
  if (verb == "PING") {
    Respond("{\"status\": \"ok\", \"pong\": true}");
    return;
  }
  if (verb == "SHUTDOWN") {
    if (callbacks_.request_shutdown == nullptr) {
      metrics_->errors.Add();
      Respond(JsonErrorRecord(
          "", "",
          Status::Unsupported("SHUTDOWN is disabled on this server")));
      return;
    }
    Respond("{\"status\": \"ok\", \"shutting_down\": true}");
    callbacks_.request_shutdown();
    return;
  }
  if (verb == "SNAPSHOT") {
    if (callbacks_.snapshot == nullptr) {
      metrics_->errors.Add();
      Respond(JsonErrorRecord(
          "", "",
          Status::Unsupported("SNAPSHOT requires a durable server "
                              "(serve with --data-dir)")));
      return;
    }
    Respond(callbacks_.snapshot());
    return;
  }
  if (verb == "HISTORY") {
    if (callbacks_.render_history == nullptr) {
      metrics_->errors.Add();
      Respond(JsonErrorRecord(
          "", "",
          Status::Unsupported("HISTORY is not available on this server")));
      return;
    }
    Respond(callbacks_.render_history());
    return;
  }
  if (verb == "METRICS" && callbacks_.render_metrics != nullptr) {
    Respond(callbacks_.render_metrics());
    return;
  }
  Respond(callbacks_.render_stats());
}

void Session::DispatchQuery(const knnql::Statement& statement,
                            std::uint64_t parse_ns) {
  const auto& query = std::get<knnql::Query>(statement.body);
  Stopwatch bind_timer;
  auto spec = engine_->BindQuery(query);
  const double bind_seconds = bind_timer.ElapsedSeconds();
  metrics_->bind_latency.Record(bind_seconds);
  if (!spec.ok()) {
    metrics_->parse_errors.Add();
    metrics_->errors.Add();
    Respond(JsonErrorRecord("", "", spec.status()));
    return;
  }
  const std::string text = knnql::Unparse(*spec);

  if (statement.analyze) {
    // EXPLAIN ANALYZE executes synchronously on the connection thread,
    // like EXPLAIN: diagnostics should observe the engine, not contend
    // with the admission gate they are diagnosing.
    const EngineResult run = engine_->RunAnalyzed(
        *spec, parse_ns, static_cast<std::uint64_t>(bind_seconds * 1e9));
    if (!run.ok()) {
      metrics_->errors.Add();
      Respond(JsonErrorRecord("query", text, run.status));
      return;
    }
    metrics_->explains_ok.Add();
    Respond(JsonAnalyzeRecord(text, run));
    return;
  }

  if (statement.explain) {
    const auto explain = engine_->Explain(*spec);
    if (!explain.ok()) {
      metrics_->errors.Add();
      Respond(JsonErrorRecord("query", text, explain.status()));
      return;
    }
    metrics_->explains_ok.Add();
    Respond(JsonExplainRecord(text, *explain));
    return;
  }

  // Backpressure, connection-local bound first: a pipelined flood on
  // one connection must not starve the global gate.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ >= limits_.max_conn_inflight) {
      metrics_->overload_rejections.Add();
      metrics_->errors.Add();
      Respond(JsonErrorRecord(
          "query", text,
          Status::Unavailable(
              "overloaded: connection at max_conn_inflight=" +
              std::to_string(limits_.max_conn_inflight))));
      return;
    }
    ++pending_;
  }
  if (!admission_->TryAcquire()) {
    OnQueryDone();
    metrics_->overload_rejections.Add();
    metrics_->errors.Add();
    Respond(JsonErrorRecord(
        "query", text,
        Status::Unavailable(
            "overloaded: server at max_inflight=" +
            std::to_string(admission_->max_in_flight()))));
    return;
  }

  const std::uint64_t id = next_id_++;
  Stopwatch queued;
  const bool submitted = engine_->TrySubmitQuery(
      std::move(*spec), [this, id, text, queued](EngineResult run) {
        std::string record =
            run.ok() ? JsonQueryRecord(text, run)
                     : JsonErrorRecord("query", text, run.status);
        callbacks_.write(WithId(id, record));
        metrics_->responses.Add();
        if (run.ok()) {
          metrics_->queries_ok.Add();
        } else {
          metrics_->errors.Add();
        }
        metrics_->query_latency.Record(queued.ElapsedSeconds());
        admission_->Release();
        OnQueryDone();
      });
  if (!submitted) {
    // The pool's bounded queue refused; undo the reserved id so the
    // error response reuses it (ids stay dense and ordered).
    --next_id_;
    admission_->Release();
    OnQueryDone();
    metrics_->overload_rejections.Add();
    metrics_->errors.Add();
    Respond(JsonErrorRecord(
        "query", text,
        Status::Unavailable("overloaded: engine queue is full")));
  }
}

void Session::DispatchDml(const knnql::Statement& statement) {
  Stopwatch bind_timer;
  auto dml = knnql::BindDml(statement.body, /*catalog=*/nullptr);
  metrics_->bind_latency.Record(bind_timer.ElapsedSeconds());
  if (!dml.ok()) {
    metrics_->parse_errors.Add();
    metrics_->errors.Add();
    Respond(JsonErrorRecord("", "", dml.status()));
    return;
  }
  const std::string text = knnql::Unparse(*dml);

  if (dml->kind == knnql::DmlSpec::Kind::kLoad) {
    if (Status confined = ConfineLoadPath(&dml->path, limits_.load_dir);
        !confined.ok()) {
      metrics_->errors.Add();
      Respond(JsonErrorRecord("statement", text, confined));
      return;
    }
  }

  // DML is a barrier within the connection: every query this session
  // already admitted completes first, so a closed-loop client sees
  // strictly sequential semantics on its own connection.
  WaitIdle();

  Stopwatch timer;
  const EngineResult run = engine_->ExecuteDml(*dml);
  metrics_->mutation_latency.Record(timer.ElapsedSeconds());
  if (!run.ok()) {
    metrics_->errors.Add();
    Respond(JsonErrorRecord("statement", text, run.status));
    return;
  }
  metrics_->mutations_ok.Add();
  Respond(JsonDmlRecord(text, run));
}

}  // namespace knnq::server
