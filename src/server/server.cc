#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "src/engine/neighborhood_cache.h"
#include "src/obs/process_stats.h"

namespace knnq::server {

namespace {

/// The engine counters of the STATS response.
std::string EngineStatsJson(const EngineStatsSnapshot& snapshot) {
  return "{\"queries\": " + std::to_string(snapshot.queries) +
         ", \"query_errors\": " + std::to_string(snapshot.query_errors) +
         ", \"mutations\": " + std::to_string(snapshot.mutations) +
         ", \"mutation_errors\": " +
         std::to_string(snapshot.mutation_errors) +
         ", \"blocks_scanned\": " +
         std::to_string(snapshot.totals.blocks_scanned) +
         ", \"blocks_skipped\": " +
         std::to_string(snapshot.totals.blocks_skipped) +
         ", \"points_compared\": " +
         std::to_string(snapshot.totals.points_compared) +
         ", \"neighborhoods_computed\": " +
         std::to_string(snapshot.totals.neighborhoods_computed) +
         ", \"candidates_pruned\": " +
         std::to_string(snapshot.totals.candidates_pruned) +
         ", \"shards_pruned\": " +
         std::to_string(snapshot.totals.shards_pruned) +
         ", \"arena_bytes\": " +
         std::to_string(snapshot.totals.arena_bytes) + "}";
}

std::string CacheStatsJson(const NeighborhoodCache* cache) {
  if (cache == nullptr) return "null";
  const NeighborhoodCacheStats stats = cache->GetStats();
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.4f", stats.hit_rate());
  return "{\"hits\": " + std::to_string(stats.hits) +
         ", \"misses\": " + std::to_string(stats.misses) +
         ", \"hit_rate\": " + rate +
         ", \"insertions\": " + std::to_string(stats.insertions) +
         ", \"evictions\": " + std::to_string(stats.evictions) +
         ", \"invalidated\": " + std::to_string(stats.invalidated) +
         ", \"entries\": " + std::to_string(stats.entries) +
         ", \"bytes\": " + std::to_string(stats.bytes) +
         ", \"capacity_bytes\": " +
         std::to_string(cache->capacity_bytes()) + "}";
}

}  // namespace

Server::Server(QueryEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      admission_(options_.max_inflight),
      start_time_(std::chrono::steady_clock::now()) {
  metrics_.RegisterAll(&registry_);
  registry_.RegisterCallbackGauge(
      "knnq_server_active_connections", "Currently open connections.",
      [this] { return static_cast<double>(active_connections()); });
  registry_.RegisterCallbackGauge(
      "knnq_server_in_flight", "Queries executing right now.",
      [this] { return static_cast<double>(admission_.in_flight()); });
  registry_.RegisterCallbackGauge(
      "knnq_engine_pool_queue_depth",
      "Engine worker-pool tasks queued and not yet running.", [this] {
        return static_cast<double>(engine_->pool_queue_depth());
      });

  // Self-instrumentation: build identity and process vitals, exposed
  // through the SAME registry as everything else so the METRICS verb
  // and GET /metrics render them identically.
  registry_.RegisterCallbackGauge(
      "knnq_build_info", "Always 1. Build: " + obs::BuildInfoLine() + ".",
      [] { return 1.0; });
  registry_.RegisterCallbackGauge(
      "knnq_process_uptime_seconds",
      "Whole seconds since server construction (floored so two scrapes "
      "within one second render identically).",
      [this] {
        return static_cast<double>(
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - start_time_)
                .count());
      });
  registry_.RegisterCallbackGauge(
      "knnq_process_resident_memory_bytes", "Resident set size.",
      [] { return obs::ProcessRssBytes(); });
  registry_.RegisterCallbackGauge("knnq_process_open_fds",
                                  "Open file descriptors.",
                                  [] { return obs::ProcessOpenFds(); });
  registry_.RegisterCallbackGauge("knnq_process_threads",
                                  "OS threads in this process.",
                                  [] { return obs::ProcessThreadCount(); });
  registry_.RegisterCallbackCounter(
      "knnq_http_requests_total",
      "HTTP observability requests answered (any status).", [this] {
        return http_ != nullptr ? http_->requests_served() : 0;
      });

  // The ring sampler: saturation and rate trends over a fixed window,
  // served by /statusz and the HISTORY verb.
  history_ = std::make_unique<obs::MetricsHistory>(obs::HistoryOptions{
      .interval_ms = options_.history_interval_ms,
      .capacity = options_.history_capacity});
  history_->AddSource("knnq_server_requests_total", [this] {
    return static_cast<double>(metrics_.requests.Value());
  });
  history_->AddSource("knnq_engine_queries_total", [this] {
    return static_cast<double>(engine_->StatsSnapshot().queries);
  });
  history_->AddSource("knnq_server_in_flight", [this] {
    return static_cast<double>(admission_.in_flight());
  });
  history_->AddSource("knnq_server_active_connections", [this] {
    return static_cast<double>(active_connections());
  });
  history_->AddSource("knnq_engine_pool_queue_depth", [this] {
    return static_cast<double>(engine_->pool_queue_depth());
  });
  history_->AddSource("knnq_process_resident_memory_bytes",
                      [] { return obs::ProcessRssBytes(); });

  // Engine cumulative totals, snapshotted at scrape time. One
  // StatsSnapshot per metric is fine: METRICS is a scrape path, not a
  // hot path.
  const auto engine_counter = [this](std::uint64_t EngineStatsSnapshot::*
                                         field) {
    return [this, field] {
      return static_cast<std::uint64_t>(engine_->StatsSnapshot().*field);
    };
  };
  const auto total_counter = [this](std::size_t ExecStats::*field) {
    return [this, field] {
      return static_cast<std::uint64_t>(
          engine_->StatsSnapshot().totals.*field);
    };
  };
  registry_.RegisterCallbackCounter("knnq_engine_queries_total",
                                    "Queries executed.",
                                    engine_counter(&EngineStatsSnapshot::queries));
  registry_.RegisterCallbackCounter(
      "knnq_engine_query_errors_total", "Queries that failed.",
      engine_counter(&EngineStatsSnapshot::query_errors));
  registry_.RegisterCallbackCounter(
      "knnq_engine_mutations_total", "DML statements executed.",
      engine_counter(&EngineStatsSnapshot::mutations));
  registry_.RegisterCallbackCounter(
      "knnq_engine_mutation_errors_total", "DML statements that failed.",
      engine_counter(&EngineStatsSnapshot::mutation_errors));
  registry_.RegisterCallbackCounter(
      "knnq_engine_blocks_scanned_total",
      "Columnar blocks whose points were compared.",
      total_counter(&ExecStats::blocks_scanned));
  registry_.RegisterCallbackCounter(
      "knnq_engine_blocks_skipped_total",
      "Columnar blocks pruned by their bounding boxes.",
      total_counter(&ExecStats::blocks_skipped));
  registry_.RegisterCallbackCounter(
      "knnq_engine_points_compared_total",
      "Point distance computations.",
      total_counter(&ExecStats::points_compared));
  registry_.RegisterCallbackCounter(
      "knnq_engine_neighborhoods_computed_total",
      "kNN neighborhoods computed (cache misses included).",
      total_counter(&ExecStats::neighborhoods_computed));
  registry_.RegisterCallbackCounter(
      "knnq_engine_candidates_pruned_total",
      "Join candidates pruned by locality filters.",
      total_counter(&ExecStats::candidates_pruned));
  registry_.RegisterCallbackCounter(
      "knnq_engine_shards_pruned_total",
      "Shards skipped by scatter-gather pruning.",
      total_counter(&ExecStats::shards_pruned));

  if (const NeighborhoodCache* cache = engine_->neighborhood_cache();
      cache != nullptr) {
    const auto cache_counter = [cache](std::uint64_t NeighborhoodCacheStats::*
                                           field) {
      return [cache, field] {
        return static_cast<std::uint64_t>(cache->GetStats().*field);
      };
    };
    registry_.RegisterCallbackCounter(
        "knnq_cache_hits_total", "Neighborhood cache hits.",
        cache_counter(&NeighborhoodCacheStats::hits));
    registry_.RegisterCallbackCounter(
        "knnq_cache_misses_total", "Neighborhood cache misses.",
        cache_counter(&NeighborhoodCacheStats::misses));
    registry_.RegisterCallbackCounter(
        "knnq_cache_insertions_total", "Neighborhood cache insertions.",
        cache_counter(&NeighborhoodCacheStats::insertions));
    registry_.RegisterCallbackCounter(
        "knnq_cache_evictions_total", "Neighborhood cache evictions.",
        cache_counter(&NeighborhoodCacheStats::evictions));
    registry_.RegisterCallbackCounter(
        "knnq_cache_invalidated_total",
        "Neighborhood cache entries dropped by invalidation.",
        cache_counter(&NeighborhoodCacheStats::invalidated));
    registry_.RegisterCallbackGauge(
        "knnq_cache_entries", "Neighborhood cache live entries.", [cache] {
          return static_cast<double>(cache->GetStats().entries);
        });
    registry_.RegisterCallbackGauge(
        "knnq_cache_bytes", "Neighborhood cache resident bytes.", [cache] {
          return static_cast<double>(cache->GetStats().bytes);
        });
    registry_.RegisterCallbackGauge(
        "knnq_cache_capacity_bytes", "Neighborhood cache capacity.",
        [cache] { return static_cast<double>(cache->capacity_bytes()); });
  }
}

Server::~Server() { Stop(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) return Status::Internal("server already started");
  }
  // Idempotent: the durable path already ran this before recovery so
  // /readyz could answer during the replay.
  if (Status s = StartHttp(); !s.ok()) return s;

  if (::pipe(stop_pipe_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  // A failure below must release everything opened so far: a caller
  // probing ports retries Start in a loop and must not leak fds.
  const auto fail = [this](Status status) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    return status;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return fail(
        Status::IoError(std::string("socket: ") + std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return fail(
        Status::InvalidArgument("bad listen address: " + options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(Status::IoError(
        "bind " + options_.host + ":" + std::to_string(options_.port) +
        ": " + std::strerror(errno)));
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    return fail(
        Status::IoError(std::string("listen: ") + std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

Status Server::StartHttp() {
  // The sampler always runs (the HISTORY verb needs it); the HTTP
  // plane only when asked for. Start() also calls this, so a server
  // started without StartHttp still samples.
  history_->Start();
  if (!options_.http_enabled || http_ != nullptr) return Status::Ok();

  obs::HttpServerOptions http_options = options_.http;
  http_options.host = options_.http_host;
  http_options.port = options_.http_port;
  http_ = std::make_unique<obs::HttpServer>(http_options);
  http_->AddHandler("/metrics", [this] {
    obs::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus();
    return response;
  });
  http_->AddHandler("/healthz", [] {
    // Liveness: the process answers, nothing more.
    return obs::HttpResponse{.body = "ok\n"};
  });
  http_->AddHandler("/readyz", [this] {
    const std::vector<std::string> reasons = NotReadyReasons();
    if (reasons.empty()) return obs::HttpResponse{.body = "ok\n"};
    std::string body = "not ready\n";
    for (const std::string& reason : reasons) body += reason + "\n";
    return obs::HttpResponse{.status = 503, .body = std::move(body)};
  });
  http_->AddHandler("/statusz", [this] {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = RenderStatusz();
    return response;
  });
  if (Status s = http_->Start(); !s.ok()) {
    http_.reset();
    return s;
  }
  return Status::Ok();
}

void Server::RequestStop() {
  // Async-signal-safe: one atomic store and one pipe write. The pipe
  // wakes the accept loop; waiters poll the same pipe (level-
  // triggered, the byte is never consumed).
  if (stop_requested_.exchange(true)) return;
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::WaitUntilStopRequested() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{.fd = stop_pipe_[0], .events = POLLIN, .revents = 0};
    ::poll(&pfd, 1, 100);
  }
}

void Server::Stop() {
  RequestStop();
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_ && !stopped_) {
      stopped_ = true;
      drain = true;
    }
  }
  if (!drain) {
    // Start() never ran (or Stop already did the drain); only the
    // observability plane may need tearing down.
    StopObservability(false);
    return;
  }

  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Claim the connection list, then work without the registry lock: a
  // connection thread answering STATS reads the registry for the
  // active-connection gauge, and joining it while holding the lock
  // would deadlock.
  std::list<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  // Half-close every connection: readers see EOF, drain their
  // in-flight queries, flush the responses and exit.
  for (const auto& conn : connections) {
    ::shutdown(conn->fd, SHUT_RD);
  }
  // Bounded drain. SHUT_RD never unblocks a writer, so a peer that
  // stopped reading could park response writes (and with them the
  // engine workers delivering them) past any point this join would
  // reach. Escalation is per connection and progress-aware: one that
  // goes shutdown_grace_ms without a single response byte reaching
  // its socket is cut with a full shutdown (the blocked send fails
  // with EPIPE and its session drains without responses), while a
  // healthy peer that keeps reading keeps draining - its progress
  // resets the clock, so no accepted statement of a live reader is
  // dropped. Every connection ends done or escalated, so the joins
  // below always return.
  if (options_.shutdown_grace_ms > 0) {
    struct DrainWatch {
      std::uint64_t bytes = 0;
      std::chrono::steady_clock::time_point last_progress;
      bool escalated = false;
    };
    std::vector<DrainWatch> watch(connections.size());
    {
      const auto now = std::chrono::steady_clock::now();
      std::size_t i = 0;
      for (const auto& conn : connections) {
        watch[i].bytes =
            conn->bytes_written.load(std::memory_order_acquire);
        watch[i].last_progress = now;
        ++i;
      }
    }
    const auto grace =
        std::chrono::milliseconds(options_.shutdown_grace_ms);
    for (;;) {
      bool waiting = false;
      const auto now = std::chrono::steady_clock::now();
      std::size_t i = 0;
      for (const auto& conn : connections) {
        DrainWatch& w = watch[i++];
        if (w.escalated || conn->done.load(std::memory_order_acquire)) {
          continue;
        }
        const std::uint64_t bytes =
            conn->bytes_written.load(std::memory_order_acquire);
        if (bytes != w.bytes) {
          w.bytes = bytes;
          w.last_progress = now;
        }
        if (now - w.last_progress >= grace) {
          ::shutdown(conn->fd, SHUT_RDWR);
          w.escalated = true;
          continue;
        }
        waiting = true;
      }
      if (!waiting) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  for (const auto& conn : connections) {
    conn->thread.join();
    ::close(conn->fd);
  }
  connections.clear();

  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;

  StopObservability(true);
}

void Server::StopObservability(bool linger) {
  if (http_ != nullptr) {
    // The HTTP plane outlives the KNNQL drain: during the linger
    // window /readyz answers 503 "draining", so a load balancer
    // observes not-ready and stops routing BEFORE the endpoints
    // disappear (the standard drain pattern).
    if (linger && options_.drain_linger_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.drain_linger_ms));
    }
    http_->Stop();
  }
  history_->Stop();
}

std::size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  std::size_t active = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

std::string Server::RenderStats() const {
  return "{\"status\": \"ok\", \"server\": " +
         metrics_.ToJson(active_connections(), admission_.in_flight()) +
         ", \"engine\": " + EngineStatsJson(engine_->StatsSnapshot()) +
         ", \"cache\": " + CacheStatsJson(engine_->neighborhood_cache()) +
         "}";
}

std::string Server::RenderPrometheus() const {
  return registry_.RenderPrometheus();
}

std::vector<std::string> Server::NotReadyReasons() const {
  std::vector<std::string> reasons;
  if (recovering_.load(std::memory_order_acquire)) {
    reasons.push_back("recovery in progress");
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) reasons.push_back("accept loop not started");
  }
  if (stop_requested_.load(std::memory_order_acquire)) {
    reasons.push_back("draining");
  }
  if (options_.max_inflight > 0 &&
      admission_.in_flight() >= options_.max_inflight) {
    reasons.push_back("admission saturated (in_flight at max_inflight=" +
                      std::to_string(options_.max_inflight) + ")");
  }
  if (options_.wal_writable != nullptr && !options_.wal_writable()) {
    reasons.push_back("wal not writable");
  }
  return reasons;
}

std::string Server::RenderStatusz() const {
  const std::vector<std::string> reasons = NotReadyReasons();
  std::string reasons_json = "[";
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    if (i > 0) reasons_json += ", ";
    reasons_json += "\"" + JsonEscape(reasons[i]) + "\"";
  }
  reasons_json += "]";
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
                          std::chrono::steady_clock::now() - start_time_)
                          .count();
  std::string http_json = "null";
  if (http_ != nullptr) {
    http_json = "{\"port\": " + std::to_string(http_->port()) +
                ", \"active_connections\": " +
                std::to_string(http_->active_connections()) +
                ", \"requests\": " +
                std::to_string(http_->requests_served()) + "}";
  }
  return "{\"status\": \"ok\", \"build\": " + obs::BuildInfoJson() +
         ", \"uptime_seconds\": " + std::to_string(uptime) +
         ", \"ready\": " + (reasons.empty() ? "true" : "false") +
         ", \"not_ready_reasons\": " + reasons_json +
         ", \"server\": " +
         metrics_.ToJson(active_connections(), admission_.in_flight()) +
         ", \"engine\": " + EngineStatsJson(engine_->StatsSnapshot()) +
         ", \"pool\": {\"threads\": " +
         std::to_string(engine_->num_threads()) +
         ", \"queue_depth\": " +
         std::to_string(engine_->pool_queue_depth()) +
         ", \"shards\": " + std::to_string(engine_->shards()) + "}" +
         ", \"cache\": " + CacheStatsJson(engine_->neighborhood_cache()) +
         ", \"wal\": " +
         (options_.wal_status != nullptr ? options_.wal_status()
                                         : std::string("null")) +
         ", \"http\": " + http_json +
         ", \"history\": " + RenderHistory() + "}";
}

std::string Server::RenderHistory() const {
  return history_->RenderJson();
}

void Server::ReapFinished() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::RefuseConnection(int fd) {
  metrics_.connection_rejections.Add();
  const std::string line =
      WithId(1, JsonErrorRecord(
                    "", "",
                    Status::Unavailable(
                        "overloaded: server at max_connections=" +
                        std::to_string(options_.max_connections)))) +
      "\n";
  // Best effort and never blocking: the accept thread must not stall
  // on a peer that is part of the overload it is shedding.
  [[maybe_unused]] const ssize_t n = ::send(
      fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  ::close(fd);
}

void Server::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {.fd = listen_fd_, .events = POLLIN, .revents = 0};
  fds[1] = {.fd = stop_pipe_[0], .events = POLLIN, .revents = 0};
  for (;;) {
    // A RequestStop issued before Start had a pipe to write leaves
    // only the flag; check it so the loop cannot block forever.
    if (stop_requested_.load(std::memory_order_acquire)) break;
    // Bounded wait so finished connections are reaped within ~1s even
    // when no new client ever connects; an idle server must not
    // retain the last burst's unjoined threads indefinitely.
    const int ready = ::poll(fds, 2, 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ReapFinished();
    if (ready == 0) continue;
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.max_connections > 0 &&
        active_connections() >= options_.max_connections) {
      RefuseConnection(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.write_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.write_timeout_ms / 1000;
      tv.tv_usec =
          static_cast<suseconds_t>(options_.write_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (options_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                   sizeof(options_.sndbuf_bytes));
    }

    metrics_.connections_opened.Add();
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    Session::Callbacks callbacks;
    callbacks.write = [this, raw](const std::string& line) {
      return WriteLine(raw, line);
    };
    callbacks.render_stats = [this] { return RenderStats(); };
    callbacks.render_metrics = [this] {
      return "{\"status\": \"ok\", \"prometheus\": \"" +
             JsonEscape(RenderPrometheus()) + "\"}";
    };
    callbacks.render_history = [this] {
      return "{\"status\": \"ok\", \"history\": " + RenderHistory() + "}";
    };
    if (options_.allow_remote_shutdown) {
      callbacks.request_shutdown = [this] { RequestStop(); };
    }
    if (options_.snapshot_handler != nullptr) {
      callbacks.snapshot = [this]() -> std::string {
        auto lsn = options_.snapshot_handler();
        if (!lsn.ok()) return JsonErrorRecord("", "", lsn.status());
        return "{\"status\": \"ok\", \"snapshot_lsn\": " +
               std::to_string(*lsn) + "}";
      };
    }
    raw->session = std::make_unique<Session>(
        engine_, options_.limits, &metrics_, &admission_,
        std::move(callbacks));
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void Server::ConnectionLoop(Connection* conn) {
  char buffer[64 * 1024];
  // Why the connection ended; only a peer-initiated end (EOF or a
  // read error) counts toward the mid-statement-disconnect metric.
  enum class Close { kPeer, kIdle, kRejected, kBroken };
  Close close = Close::kPeer;
  int idle_ms = 0;
  for (;;) {
    // A write timeout marks the connection broken from a worker
    // thread: its responses are undeliverable, so parking the reader
    // here would pin the connection slot (and its thread) until the
    // peer deigns to close. The bounded poll tick below exists so
    // this check runs even when no input ever arrives.
    if (conn->broken.load(std::memory_order_relaxed)) {
      close = Close::kBroken;
      break;
    }
    int tick = 1000;
    if (options_.idle_timeout_ms > 0) {
      tick = std::min(tick, options_.idle_timeout_ms - idle_ms);
    }
    pollfd pfd{.fd = conn->fd, .events = POLLIN, .revents = 0};
    const int ready = ::poll(&pfd, 1, tick);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      idle_ms += tick;
      if (options_.idle_timeout_ms > 0 &&
          idle_ms >= options_.idle_timeout_ms) {
        // Idle expiry only when truly quiet: nothing in flight and no
        // partial statement buffered; otherwise the clock restarts.
        if (conn->session->in_flight() == 0 &&
            !conn->session->has_buffered_input()) {
          metrics_.idle_timeouts.Add();
          close = Close::kIdle;
          break;
        }
        idle_ms = 0;
      }
      continue;
    }
    idle_ms = 0;
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n == 0) break;  // EOF (client close or our SHUT_RD).
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!conn->session->Consume(
            std::string_view(buffer, static_cast<std::size_t>(n)))) {
      close = Close::kRejected;  // Oversized; error already sent.
      break;
    }
  }
  // Drain: every admitted query completes and writes its response
  // before the connection is torn down.
  conn->session->WaitIdle();
  if (close == Close::kPeer) conn->session->FinishInput();
  ::shutdown(conn->fd, SHUT_RDWR);
  metrics_.connections_closed.Add();
  conn->done.store(true, std::memory_order_release);
}

bool Server::WriteLine(Connection* conn, const std::string& line) {
  if (conn->broken.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // Re-check under the lock: writers queued behind the one that timed
  // out must fail immediately, not each burn a full deadline of their
  // own against the same dead socket.
  if (conn->broken.load(std::memory_order_relaxed)) return false;
  // Gathered write: record + '\n' in one syscall, no copy of what can
  // be a multi-megabyte rows payload.
  const char newline = '\n';
  iovec iov[2] = {
      {.iov_base = const_cast<char*>(line.data()), .iov_len = line.size()},
      {.iov_base = const_cast<char*>(&newline), .iov_len = 1},
  };
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  std::size_t sent = 0;
  const std::size_t total = line.size() + 1;
  // The write deadline is wall-clock for the WHOLE response, not per
  // send() call: SO_SNDTIMEO alone resets on any progress, so a peer
  // trickle-reading a byte every few seconds would still park this
  // worker indefinitely. SO_SNDTIMEO's role is merely to bound each
  // blocking send so the clock below actually gets checked.
  const bool bounded = options_.write_timeout_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.write_timeout_ms);
  while (sent < total) {
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      metrics_.write_timeouts.Add();
      conn->broken.store(true, std::memory_order_relaxed);
      return false;
    }
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN here is SO_SNDTIMEO expiring with zero progress: the
      // peer stopped reading. The connection is broken either way;
      // distinguishing the cause is only for the metrics.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        metrics_.write_timeouts.Add();
      }
      conn->broken.store(true, std::memory_order_relaxed);
      return false;
    }
    sent += static_cast<std::size_t>(n);
    conn->bytes_written.fetch_add(static_cast<std::uint64_t>(n),
                                  std::memory_order_release);
    // Advance the iovec past what went out (short writes happen when
    // the socket buffer fills under pipelined responses).
    std::size_t skip = static_cast<std::size_t>(n);
    while (skip > 0 && msg.msg_iovlen > 0) {
      if (skip >= msg.msg_iov[0].iov_len) {
        skip -= msg.msg_iov[0].iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<char*>(msg.msg_iov[0].iov_base) + skip;
        msg.msg_iov[0].iov_len -= skip;
        skip = 0;
      }
    }
  }
  return true;
}

}  // namespace knnq::server
