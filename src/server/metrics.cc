#include "src/server/metrics.h"

namespace knnq::server {

void ServerMetrics::RegisterAll(obs::MetricsRegistry* registry) const {
  const struct {
    const char* name;
    const char* help;
    const obs::Counter* counter;
  } counters[] = {
      {"knnq_server_connections_opened_total", "Accepted connections.",
       &connections_opened},
      {"knnq_server_connections_closed_total", "Closed connections.",
       &connections_closed},
      {"knnq_server_requests_total", "Statements and admin verbs received.",
       &requests},
      {"knnq_server_responses_total", "Responses written.", &responses},
      {"knnq_server_queries_ok_total", "Successful queries.", &queries_ok},
      {"knnq_server_mutations_ok_total", "Successful DML statements.",
       &mutations_ok},
      {"knnq_server_explains_ok_total",
       "Successful EXPLAIN and EXPLAIN ANALYZE statements.", &explains_ok},
      {"knnq_server_admin_requests_total",
       "Admin verbs (STATS, METRICS, PING, SHUTDOWN).", &admin_requests},
      {"knnq_server_errors_total", "Error responses.", &errors},
      {"knnq_server_overload_rejections_total",
       "Statements rejected by admission control or a full pool queue.",
       &overload_rejections},
      {"knnq_server_connection_rejections_total",
       "Accepts refused at the connection cap.", &connection_rejections},
      {"knnq_server_write_timeouts_total",
       "Response writes that hit the send deadline.", &write_timeouts},
      {"knnq_server_parse_errors_total", "Statements that failed to parse.",
       &parse_errors},
      {"knnq_server_oversized_requests_total",
       "Statements over the request byte limit.", &oversized_requests},
      {"knnq_server_idle_timeouts_total",
       "Connections closed by the idle deadline.", &idle_timeouts},
      {"knnq_server_disconnects_mid_statement_total",
       "Connections that vanished mid-statement.",
       &disconnects_mid_statement},
  };
  for (const auto& c : counters) {
    registry->RegisterCounter(c.name, c.help, c.counter);
  }
  registry->RegisterHistogram("knnq_server_query_latency_seconds",
                              "Query execution latency (queued to done).",
                              &query_latency);
  registry->RegisterHistogram("knnq_server_mutation_latency_seconds",
                              "DML execution latency.", &mutation_latency);
  registry->RegisterHistogram("knnq_server_parse_latency_seconds",
                              "Statement text parse latency.",
                              &parse_latency);
  registry->RegisterHistogram("knnq_server_bind_latency_seconds",
                              "Statement bind latency.", &bind_latency);
}

std::string ServerMetrics::ToJson(std::size_t active_connections,
                                  std::size_t in_flight) const {
  const auto get = [](const obs::Counter& c) {
    return std::to_string(c.Value());
  };
  return "{\"connections_opened\": " + get(connections_opened) +
         ", \"connections_closed\": " + get(connections_closed) +
         ", \"active_connections\": " +
         std::to_string(active_connections) +
         ", \"in_flight\": " + std::to_string(in_flight) +
         ", \"requests\": " + get(requests) +
         ", \"responses\": " + get(responses) +
         ", \"queries_ok\": " + get(queries_ok) +
         ", \"mutations_ok\": " + get(mutations_ok) +
         ", \"explains_ok\": " + get(explains_ok) +
         ", \"admin_requests\": " + get(admin_requests) +
         ", \"errors\": " + get(errors) +
         ", \"overload_rejections\": " + get(overload_rejections) +
         ", \"connection_rejections\": " + get(connection_rejections) +
         ", \"write_timeouts\": " + get(write_timeouts) +
         ", \"parse_errors\": " + get(parse_errors) +
         ", \"oversized_requests\": " + get(oversized_requests) +
         ", \"idle_timeouts\": " + get(idle_timeouts) +
         ", \"disconnects_mid_statement\": " +
         get(disconnects_mid_statement) +
         ", \"query_latency\": " + query_latency.Summarize().ToJson() +
         ", \"mutation_latency\": " +
         mutation_latency.Summarize().ToJson() + "}";
}

}  // namespace knnq::server
