#include "src/server/metrics.h"

#include <bit>
#include <cmath>

#include "src/lang/unparser.h"

namespace knnq::server {

namespace {

/// Bucket upper bound in milliseconds: 2^(i+1) microseconds.
double BucketUpperMs(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + 1) / 1000.0;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const auto us = static_cast<std::uint64_t>(seconds * 1e6);
  const std::size_t bucket =
      std::min<std::size_t>(kBuckets - 1, std::bit_width(us | 1) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_us_.fetch_add(us, std::memory_order_relaxed);
}

LatencySummary LatencyHistogram::Summarize() const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  LatencySummary summary;
  summary.count = total;
  if (total == 0) return summary;
  summary.mean_ms =
      static_cast<double>(total_us_.load(std::memory_order_relaxed)) /
      static_cast<double>(total) / 1000.0;
  const auto percentile = [&](double p) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) return BucketUpperMs(i);
    }
    return BucketUpperMs(kBuckets - 1);
  };
  summary.p50_ms = percentile(0.50);
  summary.p95_ms = percentile(0.95);
  summary.p99_ms = percentile(0.99);
  return summary;
}

std::string LatencySummary::ToJson() const {
  return "{\"count\": " + std::to_string(count) +
         ", \"mean_ms\": " + knnql::FormatNumber(mean_ms) +
         ", \"p50_ms\": " + knnql::FormatNumber(p50_ms) +
         ", \"p95_ms\": " + knnql::FormatNumber(p95_ms) +
         ", \"p99_ms\": " + knnql::FormatNumber(p99_ms) + "}";
}

std::string ServerMetrics::ToJson(std::size_t active_connections,
                                  std::size_t in_flight) const {
  const auto get = [](const std::atomic<std::uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  return "{\"connections_opened\": " + get(connections_opened) +
         ", \"connections_closed\": " + get(connections_closed) +
         ", \"active_connections\": " +
         std::to_string(active_connections) +
         ", \"in_flight\": " + std::to_string(in_flight) +
         ", \"requests\": " + get(requests) +
         ", \"responses\": " + get(responses) +
         ", \"queries_ok\": " + get(queries_ok) +
         ", \"mutations_ok\": " + get(mutations_ok) +
         ", \"explains_ok\": " + get(explains_ok) +
         ", \"admin_requests\": " + get(admin_requests) +
         ", \"errors\": " + get(errors) +
         ", \"overload_rejections\": " + get(overload_rejections) +
         ", \"connection_rejections\": " + get(connection_rejections) +
         ", \"write_timeouts\": " + get(write_timeouts) +
         ", \"parse_errors\": " + get(parse_errors) +
         ", \"oversized_requests\": " + get(oversized_requests) +
         ", \"idle_timeouts\": " + get(idle_timeouts) +
         ", \"disconnects_mid_statement\": " +
         get(disconnects_mid_statement) +
         ", \"query_latency\": " + query_latency.Summarize().ToJson() +
         ", \"mutation_latency\": " +
         mutation_latency.Summarize().ToJson() + "}";
}

}  // namespace knnq::server
