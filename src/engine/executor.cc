#include "src/engine/executor.h"

namespace knnq {

const ExecutorRegistry& ExecutorRegistry::Default() {
  // Magic-static: built once, thread-safe per the C++11 guarantee.
  static const ExecutorRegistry* registry = [] {
    auto* r = new ExecutorRegistry();
    RegisterDefaultExecutors(*r);
    return r;
  }();
  return *registry;
}

Status ExecutorRegistry::Register(Algorithm algorithm,
                                  std::unique_ptr<Executor> executor) {
  if (executor == nullptr) {
    return Status::InvalidArgument("executor must be non-null");
  }
  const auto [it, inserted] =
      executors_.emplace(algorithm, std::move(executor));
  if (!inserted) {
    return Status::InvalidArgument(
        std::string("executor already registered for ") +
        ToString(algorithm));
  }
  return Status::Ok();
}

const Executor* ExecutorRegistry::Find(Algorithm algorithm) const {
  const auto it = executors_.find(algorithm);
  return it == executors_.end() ? nullptr : it->second.get();
}

}  // namespace knnq
