// ThreadPool: a fixed-size worker pool for the query engine.
//
// Deliberately minimal: tasks are type-erased closures and run in FIFO
// order per worker pickup (no ordering guarantee across workers). Two
// knobs exist for serving workloads:
//
//   * a bounded queue (ThreadPoolOptions::max_queue): TrySubmit
//     refuses work instead of queueing unboundedly, the primitive the
//     server's admission control is built on;
//   * drain-then-stop shutdown (Shutdown()): finishes every queued
//     task before joining, so a graceful server shutdown never drops
//     accepted work. The destructor keeps the historical fast path -
//     discard whatever never started, finish in-flight tasks, join.

#ifndef KNNQ_SRC_ENGINE_THREAD_POOL_H_
#define KNNQ_SRC_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace knnq {

/// Pool construction knobs.
struct ThreadPoolOptions {
  /// Worker threads (at least one).
  std::size_t num_threads = 1;

  /// Queued (not yet running) task limit; 0 means unbounded. When the
  /// bound is reached TrySubmit fails and Submit blocks until a worker
  /// makes room.
  std::size_t max_queue = 0;
};

/// Fixed-size worker pool. Submission is thread-safe.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one), unbounded queue.
  explicit ThreadPool(std::size_t num_threads)
      : ThreadPool(ThreadPoolOptions{.num_threads = num_threads}) {}

  explicit ThreadPool(ThreadPoolOptions options);

  /// Stops accepting tasks, discards tasks never started, finishes the
  /// in-flight ones and joins the workers. (Shutdown() first for the
  /// draining variant.)
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker; with a bounded
  /// queue, blocks until there is room. Tasks must not throw. Returns
  /// false when shutdown has begun: the task was dropped, and callers
  /// synchronizing on its completion (a latch, a counter) must settle
  /// it themselves instead of waiting forever.
  bool Submit(std::function<void()> task);

  /// Like Submit, but never blocks: returns false instead when the
  /// bounded queue is full or the pool is stopping. The task was not
  /// enqueued in that case.
  bool TrySubmit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. New work
  /// may still be submitted afterwards; callers wanting a quiescent
  /// pool stop submitting first.
  void Drain();

  /// Graceful shutdown: stops accepting tasks, runs everything already
  /// queued to completion and joins the workers. Idempotent; the
  /// destructor after a Shutdown() is a no-op.
  void Shutdown();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Tasks queued and not yet picked up by a worker - the saturation
  /// gauge behind knnq_engine_pool_queue_depth.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  void WorkerLoop();

  /// Shared stop path: `drain` keeps the queue, !`drain` clears it.
  void Stop(bool drain);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Signals queue-space to blocked Submit calls (bounded queues only).
  std::condition_variable space_cv_;
  /// Signals "queue empty and nothing running" to Drain.
  std::condition_variable idle_cv_;
  std::size_t max_queue_ = 0;
  /// Tasks currently executing on some worker.
  std::size_t active_ = 0;
  bool stopping_ = false;
  /// Workers already joined (Shutdown ran); guards double-join.
  bool joined_ = false;
};

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_THREAD_POOL_H_
