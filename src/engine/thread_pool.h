// ThreadPool: a fixed-size worker pool for the query engine.
//
// Deliberately minimal: tasks are type-erased closures, the queue is
// unbounded, and shutdown drains nothing - the destructor wakes the
// workers, lets in-flight tasks finish, and joins. Query fan-out needs
// nothing fancier, and a small pool is easy to reason about under the
// engine's "immutable shared indexes, per-thread searchers" model.

#ifndef KNNQ_SRC_ENGINE_THREAD_POOL_H_
#define KNNQ_SRC_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace knnq {

/// Fixed-size worker pool. Submit is thread-safe; tasks run in FIFO
/// order per worker pickup (no ordering guarantee across workers).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads);

  /// Stops accepting tasks, discards tasks never started, finishes the
  /// in-flight ones and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Tasks must not
  /// throw; submitting after destruction begins is a caller bug.
  void Submit(std::function<void()> task);

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_THREAD_POOL_H_
