// QueryEngine: the serving facade of the repository.
//
// Owns a Catalog, the PlannerOptions every query is planned with, and a
// fixed-size worker thread pool. Run() plans and executes one query;
// RunBatch() fans a batch out over the workers and returns results in
// submission order, with per-query errors isolated to their slot.
//
// Concurrency model: SpatialIndex instances are immutable and
// read-thread-safe (src/index/spatial_index.h); every evaluator creates
// its own KnnSearcher scratch state. Planning reads only catalog
// statistics. So queries share indexes with zero synchronization and a
// batch's speedup is bounded only by cores and memory bandwidth.
//
// The one shared mutable structure is optional: with
// PlannerOptions::cache_mb > 0 the engine owns a NeighborhoodCache, a
// sharded cross-query memo of getkNN results, consulted by every
// evaluator and invalidated if the catalog's generation ever changes.
// Cached execution returns byte-identical results (GetKnn is
// deterministic; restricted searches bypass the cache).

#ifndef KNNQ_SRC_ENGINE_QUERY_ENGINE_H_
#define KNNQ_SRC_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/engine/thread_pool.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"
#include "src/planner/physical_plan.h"

namespace knnq {

class ExecutorRegistry;   // src/engine/executor.h
class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads for RunBatch. 0 means hardware concurrency.
  std::size_t num_threads = 0;

  /// Planning heuristics applied to every query.
  PlannerOptions planner;

  /// Executor registry to dispatch through; null means
  /// ExecutorRegistry::Default(). Must outlive the engine.
  const ExecutorRegistry* registry = nullptr;
};

/// Outcome of one query. A failed plan or execution sets `status` and
/// leaves the rest defaulted; a batch never fails as a whole.
struct EngineResult {
  Status status = Status::Ok();
  /// Valid only when status.ok().
  QueryOutput output;
  /// The algorithm the optimizer chose (valid when planning succeeded).
  Algorithm algorithm = Algorithm::kTwoSelectsNaive;
  /// EXPLAIN rendering of the executed plan, including the Stats line.
  std::string explain;
  /// Uniform execution counters plus wall time.
  ExecStats stats;

  bool ok() const { return status.ok(); }
};

/// Plans and executes queries against an immutable catalog.
class QueryEngine {
 public:
  /// Takes ownership of `catalog`; relations are fixed for the engine's
  /// lifetime (immutability is what makes RunBatch lock-free).
  explicit QueryEngine(Catalog catalog, EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  const Catalog& catalog() const { return catalog_; }
  const EngineOptions& options() const { return options_; }
  std::size_t num_threads() const;

  /// The engine's cross-query neighborhood cache; null when
  /// options.planner.cache_mb == 0. Exposed for stats inspection
  /// (hit rate, footprint) and explicit Clear().
  NeighborhoodCache* neighborhood_cache() const { return cache_.get(); }

  /// Plans and executes one query on the calling thread.
  EngineResult Run(const QuerySpec& spec) const;

  /// Executes `specs` concurrently on the worker pool. results[i] is
  /// the outcome of specs[i]; a bad query (unknown relation, k = 0)
  /// fails only its own slot.
  std::vector<EngineResult> RunBatch(
      const std::vector<QuerySpec>& specs) const;

  /// Parses a KNNQL script (src/lang/knnql.h) against this engine's
  /// catalog into a batch of specs, one per statement in script order.
  /// EXPLAIN prefixes are presentation hints for interactive front
  /// ends and are ignored here. Fails with a "line:col: ..."
  /// diagnostic on the first syntax or binding error.
  Result<std::vector<QuerySpec>> ParseBatch(std::string_view text) const;

  /// ParseBatch + RunBatch: a .knnql workload file, executed on the
  /// worker pool. The whole call fails only when the script does not
  /// parse; per-query failures stay isolated to their slot.
  Result<std::vector<EngineResult>> RunScript(std::string_view text) const;

 private:
  Catalog catalog_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Shared across all workers; internally synchronized.
  std::unique_ptr<NeighborhoodCache> cache_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_QUERY_ENGINE_H_
