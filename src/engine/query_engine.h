// QueryEngine: the serving facade of the repository.
//
// Owns a Catalog, the PlannerOptions every query is planned with, and a
// fixed-size worker thread pool. Run() plans and executes one query;
// RunBatch() fans a batch out over the workers and returns results in
// submission order, with per-query errors isolated to their slot.
// Mutate() and LoadRelation() change relations in place; RunScript()
// executes a KNNQL script that may interleave DML with queries.
//
// Concurrency model: SpatialIndex instances are read-thread-safe with
// no synchronization as long as no write is in flight; every evaluator
// creates its own KnnSearcher scratch state and planning reads only
// catalog statistics. The engine serializes writers against readers
// with one std::shared_mutex: every Run()/RunBatch() slot holds a
// reader lock for its whole plan+execute, Mutate()/LoadRelation() hold
// the writer lock. Reads therefore still scale across cores (shared
// locks don't contend with each other), each query sees a consistent
// snapshot of every relation, and writes apply between queries, never
// under one.
//
// The one shared mutable structure is optional: with
// PlannerOptions::cache_mb > 0 the engine owns a NeighborhoodCache, a
// sharded cross-query memo of getkNN results, consulted by every
// evaluator. A mutation invalidates only the mutated relation's cache
// entries (keyed by the relation's Catalog generation); every other
// relation's neighborhoods stay hot. Cached execution returns
// byte-identical results (GetKnn is deterministic; restricted searches
// bypass the cache).

#ifndef KNNQ_SRC_ENGINE_QUERY_ENGINE_H_
#define KNNQ_SRC_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/engine/thread_pool.h"
#include "src/index/index_factory.h"
#include "src/lang/binder.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"
#include "src/planner/physical_plan.h"

namespace knnq {

class ExecutorRegistry;   // src/engine/executor.h
class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads for RunBatch. 0 means hardware concurrency.
  std::size_t num_threads = 0;

  /// Planning heuristics applied to every query.
  PlannerOptions planner;

  /// Executor registry to dispatch through; null means
  /// ExecutorRegistry::Default(). Must outlive the engine.
  const ExecutorRegistry* registry = nullptr;

  /// Index construction parameters for relations the engine creates
  /// itself (LoadRelation / KNNQL LOAD on an unknown name).
  IndexOptions index_options;

  /// Bound on the worker pool's queue of not-yet-running tasks; 0
  /// means unbounded (the RunBatch default). Servers set it so
  /// TrySubmitQuery refuses work under overload instead of queueing
  /// without limit.
  std::size_t pool_queue_limit = 0;
};

/// Outcome of one statement. A failed plan or execution sets `status`
/// and leaves the rest defaulted; a batch never fails as a whole.
struct EngineResult {
  Status status = Status::Ok();
  /// Valid only when status.ok() (queries only; empty for DML).
  QueryOutput output;
  /// The algorithm the optimizer chose (valid when planning succeeded).
  Algorithm algorithm = Algorithm::kTwoSelectsNaive;
  /// EXPLAIN rendering of the executed plan (queries), or a one-line
  /// mutation summary (DML).
  std::string explain;
  /// Uniform execution counters plus wall time.
  ExecStats stats;
  /// True when this slot was a DML statement (INSERT/DELETE/LOAD).
  bool is_mutation = false;
  /// DML only: rows inserted, deleted or loaded.
  std::size_t rows_affected = 0;

  bool ok() const { return status.ok(); }
};

/// Cumulative serving counters since engine construction, for STATS
/// endpoints and monitoring. A point-in-time copy; totals merge the
/// ExecStats of every statement the engine executed (failed ones too:
/// their partial work happened).
struct EngineStatsSnapshot {
  std::uint64_t queries = 0;
  std::uint64_t query_errors = 0;
  std::uint64_t mutations = 0;
  std::uint64_t mutation_errors = 0;
  ExecStats totals;
};

/// Plans and executes queries — and applies writes — against an owned
/// catalog, under the reader/writer protocol described above.
class QueryEngine {
 public:
  /// Takes ownership of `catalog`. Relations stay mutable through
  /// Mutate / LoadRelation / RunScript only; all other entry points
  /// are reads.
  explicit QueryEngine(Catalog catalog, EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Callers inspecting the catalog while writers may be active must
  /// not hold the returned reference across a Mutate.
  const Catalog& catalog() const { return catalog_; }
  const EngineOptions& options() const { return options_; }
  std::size_t num_threads() const;

  /// The engine's cross-query neighborhood cache; null when
  /// options.planner.cache_mb == 0. Exposed for stats inspection
  /// (hit rate, footprint) and explicit Clear().
  NeighborhoodCache* neighborhood_cache() const { return cache_.get(); }

  /// Plans and executes one query on the calling thread (under a
  /// reader lock: safe to call concurrently with Mutate).
  EngineResult Run(const QuerySpec& spec) const;

  /// Executes `specs` concurrently on the worker pool. results[i] is
  /// the outcome of specs[i]; a bad query (unknown relation, k = 0)
  /// fails only its own slot.
  std::vector<EngineResult> RunBatch(
      const std::vector<QuerySpec>& specs) const;

  /// Asynchronous single-query execution, the server's dispatch
  /// primitive: plans and executes `spec` on the worker pool and
  /// invokes `done` with the outcome on the worker thread. `done` must
  /// not throw and must outlive the engine's pool (servers drain
  /// in-flight work before destroying the engine). Returns false when
  /// the pool is shutting down: the query was dropped and `done` will
  /// never run.
  bool SubmitQuery(QuerySpec spec,
                   std::function<void(EngineResult)> done) const;

  /// Like SubmitQuery, but refuses instead of waiting when the pool's
  /// bounded queue (EngineOptions::pool_queue_limit) is full or the
  /// pool is stopping: returns false and never invokes `done`. The
  /// backpressure hook admission control maps to an `overloaded` wire
  /// error.
  bool TrySubmitQuery(QuerySpec spec,
                      std::function<void(EngineResult)> done) const;

  /// Plans `spec` without executing it (under the reader lock): the
  /// EXPLAIN path. Returns the plan's rendering.
  Result<std::string> Explain(const QuerySpec& spec) const;

  /// Binds one parsed KNNQL query against the live catalog under the
  /// reader lock, so servers can bind incrementally while writers run.
  Result<QuerySpec> BindQuery(const knnql::Query& query) const;

  /// Applies one bound DML statement: kInsert/kDelete through
  /// Mutate(), kLoad through LoadPoints() + LoadRelation(). The shared
  /// execution path of the CLI and the network server.
  EngineResult ExecuteDml(const knnql::DmlSpec& dml);

  /// Cumulative counters over every statement this engine executed.
  EngineStatsSnapshot StatsSnapshot() const;

  /// Applies `ops` in order to `relation` under the writer lock: the
  /// batch waits for in-flight queries, applies between batches, bumps
  /// only that relation's generation and invalidates only its cache
  /// entries. The result's status carries any failure; rows_affected
  /// and explain summarize the applied writes.
  EngineResult Mutate(const std::string& relation,
                      const std::vector<MutationOp>& ops);

  /// Replaces (or creates, with options().index_options) `relation`
  /// with `points`, under the writer lock. The KNNQL `LOAD` fast path.
  EngineResult LoadRelation(const std::string& relation, PointSet points);

  /// Parses a KNNQL script (src/lang/knnql.h) against this engine's
  /// catalog into a batch of query specs, one per statement in script
  /// order. EXPLAIN prefixes are presentation hints for interactive
  /// front ends and are ignored here. Fails with a "line:col: ..."
  /// diagnostic on the first syntax or binding error — including DML
  /// statements, which cannot be represented as specs (RunScript
  /// executes those).
  Result<std::vector<QuerySpec>> ParseBatch(std::string_view text) const;

  /// Executes a .knnql script that may interleave DML with queries.
  /// Statements run in script order; maximal runs of consecutive
  /// queries execute concurrently on the worker pool (a batch), DML
  /// applies between batches under the writer lock. results[i] is
  /// statement i's outcome; per-statement failures stay isolated to
  /// their slot. The whole call fails only when the script does not
  /// parse or a query does not bind against the catalog state at its
  /// batch's start (mutations applied by earlier statements persist).
  Result<std::vector<EngineResult>> RunScript(std::string_view text);

 private:
  /// Plan + execute without taking the reader lock (callers hold it).
  EngineResult RunLocked(const QuerySpec& spec) const;

  /// Folds one finished statement into the cumulative counters.
  void RecordQuery(const EngineResult& result) const;
  void RecordMutation(const EngineResult& result) const;

  Catalog catalog_;
  EngineOptions options_;
  /// Shared across all workers; internally synchronized.
  std::unique_ptr<NeighborhoodCache> cache_;
  /// The reader/writer protocol: queries shared, mutations exclusive.
  mutable std::shared_mutex catalog_mu_;
  /// Cumulative serving counters (StatsSnapshot); separate lock so the
  /// hot path never touches catalog_mu_ for bookkeeping.
  mutable std::mutex stats_mu_;
  mutable EngineStatsSnapshot cumulative_;
  /// Declared LAST: destruction joins the workers first, so an async
  /// SubmitQuery task still in flight can never touch an
  /// already-destroyed mutex, cache or catalog.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_QUERY_ENGINE_H_
