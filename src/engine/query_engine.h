// QueryEngine: the serving facade of the repository.
//
// Owns a Catalog, the PlannerOptions every query is planned with, and a
// fixed-size worker thread pool. Run() plans and executes one query;
// RunBatch() fans a batch out over the workers and returns results in
// submission order, with per-query errors isolated to their slot.
// ExecuteDml() is the single write path (inserts/deletes/loads);
// RunScript() executes a KNNQL script that may interleave DML with
// queries.
//
// Concurrency model — two modes, selected by EngineOptions::shards:
//
//   shards == 1 (default, the historical engine): SpatialIndex
//   instances are read-thread-safe with no synchronization as long as
//   no write is in flight, so the engine serializes writers against
//   readers with one std::shared_mutex. Every Run()/RunBatch() slot
//   holds a reader lock for its whole plan+execute, DML holds the
//   writer lock and mutates indexes in place. Reads scale across cores
//   (shared locks don't contend), writes apply between queries.
//
//   shards > 1 (sharded scale-out): every relation is a ShardedIndex
//   (src/index/sharded_index.h) and DML switches to copy-on-write
//   publication. A writer pins the current wrapper, clones only the
//   shards its ops route to, applies the batch to the clones, rebuilds
//   a wrapper via ShardedIndex::FromShards and commits it with one
//   pointer swap (Catalog::ReplaceIndex) under a brief exclusive lock.
//   Readers pin shared_ptr snapshots of every relation under a brief
//   shared lock, then plan+execute entirely lock-free — a bulk write
//   to one relation no longer stalls reads, and writers to different
//   relations proceed concurrently (one writer mutex per relation).
//   Queries against a sharded relation run scatter-gather getkNN with
//   distance-bound shard pruning (ExecStats::shards_pruned).
//
// The one shared mutable structure is optional: with
// EngineOptions::cache_mb > 0 the engine owns a NeighborhoodCache, a
// sharded cross-query memo of getkNN results, consulted by every
// evaluator. A mutation invalidates only the mutated relation's cache
// entries (keyed per shard child in sharded mode, so replacing one
// shard keeps every other shard's neighborhoods hot). Cached execution
// returns byte-identical results (GetKnn is deterministic; restricted
// searches bypass the cache).

#ifndef KNNQ_SRC_ENGINE_QUERY_ENGINE_H_
#define KNNQ_SRC_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/engine/thread_pool.h"
#include "src/obs/trace.h"
#include "src/index/index_factory.h"
#include "src/lang/binder.h"
#include "src/planner/catalog.h"
#include "src/planner/optimizer.h"
#include "src/planner/physical_plan.h"

namespace knnq {

class ExecutorRegistry;   // src/engine/executor.h
class NeighborhoodCache;  // src/engine/neighborhood_cache.h
struct DmlRequest;

/// Durability hook the serving tier plugs into the engine's single
/// write path (EngineOptions::wal; src/durability implements it).
///
/// BeginCommit runs inside the writer's critical section, after the
/// engine decided the request will apply but before any data changes:
/// the sink makes the request durable (or, during startup replay,
/// hands back the replayed record's original LSN without writing) and
/// returns the log sequence number the commit carries. A not-ok result
/// aborts the DML with that status. EndCommit pairs with every
/// successful BeginCommit once the apply/publish finished and the
/// engine dropped its catalog lock; `applied` says whether the batch
/// applied cleanly (a failed batch may still have applied a prefix —
/// replaying its record reproduces exactly that prefix).
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual Result<std::uint64_t> BeginCommit(const DmlRequest& request) = 0;
  virtual void EndCommit(std::uint64_t lsn, bool applied) = 0;
};

/// Engine construction knobs — the one place engine-level tuning
/// lives. Defaults are the zero-configuration single-process engine:
/// hardware threads, no cache, unbounded pool queue, one shard per
/// relation (in-place DML under the reader/writer lock).
struct EngineOptions {
  /// Worker threads for RunBatch. 0 means hardware concurrency.
  std::size_t num_threads = 0;

  /// Byte budget (in MiB) of the engine-owned cross-query neighborhood
  /// cache; 0 disables it. Canonical home of the knob; the historical
  /// PlannerOptions::cache_mb still works as a fallback (the effective
  /// budget is the max of the two).
  std::size_t cache_mb = 0;

  /// Spatial shards per relation. 1 (default) keeps the historical
  /// single-index engine; > 1 builds every relation as a ShardedIndex
  /// and switches the engine to pinned-snapshot reads and
  /// copy-on-write DML (see the header comment). Normalized with
  /// index_options.shards: the effective count is the max of the two,
  /// written back to both.
  std::size_t shards = 1;

  /// Bound on the worker pool's queue of not-yet-running tasks; 0
  /// means unbounded (the RunBatch default). Servers set it so
  /// TrySubmitQuery refuses work under overload instead of queueing
  /// without limit.
  std::size_t pool_queue_limit = 0;

  /// Planning heuristics applied to every query.
  PlannerOptions planner;

  /// Index construction parameters for relations the engine creates
  /// itself (DML LOAD on an unknown name) and for resharding the
  /// adopted catalog's relations when shards > 1.
  IndexOptions index_options;

  /// Executor registry to dispatch through; null means
  /// ExecutorRegistry::Default(). Must outlive the engine.
  const ExecutorRegistry* registry = nullptr;

  /// Slow-query log threshold in milliseconds: any statement whose
  /// wall time reaches it is logged (obs::Logger, event "slow_query")
  /// with its canonical KNNQL, ExecStats and — when the statement was
  /// sampled for tracing — its span tree. 0 disables the log.
  double slow_query_ms = 0.0;

  /// Trace sampling: every Nth statement (queries and DML alike)
  /// carries a full span tree on EngineResult::trace. 0 disables
  /// sampling; EXPLAIN ANALYZE always traces regardless.
  std::size_t trace_sample_every = 0;

  /// Write-ahead log sink: every applying ExecuteDml commit flows
  /// through it (BeginCommit before the write, EndCommit after). Null
  /// (default) keeps the engine purely in-memory. Must outlive the
  /// engine.
  WalSink* wal = nullptr;
};

/// One engine-level DML request — the single write path every public
/// mutation entry point (Mutate, LoadRelation, KNNQL INSERT / DELETE /
/// LOAD) lowers into.
struct DmlRequest {
  enum class Kind {
    /// Apply `ops` in order to relation `relation`.
    kMutate,
    /// Replace (or create) relation `relation` with `points`.
    kLoad,
  };
  Kind kind = Kind::kMutate;
  std::string relation;
  /// kMutate: the ordered write batch.
  std::vector<MutationOp> ops;
  /// kLoad: the new contents.
  PointSet points;

  static DmlRequest MutateOps(std::string relation,
                              std::vector<MutationOp> ops) {
    return DmlRequest{.kind = Kind::kMutate,
                      .relation = std::move(relation),
                      .ops = std::move(ops),
                      .points = {}};
  }
  static DmlRequest Load(std::string relation, PointSet points) {
    return DmlRequest{.kind = Kind::kLoad,
                      .relation = std::move(relation),
                      .ops = {},
                      .points = std::move(points)};
  }
};

/// Outcome of one statement. A failed plan or execution sets `status`
/// and leaves the rest defaulted; a batch never fails as a whole.
struct EngineResult {
  Status status = Status::Ok();
  /// Valid only when status.ok() (queries only; empty for DML).
  QueryOutput output;
  /// The algorithm the optimizer chose (valid when planning succeeded).
  Algorithm algorithm = Algorithm::kTwoSelectsNaive;
  /// EXPLAIN rendering of the executed plan (queries), or a one-line
  /// mutation summary (DML).
  std::string explain;
  /// Uniform execution counters plus wall time.
  ExecStats stats;
  /// True when this slot was a DML statement (INSERT/DELETE/LOAD).
  bool is_mutation = false;
  /// DML only: rows inserted, deleted or loaded.
  std::size_t rows_affected = 0;
  /// The statement's span tree — non-null only when it was traced
  /// (EXPLAIN ANALYZE, or sampled via trace_sample_every).
  std::shared_ptr<const obs::TraceContext> trace;

  bool ok() const { return status.ok(); }
};

/// Cumulative serving counters since engine construction, for STATS
/// endpoints and monitoring. A point-in-time copy; totals merge the
/// ExecStats of every statement the engine executed (failed ones too:
/// their partial work happened).
struct EngineStatsSnapshot {
  std::uint64_t queries = 0;
  std::uint64_t query_errors = 0;
  std::uint64_t mutations = 0;
  std::uint64_t mutation_errors = 0;
  ExecStats totals;
};

/// Plans and executes queries — and applies writes — against an owned
/// catalog, under the concurrency protocol described above.
class QueryEngine {
 public:
  /// Takes ownership of `catalog`. With effective shards > 1, every
  /// adopted relation is rebuilt as a ShardedIndex (preserving its
  /// structure type) before serving starts. Relations stay mutable
  /// through ExecuteDml (and its forwarders) only; all other entry
  /// points are reads.
  explicit QueryEngine(Catalog catalog, EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Callers inspecting the catalog while writers may be active must
  /// not hold the returned reference across a mutation.
  const Catalog& catalog() const { return catalog_; }
  const EngineOptions& options() const { return options_; }
  std::size_t num_threads() const;

  /// Tasks queued on the worker pool and not yet running - the
  /// saturation gauge behind knnq_engine_pool_queue_depth.
  std::size_t pool_queue_depth() const;

  /// The effective shards-per-relation count (1 = unsharded engine).
  std::size_t shards() const { return options_.shards; }

  /// The engine's cross-query neighborhood cache; null when the
  /// effective cache_mb is 0. Exposed for stats inspection (hit rate,
  /// footprint) and explicit Clear().
  NeighborhoodCache* neighborhood_cache() const { return cache_.get(); }

  /// Plans and executes one query on the calling thread. Safe to call
  /// concurrently with DML in either mode (reader lock, or pinned
  /// snapshot in sharded mode).
  EngineResult Run(const QuerySpec& spec) const;

  /// Run with tracing forced on: the EXPLAIN ANALYZE path. Executes
  /// normally and returns the result with EngineResult::trace set to
  /// the statement's finished span tree. The front end that parsed and
  /// bound the statement may pass those pre-measured durations; nonzero
  /// values appear as "parse" / "bind" spans ahead of the live tree.
  EngineResult RunAnalyzed(const QuerySpec& spec,
                           std::uint64_t parse_ns = 0,
                           std::uint64_t bind_ns = 0) const;

  /// Executes `specs` concurrently on the worker pool. results[i] is
  /// the outcome of specs[i]; a bad query (unknown relation, k = 0)
  /// fails only its own slot.
  std::vector<EngineResult> RunBatch(
      const std::vector<QuerySpec>& specs) const;

  /// Asynchronous single-query execution, the server's dispatch
  /// primitive: plans and executes `spec` on the worker pool and
  /// invokes `done` with the outcome on the worker thread. `done` must
  /// not throw and must outlive the engine's pool (servers drain
  /// in-flight work before destroying the engine). Returns false when
  /// the pool is shutting down: the query was dropped and `done` will
  /// never run.
  bool SubmitQuery(QuerySpec spec,
                   std::function<void(EngineResult)> done) const;

  /// Like SubmitQuery, but refuses instead of waiting when the pool's
  /// bounded queue (EngineOptions::pool_queue_limit) is full or the
  /// pool is stopping: returns false and never invokes `done`. The
  /// backpressure hook admission control maps to an `overloaded` wire
  /// error.
  bool TrySubmitQuery(QuerySpec spec,
                      std::function<void(EngineResult)> done) const;

  /// Plans `spec` without executing it: the EXPLAIN path. Returns the
  /// plan's rendering.
  Result<std::string> Explain(const QuerySpec& spec) const;

  /// Binds one parsed KNNQL query against the live catalog under the
  /// reader lock, so servers can bind incrementally while writers run.
  Result<QuerySpec> BindQuery(const knnql::Query& query) const;

  /// THE write path: applies one DML request. kMutate applies the ops
  /// in order (ops before a failing one stay applied); kLoad replaces
  /// or creates the relation. In the default engine this runs in place
  /// under the writer lock; in sharded mode it clones only the
  /// affected shards and publishes copy-on-write without blocking
  /// readers. The result's status carries any failure; rows_affected
  /// and explain summarize the applied writes.
  EngineResult ExecuteDml(DmlRequest request);

  /// Applies one bound KNNQL DML statement by lowering it to a
  /// DmlRequest (kInsert/kDelete -> kMutate ops, kLoad -> LoadPoints +
  /// kLoad). The shared execution path of the CLI and the network
  /// server.
  EngineResult ExecuteDml(const knnql::DmlSpec& dml);

  /// DEPRECATED forwarder: ExecuteDml(DmlRequest::MutateOps(...)).
  EngineResult Mutate(const std::string& relation,
                      const std::vector<MutationOp>& ops);

  /// DEPRECATED forwarder: ExecuteDml(DmlRequest::Load(...)).
  EngineResult LoadRelation(const std::string& relation, PointSet points);

  /// Cumulative counters over every statement this engine executed.
  EngineStatsSnapshot StatsSnapshot() const;

  /// Parses a KNNQL script (src/lang/knnql.h) against this engine's
  /// catalog into a batch of query specs, one per statement in script
  /// order. EXPLAIN prefixes are presentation hints for interactive
  /// front ends and are ignored here. Fails with a "line:col: ..."
  /// diagnostic on the first syntax or binding error — including DML
  /// statements, which cannot be represented as specs (RunScript
  /// executes those).
  Result<std::vector<QuerySpec>> ParseBatch(std::string_view text) const;

  /// Executes a .knnql script that may interleave DML with queries.
  /// Statements run in script order; maximal runs of consecutive
  /// queries execute concurrently on the worker pool (a batch), DML
  /// applies between batches. results[i] is statement i's outcome;
  /// per-statement failures stay isolated to their slot. The whole
  /// call fails only when the script does not parse or a query does
  /// not bind against the catalog state at its batch's start
  /// (mutations applied by earlier statements persist).
  Result<std::vector<EngineResult>> RunScript(std::string_view text);

 private:
  /// Serializes writers of ONE relation in sharded mode and owns its
  /// auto-id sequence (next_id mirrors the catalog's; reading it under
  /// `mu` avoids re-locking the catalog per op).
  struct RelationWriteState {
    std::mutex mu;
    /// Guarded by `mu`. Valid only after `initialized`.
    PointId next_id = 0;
    bool initialized = false;
  };

  /// Plan + execute without taking the reader lock (callers hold it).
  EngineResult RunLocked(const QuerySpec& spec) const;

  /// The shared tail of Run/RunAnalyzed: installs `trace` (may be
  /// null) on this thread, runs, finishes the trace, records stats and
  /// feeds the slow-query log.
  EngineResult RunWithTrace(const QuerySpec& spec,
                            std::shared_ptr<obs::TraceContext> trace) const;

  /// Non-null every trace_sample_every-th call; null otherwise.
  std::shared_ptr<obs::TraceContext> SampleTrace() const;

  /// Emits the slow-query log line when `result` crossed the
  /// threshold. `text` is the statement's canonical KNNQL.
  void MaybeLogSlow(const std::string& text,
                    const EngineResult& result) const;

  /// Executes an optimized plan into `result` — the shared tail of
  /// RunLocked and RunPinned.
  void ExecutePlan(const PhysicalPlan& plan, EngineResult* result) const;

  /// Sharded-mode read: pin every relation's index under a brief
  /// shared lock, then plan + execute lock-free against the pins.
  EngineResult RunPinned(const QuerySpec& spec) const;

  /// The two DML engines behind ExecuteDml.
  EngineResult ExecuteDmlLegacy(DmlRequest& request);
  EngineResult ExecuteDmlCow(DmlRequest& request);
  EngineResult MutateCow(DmlRequest& request);
  EngineResult LoadCow(DmlRequest& request);

  /// The per-relation writer state, created on first write.
  RelationWriteState& WriteStateFor(const std::string& relation);

  /// Folds one finished statement into the cumulative counters.
  void RecordQuery(const EngineResult& result) const;
  void RecordMutation(const EngineResult& result) const;

  Catalog catalog_;
  EngineOptions options_;
  /// True when the engine runs the sharded copy-on-write protocol
  /// (effective shards > 1).
  bool cow_ = false;
  /// Shared across all workers; internally synchronized.
  std::unique_ptr<NeighborhoodCache> cache_;
  /// Default mode: queries shared, mutations exclusive. Sharded mode:
  /// shared while pinning snapshots, exclusive only around the
  /// pointer-swap commit.
  mutable std::shared_mutex catalog_mu_;
  /// Sharded mode: one writer lane per relation.
  std::mutex write_states_mu_;
  std::map<std::string, std::unique_ptr<RelationWriteState>> write_states_;
  /// Cumulative serving counters (StatsSnapshot); separate lock so the
  /// hot path never touches catalog_mu_ for bookkeeping.
  mutable std::mutex stats_mu_;
  mutable EngineStatsSnapshot cumulative_;
  /// Statement counter driving trace_sample_every.
  mutable std::atomic<std::uint64_t> sample_counter_{0};
  /// Declared LAST: destruction joins the workers first, so an async
  /// SubmitQuery task still in flight can never touch an
  /// already-destroyed mutex, cache or catalog.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_QUERY_ENGINE_H_
