#include "src/engine/neighborhood_cache.h"

#include <bit>
#include <utility>

namespace knnq {

namespace {

/// splitmix64 finalizer: cheap, well-distributed mixing for the key's
/// four words.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t RoundUpPow2(std::size_t n) {
  if (n <= 1) return 1;
  return std::size_t{1} << std::bit_width(n - 1);
}

}  // namespace

NeighborhoodCache::Key NeighborhoodCache::MakeKey(
    const SpatialIndex* relation, const Point& query, std::size_t k) {
  return Key{relation->instance_id(), std::bit_cast<std::uint64_t>(query.x),
             std::bit_cast<std::uint64_t>(query.y), k};
}

std::size_t NeighborhoodCache::KeyHash::operator()(const Key& key) const {
  std::uint64_t h = Mix(key.relation_id);
  h = Mix(h ^ key.x_bits);
  h = Mix(h ^ key.y_bits);
  h = Mix(h ^ static_cast<std::uint64_t>(key.k));
  return static_cast<std::size_t>(h);
}

NeighborhoodCache::NeighborhoodCache(NeighborhoodCacheOptions options)
    : capacity_bytes_(options.capacity_bytes),
      shard_capacity_(options.capacity_bytes /
                      RoundUpPow2(options.num_shards)),
      shards_(RoundUpPow2(options.num_shards)) {
  for (auto& shard : shards_) shard = std::make_unique<Shard>();
}

std::size_t NeighborhoodCache::EntryCost(const Neighborhood& neighborhood) {
  // List node + hash node bookkeeping, approximated by one flat
  // constant; exactness is not required for a byte *budget*.
  constexpr std::size_t kNodeOverhead = 64;
  return sizeof(Entry) + kNodeOverhead +
         neighborhood.capacity() * sizeof(Neighbor);
}

NeighborhoodCache::Shard& NeighborhoodCache::ShardFor(const Key& key) {
  // shards_.size() is a power of two; use the hash's high bits so the
  // shard choice stays independent of the map's bucket choice.
  const std::size_t h = KeyHash{}(key);
  return *shards_[(h >> 16) & (shards_.size() - 1)];
}

bool NeighborhoodCache::Lookup(const SpatialIndex* relation,
                               const Point& query, std::size_t k,
                               Neighborhood* out) {
  const Key key = MakeKey(relation, query, k);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->neighborhood;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void NeighborhoodCache::Insert(const SpatialIndex* relation,
                               const Point& query, std::size_t k,
                               const Neighborhood& neighborhood) {
  const Key key = MakeKey(relation, query, k);
  const std::size_t cost = EntryCost(neighborhood);
  if (cost > shard_capacity_) return;  // Could never fit; drop.

  Shard& shard = ShardFor(key);
  std::size_t evicted = 0;
  std::size_t evicted_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // A concurrent miss raced us here; the values are identical
      // (GetKnn is deterministic), so just refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    while (shard.bytes + cost > shard_capacity_ && !shard.lru.empty()) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      evicted_bytes += victim.bytes;
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
    }
    shard.lru.push_front(Entry{key, neighborhood, cost});
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += cost;
  }
  bytes_.fetch_add(cost, std::memory_order_relaxed);
  if (evicted_bytes > 0) {
    bytes_.fetch_sub(evicted_bytes, std::memory_order_relaxed);
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

void NeighborhoodCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

void NeighborhoodCache::InvalidateRelation(const SpatialIndex* relation) {
  DropEntries(relation->instance_id());
}

void NeighborhoodCache::RetireRelation(std::uint64_t relation_id) {
  {
    std::lock_guard<std::mutex> lock(relation_generations_mu_);
    relation_generations_.erase(relation_id);
  }
  DropEntries(relation_id);
}

void NeighborhoodCache::DropEntries(std::uint64_t relation_id) {
  std::uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.relation_id != relation_id) {
        ++it;
        continue;
      }
      shard->bytes -= it->bytes;
      bytes_.fetch_sub(it->bytes, std::memory_order_relaxed);
      shard->map.erase(it->key);
      it = shard->lru.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) {
    invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  }
}

void NeighborhoodCache::InvalidateIfGenerationChanged(
    const SpatialIndex* relation, std::uint64_t generation) {
  {
    std::lock_guard<std::mutex> lock(relation_generations_mu_);
    // A first observation still invalidates: entries cached before the
    // relation was ever reported here date from an older generation.
    auto [it, inserted] =
        relation_generations_.try_emplace(relation->instance_id(),
                                          generation);
    if (!inserted) {
      if (it->second == generation) return;
      it->second = generation;
    }
  }
  InvalidateRelation(relation);
}

void NeighborhoodCache::InvalidateIfGenerationChanged(
    std::uint64_t generation) {
  std::uint64_t seen = generation_.load(std::memory_order_acquire);
  if (seen == generation) return;
  // First thread to observe the change clears; racing observers of the
  // same generation skip (Clear is idempotent anyway).
  if (generation_.compare_exchange_strong(seen, generation,
                                          std::memory_order_acq_rel)) {
    Clear();
  }
}

NeighborhoodCacheStats NeighborhoodCache::GetStats() const {
  NeighborhoodCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->map.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

namespace {

/// ShardMemo over the shared cache: per-shard-child entries, keyed by
/// the child's instance id like any other relation.
class CacheShardMemo final : public ShardMemo {
 public:
  explicit CacheShardMemo(NeighborhoodCache* cache) : cache_(cache) {}

  bool Lookup(const SpatialIndex& shard, const Point& query, std::size_t k,
              Neighborhood* out) override {
    return cache_->Lookup(&shard, query, k, out);
  }

  void Store(const SpatialIndex& shard, const Point& query, std::size_t k,
             const Neighborhood& neighborhood) override {
    cache_->Insert(&shard, query, k, neighborhood);
  }

 private:
  NeighborhoodCache* cache_;
};

}  // namespace

Neighborhood CachingKnnSearcher::GetKnn(const Point& query, std::size_t k) {
  if (cache_ == nullptr) return searcher_.GetKnn(query, k);
  if (searcher_.sharded()) {
    // Per-shard caching: the scatter-gather search does its own
    // lookups/stores (and hit/miss accounting) through the memo.
    CacheShardMemo memo(cache_);
    return searcher_.GetKnn(query, k, &memo);
  }
  Neighborhood neighborhood;
  if (cache_->Lookup(&searcher_.index(), query, k, &neighborhood)) {
    ++searcher_.stats().cache_hits;
    return neighborhood;
  }
  ++searcher_.stats().cache_misses;
  neighborhood = searcher_.GetKnn(query, k);
  cache_->Insert(&searcher_.index(), query, k, neighborhood);
  return neighborhood;
}

}  // namespace knnq
