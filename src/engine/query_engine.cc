#include "src/engine/query_engine.h"

#include <latch>
#include <mutex>
#include <thread>
#include <utility>
#include <variant>

#include "src/common/stopwatch.h"
#include "src/data/dataset_io.h"
#include "src/engine/executor.h"
#include "src/engine/neighborhood_cache.h"
#include "src/lang/knnql.h"
#include "src/lang/parser.h"

namespace knnq {

namespace {

std::size_t ResolveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::unique_ptr<NeighborhoodCache> MakeCache(const PlannerOptions& planner) {
  if (planner.cache_mb == 0) return nullptr;
  NeighborhoodCacheOptions options;
  options.capacity_bytes = planner.cache_mb << 20;
  return std::make_unique<NeighborhoodCache>(options);
}

/// The one-line EngineResult::explain of a DML statement.
std::string MutationSummary(const char* verb, const std::string& relation,
                            const MutationOutcome& outcome) {
  return std::string("Mutation: ") + verb + " " + relation + " (" +
         std::to_string(outcome.rows_affected) + " rows, generation " +
         std::to_string(outcome.generation) + ")\n";
}

}  // namespace

QueryEngine::QueryEngine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      cache_(MakeCache(options.planner)),
      pool_(std::make_unique<ThreadPool>(ThreadPoolOptions{
          .num_threads = ResolveThreads(options.num_threads),
          .max_queue = options.pool_queue_limit})) {
  if (cache_ != nullptr) {
    // Adopt the catalog's generation as the cache's baseline; every
    // later change flows through Mutate/LoadRelation, which invalidate
    // per relation.
    cache_->InvalidateIfGenerationChanged(catalog_.generation());
  }
}

QueryEngine::~QueryEngine() = default;

std::size_t QueryEngine::num_threads() const { return pool_->size(); }

EngineResult QueryEngine::Run(const QuerySpec& spec) const {
  EngineResult result;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    result = RunLocked(spec);
  }
  RecordQuery(result);
  return result;
}

void QueryEngine::RecordQuery(const EngineResult& result) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++cumulative_.queries;
  if (!result.ok()) ++cumulative_.query_errors;
  cumulative_.totals.Merge(result.stats);
}

void QueryEngine::RecordMutation(const EngineResult& result) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++cumulative_.mutations;
  if (!result.ok()) ++cumulative_.mutation_errors;
  cumulative_.totals.Merge(result.stats);
}

EngineStatsSnapshot QueryEngine::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return cumulative_;
}

bool QueryEngine::SubmitQuery(QuerySpec spec,
                              std::function<void(EngineResult)> done) const {
  return pool_->Submit(
      [this, spec = std::move(spec), done = std::move(done)]() mutable {
        done(Run(spec));
      });
}

bool QueryEngine::TrySubmitQuery(
    QuerySpec spec, std::function<void(EngineResult)> done) const {
  return pool_->TrySubmit(
      [this, spec = std::move(spec), done = std::move(done)]() mutable {
        done(Run(spec));
      });
}

Result<std::string> QueryEngine::Explain(const QuerySpec& spec) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  const auto plan = Optimize(catalog_, spec, options_.planner);
  if (!plan.ok()) return plan.status();
  return plan->Explain();
}

Result<QuerySpec> QueryEngine::BindQuery(const knnql::Query& query) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return knnql::Bind(query, &catalog_);
}

EngineResult QueryEngine::ExecuteDml(const knnql::DmlSpec& dml) {
  switch (dml.kind) {
    case knnql::DmlSpec::Kind::kInsert: {
      std::vector<MutationOp> ops;
      ops.reserve(dml.rows.size());
      for (const Point& row : dml.rows) {
        ops.push_back(MutationOp::Insert(row.x, row.y));
      }
      return Mutate(dml.relation, ops);
    }
    case knnql::DmlSpec::Kind::kDelete:
      return Mutate(dml.relation, {MutationOp::Erase(dml.id)});
    case knnql::DmlSpec::Kind::kLoad: {
      auto points = LoadPoints(dml.path);
      if (!points.ok()) {
        EngineResult result;
        result.is_mutation = true;
        result.status = points.status();
        RecordMutation(result);
        return result;
      }
      return LoadRelation(dml.relation, std::move(points.value()));
    }
  }
  EngineResult result;
  result.status = Status::Internal("unknown DML kind");
  return result;
}

EngineResult QueryEngine::RunLocked(const QuerySpec& spec) const {
  EngineResult result;
  const auto plan = Optimize(catalog_, spec, options_.planner);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  result.algorithm = plan->algorithm();
  const ExecutorRegistry& registry = options_.registry != nullptr
                                         ? *options_.registry
                                         : ExecutorRegistry::Default();
  auto output = plan->Execute(registry, &result.stats, cache_.get());
  if (cache_ != nullptr) {
    result.stats.cache_bytes = cache_->size_bytes();
  }
  // The plan was built either way; keep its EXPLAIN for debugging
  // failed executions too.
  result.explain = plan->Explain(&result.stats);
  if (!output.ok()) {
    result.status = output.status();
    return result;
  }
  result.output = std::move(output.value());
  return result;
}

std::vector<EngineResult> QueryEngine::RunBatch(
    const std::vector<QuerySpec>& specs) const {
  std::vector<EngineResult> results(specs.size());
  if (specs.empty()) return results;

  // One task per query; slots keep submission order and isolate
  // failures. Each task takes its own reader lock, so a batch
  // interleaves with writers at query granularity while the queries
  // themselves stay lock-free among each other.
  std::latch done(static_cast<std::ptrdiff_t>(specs.size()));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool submitted = pool_->Submit([this, &specs, &results, &done, i] {
      results[i] = Run(specs[i]);
      done.count_down();
    });
    if (!submitted) {
      // The pool is stopping; the task will never run, so its slot
      // fails and its latch count settles here instead of deadlocking
      // the batch.
      results[i].status =
          Status::Unavailable("engine pool is shutting down");
      done.count_down();
    }
  }
  done.wait();
  return results;
}

EngineResult QueryEngine::Mutate(const std::string& relation,
                                 const std::vector<MutationOp>& ops) {
  EngineResult result;
  result.is_mutation = true;
  Stopwatch timer;
  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    auto outcome = catalog_.Mutate(relation, ops);
    if (!outcome.ok()) {
      // A failed batch may still have applied a prefix; re-sync the
      // cache with whatever generation the relation is at now.
      if (cache_ != nullptr) {
        if (auto rel = catalog_.Get(relation); rel.ok()) {
          cache_->InvalidateIfGenerationChanged((*rel)->index.get(),
                                                (*rel)->generation);
        }
      }
      result.status = outcome.status();
      RecordMutation(result);
      return result;
    }
    if (cache_ != nullptr) {
      cache_->InvalidateIfGenerationChanged(outcome->index,
                                            outcome->generation);
    }
    result.rows_affected = outcome->rows_affected;
    result.explain = MutationSummary("MUTATE", relation, *outcome);
  }
  result.stats.wall_seconds = timer.ElapsedSeconds();
  RecordMutation(result);
  return result;
}

EngineResult QueryEngine::LoadRelation(const std::string& relation,
                                       PointSet points) {
  EngineResult result;
  result.is_mutation = true;
  Stopwatch timer;
  {
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    auto outcome = catalog_.LoadRelation(relation, std::move(points),
                                         options_.index_options);
    if (!outcome.ok()) {
      result.status = outcome.status();
      RecordMutation(result);
      return result;
    }
    if (cache_ != nullptr) {
      cache_->InvalidateIfGenerationChanged(outcome->index,
                                            outcome->generation);
    }
    result.rows_affected = outcome->rows_affected;
    result.explain = MutationSummary("LOAD", relation, *outcome);
  }
  result.stats.wall_seconds = timer.ElapsedSeconds();
  RecordMutation(result);
  return result;
}

Result<std::vector<QuerySpec>> QueryEngine::ParseBatch(
    std::string_view text) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto statements = knnql::ParseBoundScript(text, &catalog_);
  if (!statements.ok()) return statements.status();
  std::vector<QuerySpec> specs;
  specs.reserve(statements->size());
  for (knnql::BoundStatement& statement : *statements) {
    auto* spec = std::get_if<QuerySpec>(&statement.op);
    if (spec == nullptr) {
      return knnql::ErrorAt(
          statement.pos,
          "DML statements cannot run in a query batch; use RunScript");
    }
    specs.push_back(std::move(*spec));
  }
  return specs;
}

Result<std::vector<EngineResult>> QueryEngine::RunScript(
    std::string_view text) {
  auto script = knnql::ParseScript(text);
  if (!script.ok()) return script.status();
  std::vector<EngineResult> results(script->size());

  // Statements execute in script order, but maximal runs of
  // consecutive queries become one concurrent batch. Queries bind
  // right before their batch runs, so they see every mutation earlier
  // statements applied.
  std::vector<std::size_t> pending;
  const auto flush = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    std::vector<QuerySpec> specs;
    specs.reserve(pending.size());
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      for (const std::size_t slot : pending) {
        auto spec = knnql::Bind(
            std::get<knnql::Query>((*script)[slot].body), &catalog_);
        if (!spec.ok()) return spec.status();
        specs.push_back(std::move(spec.value()));
      }
    }
    std::vector<EngineResult> batch = RunBatch(specs);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      results[pending[i]] = std::move(batch[i]);
    }
    pending.clear();
    return Status::Ok();
  };

  for (std::size_t i = 0; i < script->size(); ++i) {
    const knnql::Statement& statement = (*script)[i];
    if (std::holds_alternative<knnql::Query>(statement.body)) {
      pending.push_back(i);
      continue;
    }
    if (Status s = flush(); !s.ok()) return s;
    // Existence is checked by Mutate/LoadRelation under the writer
    // lock, so the bind is shape-only (null catalog) and cannot fail
    // for a statement the parser accepted.
    auto dml = knnql::BindDml(statement.body, /*catalog=*/nullptr);
    if (!dml.ok()) {
      results[i].is_mutation = true;
      results[i].status = dml.status();
      continue;
    }
    results[i] = ExecuteDml(*dml);
  }
  if (Status s = flush(); !s.ok()) return s;
  return results;
}

}  // namespace knnq
