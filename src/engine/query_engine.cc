#include "src/engine/query_engine.h"

#include <latch>
#include <thread>
#include <utility>

#include "src/engine/executor.h"
#include "src/engine/neighborhood_cache.h"
#include "src/lang/knnql.h"

namespace knnq {

namespace {

std::size_t ResolveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::unique_ptr<NeighborhoodCache> MakeCache(const PlannerOptions& planner) {
  if (planner.cache_mb == 0) return nullptr;
  NeighborhoodCacheOptions options;
  options.capacity_bytes = planner.cache_mb << 20;
  return std::make_unique<NeighborhoodCache>(options);
}

}  // namespace

QueryEngine::QueryEngine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(
          ResolveThreads(options.num_threads))),
      cache_(MakeCache(options.planner)) {
  if (cache_ != nullptr) {
    // Adopt the catalog's generation as the cache's baseline. The
    // engine's catalog is owned by value and never mutated afterwards,
    // so construction is the only point where the two can diverge;
    // InvalidateIfGenerationChanged stays available for callers
    // embedding the cache alongside a catalog they keep extending.
    cache_->InvalidateIfGenerationChanged(catalog_.generation());
  }
}

QueryEngine::~QueryEngine() = default;

std::size_t QueryEngine::num_threads() const { return pool_->size(); }

EngineResult QueryEngine::Run(const QuerySpec& spec) const {
  EngineResult result;
  const auto plan = Optimize(catalog_, spec, options_.planner);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  result.algorithm = plan->algorithm();
  const ExecutorRegistry& registry = options_.registry != nullptr
                                         ? *options_.registry
                                         : ExecutorRegistry::Default();
  auto output = plan->Execute(registry, &result.stats, cache_.get());
  if (cache_ != nullptr) {
    result.stats.cache_bytes = cache_->size_bytes();
  }
  // The plan was built either way; keep its EXPLAIN for debugging
  // failed executions too.
  result.explain = plan->Explain(&result.stats);
  if (!output.ok()) {
    result.status = output.status();
    return result;
  }
  result.output = std::move(output.value());
  return result;
}

std::vector<EngineResult> QueryEngine::RunBatch(
    const std::vector<QuerySpec>& specs) const {
  std::vector<EngineResult> results(specs.size());
  if (specs.empty()) return results;

  // One task per query; slots keep submission order and isolate
  // failures. The latch is the only cross-thread synchronization -
  // indexes are immutable and each task touches only its own slot.
  std::latch done(static_cast<std::ptrdiff_t>(specs.size()));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool_->Submit([this, &specs, &results, &done, i] {
      results[i] = Run(specs[i]);
      done.count_down();
    });
  }
  done.wait();
  return results;
}

Result<std::vector<QuerySpec>> QueryEngine::ParseBatch(
    std::string_view text) const {
  auto statements = knnql::ParseBoundScript(text, &catalog_);
  if (!statements.ok()) return statements.status();
  std::vector<QuerySpec> specs;
  specs.reserve(statements->size());
  for (knnql::BoundStatement& statement : *statements) {
    specs.push_back(std::move(statement.spec));
  }
  return specs;
}

Result<std::vector<EngineResult>> QueryEngine::RunScript(
    std::string_view text) const {
  auto specs = ParseBatch(text);
  if (!specs.ok()) return specs.status();
  return RunBatch(*specs);
}

}  // namespace knnq
