#include "src/engine/query_engine.h"

#include <algorithm>
#include <latch>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <variant>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/data/dataset_io.h"
#include "src/engine/executor.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/sharded_index.h"
#include "src/lang/knnql.h"
#include "src/lang/parser.h"
#include "src/lang/unparser.h"
#include "src/obs/log.h"

namespace knnq {

namespace {

std::size_t ResolveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Folds the deprecated knob homes into the canonical EngineOptions
/// fields, so the rest of the engine reads exactly one place:
/// cache_mb absorbs PlannerOptions::cache_mb, shards is reconciled
/// with IndexOptions::shards (both written back, max wins).
EngineOptions NormalizeOptions(EngineOptions options) {
  options.cache_mb = std::max(options.cache_mb, options.planner.cache_mb);
  options.planner.cache_mb = options.cache_mb;
  options.shards = std::max(
      {options.shards, options.index_options.shards, std::size_t{1}});
  options.index_options.shards = options.shards;
  return options;
}

std::unique_ptr<NeighborhoodCache> MakeCache(const EngineOptions& options) {
  if (options.cache_mb == 0) return nullptr;
  NeighborhoodCacheOptions cache_options;
  cache_options.capacity_bytes = options.cache_mb << 20;
  return std::make_unique<NeighborhoodCache>(cache_options);
}

/// The one-line EngineResult::explain of a DML statement.
std::string MutationSummary(const char* verb, const std::string& relation,
                            const MutationOutcome& outcome) {
  return std::string("Mutation: ") + verb + " " + relation + " (" +
         std::to_string(outcome.rows_affected) + " rows, generation " +
         std::to_string(outcome.generation) + ")\n";
}

PointId NextIdAfter(const PointSet& points) {
  PointId next = 0;
  for (const Point& p : points) next = std::max(next, p.id + 1);
  return next;
}

}  // namespace

QueryEngine::QueryEngine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(NormalizeOptions(options)),
      cow_(options_.shards > 1),
      cache_(MakeCache(options_)),
      pool_(std::make_unique<ThreadPool>(ThreadPoolOptions{
          .num_threads = ResolveThreads(options_.num_threads),
          .max_queue = options_.pool_queue_limit})) {
  if (cow_) {
    // Reshard every adopted relation that is not already sharded,
    // preserving its structure type. No readers or writers exist yet,
    // so this can rebuild in place.
    for (const std::string& name : catalog_.Names()) {
      const Relation& rel = **catalog_.Get(name);
      if (dynamic_cast<const ShardedIndex*>(rel.index.get()) != nullptr) {
        continue;
      }
      IndexOptions shard_options = options_.index_options;
      shard_options.type = rel.index->type();
      auto built = ShardedIndex::Build(rel.index->points(), shard_options);
      // The points already passed index construction once; resharding
      // the same data cannot fail.
      KNNQ_CHECK_MSG(built.ok(), "resharding an adopted relation failed");
      auto replaced = catalog_.ReplaceIndex(name, std::move(built.value()),
                                            rel.next_id, 0);
      KNNQ_CHECK_MSG(replaced.ok(), "republishing a resharded relation");
    }
  }
  if (cache_ != nullptr) {
    // Adopt the catalog's generation as the cache's baseline; every
    // later change flows through ExecuteDml, which invalidates per
    // relation (or per shard child in sharded mode).
    cache_->InvalidateIfGenerationChanged(catalog_.generation());
  }
}

QueryEngine::~QueryEngine() = default;

std::size_t QueryEngine::num_threads() const { return pool_->size(); }

std::size_t QueryEngine::pool_queue_depth() const {
  return pool_->queue_depth();
}

EngineResult QueryEngine::Run(const QuerySpec& spec) const {
  return RunWithTrace(spec, SampleTrace());
}

EngineResult QueryEngine::RunAnalyzed(const QuerySpec& spec,
                                      std::uint64_t parse_ns,
                                      std::uint64_t bind_ns) const {
  auto trace = std::make_shared<obs::TraceContext>();
  if (parse_ns != 0) trace->AttachMeasured("parse", parse_ns);
  if (bind_ns != 0) trace->AttachMeasured("bind", bind_ns);
  return RunWithTrace(spec, std::move(trace));
}

std::shared_ptr<obs::TraceContext> QueryEngine::SampleTrace() const {
  const std::size_t every = options_.trace_sample_every;
  if (every == 0) return nullptr;
  const std::uint64_t n =
      sample_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return nullptr;
  return std::make_shared<obs::TraceContext>();
}

EngineResult QueryEngine::RunWithTrace(
    const QuerySpec& spec, std::shared_ptr<obs::TraceContext> trace) const {
  EngineResult result;
  {
    // Install the trace (possibly null — every ScopedSpan below is
    // then a no-op) for exactly the plan+execute window, on whichever
    // thread this query runs.
    obs::TraceScope scope(trace.get());
    if (cow_) {
      result = RunPinned(spec);
    } else {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      result = RunLocked(spec);
    }
  }
  if (trace != nullptr) {
    trace->Finish();
    result.trace = std::move(trace);
  }
  RecordQuery(result);
  if (options_.slow_query_ms > 0 &&
      result.stats.wall_seconds * 1e3 >= options_.slow_query_ms) {
    MaybeLogSlow(knnql::Unparse(spec), result);
  }
  return result;
}

void QueryEngine::MaybeLogSlow(const std::string& text,
                               const EngineResult& result) const {
  std::vector<obs::LogField> fields;
  fields.push_back(obs::LogField::Str("query", text));
  fields.push_back(
      obs::LogField::Num("wall_ms", result.stats.wall_seconds * 1e3));
  fields.push_back(obs::LogField::Raw("stats", result.stats.ToJson()));
  if (result.trace != nullptr) {
    fields.push_back(
        obs::LogField::Raw("trace", obs::ToJson(result.trace->root())));
  }
  obs::Logger::Global().Log(obs::LogLevel::kWarn, "slow_query", fields);
}

void QueryEngine::RecordQuery(const EngineResult& result) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++cumulative_.queries;
  if (!result.ok()) ++cumulative_.query_errors;
  cumulative_.totals.Merge(result.stats);
}

void QueryEngine::RecordMutation(const EngineResult& result) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++cumulative_.mutations;
  if (!result.ok()) ++cumulative_.mutation_errors;
  cumulative_.totals.Merge(result.stats);
}

EngineStatsSnapshot QueryEngine::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return cumulative_;
}

bool QueryEngine::SubmitQuery(QuerySpec spec,
                              std::function<void(EngineResult)> done) const {
  return pool_->Submit(
      [this, spec = std::move(spec), done = std::move(done)]() mutable {
        done(Run(spec));
      });
}

bool QueryEngine::TrySubmitQuery(
    QuerySpec spec, std::function<void(EngineResult)> done) const {
  return pool_->TrySubmit(
      [this, spec = std::move(spec), done = std::move(done)]() mutable {
        done(Run(spec));
      });
}

Result<std::string> QueryEngine::Explain(const QuerySpec& spec) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  const auto plan = Optimize(catalog_, spec, options_.planner);
  if (!plan.ok()) return plan.status();
  return plan->Explain();
}

Result<QuerySpec> QueryEngine::BindQuery(const knnql::Query& query) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return knnql::Bind(query, &catalog_);
}

void QueryEngine::ExecutePlan(const PhysicalPlan& plan,
                              EngineResult* result) const {
  obs::ScopedSpan span("execute");
  result->algorithm = plan.algorithm();
  const ExecutorRegistry& registry = options_.registry != nullptr
                                         ? *options_.registry
                                         : ExecutorRegistry::Default();
  auto output = plan.Execute(registry, &result->stats, cache_.get());
  if (cache_ != nullptr) {
    result->stats.cache_bytes = cache_->size_bytes();
  }
  // The plan was built either way; keep its EXPLAIN for debugging
  // failed executions too.
  result->explain = plan.Explain(&result->stats);
  if (!output.ok()) {
    result->status = output.status();
    return;
  }
  result->output = std::move(output.value());
}

EngineResult QueryEngine::RunLocked(const QuerySpec& spec) const {
  EngineResult result;
  std::optional<Result<PhysicalPlan>> plan;
  {
    obs::ScopedSpan span("plan");
    plan.emplace(Optimize(catalog_, spec, options_.planner));
  }
  if (!plan->ok()) {
    result.status = plan->status();
    return result;
  }
  ExecutePlan(**plan, &result);
  return result;
}

EngineResult QueryEngine::RunPinned(const QuerySpec& spec) const {
  EngineResult result;
  // Plans hold raw SpatialIndex pointers into the catalog; pin every
  // relation's current index so a concurrent copy-on-write commit
  // cannot destroy one while this query executes without the lock.
  std::vector<std::shared_ptr<SpatialIndex>> pinned;
  std::optional<Result<PhysicalPlan>> plan;
  {
    obs::ScopedSpan span("plan");
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const std::string& name : catalog_.Names()) {
      if (auto rel = catalog_.Get(name); rel.ok()) {
        pinned.push_back((*rel)->index);
      }
    }
    plan.emplace(Optimize(catalog_, spec, options_.planner));
  }
  if (!plan->ok()) {
    result.status = plan->status();
    return result;
  }
  ExecutePlan(**plan, &result);
  return result;
}

std::vector<EngineResult> QueryEngine::RunBatch(
    const std::vector<QuerySpec>& specs) const {
  std::vector<EngineResult> results(specs.size());
  if (specs.empty()) return results;

  // One task per query; slots keep submission order and isolate
  // failures. Each task pins its own snapshot (or takes its own reader
  // lock), so a batch interleaves with writers at query granularity
  // while the queries themselves stay lock-free among each other.
  std::latch done(static_cast<std::ptrdiff_t>(specs.size()));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool submitted = pool_->Submit([this, &specs, &results, &done, i] {
      results[i] = Run(specs[i]);
      done.count_down();
    });
    if (!submitted) {
      // The pool is stopping; the task will never run, so its slot
      // fails and its latch count settles here instead of deadlocking
      // the batch.
      results[i].status =
          Status::Unavailable("engine pool is shutting down");
      done.count_down();
    }
  }
  done.wait();
  return results;
}

EngineResult QueryEngine::ExecuteDml(DmlRequest request) {
  return cow_ ? ExecuteDmlCow(request) : ExecuteDmlLegacy(request);
}

EngineResult QueryEngine::ExecuteDml(const knnql::DmlSpec& dml) {
  std::shared_ptr<obs::TraceContext> trace = SampleTrace();
  EngineResult result;
  {
    obs::TraceScope scope(trace.get());
    result = [&]() -> EngineResult {
      switch (dml.kind) {
        case knnql::DmlSpec::Kind::kInsert: {
          std::vector<MutationOp> ops;
          ops.reserve(dml.rows.size());
          for (const Point& row : dml.rows) {
            ops.push_back(MutationOp::Insert(row.x, row.y));
          }
          return ExecuteDml(
              DmlRequest::MutateOps(dml.relation, std::move(ops)));
        }
        case knnql::DmlSpec::Kind::kDelete:
          return ExecuteDml(DmlRequest::MutateOps(
              dml.relation, {MutationOp::Erase(dml.id)}));
        case knnql::DmlSpec::Kind::kLoad: {
          obs::ScopedSpan span("load_points");
          auto points = LoadPoints(dml.path);
          span.Count("points_loaded",
                     points.ok() ? points.value().size() : 0);
          if (!points.ok()) {
            EngineResult failed;
            failed.is_mutation = true;
            failed.status = points.status();
            RecordMutation(failed);
            return failed;
          }
          return ExecuteDml(
              DmlRequest::Load(dml.relation, std::move(points.value())));
        }
      }
      EngineResult unknown;
      unknown.status = Status::Internal("unknown DML kind");
      return unknown;
    }();
  }
  if (trace != nullptr) {
    trace->Finish();
    result.trace = std::move(trace);
  }
  if (options_.slow_query_ms > 0 &&
      result.stats.wall_seconds * 1e3 >= options_.slow_query_ms) {
    MaybeLogSlow(knnql::Unparse(dml), result);
  }
  return result;
}

EngineResult QueryEngine::Mutate(const std::string& relation,
                                 const std::vector<MutationOp>& ops) {
  return ExecuteDml(DmlRequest::MutateOps(relation, ops));
}

EngineResult QueryEngine::LoadRelation(const std::string& relation,
                                       PointSet points) {
  return ExecuteDml(DmlRequest::Load(relation, std::move(points)));
}

EngineResult QueryEngine::ExecuteDmlLegacy(DmlRequest& request) {
  EngineResult result;
  result.is_mutation = true;
  Stopwatch timer;
  std::uint64_t lsn = 0;
  bool logged = false;
  {
    obs::ScopedSpan span("dml_apply");
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    // Log-before-apply, but only requests that will actually touch
    // data: a mutate against an unknown relation fails below without
    // changing anything, so it earns no WAL record.
    if (options_.wal != nullptr &&
        (request.kind == DmlRequest::Kind::kLoad ||
         catalog_.Has(request.relation))) {
      obs::ScopedSpan wal_span("wal_append");
      auto assigned = options_.wal->BeginCommit(request);
      if (!assigned.ok()) {
        result.status = assigned.status();
        RecordMutation(result);
        return result;
      }
      lsn = *assigned;
      logged = true;
    }
    auto outcome =
        request.kind == DmlRequest::Kind::kMutate
            ? catalog_.Mutate(request.relation, request.ops)
            : catalog_.LoadRelation(request.relation,
                                    std::move(request.points),
                                    options_.index_options);
    if (logged) catalog_.StampLsn(request.relation, lsn);
    if (!outcome.ok()) {
      // A failed mutate batch may still have applied a prefix; re-sync
      // the cache with whatever generation the relation is at now.
      if (cache_ != nullptr && request.kind == DmlRequest::Kind::kMutate) {
        if (auto rel = catalog_.Get(request.relation); rel.ok()) {
          cache_->InvalidateIfGenerationChanged((*rel)->index.get(),
                                                (*rel)->generation);
        }
      }
      result.status = outcome.status();
      lock.unlock();
      if (logged) options_.wal->EndCommit(lsn, /*applied=*/false);
      RecordMutation(result);
      return result;
    }
    if (cache_ != nullptr) {
      cache_->InvalidateIfGenerationChanged(outcome->index,
                                            outcome->generation);
    }
    result.rows_affected = outcome->rows_affected;
    result.explain = MutationSummary(
        request.kind == DmlRequest::Kind::kMutate ? "MUTATE" : "LOAD",
        request.relation, *outcome);
  }
  // Outside the catalog lock: EndCommit may decide to cut a snapshot,
  // which quiesces commits and reads the catalog itself.
  if (logged) options_.wal->EndCommit(lsn, /*applied=*/true);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  RecordMutation(result);
  return result;
}

EngineResult QueryEngine::ExecuteDmlCow(DmlRequest& request) {
  if (request.kind == DmlRequest::Kind::kMutate) {
    return MutateCow(request);
  }
  return LoadCow(request);
}

QueryEngine::RelationWriteState& QueryEngine::WriteStateFor(
    const std::string& relation) {
  std::lock_guard<std::mutex> lock(write_states_mu_);
  auto& slot = write_states_[relation];
  if (slot == nullptr) slot = std::make_unique<RelationWriteState>();
  return *slot;
}

EngineResult QueryEngine::MutateCow(DmlRequest& request) {
  const std::string& relation = request.relation;
  const std::vector<MutationOp>& ops = request.ops;
  EngineResult result;
  result.is_mutation = true;
  Stopwatch timer;

  RelationWriteState& ws = WriteStateFor(relation);
  // One writer lane per relation: writers to DIFFERENT relations run
  // concurrently, and none of them blocks readers (which execute on
  // pinned snapshots).
  std::lock_guard<std::mutex> writer(ws.mu);

  // Pin the current wrapper. ws.mu guarantees no other writer can
  // republish this relation until we commit, so the pin stays the
  // newest version throughout.
  std::shared_ptr<SpatialIndex> base;
  {
    obs::ScopedSpan span("cow_pin");
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    auto rel = catalog_.Get(relation);
    if (!rel.ok()) {
      result.status = rel.status();
      RecordMutation(result);
      return result;
    }
    base = (*rel)->index;
    if (!ws.initialized) {
      ws.next_id = (*rel)->next_id;
      ws.initialized = true;
    }
  }
  const auto* sharded = dynamic_cast<const ShardedIndex*>(base.get());
  if (sharded == nullptr) {
    result.status = Status::Internal("sharded engine: relation '" + relation +
                                     "' is not sharded");
    RecordMutation(result);
    return result;
  }

  // Log-before-apply: the request is admitted (relation exists and is
  // sharded), so it gets its LSN — and its durable record — before any
  // clone is touched. ws.mu orders appends per relation; the sink
  // orders LSNs globally.
  std::uint64_t lsn = 0;
  bool logged = false;
  if (options_.wal != nullptr) {
    obs::ScopedSpan wal_span("wal_append");
    auto assigned = options_.wal->BeginCommit(request);
    if (!assigned.ok()) {
      result.status = assigned.status();
      RecordMutation(result);
      return result;
    }
    lsn = *assigned;
    logged = true;
  }

  // Copy-on-write: share every child, clone a child the first time an
  // op routes to it. Untouched shards keep their objects — and their
  // cache entries.
  const std::size_t num_shards = sharded->num_shards();
  std::vector<std::shared_ptr<SpatialIndex>> children;
  children.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    children.push_back(sharded->shard_ptr(s));
  }
  std::vector<bool> cloned(num_shards, false);
  std::vector<std::uint64_t> retired;
  const auto writable = [&](std::size_t s) -> SpatialIndex* {
    if (!cloned[s]) {
      retired.push_back(children[s]->instance_id());
      children[s] = std::shared_ptr<SpatialIndex>(children[s]->Clone());
      cloned[s] = true;
    }
    return children[s].get();
  };

  std::size_t rows = 0;
  Status failure = Status::Ok();
  {
    obs::ScopedSpan apply_span("cow_apply");
    for (const MutationOp& op : ops) {
      if (op.kind == MutationOp::Kind::kInsert) {
        Point p = op.point;
        if (p.id < 0) p.id = ws.next_id;
        const std::size_t s = sharded->partition()->Route(p.x, p.y);
        if (Status st = writable(s)->Insert(p); !st.ok()) {
          failure = st;
          break;
        }
        ws.next_id = std::max(ws.next_id, p.id + 1);
        ++rows;
      } else {
        // Ownership lookup runs over the working set: the clone when
        // this batch already touched the shard (so an id inserted
        // earlier in the batch is erasable), the shared original
        // otherwise.
        int owner = -1;
        for (std::size_t s = 0; s < num_shards && owner < 0; ++s) {
          if (children[s]->HasPoint(op.erase_id)) {
            owner = static_cast<int>(s);
          }
        }
        if (owner < 0) continue;  // Absent id: 0 rows, not an error.
        const Status erased =
            writable(static_cast<std::size_t>(owner))->Erase(op.erase_id);
        if (erased.ok()) {
          ++rows;
        } else if (erased.code() != StatusCode::kNotFound) {
          failure = erased;
          break;
        }
      }
    }
    apply_span.Count("rows_applied", rows);
    apply_span.Count("shards_cloned", retired.size());
  }

  // Commit matches Catalog::Mutate semantics: ops before a failing one
  // stay applied (the prefix publishes), a no-op batch does not bump
  // the generation.
  MutationOutcome outcome{.rows_affected = rows, .generation = 0,
                          .index = nullptr};
  {
    obs::ScopedSpan publish_span("cow_publish");
    if (rows > 0) {
      auto rebuilt =
          ShardedIndex::FromShards(sharded->partition(), std::move(children));
      KNNQ_CHECK_MSG(rebuilt.ok(), "rewrapping mutated shards failed");
      std::unique_lock<std::shared_mutex> lock(catalog_mu_);
      auto committed = catalog_.ReplaceIndex(
          relation, std::move(rebuilt.value()), ws.next_id, rows);
      KNNQ_CHECK_MSG(committed.ok(), "republishing a mutated relation");
      if (logged) catalog_.StampLsn(relation, lsn);
      outcome = *committed;
    } else {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      if (auto rel = catalog_.Get(relation); rel.ok()) {
        outcome.generation = (*rel)->generation;
      }
    }
    // Replaced child objects can no longer serve anyone; drop their
    // cache entries (every other shard's stay hot). Only after a
    // publish: an unpublished clone leaves the originals live.
    if (rows > 0 && cache_ != nullptr) {
      for (const std::uint64_t id : retired) cache_->RetireRelation(id);
      publish_span.Count("cache_retired", retired.size());
    }
  }

  // The catalog lock is released; EndCommit may cut a snapshot (it
  // quiesces commits and reads the catalog itself). Still inside
  // ws.mu, which only orders writers of this one relation.
  if (logged) options_.wal->EndCommit(lsn, failure.ok());

  if (!failure.ok()) {
    result.status = failure;
    result.stats.wall_seconds = timer.ElapsedSeconds();
    RecordMutation(result);
    return result;
  }
  result.rows_affected = outcome.rows_affected;
  result.explain = MutationSummary("MUTATE", relation, outcome);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  RecordMutation(result);
  return result;
}

EngineResult QueryEngine::LoadCow(DmlRequest& request) {
  const std::string& relation = request.relation;
  EngineResult result;
  result.is_mutation = true;
  Stopwatch timer;

  RelationWriteState& ws = WriteStateFor(relation);
  std::lock_guard<std::mutex> writer(ws.mu);

  // Preserve an existing relation's structure type (like BulkLoad
  // does); unknown names build with the engine's index options.
  IndexOptions build_options = options_.index_options;
  bool exists = false;
  std::shared_ptr<SpatialIndex> old_index;
  {
    std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    if (auto rel = catalog_.Get(relation); rel.ok()) {
      exists = true;
      old_index = (*rel)->index;
      build_options.type = old_index->type();
    }
  }

  // Log-before-apply, and before the points move into the build: the
  // record carries the full new contents.
  std::uint64_t lsn = 0;
  bool logged = false;
  if (options_.wal != nullptr) {
    obs::ScopedSpan wal_span("wal_append");
    auto assigned = options_.wal->BeginCommit(request);
    if (!assigned.ok()) {
      result.status = assigned.status();
      RecordMutation(result);
      return result;
    }
    lsn = *assigned;
    logged = true;
  }

  PointSet points = std::move(request.points);
  const std::size_t rows = points.size();
  const PointId next_id = NextIdAfter(points);
  // The expensive part — partitioning and indexing the new contents —
  // happens with no lock held and no reader or writer disturbed.
  std::shared_ptr<SpatialIndex> fresh;
  {
    obs::ScopedSpan span("load_build");
    span.Count("rows_applied", rows);
    auto built = ShardedIndex::Build(std::move(points), build_options);
    if (!built.ok()) {
      result.status = built.status();
      if (logged) options_.wal->EndCommit(lsn, /*applied=*/false);
      RecordMutation(result);
      return result;
    }
    fresh = std::move(built.value());
  }

  MutationOutcome outcome;
  {
    obs::ScopedSpan span("cow_publish");
    std::unique_lock<std::shared_mutex> lock(catalog_mu_);
    if (exists) {
      auto committed =
          catalog_.ReplaceIndex(relation, std::move(fresh), next_id, rows);
      KNNQ_CHECK_MSG(committed.ok(), "republishing a loaded relation");
      outcome = *committed;
    } else {
      if (Status s = catalog_.AdoptRelation(relation, std::move(fresh),
                                            next_id);
          !s.ok()) {
        result.status = s;
        lock.unlock();
        if (logged) options_.wal->EndCommit(lsn, /*applied=*/false);
        RecordMutation(result);
        return result;
      }
      outcome = MutationOutcome{
          .rows_affected = rows,
          .generation = (*catalog_.Get(relation))->generation,
          .index = nullptr};
    }
    if (logged) catalog_.StampLsn(relation, lsn);
  }
  ws.next_id = next_id;
  ws.initialized = true;
  if (logged) options_.wal->EndCommit(lsn, /*applied=*/true);

  // The whole old wrapper was replaced: retire every old shard's cache
  // entries (and the wrapper's own, in case anything keyed on it).
  if (cache_ != nullptr && old_index != nullptr) {
    if (const auto* old_sharded =
            dynamic_cast<const ShardedIndex*>(old_index.get())) {
      for (std::size_t s = 0; s < old_sharded->num_shards(); ++s) {
        cache_->RetireRelation(old_sharded->shard(s).instance_id());
      }
    }
    cache_->RetireRelation(old_index->instance_id());
  }

  result.rows_affected = outcome.rows_affected;
  result.explain = MutationSummary("LOAD", relation, outcome);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  RecordMutation(result);
  return result;
}

Result<std::vector<QuerySpec>> QueryEngine::ParseBatch(
    std::string_view text) const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  auto statements = knnql::ParseBoundScript(text, &catalog_);
  if (!statements.ok()) return statements.status();
  std::vector<QuerySpec> specs;
  specs.reserve(statements->size());
  for (knnql::BoundStatement& statement : *statements) {
    auto* spec = std::get_if<QuerySpec>(&statement.op);
    if (spec == nullptr) {
      return knnql::ErrorAt(
          statement.pos,
          "DML statements cannot run in a query batch; use RunScript");
    }
    specs.push_back(std::move(*spec));
  }
  return specs;
}

Result<std::vector<EngineResult>> QueryEngine::RunScript(
    std::string_view text) {
  auto script = knnql::ParseScript(text);
  if (!script.ok()) return script.status();
  std::vector<EngineResult> results(script->size());

  // Statements execute in script order, but maximal runs of
  // consecutive queries become one concurrent batch. Queries bind
  // right before their batch runs, so they see every mutation earlier
  // statements applied.
  std::vector<std::size_t> pending;
  const auto flush = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    std::vector<QuerySpec> specs;
    specs.reserve(pending.size());
    {
      std::shared_lock<std::shared_mutex> lock(catalog_mu_);
      for (const std::size_t slot : pending) {
        auto spec = knnql::Bind(
            std::get<knnql::Query>((*script)[slot].body), &catalog_);
        if (!spec.ok()) return spec.status();
        specs.push_back(std::move(spec.value()));
      }
    }
    std::vector<EngineResult> batch = RunBatch(specs);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      results[pending[i]] = std::move(batch[i]);
    }
    pending.clear();
    return Status::Ok();
  };

  for (std::size_t i = 0; i < script->size(); ++i) {
    const knnql::Statement& statement = (*script)[i];
    if (std::holds_alternative<knnql::Query>(statement.body)) {
      pending.push_back(i);
      continue;
    }
    if (Status s = flush(); !s.ok()) return s;
    // Existence is checked by ExecuteDml under the write protocol, so
    // the bind is shape-only (null catalog) and cannot fail for a
    // statement the parser accepted.
    auto dml = knnql::BindDml(statement.body, /*catalog=*/nullptr);
    if (!dml.ok()) {
      results[i].is_mutation = true;
      results[i].status = dml.status();
      continue;
    }
    results[i] = ExecuteDml(*dml);
  }
  if (Status s = flush(); !s.ok()) return s;
  return results;
}

}  // namespace knnq
