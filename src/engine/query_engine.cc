#include "src/engine/query_engine.h"

#include <latch>
#include <thread>
#include <utility>

#include "src/engine/executor.h"

namespace knnq {

namespace {

std::size_t ResolveThreads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

QueryEngine::QueryEngine(Catalog catalog, EngineOptions options)
    : catalog_(std::move(catalog)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(
          ResolveThreads(options.num_threads))) {}

QueryEngine::~QueryEngine() = default;

std::size_t QueryEngine::num_threads() const { return pool_->size(); }

EngineResult QueryEngine::Run(const QuerySpec& spec) const {
  EngineResult result;
  const auto plan = Optimize(catalog_, spec, options_.planner);
  if (!plan.ok()) {
    result.status = plan.status();
    return result;
  }
  result.algorithm = plan->algorithm();
  const ExecutorRegistry& registry = options_.registry != nullptr
                                         ? *options_.registry
                                         : ExecutorRegistry::Default();
  auto output = plan->Execute(registry, &result.stats);
  // The plan was built either way; keep its EXPLAIN for debugging
  // failed executions too.
  result.explain = plan->Explain(&result.stats);
  if (!output.ok()) {
    result.status = output.status();
    return result;
  }
  result.output = std::move(output.value());
  return result;
}

std::vector<EngineResult> QueryEngine::RunBatch(
    const std::vector<QuerySpec>& specs) const {
  std::vector<EngineResult> results(specs.size());
  if (specs.empty()) return results;

  // One task per query; slots keep submission order and isolate
  // failures. The latch is the only cross-thread synchronization -
  // indexes are immutable and each task touches only its own slot.
  std::latch done(static_cast<std::ptrdiff_t>(specs.size()));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    pool_->Submit([this, &specs, &results, &done, i] {
      results[i] = Run(specs[i]);
      done.count_down();
    });
  }
  done.wait();
  return results;
}

}  // namespace knnq
