// The default executor suite: one Executor per Algorithm, each a thin
// adapter binding a PhysicalPlan's state to the matching src/core
// evaluator and forwarding ExecStats. These replace the algorithm
// switch that used to live in PhysicalPlan::Execute().

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/core/chained_joins.h"
#include "src/core/range_select_inner_join.h"
#include "src/core/select_inner_join.h"
#include "src/core/select_outer_join.h"
#include "src/core/two_selects.h"
#include "src/core/unchained_joins.h"
#include "src/engine/executor.h"
#include "src/engine/neighborhood_cache.h"

namespace knnq {

namespace {

/// Wraps a Result<T> into a Result<QueryOutput>.
template <typename T>
Result<QueryOutput> Wrap(Result<T> result) {
  if (!result.ok()) return result.status();
  return QueryOutput(std::move(result.value()));
}

class TwoSelectsExecutor : public Executor {
 public:
  explicit TwoSelectsExecutor(bool optimized) : optimized_(optimized) {}

  const char* name() const override {
    return optimized_ ? "two-selects" : "two-selects-naive";
  }

  Result<QueryOutput> Execute(const PhysicalPlan& plan, ExecStats* stats,
                              NeighborhoodCache* cache) const override {
    const TwoSelectsQuery query{.relation = plan.r1(),
                                .f1 = plan.f1(),
                                .k1 = plan.k1(),
                                .f2 = plan.f2(),
                                .k2 = plan.k2()};
    return Wrap(optimized_
                    ? TwoSelectsOptimized(query, nullptr, stats, cache)
                    : TwoSelectsNaive(query, nullptr, stats, cache));
  }

 private:
  const bool optimized_;
};

/// Which select-inner-join evaluator a plan maps to.
enum class InnerJoinStrategy { kNaive, kCounting, kBlockMarking };

class SelectInnerJoinExecutor : public Executor {
 public:
  explicit SelectInnerJoinExecutor(InnerJoinStrategy strategy)
      : strategy_(strategy) {}

  const char* name() const override { return "select-inner-join"; }

  Result<QueryOutput> Execute(const PhysicalPlan& plan, ExecStats* stats,
                              NeighborhoodCache* cache) const override {
    const SelectInnerJoinQuery query{.outer = plan.r1(),
                                     .inner = plan.r2(),
                                     .join_k = plan.k1(),
                                     .focal = plan.f1(),
                                     .select_k = plan.k2()};
    switch (strategy_) {
      case InnerJoinStrategy::kCounting:
        return Wrap(SelectInnerJoinCounting(query, nullptr, stats, cache));
      case InnerJoinStrategy::kBlockMarking:
        return Wrap(SelectInnerJoinBlockMarking(query, plan.preprocess(),
                                                nullptr, ProbePoint::kCenter,
                                                stats, cache));
      case InnerJoinStrategy::kNaive:
        break;
    }
    return Wrap(SelectInnerJoinNaive(query, nullptr, stats, cache));
  }

 private:
  const InnerJoinStrategy strategy_;
};

class SelectOuterJoinExecutor : public Executor {
 public:
  explicit SelectOuterJoinExecutor(bool pushed) : pushed_(pushed) {}

  const char* name() const override { return "select-outer-join"; }

  Result<QueryOutput> Execute(const PhysicalPlan& plan, ExecStats* stats,
                              NeighborhoodCache* cache) const override {
    const SelectOuterJoinQuery query{.outer = plan.r1(),
                                     .inner = plan.r2(),
                                     .join_k = plan.k1(),
                                     .focal = plan.f1(),
                                     .select_k = plan.k2()};
    return Wrap(pushed_ ? SelectOuterJoinPushed(query, stats, cache)
                        : SelectOuterJoinLate(query, stats, cache));
  }

 private:
  const bool pushed_;
};

class UnchainedJoinsExecutor : public Executor {
 public:
  explicit UnchainedJoinsExecutor(bool block_marking)
      : block_marking_(block_marking) {}

  const char* name() const override { return "unchained-joins"; }

  Result<QueryOutput> Execute(const PhysicalPlan& plan, ExecStats* stats,
                              NeighborhoodCache* cache) const override {
    // When swapped, the physical A-side is the spec's C-side; swap the
    // triplet roles back so callers always see spec order.
    const bool swapped = plan.swapped();
    const UnchainedJoinsQuery query{
        .a = swapped ? plan.r3() : plan.r1(),
        .b = plan.r2(),
        .c = swapped ? plan.r1() : plan.r3(),
        .k_ab = swapped ? plan.k2() : plan.k1(),
        .k_cb = swapped ? plan.k1() : plan.k2()};
    auto result =
        block_marking_
            ? UnchainedJoinsBlockMarking(query, nullptr, stats, cache)
            : UnchainedJoinsNaive(query, stats, cache);
    if (!result.ok()) return result.status();
    TripletResult triplets = std::move(result.value());
    if (swapped) {
      for (Triplet& t : triplets) std::swap(t.a, t.c);
      Canonicalize(triplets);
    }
    return QueryOutput(std::move(triplets));
  }

 private:
  const bool block_marking_;
};

/// Which chained-joins QEP of Figure 13 a plan maps to.
enum class ChainedStrategy { kRightDeep, kJoinIntersection, kNested };

class ChainedJoinsExecutor : public Executor {
 public:
  explicit ChainedJoinsExecutor(ChainedStrategy strategy)
      : strategy_(strategy) {}

  const char* name() const override { return "chained-joins"; }

  Result<QueryOutput> Execute(const PhysicalPlan& plan, ExecStats* stats,
                              NeighborhoodCache* cache) const override {
    const ChainedJoinsQuery query{.a = plan.r1(),
                                  .b = plan.r2(),
                                  .c = plan.r3(),
                                  .k_ab = plan.k1(),
                                  .k_bc = plan.k2()};
    switch (strategy_) {
      case ChainedStrategy::kRightDeep:
        return Wrap(ChainedJoinsRightDeep(query, nullptr, stats, cache));
      case ChainedStrategy::kJoinIntersection:
        return Wrap(
            ChainedJoinsJoinIntersection(query, nullptr, stats, cache));
      case ChainedStrategy::kNested:
        break;
    }
    return Wrap(
        ChainedJoinsNested(query, plan.cache(), nullptr, stats, cache));
  }

 private:
  const ChainedStrategy strategy_;
};

class RangeInnerJoinExecutor : public Executor {
 public:
  explicit RangeInnerJoinExecutor(InnerJoinStrategy strategy)
      : strategy_(strategy) {}

  const char* name() const override { return "range-inner-join"; }

  Result<QueryOutput> Execute(const PhysicalPlan& plan, ExecStats* stats,
                              NeighborhoodCache* cache) const override {
    const RangeSelectInnerJoinQuery query{.outer = plan.r1(),
                                          .inner = plan.r2(),
                                          .join_k = plan.k1(),
                                          .range = plan.range()};
    switch (strategy_) {
      case InnerJoinStrategy::kCounting:
        return Wrap(
            RangeSelectInnerJoinCounting(query, nullptr, stats, cache));
      case InnerJoinStrategy::kBlockMarking:
        return Wrap(RangeSelectInnerJoinBlockMarking(
            query, plan.preprocess(), nullptr, stats, cache));
      case InnerJoinStrategy::kNaive:
        break;
    }
    return Wrap(RangeSelectInnerJoinNaive(query, nullptr, stats, cache));
  }

 private:
  const InnerJoinStrategy strategy_;
};

void MustRegister(ExecutorRegistry& registry, Algorithm algorithm,
                  std::unique_ptr<Executor> executor) {
  const Status status = registry.Register(algorithm, std::move(executor));
  KNNQ_CHECK_MSG(status.ok(), status.ToString().c_str());
}

}  // namespace

void RegisterDefaultExecutors(ExecutorRegistry& registry) {
  MustRegister(registry, Algorithm::kTwoSelectsNaive,
               std::make_unique<TwoSelectsExecutor>(false));
  MustRegister(registry, Algorithm::kTwoSelectsOptimized,
               std::make_unique<TwoSelectsExecutor>(true));

  MustRegister(
      registry, Algorithm::kSelectInnerJoinNaive,
      std::make_unique<SelectInnerJoinExecutor>(InnerJoinStrategy::kNaive));
  MustRegister(registry, Algorithm::kSelectInnerJoinCounting,
               std::make_unique<SelectInnerJoinExecutor>(
                   InnerJoinStrategy::kCounting));
  MustRegister(registry, Algorithm::kSelectInnerJoinBlockMarking,
               std::make_unique<SelectInnerJoinExecutor>(
                   InnerJoinStrategy::kBlockMarking));

  MustRegister(registry, Algorithm::kSelectOuterJoinPushed,
               std::make_unique<SelectOuterJoinExecutor>(true));
  MustRegister(registry, Algorithm::kSelectOuterJoinLate,
               std::make_unique<SelectOuterJoinExecutor>(false));

  MustRegister(registry, Algorithm::kUnchainedNaive,
               std::make_unique<UnchainedJoinsExecutor>(false));
  MustRegister(registry, Algorithm::kUnchainedBlockMarking,
               std::make_unique<UnchainedJoinsExecutor>(true));

  MustRegister(
      registry, Algorithm::kChainedRightDeep,
      std::make_unique<ChainedJoinsExecutor>(ChainedStrategy::kRightDeep));
  MustRegister(registry, Algorithm::kChainedJoinIntersection,
               std::make_unique<ChainedJoinsExecutor>(
                   ChainedStrategy::kJoinIntersection));
  MustRegister(
      registry, Algorithm::kChainedNestedJoin,
      std::make_unique<ChainedJoinsExecutor>(ChainedStrategy::kNested));

  MustRegister(
      registry, Algorithm::kRangeInnerJoinNaive,
      std::make_unique<RangeInnerJoinExecutor>(InnerJoinStrategy::kNaive));
  MustRegister(registry, Algorithm::kRangeInnerJoinCounting,
               std::make_unique<RangeInnerJoinExecutor>(
                   InnerJoinStrategy::kCounting));
  MustRegister(registry, Algorithm::kRangeInnerJoinBlockMarking,
               std::make_unique<RangeInnerJoinExecutor>(
                   InnerJoinStrategy::kBlockMarking));
}

}  // namespace knnq
