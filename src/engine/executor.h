// Executor / ExecutorRegistry: polymorphic plan execution.
//
// Each Algorithm of the planner maps to one Executor object; the
// registry replaces the monolithic switch PhysicalPlan::Execute() used
// to be. Adding an evaluation strategy now means implementing an
// Executor and registering it - no central dispatch code changes.
//
// Executors are stateless (all query state lives in the immutable
// PhysicalPlan) and therefore safe to share across the engine's worker
// threads.

#ifndef KNNQ_SRC_ENGINE_EXECUTOR_H_
#define KNNQ_SRC_ENGINE_EXECUTOR_H_

#include <map>
#include <memory>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/planner/physical_plan.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// Executes one algorithm family variant against a bound plan.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Stable diagnostic name, e.g. "two-selects".
  virtual const char* name() const = 0;

  /// Runs `plan` and reports counters into `stats` (never null when
  /// called through PhysicalPlan::Execute). `cache` (nullable) is the
  /// engine's shared cross-query neighborhood memo; executors forward
  /// it to their evaluator. Must be thread-safe: the engine calls one
  /// executor from many workers concurrently, and the cache is
  /// internally synchronized.
  virtual Result<QueryOutput> Execute(const PhysicalPlan& plan,
                                      ExecStats* stats,
                                      NeighborhoodCache* cache) const = 0;
};

/// Algorithm -> Executor mapping. Immutable through Default(); engines
/// or tests can build their own and extend it.
class ExecutorRegistry {
 public:
  /// The process-wide registry, preloaded (once, thread-safely) with an
  /// executor for every Algorithm via RegisterDefaultExecutors.
  static const ExecutorRegistry& Default();

  /// An empty registry.
  ExecutorRegistry() = default;

  /// Fails with InvalidArgument on a duplicate algorithm or a null
  /// executor.
  Status Register(Algorithm algorithm, std::unique_ptr<Executor> executor);

  /// The executor for `algorithm`, or nullptr when none is registered.
  const Executor* Find(Algorithm algorithm) const;

  /// Number of registered executors.
  std::size_t size() const { return executors_.size(); }

 private:
  std::map<Algorithm, std::unique_ptr<Executor>> executors_;
};

/// Registers the paper's full algorithm suite (all 15 Algorithm values)
/// into `registry`. Default() is built from exactly this set.
void RegisterDefaultExecutors(ExecutorRegistry& registry);

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_EXECUTOR_H_
