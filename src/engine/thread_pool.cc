#include "src/engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace knnq {

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : max_queue_(options.max_queue) {
  const std::size_t n = std::max<std::size_t>(1, options.num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(/*drain=*/false); }

void ThreadPool::Shutdown() { Stop(/*drain=*/true); }

void ThreadPool::Stop(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    stopping_ = true;
    if (!drain) queue_.clear();
  }
  cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  std::lock_guard<std::mutex> lock(mu_);
  joined_ = true;
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_queue_ > 0) {
      space_cv_.wait(lock, [this] {
        return stopping_ || queue_.size() < max_queue_;
      });
    }
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (max_queue_ > 0 && queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    space_cv_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace knnq
