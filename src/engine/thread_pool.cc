#include "src/engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace knnq {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace knnq
