// NeighborhoodCache: a sharded, thread-safe, bounded memo of getkNN
// results shared ACROSS queries.
//
// The paper's chained-join cache (Section 4.2.1) reuses b-neighborhoods
// within one query; under batch load (QueryEngine::RunBatch) different
// queries over the same relations recompute identical neighborhoods -
// repeated focal points, repeated (outer point, join k) probes, and
// Block-Marking's block-center probes. This cache memoizes the full
// GetKnn primitive under the key (relation, query point, k) so that
// work is shared across the whole batch.
//
// Only unrestricted GetKnn results are cached. GetKnnRestricted output
// depends on the caller-supplied threshold (entries beyond it may
// deviate from the true neighborhood, see DESIGN.md note 5), so those
// searches always pass through - keeping cached and uncached execution
// byte-identical.
//
// Concurrency: the key space is split over power-of-two shards, each a
// mutex-protected LRU list + hash map. Eviction is LRU per shard with a
// byte budget of capacity_bytes / num_shards. Hit/miss/eviction
// counters are relaxed atomics; exact cross-shard snapshots are not
// needed, only monotone totals.

#ifndef KNNQ_SRC_ENGINE_NEIGHBORHOOD_CACHE_H_
#define KNNQ_SRC_ENGINE_NEIGHBORHOOD_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/point.h"
#include "src/index/knn_searcher.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// Cache construction knobs.
struct NeighborhoodCacheOptions {
  /// Total byte budget across all shards. A cache of 0 bytes holds
  /// nothing (every Insert is dropped) but stays safe to use.
  std::size_t capacity_bytes = 64ull << 20;

  /// Requested shard count; rounded up to a power of two, minimum 1.
  /// More shards mean less lock contention under RunBatch.
  std::size_t num_shards = 16;
};

/// Monotone counters plus a point-in-time footprint snapshot.
struct NeighborhoodCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Entries dropped by per-relation invalidation (not LRU pressure).
  std::uint64_t invalidated = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Sharded (relation, query point, k) -> Neighborhood memo. All public
/// member functions are thread-safe.
class NeighborhoodCache {
 public:
  explicit NeighborhoodCache(NeighborhoodCacheOptions options = {});

  NeighborhoodCache(const NeighborhoodCache&) = delete;
  NeighborhoodCache& operator=(const NeighborhoodCache&) = delete;

  /// On a hit, copies the cached neighborhood into `*out`, refreshes
  /// the entry's LRU position and returns true. Identity of `relation`
  /// is the index OBJECT via its process-unique instance_id(): two
  /// structures over the same points cache separately (and, GetKnn
  /// being deterministic, hold byte-identical values), and an index
  /// replaced by copy-on-write can never serve the entries of the
  /// object it replaced (a reused heap address would; instance ids are
  /// never reused).
  bool Lookup(const SpatialIndex* relation, const Point& query,
              std::size_t k, Neighborhood* out);

  /// Memoizes a computed neighborhood. Entries larger than a whole
  /// shard's budget are dropped; otherwise the shard evicts LRU-first
  /// until the new entry fits. Inserting a key that is already present
  /// (a concurrent miss on both threads) only refreshes its position.
  void Insert(const SpatialIndex* relation, const Point& query,
              std::size_t k, const Neighborhood& neighborhood);

  /// Drops every entry. Counters other than `entries`/`bytes` persist.
  void Clear();

  /// Drops only the entries cached for `relation`, leaving every other
  /// relation's neighborhoods hot — the point of keying invalidation
  /// per relation instead of nuking the cache on any catalog change.
  void InvalidateRelation(const SpatialIndex* relation);

  /// Drops the entries cached under index instance `relation_id` and
  /// forgets its generation record. For copy-on-write replacement,
  /// where the retired index object may already be destroyed: its
  /// entries are unreachable (the replacement has a fresh instance id)
  /// but would otherwise hold cache bytes until LRU pressure drains
  /// them.
  void RetireRelation(std::uint64_t relation_id);

  /// Per-relation generation hook: when `generation` differs from the
  /// last value observed for `relation`, that relation's entries (and
  /// only those) are dropped. QueryEngine::Mutate calls this with the
  /// mutated relation's new Catalog generation.
  void InvalidateIfGenerationChanged(const SpatialIndex* relation,
                                     std::uint64_t generation);

  /// Whole-catalog invalidation hook: when `generation` differs from
  /// the last observed catalog-wide value, the cache clears itself
  /// (cached pointers could otherwise dangle or alias a new relation).
  /// Kept for callers embedding the cache next to a catalog they keep
  /// extending; mutations go through the per-relation overload.
  void InvalidateIfGenerationChanged(std::uint64_t generation);

  NeighborhoodCacheStats GetStats() const;

  /// Current footprint from a relaxed atomic - no shard locks. The
  /// per-query cache_bytes snapshot in ExecStats reads this.
  std::size_t size_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  /// Coordinates are keyed by BIT PATTERN, not double equality: hashing
  /// already inspects the bits, and defaulted double comparison would
  /// break the map's hash/equality contract for -0.0 vs +0.0 and make
  /// NaN keys (NaN != NaN) unfindable - and thus unevictable.
  struct Key {
    /// SpatialIndex::instance_id() of the relation (or shard child).
    std::uint64_t relation_id;
    std::uint64_t x_bits;
    std::uint64_t y_bits;
    std::size_t k;

    bool operator==(const Key&) const = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  struct Entry {
    Key key;
    Neighborhood neighborhood;
    std::size_t bytes;
  };

  /// One lock domain. LRU list front = most recently used.
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
    std::size_t bytes = 0;
  };

  static Key MakeKey(const SpatialIndex* relation, const Point& query,
                     std::size_t k);

  /// Drops every entry keyed under `relation_id` (generation records
  /// are left alone — only RetireRelation forgets those).
  void DropEntries(std::uint64_t relation_id);

  /// Approximate heap charge of one entry (list node + map node + the
  /// neighborhood's own allocation).
  static std::size_t EntryCost(const Neighborhood& neighborhood);

  Shard& ShardFor(const Key& key);

  const std::size_t capacity_bytes_;
  const std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  std::atomic<std::uint64_t> generation_{0};
  /// Last generation observed per relation instance id (per-relation
  /// invalidation).
  mutable std::mutex relation_generations_mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> relation_generations_;
};

/// Drop-in KnnSearcher with an optional shared cache behind GetKnn.
/// With a null cache it is a plain KnnSearcher; with one attached,
/// GetKnn consults the memo first and records hits/misses in the
/// searcher's SearchStats (folded into ExecStats by the evaluators).
/// GetKnnRestricted always passes through (see the cache's header
/// comment). Like KnnSearcher, not thread-safe: one per thread; the
/// cache itself is safely shared.
///
/// Over a ShardedIndex, caching happens PER SHARD: the scatter-gather
/// search is handed a ShardMemo keyed by child instance ids, so a
/// mutation that copy-on-write-replaces one shard leaves every other
/// shard's cached neighborhoods serving.
class CachingKnnSearcher {
 public:
  explicit CachingKnnSearcher(const SpatialIndex& index,
                              NeighborhoodCache* cache = nullptr)
      : searcher_(index), cache_(cache) {}

  Neighborhood GetKnn(const Point& query, std::size_t k);

  Neighborhood GetKnnRestricted(const Point& query, std::size_t k,
                                double threshold) {
    return searcher_.GetKnnRestricted(query, k, threshold);
  }

  const SpatialIndex& index() const { return searcher_.index(); }

  SearchStats& stats() { return searcher_.stats(); }
  const SearchStats& stats() const { return searcher_.stats(); }

 private:
  KnnSearcher searcher_;
  NeighborhoodCache* cache_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_ENGINE_NEIGHBORHOOD_CACHE_H_
