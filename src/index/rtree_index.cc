#include "src/index/rtree_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <utility>

#include "src/common/check.h"

namespace knnq {

namespace {

/// Construction-time node with free-form child links; flattened into the
/// CSR TreeNode array at the end of Build.
struct TmpNode {
  BoundingBox box;
  std::vector<std::uint32_t> children;
  BlockId block = kInvalidBlockId;
};

/// Splits `m` items into vertical slabs of roughly sqrt(m/group) groups
/// per axis, STR-style. Returns the slab size.
std::size_t StrSlabSize(std::size_t m, std::size_t group) {
  const std::size_t num_groups = (m + group - 1) / group;
  const auto slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const std::size_t groups_per_slab = (num_groups + slabs - 1) / slabs;
  return groups_per_slab * group;
}

}  // namespace

Result<std::unique_ptr<RTreeIndex>> RTreeIndex::Build(
    PointSet points, const RTreeOptions& options) {
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  if (options.fanout < 2) {
    return Status::InvalidArgument("fanout must be >= 2");
  }

  auto tree = std::unique_ptr<RTreeIndex>(new RTreeIndex());
  tree->options_ = options;
  tree->bounds_ = BoundingBox::Of(points);
  tree->points_ = std::move(points);
  const std::size_t n = tree->points_.size();
  if (n == 0) {
    tree->SyncColumns();
    return tree;
  }

  // --- Leaf level: STR tiling of the points. ---
  auto& pts = tree->points_;
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.id < b.id;
  });
  const std::size_t slab = StrSlabSize(n, options.leaf_capacity);
  for (std::size_t s = 0; s < n; s += slab) {
    const std::size_t s_end = std::min(s + slab, n);
    std::sort(pts.begin() + static_cast<std::ptrdiff_t>(s),
              pts.begin() + static_cast<std::ptrdiff_t>(s_end),
              [](const Point& a, const Point& b) {
                if (a.y != b.y) return a.y < b.y;
                if (a.x != b.x) return a.x < b.x;
                return a.id < b.id;
              });
  }

  std::vector<TmpNode> tmp;
  std::vector<std::uint32_t> level;  // Current level, as tmp indices.
  for (std::size_t begin = 0; begin < n;) {
    // Leaves must not straddle slab boundaries, or the tiling degrades;
    // cut at the next slab edge when closer than a full leaf.
    const std::size_t slab_end = ((begin / slab) + 1) * slab;
    const std::size_t end =
        std::min({begin + options.leaf_capacity, slab_end, n});
    BoundingBox mbr;
    for (std::size_t i = begin; i < end; ++i) mbr.Extend(pts[i]);
    TmpNode leaf;
    leaf.box = mbr;
    leaf.block = static_cast<BlockId>(tree->blocks_.size());
    tree->blocks_.push_back(Block{.box = mbr, .begin = begin, .end = end});
    level.push_back(static_cast<std::uint32_t>(tmp.size()));
    tmp.push_back(std::move(leaf));
    begin = end;
  }
  tree->height_ = 1;

  // --- Internal levels: STR tiling of child-box centers. ---
  while (level.size() > 1) {
    const auto center_x = [&](std::uint32_t id) {
      return tmp[id].box.Center().x;
    };
    const auto center_y = [&](std::uint32_t id) {
      return tmp[id].box.Center().y;
    };
    std::sort(level.begin(), level.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const double ax = center_x(a), bx = center_x(b);
                if (ax != bx) return ax < bx;
                return a < b;
              });
    const std::size_t m = level.size();
    const std::size_t level_slab = StrSlabSize(m, options.fanout);
    for (std::size_t s = 0; s < m; s += level_slab) {
      const std::size_t s_end = std::min(s + level_slab, m);
      std::sort(level.begin() + static_cast<std::ptrdiff_t>(s),
                level.begin() + static_cast<std::ptrdiff_t>(s_end),
                [&](std::uint32_t a, std::uint32_t b) {
                  const double ay = center_y(a), by = center_y(b);
                  if (ay != by) return ay < by;
                  return a < b;
                });
    }

    std::vector<std::uint32_t> parents;
    for (std::size_t begin = 0; begin < m;) {
      const std::size_t slab_end = ((begin / level_slab) + 1) * level_slab;
      const std::size_t end =
          std::min({begin + options.fanout, slab_end, m});
      TmpNode parent;
      for (std::size_t i = begin; i < end; ++i) {
        parent.box.Extend(tmp[level[i]].box);
        parent.children.push_back(level[i]);
      }
      parents.push_back(static_cast<std::uint32_t>(tmp.size()));
      tmp.push_back(std::move(parent));
      begin = end;
    }
    level = std::move(parents);
    ++tree->height_;
  }

  // --- Flatten to the CSR TreeNode array (BFS keeps each node's
  // children contiguous). ---
  std::vector<std::uint32_t> final_index(tmp.size(), kNoNode);
  std::deque<std::uint32_t> queue = {level.front()};
  final_index[level.front()] = 0;
  tree->nodes_.resize(1);
  while (!queue.empty()) {
    const std::uint32_t t = queue.front();
    queue.pop_front();
    TreeNode& out = tree->nodes_[final_index[t]];
    out.box = tmp[t].box;
    out.block = tmp[t].block;
    out.num_children = static_cast<std::uint32_t>(tmp[t].children.size());
    if (!tmp[t].children.empty()) {
      out.first_child = static_cast<std::uint32_t>(tree->nodes_.size());
      for (const std::uint32_t child : tmp[t].children) {
        final_index[child] = static_cast<std::uint32_t>(tree->nodes_.size());
        tree->nodes_.emplace_back();
        queue.push_back(child);
      }
    }
  }
  tree->root_ = 0;
  tree->RefreshTreeLinks();
  tree->SyncColumns();
  return tree;
}

BlockId RTreeIndex::Locate(const Point& p) const {
  if (root_ == kNoNode) return kInvalidBlockId;
  // MBRs of siblings may overlap: search every containing subtree and
  // verify point identity at the leaves.
  std::vector<std::uint32_t> stack = {root_};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[idx];
    if (!node.box.Contains(p)) continue;
    if (node.is_leaf()) {
      for (const Point& q : BlockPoints(node.block)) {
        if (q.id == p.id && q.x == p.x && q.y == p.y) return node.block;
      }
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      stack.push_back(node.first_child + c);
    }
  }
  return kInvalidBlockId;
}

Status RTreeIndex::Rebuild(PointSet points) {
  auto built = Build(std::move(points), options_);
  if (!built.ok()) return built.status();
  RTreeIndex& other = **built;
  AdoptTreeFrom(other);
  height_ = other.height_;
  return Status::Ok();
}

std::uint32_t RTreeIndex::ChooseLeaf(const Point& p) const {
  std::uint32_t node = root_;
  while (!nodes_[node].is_leaf()) {
    const TreeNode& t = nodes_[node];
    std::uint32_t best = kNoNode;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (std::uint32_t c = 0; c < t.num_children; ++c) {
      const std::uint32_t child = t.first_child + c;
      BoundingBox grown = nodes_[child].box;
      grown.Extend(p);
      const double area = nodes_[child].box.Area();
      const double enlargement = grown.Area() - area;
      if (best == kNoNode || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = child;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best;
  }
  return node;
}

std::uint32_t RTreeIndex::GrowNewRoot(std::uint32_t old_root) {
  TreeNode top;
  top.box = nodes_[old_root].box;
  const std::uint32_t new_root = NewNode(top, kNoNode);
  const std::uint32_t slot = NewNode(TreeNode{}, new_root);
  MoveNode(old_root, slot);
  parent_[slot] = new_root;
  nodes_[new_root].first_child = slot;
  nodes_[new_root].num_children = 1;
  root_ = new_root;
  ++height_;
  return new_root;
}

void RTreeIndex::PermuteChildren(std::uint32_t parent,
                                 const std::vector<std::uint32_t>& order) {
  const std::uint32_t first = nodes_[parent].first_child;
  std::vector<TreeNode> scratch;
  scratch.reserve(order.size());
  for (const std::uint32_t member : order) {
    scratch.push_back(nodes_[first + member]);
  }
  for (std::uint32_t j = 0; j < scratch.size(); ++j) {
    const std::uint32_t slot = first + j;
    nodes_[slot] = scratch[j];
    if (scratch[j].is_leaf()) {
      block_node_[scratch[j].block] = slot;
    } else {
      for (std::uint32_t c = 0; c < scratch[j].num_children; ++c) {
        parent_[scratch[j].first_child + c] = slot;
      }
    }
  }
}

void RTreeIndex::SplitInternal(std::uint32_t node) {
  const std::uint32_t first = nodes_[node].first_child;
  const std::uint32_t m = nodes_[node].num_children;

  // Order members by center along the wider axis of the group's MBR
  // (ties: other axis, then slot), then cut the ordered group in half.
  BoundingBox group_box;
  for (std::uint32_t c = 0; c < m; ++c) {
    group_box.Extend(nodes_[first + c].box);
  }
  const bool by_x = group_box.width() >= group_box.height();
  std::vector<std::uint32_t> order(m);
  for (std::uint32_t c = 0; c < m; ++c) order[c] = c;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Point ca = nodes_[first + a].box.Center();
              const Point cb = nodes_[first + b].box.Center();
              const double pa = by_x ? ca.x : ca.y;
              const double pb = by_x ? cb.x : cb.y;
              if (pa != pb) return pa < pb;
              const double sa = by_x ? ca.y : ca.x;
              const double sb = by_x ? cb.y : cb.x;
              if (sa != sb) return sa < sb;
              return a < b;
            });
  PermuteChildren(node, order);

  const std::uint32_t m1 = m / 2;
  TreeNode sibling;
  sibling.first_child = first + m1;
  sibling.num_children = m - m1;
  nodes_[node].num_children = m1;
  BoundingBox left_box, right_box;
  for (std::uint32_t c = 0; c < m1; ++c) {
    left_box.Extend(nodes_[first + c].box);
  }
  for (std::uint32_t c = m1; c < m; ++c) {
    right_box.Extend(nodes_[first + c].box);
  }
  nodes_[node].box = left_box;
  sibling.box = right_box;

  std::uint32_t parent = parent_[node];
  if (parent == kNoNode) parent = GrowNewRoot(node);
  const std::uint32_t sibling_slot = AttachNewChild(parent, sibling);
  for (std::uint32_t c = 0; c < sibling.num_children; ++c) {
    parent_[sibling.first_child + c] = sibling_slot;
  }
}

void RTreeIndex::SplitLeaf(std::uint32_t leaf) {
  const BlockId block = nodes_[leaf].block;
  const std::size_t begin = blocks_[block].begin;
  const std::size_t end = blocks_[block].end;

  // Linear split: order the span along the wider axis and cut in half;
  // both halves stay contiguous in points_.
  const bool by_x =
      blocks_[block].box.width() >= blocks_[block].box.height();
  std::sort(points_.begin() + static_cast<std::ptrdiff_t>(begin),
            points_.begin() + static_cast<std::ptrdiff_t>(end),
            [&](const Point& a, const Point& b) {
              const double pa = by_x ? a.x : a.y;
              const double pb = by_x ? b.x : b.y;
              if (pa != pb) return pa < pb;
              const double sa = by_x ? a.y : a.x;
              const double sb = by_x ? b.y : b.x;
              if (sa != sb) return sa < sb;
              return a.id < b.id;
            });
  // The sort permuted points_[begin, end) behind the columns' back;
  // mirror the new order.
  SyncColumnsRange(begin, end);
  const std::size_t mid = begin + (end - begin) / 2;

  blocks_[block].end = mid;
  RecomputeLeafBox(block);
  nodes_[leaf].box = blocks_[block].box;

  const auto right = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(Block{.box = BoundingBox(), .begin = mid, .end = end});
  block_node_.push_back(kNoNode);
  RecomputeLeafBox(right);
  TreeNode sibling;
  sibling.box = blocks_[right].box;
  sibling.block = right;

  std::uint32_t parent = parent_[leaf];
  if (parent == kNoNode) parent = GrowNewRoot(leaf);
  const std::uint32_t sibling_slot = AttachNewChild(parent, sibling);
  block_node_[right] = sibling_slot;

  // Overflow can cascade to the root; parent slots are stable across
  // their own group's relocations, so walking parent_ upward is safe.
  std::uint32_t node = parent;
  while (node != kNoNode &&
         nodes_[node].num_children > options_.fanout) {
    const std::uint32_t up = parent_[node];
    SplitInternal(node);
    node = up != kNoNode ? up : parent_[node];
  }
}

void RTreeIndex::RecomputeLeafBox(BlockId block) {
  BoundingBox box;
  for (std::size_t i = blocks_[block].begin; i < blocks_[block].end; ++i) {
    box.Extend(points_[i]);
  }
  blocks_[block].box = box;
}

Status RTreeIndex::Insert(const Point& p) {
  if (Status s = ValidateInsertable(p); !s.ok()) return s;
  if (root_ == kNoNode || TooManyDeadNodes()) {
    PointSet points = std::move(points_);
    points.push_back(p);
    return Rebuild(std::move(points));
  }
  const std::uint32_t leaf = ChooseLeaf(p);
  const BlockId block = nodes_[leaf].block;
  InsertIntoBlock(block, p);
  for (std::uint32_t n = leaf; n != kNoNode; n = parent_[n]) {
    nodes_[n].box.Extend(p);
  }
  if (blocks_[block].count() > options_.leaf_capacity) SplitLeaf(leaf);
  return Status::Ok();
}

void RTreeIndex::CondenseLeaf(std::uint32_t leaf) {
  const BlockId block = nodes_[leaf].block;
  const PointSet orphans(
      points_.begin() + static_cast<std::ptrdiff_t>(blocks_[block].begin),
      points_.begin() + static_cast<std::ptrdiff_t>(blocks_[block].end));
  std::uint32_t parent = parent_[leaf];
  RemoveSpan(block);
  DetachChild(parent, leaf);
  RemoveBlock(block);
  while (parent != root_ && nodes_[parent].num_children == 0) {
    const std::uint32_t up = parent_[parent];
    DetachChild(up, parent);
    parent = up;
  }
  if (!nodes_[root_].is_leaf() && nodes_[root_].num_children == 0) {
    // The condensed leaf was the tree's only leaf: every surviving
    // point is an orphan. Reset and let re-insertion regrow the tree.
    ResetTreeEmpty();
    height_ = 0;
  } else {
    TightenUpward(parent);
    while (!nodes_[root_].is_leaf() && nodes_[root_].num_children == 1) {
      const std::uint32_t child = nodes_[root_].first_child;
      nodes_[root_].num_children = 0;
      parent_[root_] = kNoNode;
      ++dead_nodes_;
      parent_[child] = kNoNode;
      root_ = child;
      --height_;
    }
  }
  for (const Point& p : orphans) {
    const Status inserted = Insert(p);
    KNNQ_CHECK_MSG(inserted.ok(), "re-inserting a condensed point failed");
  }
}

Status RTreeIndex::Erase(PointId id) {
  BlockId block;
  std::size_t pos;
  if (!FindPoint(id, &block, &pos)) {
    return Status::NotFound("no indexed point with id " +
                            std::to_string(id));
  }
  const std::uint32_t leaf = block_node_[block];
  EraseFromBlock(block, pos);
  if (points_.empty()) {
    ResetTreeEmpty();
    height_ = 0;
    return Status::Ok();
  }
  RecomputeLeafBox(block);
  TightenUpward(leaf);
  const std::size_t min_fill =
      std::max<std::size_t>(1, options_.leaf_capacity / 4);
  if (blocks_[block].count() < min_fill && leaf != root_) {
    CondenseLeaf(leaf);
  }
  if (TooManyDeadNodes()) return Rebuild(std::move(points_));
  return Status::Ok();
}

Status RTreeIndex::BulkLoad(PointSet points) {
  return Rebuild(std::move(points));
}

std::unique_ptr<BlockScan> RTreeIndex::NewScan(const Point& query,
                                               ScanOrder order) const {
  return std::make_unique<TreeScan>(
      nodes_, root_ == kNoNode ? nodes_.size() : root_, query, order);
}

std::string RTreeIndex::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "rtree height %zu, %zu blocks, %zu points",
                height_, num_blocks(), num_points());
  return buf;
}

}  // namespace knnq
