#include "src/index/rtree_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <utility>

#include "src/common/check.h"

namespace knnq {

namespace {

/// Construction-time node with free-form child links; flattened into the
/// CSR TreeNode array at the end of Build.
struct TmpNode {
  BoundingBox box;
  std::vector<std::uint32_t> children;
  BlockId block = kInvalidBlockId;
};

/// Splits `m` items into vertical slabs of roughly sqrt(m/group) groups
/// per axis, STR-style. Returns the slab size.
std::size_t StrSlabSize(std::size_t m, std::size_t group) {
  const std::size_t num_groups = (m + group - 1) / group;
  const auto slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const std::size_t groups_per_slab = (num_groups + slabs - 1) / slabs;
  return groups_per_slab * group;
}

}  // namespace

Result<std::unique_ptr<RTreeIndex>> RTreeIndex::Build(
    PointSet points, const RTreeOptions& options) {
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  if (options.fanout < 2) {
    return Status::InvalidArgument("fanout must be >= 2");
  }

  auto tree = std::unique_ptr<RTreeIndex>(new RTreeIndex());
  tree->bounds_ = BoundingBox::Of(points);
  tree->points_ = std::move(points);
  const std::size_t n = tree->points_.size();
  if (n == 0) return tree;

  // --- Leaf level: STR tiling of the points. ---
  auto& pts = tree->points_;
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.id < b.id;
  });
  const std::size_t slab = StrSlabSize(n, options.leaf_capacity);
  for (std::size_t s = 0; s < n; s += slab) {
    const std::size_t s_end = std::min(s + slab, n);
    std::sort(pts.begin() + static_cast<std::ptrdiff_t>(s),
              pts.begin() + static_cast<std::ptrdiff_t>(s_end),
              [](const Point& a, const Point& b) {
                if (a.y != b.y) return a.y < b.y;
                if (a.x != b.x) return a.x < b.x;
                return a.id < b.id;
              });
  }

  std::vector<TmpNode> tmp;
  std::vector<std::uint32_t> level;  // Current level, as tmp indices.
  for (std::size_t begin = 0; begin < n;) {
    // Leaves must not straddle slab boundaries, or the tiling degrades;
    // cut at the next slab edge when closer than a full leaf.
    const std::size_t slab_end = ((begin / slab) + 1) * slab;
    const std::size_t end =
        std::min({begin + options.leaf_capacity, slab_end, n});
    BoundingBox mbr;
    for (std::size_t i = begin; i < end; ++i) mbr.Extend(pts[i]);
    TmpNode leaf;
    leaf.box = mbr;
    leaf.block = static_cast<BlockId>(tree->blocks_.size());
    tree->blocks_.push_back(Block{.box = mbr, .begin = begin, .end = end});
    level.push_back(static_cast<std::uint32_t>(tmp.size()));
    tmp.push_back(std::move(leaf));
    begin = end;
  }
  tree->height_ = 1;

  // --- Internal levels: STR tiling of child-box centers. ---
  while (level.size() > 1) {
    const auto center_x = [&](std::uint32_t id) {
      return tmp[id].box.Center().x;
    };
    const auto center_y = [&](std::uint32_t id) {
      return tmp[id].box.Center().y;
    };
    std::sort(level.begin(), level.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const double ax = center_x(a), bx = center_x(b);
                if (ax != bx) return ax < bx;
                return a < b;
              });
    const std::size_t m = level.size();
    const std::size_t level_slab = StrSlabSize(m, options.fanout);
    for (std::size_t s = 0; s < m; s += level_slab) {
      const std::size_t s_end = std::min(s + level_slab, m);
      std::sort(level.begin() + static_cast<std::ptrdiff_t>(s),
                level.begin() + static_cast<std::ptrdiff_t>(s_end),
                [&](std::uint32_t a, std::uint32_t b) {
                  const double ay = center_y(a), by = center_y(b);
                  if (ay != by) return ay < by;
                  return a < b;
                });
    }

    std::vector<std::uint32_t> parents;
    for (std::size_t begin = 0; begin < m;) {
      const std::size_t slab_end = ((begin / level_slab) + 1) * level_slab;
      const std::size_t end =
          std::min({begin + options.fanout, slab_end, m});
      TmpNode parent;
      for (std::size_t i = begin; i < end; ++i) {
        parent.box.Extend(tmp[level[i]].box);
        parent.children.push_back(level[i]);
      }
      parents.push_back(static_cast<std::uint32_t>(tmp.size()));
      tmp.push_back(std::move(parent));
      begin = end;
    }
    level = std::move(parents);
    ++tree->height_;
  }

  // --- Flatten to the CSR TreeNode array (BFS keeps each node's
  // children contiguous). ---
  std::vector<std::uint32_t> final_index(tmp.size(), kNoNode);
  std::deque<std::uint32_t> queue = {level.front()};
  final_index[level.front()] = 0;
  tree->nodes_.resize(1);
  while (!queue.empty()) {
    const std::uint32_t t = queue.front();
    queue.pop_front();
    TreeNode& out = tree->nodes_[final_index[t]];
    out.box = tmp[t].box;
    out.block = tmp[t].block;
    out.num_children = static_cast<std::uint32_t>(tmp[t].children.size());
    if (!tmp[t].children.empty()) {
      out.first_child = static_cast<std::uint32_t>(tree->nodes_.size());
      for (const std::uint32_t child : tmp[t].children) {
        final_index[child] = static_cast<std::uint32_t>(tree->nodes_.size());
        tree->nodes_.emplace_back();
        queue.push_back(child);
      }
    }
  }
  tree->root_ = 0;
  return tree;
}

BlockId RTreeIndex::Locate(const Point& p) const {
  if (root_ == kNoNode) return kInvalidBlockId;
  // MBRs of siblings may overlap: search every containing subtree and
  // verify point identity at the leaves.
  std::vector<std::uint32_t> stack = {root_};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[idx];
    if (!node.box.Contains(p)) continue;
    if (node.is_leaf()) {
      for (const Point& q : BlockPoints(node.block)) {
        if (q.id == p.id && q.x == p.x && q.y == p.y) return node.block;
      }
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      stack.push_back(node.first_child + c);
    }
  }
  return kInvalidBlockId;
}

std::unique_ptr<BlockScan> RTreeIndex::NewScan(const Point& query,
                                               ScanOrder order) const {
  return std::make_unique<TreeScan>(
      nodes_, root_ == kNoNode ? nodes_.size() : root_, query, order);
}

std::string RTreeIndex::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "rtree height %zu, %zu blocks, %zu points",
                height_, num_blocks(), num_points());
  return buf;
}

}  // namespace knnq
