#include "src/index/dynamic_tree.h"

#include "src/common/check.h"

namespace knnq {

void DynamicTreeIndex::RefreshTreeLinks() {
  parent_.assign(nodes_.size(), kNoNode);
  block_node_.assign(blocks_.size(), kNoNode);
  dead_nodes_ = 0;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& node = nodes_[i];
    if (node.is_leaf()) {
      block_node_[node.block] = i;
    } else {
      for (std::uint32_t c = 0; c < node.num_children; ++c) {
        parent_[node.first_child + c] = i;
      }
    }
  }
}

void DynamicTreeIndex::AdoptTreeFrom(DynamicTreeIndex& other) {
  AdoptBaseFrom(other);
  nodes_ = std::move(other.nodes_);
  parent_ = std::move(other.parent_);
  block_node_ = std::move(other.block_node_);
  root_ = other.root_;
  dead_nodes_ = other.dead_nodes_;
}

std::uint32_t DynamicTreeIndex::NewNode(const TreeNode& node,
                                        std::uint32_t parent) {
  const auto slot = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(node);
  parent_.push_back(parent);
  return slot;
}

void DynamicTreeIndex::MoveNode(std::uint32_t from, std::uint32_t to) {
  KNNQ_DCHECK(from != to);
  const TreeNode node = nodes_[from];
  nodes_[to] = node;
  parent_[to] = parent_[from];
  if (node.is_leaf()) {
    block_node_[node.block] = to;
  } else {
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      parent_[node.first_child + c] = to;
    }
  }
  if (root_ == from) root_ = to;
  // Leave the vacated slot visibly dead.
  nodes_[from].num_children = 0;
  nodes_[from].block = kInvalidBlockId;
  parent_[from] = kNoNode;
  ++dead_nodes_;
}

std::uint32_t DynamicTreeIndex::AttachNewChild(std::uint32_t parent,
                                               const TreeNode& child) {
  const std::uint32_t m = nodes_[parent].num_children;
  if (m == 0) {
    const std::uint32_t slot = NewNode(child, parent);
    nodes_[parent].first_child = slot;
    nodes_[parent].num_children = 1;
    return slot;
  }
  const std::uint32_t first = nodes_[parent].first_child;
  if (first + m == nodes_.size()) {
    // The group already sits at the tail: extend in place.
    const std::uint32_t slot = NewNode(child, parent);
    ++nodes_[parent].num_children;
    return slot;
  }
  // Relocate the group to the tail, then append.
  const auto new_first = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t c = 0; c < m; ++c) {
    nodes_.emplace_back();
    parent_.push_back(parent);
    MoveNode(first + c, new_first + c);
  }
  const std::uint32_t slot = NewNode(child, parent);
  nodes_[parent].first_child = new_first;
  nodes_[parent].num_children = m + 1;
  return slot;
}

void DynamicTreeIndex::DetachChild(std::uint32_t parent,
                                   std::uint32_t child) {
  TreeNode& p = nodes_[parent];
  KNNQ_DCHECK(p.num_children > 0);
  const std::uint32_t last = p.first_child + p.num_children - 1;
  KNNQ_DCHECK(child >= p.first_child && child <= last);
  if (child != last) {
    MoveNode(last, child);
  } else {
    nodes_[child].num_children = 0;
    nodes_[child].block = kInvalidBlockId;
    parent_[child] = kNoNode;
    ++dead_nodes_;
  }
  --p.num_children;
}

void DynamicTreeIndex::RemoveBlock(BlockId id) {
  const auto last = static_cast<BlockId>(blocks_.size() - 1);
  if (id != last) {
    blocks_[id] = blocks_[last];
    block_node_[id] = block_node_[last];
    nodes_[block_node_[id]].block = id;
  }
  blocks_.pop_back();
  block_node_.pop_back();
}

void DynamicTreeIndex::TightenUpward(std::uint32_t node) {
  for (std::uint32_t n = node; n != kNoNode; n = parent_[n]) {
    TreeNode& t = nodes_[n];
    BoundingBox box;
    if (t.is_leaf()) {
      box = blocks_[t.block].box;
    } else {
      for (std::uint32_t c = 0; c < t.num_children; ++c) {
        box.Extend(nodes_[t.first_child + c].box);
      }
    }
    t.box = box;
  }
}

void DynamicTreeIndex::SubtreeSpan(std::uint32_t node, std::size_t* begin,
                                   std::size_t* end) const {
  const TreeNode& t = nodes_[node];
  if (t.is_leaf()) {
    const Block& block = blocks_[t.block];
    if (block.begin < *begin) *begin = block.begin;
    if (block.end > *end) *end = block.end;
    return;
  }
  for (std::uint32_t c = 0; c < t.num_children; ++c) {
    SubtreeSpan(t.first_child + c, begin, end);
  }
}

void DynamicTreeIndex::ResetTreeEmpty() {
  nodes_.clear();
  parent_.clear();
  block_node_.clear();
  blocks_.clear();
  points_.clear();
  xs_.clear();
  ys_.clear();
  ids_.clear();
  root_ = kNoNode;
  dead_nodes_ = 0;
  bounds_ = BoundingBox();
}

}  // namespace knnq
