// KnnSearcher: the paper's getkNN primitive.
//
// "One can use any algorithm to compute the neighborhood of a point. In
// this paper, we employ the locality algorithm of [15]" (Section 2).
// GetKnn builds the minimum locality and extracts the neighborhood from
// the locality's points only. GetKnnRestricted is the Procedure 5
// variant whose locality is additionally clipped by a search threshold.
//
// Neighborhoods are deterministic: points are ranked by
// (distance, point id), so equal queries return identical results across
// index structures and algorithms - the property every cross-evaluator
// test in this repository relies on.

#ifndef KNNQ_SRC_INDEX_KNN_SEARCHER_H_
#define KNNQ_SRC_INDEX_KNN_SEARCHER_H_

#include <vector>

#include "src/common/point.h"
#include "src/index/locality.h"
#include "src/index/query_arena.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// One member of a neighborhood.
struct Neighbor {
  Point point;
  double dist = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.point == b.point && a.dist == b.dist;
  }
};

/// A neighborhood: the k nearest points, ascending by (distance, id).
using Neighborhood = std::vector<Neighbor>;

/// Returns true when `id` appears in `nbr`. Neighborhoods are small
/// (k elements); linear scan beats hashing for the paper's k ranges.
bool Contains(const Neighborhood& nbr, PointId id);

class ShardedIndex;

/// Per-shard neighborhood memoization, implemented by the engine's
/// cache layer (src/engine/neighborhood_cache.h). Abstract here so the
/// index layer's scatter-gather search can consult a cache without
/// depending on src/engine. Entries are keyed by the shard OBJECT
/// (instance_id), so copy-on-write shard replacement invalidates only
/// the replaced shard's entries — the cached partial results of
/// untouched shards keep serving.
class ShardMemo {
 public:
  virtual ~ShardMemo() = default;

  /// Fills `*out` with the cached full k-neighborhood of `query` over
  /// `shard` and returns true, or returns false on a miss.
  virtual bool Lookup(const SpatialIndex& shard, const Point& query,
                      std::size_t k, Neighborhood* out) = 0;

  /// Caches `neighborhood` as the full k-neighborhood of `query` over
  /// `shard`.
  virtual void Store(const SpatialIndex& shard, const Point& query,
                     std::size_t k, const Neighborhood& neighborhood) = 0;
};

/// Locality-based kNN search over one index. Not thread-safe (keeps
/// cost counters and scratch state); create one per thread.
///
/// A sharded relation (ShardedIndex) is searched scatter-gather: shards
/// are visited in MINDIST order from the query, the first shard seeds
/// the k-candidate bound, and every later shard whose bounds lie
/// strictly beyond the running k-th distance is pruned without opening
/// it (SearchStats::shards_pruned). Results are byte-identical to the
/// unsharded search: candidates are ranked by the same (distance, id)
/// order and no shard that could contribute a winner is skipped.
class KnnSearcher {
 public:
  explicit KnnSearcher(const SpatialIndex& index);

  /// The neighborhood of `query`: its k nearest indexed points. Returns
  /// fewer than k neighbors only when the relation itself is smaller
  /// than k.
  Neighborhood GetKnn(const Point& query, std::size_t k);

  /// GetKnn consulting `memo` (may be null) for per-shard cached
  /// neighborhoods; only the sharded path uses the memo — the engine's
  /// caching layer handles whole-relation caching for plain indexes.
  Neighborhood GetKnn(const Point& query, std::size_t k, ShardMemo* memo);

  /// True when the underlying relation is a ShardedIndex (GetKnn runs
  /// scatter-gather).
  bool sharded() const { return sharded_ != nullptr; }

  /// Procedure 5's threshold-restricted search: the neighborhood is
  /// computed from the locality clipped to blocks with
  /// MINDIST <= threshold. The result ranks all points within the
  /// threshold exactly; entries beyond the threshold may deviate from
  /// the true neighborhood (see DESIGN.md note 5), which is harmless for
  /// the intersection the caller performs.
  Neighborhood GetKnnRestricted(const Point& query, std::size_t k,
                                double threshold);

  const SpatialIndex& index() const { return index_; }

  SearchStats& stats() { return stats_; }
  const SearchStats& stats() const { return stats_; }

  /// The searcher's scratch arena — exposed so tests can assert that
  /// steady-state queries stop growing it.
  const QueryArena& arena() const { return arena_; }

 private:
  Neighborhood NeighborhoodFromLocality(const Point& query, std::size_t k,
                                        const Locality& locality,
                                        double threshold);

  /// Scans `locality`'s blocks of `index` nearest-first into `topk`,
  /// skipping blocks (and, when `threshold` is finite, points) past the
  /// bound. The block-scan core shared by the plain and per-shard
  /// paths.
  void AccumulateFromLocality(const SpatialIndex& index, const Point& query,
                              const Locality& locality, double threshold,
                              TopKQueue& topk);

  /// The scatter-gather search described in the class comment.
  Neighborhood GetKnnSharded(const Point& query, std::size_t k,
                             ShardMemo* memo);

  /// Full (unrestricted) k-neighborhood over one shard child — the
  /// cacheable unit the memo stores. Uses shard_heap_, not the arena
  /// heap, which holds the global candidates.
  Neighborhood SearchOne(const SpatialIndex& index, const Point& query,
                         std::size_t k);

  const SpatialIndex& index_;
  /// Non-null when index_ is a ShardedIndex.
  const ShardedIndex* sharded_ = nullptr;
  SearchStats stats_;
  /// Recycled buffers (block ordering, top-k heap, distance batches,
  /// locality scratch): after warm-up, queries allocate nothing here.
  QueryArena arena_;
  Locality locality_;
  /// Scatter-gather scratch: (MINDIST^2, shard) visit order and the
  /// per-shard top-k storage. Recycled like the arena buffers.
  std::vector<std::pair<double, std::size_t>> shard_order_;
  std::vector<TopKEntry> shard_heap_;
};

/// Ground-truth kNN by exhaustive scan; the reference the property tests
/// compare every optimized path against.
Neighborhood BruteForceKnn(const PointSet& points, const Point& query,
                           std::size_t k);

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_KNN_SEARCHER_H_
