// KnnSearcher: the paper's getkNN primitive.
//
// "One can use any algorithm to compute the neighborhood of a point. In
// this paper, we employ the locality algorithm of [15]" (Section 2).
// GetKnn builds the minimum locality and extracts the neighborhood from
// the locality's points only. GetKnnRestricted is the Procedure 5
// variant whose locality is additionally clipped by a search threshold.
//
// Neighborhoods are deterministic: points are ranked by
// (distance, point id), so equal queries return identical results across
// index structures and algorithms - the property every cross-evaluator
// test in this repository relies on.

#ifndef KNNQ_SRC_INDEX_KNN_SEARCHER_H_
#define KNNQ_SRC_INDEX_KNN_SEARCHER_H_

#include <vector>

#include "src/common/point.h"
#include "src/index/locality.h"
#include "src/index/query_arena.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// One member of a neighborhood.
struct Neighbor {
  Point point;
  double dist = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.point == b.point && a.dist == b.dist;
  }
};

/// A neighborhood: the k nearest points, ascending by (distance, id).
using Neighborhood = std::vector<Neighbor>;

/// Returns true when `id` appears in `nbr`. Neighborhoods are small
/// (k elements); linear scan beats hashing for the paper's k ranges.
bool Contains(const Neighborhood& nbr, PointId id);

/// Locality-based kNN search over one index. Not thread-safe (keeps
/// cost counters and scratch state); create one per thread.
class KnnSearcher {
 public:
  explicit KnnSearcher(const SpatialIndex& index) : index_(index) {}

  /// The neighborhood of `query`: its k nearest indexed points. Returns
  /// fewer than k neighbors only when the relation itself is smaller
  /// than k.
  Neighborhood GetKnn(const Point& query, std::size_t k);

  /// Procedure 5's threshold-restricted search: the neighborhood is
  /// computed from the locality clipped to blocks with
  /// MINDIST <= threshold. The result ranks all points within the
  /// threshold exactly; entries beyond the threshold may deviate from
  /// the true neighborhood (see DESIGN.md note 5), which is harmless for
  /// the intersection the caller performs.
  Neighborhood GetKnnRestricted(const Point& query, std::size_t k,
                                double threshold);

  const SpatialIndex& index() const { return index_; }

  SearchStats& stats() { return stats_; }
  const SearchStats& stats() const { return stats_; }

  /// The searcher's scratch arena — exposed so tests can assert that
  /// steady-state queries stop growing it.
  const QueryArena& arena() const { return arena_; }

 private:
  Neighborhood NeighborhoodFromLocality(const Point& query, std::size_t k,
                                        const Locality& locality,
                                        double threshold);

  const SpatialIndex& index_;
  SearchStats stats_;
  /// Recycled buffers (block ordering, top-k heap, distance batches,
  /// locality scratch): after warm-up, queries allocate nothing here.
  QueryArena arena_;
  Locality locality_;
};

/// Ground-truth kNN by exhaustive scan; the reference the property tests
/// compare every optimized path against.
Neighborhood BruteForceKnn(const PointSet& points, const Point& query,
                           std::size_t k);

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_KNN_SEARCHER_H_
