// QueryArena: per-searcher (== per-thread, by KnnSearcher's contract)
// scratch buffers for the query hot path.
//
// Every buffer a kNN search needs — the MINDIST-ordered block list, the
// top-k heap, the batched-distance output, the locality phase-1 list
// and the locality block set — lives here and is recycled between
// queries: accessors clear contents but never shrink capacity. The
// buffers grow to a high-water mark over the first few queries, after
// which the search path performs zero heap allocations per query (the
// one remaining allocation is the index's BlockScan object, which is
// structure-specific and outside the arena's reach).
//
// `bytes()` reports the arena's capacity footprint so serving stats can
// surface how much scratch each worker retains.

#ifndef KNNQ_SRC_INDEX_QUERY_ARENA_H_
#define KNNQ_SRC_INDEX_QUERY_ARENA_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/index/block.h"
#include "src/index/topk.h"

namespace knnq {

class QueryArena {
 public:
  /// (MINDIST^2, block) pairs for nearest-first block ordering.
  std::vector<std::pair<double, BlockId>>& ordered_blocks() {
    ordered_blocks_.clear();
    return ordered_blocks_;
  }

  /// Backing storage for a TopKQueue (the queue clears it on bind).
  std::vector<TopKEntry>& heap() { return heap_; }

  /// Squared-distance output buffer, resized to at least `n` elements.
  double* distances(std::size_t n) {
    if (distances_.size() < n) distances_.resize(n);
    return distances_.data();
  }

  /// Locality construction scratch: blocks popped in phase 1.
  std::vector<BlockId>& phase1() {
    phase1_.clear();
    return phase1_;
  }

  /// Total bytes of scratch capacity currently retained.
  std::size_t bytes() const;

 private:
  std::vector<std::pair<double, BlockId>> ordered_blocks_;
  std::vector<TopKEntry> heap_;
  std::vector<double> distances_;
  std::vector<BlockId> phase1_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_QUERY_ARENA_H_
