// Batched Euclidean distance kernel: the innermost loop of every query
// shape. A block scan hands the kernel one block's SoA columns
// (SpatialIndex::BlockSoA) and gets squared distances for the whole
// span in one call — branch-free, restrict-qualified loops the compiler
// auto-vectorizes, plus hand-written AVX2 paths behind a runtime
// toggle.
//
// Exactness contract: every path — scalar or SIMD — produces
// bit-identical results. Squared distance is (x-qx)^2 + (y-qy)^2 with
// each operation correctly rounded and NO fused multiply-add (the AVX2
// path deliberately uses mul+add, and the scalar translation unit is
// compiled without FMA contraction), so lane order and instruction set
// cannot change a single output bit. Min/max reductions select an
// element of the same set regardless of association. This is what lets
// the engine flip SIMD on and off (KNNQ_ENABLE_SIMD, --no-simd) as a
// pure speed A/B with byte-identical query results.

#ifndef KNNQ_SRC_INDEX_DISTANCE_KERNEL_H_
#define KNNQ_SRC_INDEX_DISTANCE_KERNEL_H_

#include <cstddef>

namespace knnq {

/// out[i] = (x[i] - qx)^2 + (y[i] - qy)^2 for i in [0, n).
/// `out` must hold n doubles and not alias x or y.
void SquaredDistanceBatch(const double* x, const double* y, std::size_t n,
                          double qx, double qy, double* out);

/// Smallest squared distance from (qx, qy) to the n column points.
/// Returns +infinity when n == 0.
double MinSquaredDistance(const double* x, const double* y, std::size_t n,
                          double qx, double qy);

/// Largest squared distance from (qx, qy) to the n column points.
/// Returns 0 when n == 0.
double MaxSquaredDistance(const double* x, const double* y, std::size_t n,
                          double qx, double qy);

/// True when this build carries the AVX2 paths and the CPU supports
/// them (checked once at startup).
bool SimdAvailable();

/// Process-wide SIMD switch, on by default. Disabling falls back to the
/// scalar loops — results are identical either way (see exactness
/// contract above); the switch exists for A/B benchmarking
/// (`--no-simd`) and for ruling SIMD out when debugging.
void SetSimdEnabled(bool enabled);

/// Current effective state: available and not disabled.
bool SimdEnabled();

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_DISTANCE_KERNEL_H_
