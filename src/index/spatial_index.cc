#include "src/index/spatial_index.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

#include "src/common/check.h"

namespace knnq {

std::uint64_t SpatialIndex::NextInstanceId() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

bool SpatialIndex::HasPoint(PointId id) const {
  BlockId block = kInvalidBlockId;
  std::size_t pos = 0;
  return FindPoint(id, &block, &pos);
}

Status ValidateInsertable(const Point& p) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return Status::InvalidArgument("point coordinates must be finite: " +
                                   p.ToString());
  }
  return Status::Ok();
}

std::size_t SpatialIndex::InsertIntoBlock(BlockId b, const Point& p) {
  KNNQ_DCHECK(b < blocks_.size());
  Block& block = blocks_[b];
  const std::size_t pos = block.end;
  points_.insert(points_.begin() + static_cast<std::ptrdiff_t>(pos), p);
  xs_.insert(xs_.begin() + static_cast<std::ptrdiff_t>(pos), p.x);
  ys_.insert(ys_.begin() + static_cast<std::ptrdiff_t>(pos), p.y);
  ids_.insert(ids_.begin() + static_cast<std::ptrdiff_t>(pos), p.id);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == b) continue;
    if (blocks_[i].begin >= pos) {
      ++blocks_[i].begin;
      ++blocks_[i].end;
    }
  }
  ++block.end;
  block.box.Extend(p);
  bounds_.Extend(p);
  return pos;
}

void SpatialIndex::EraseFromBlock(BlockId b, std::size_t pos) {
  KNNQ_DCHECK(b < blocks_.size());
  Block& block = blocks_[b];
  KNNQ_DCHECK(pos >= block.begin && pos < block.end);
  const std::size_t old_end = block.end;
  points_[pos] = points_[old_end - 1];
  xs_[pos] = xs_[old_end - 1];
  ys_[pos] = ys_[old_end - 1];
  ids_[pos] = ids_[old_end - 1];
  points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(old_end - 1));
  xs_.erase(xs_.begin() + static_cast<std::ptrdiff_t>(old_end - 1));
  ys_.erase(ys_.begin() + static_cast<std::ptrdiff_t>(old_end - 1));
  ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(old_end - 1));
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == b) continue;
    if (blocks_[i].begin >= old_end) {
      --blocks_[i].begin;
      --blocks_[i].end;
    }
  }
  --block.end;
}

void SpatialIndex::RemoveSpan(BlockId b) {
  KNNQ_DCHECK(b < blocks_.size());
  Block& block = blocks_[b];
  const std::size_t count = block.end - block.begin;
  if (count == 0) return;
  const auto begin = static_cast<std::ptrdiff_t>(block.begin);
  const auto end = static_cast<std::ptrdiff_t>(block.end);
  points_.erase(points_.begin() + begin, points_.begin() + end);
  xs_.erase(xs_.begin() + begin, xs_.begin() + end);
  ys_.erase(ys_.begin() + begin, ys_.begin() + end);
  ids_.erase(ids_.begin() + begin, ids_.begin() + end);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == b) continue;
    if (blocks_[i].begin >= block.end) {
      blocks_[i].begin -= count;
      blocks_[i].end -= count;
    }
  }
  block.end = block.begin;
}

void SpatialIndex::SyncColumns() {
  xs_.resize(points_.size());
  ys_.resize(points_.size());
  ids_.resize(points_.size());
  SyncColumnsRange(0, points_.size());
}

void SpatialIndex::SyncColumnsRange(std::size_t begin, std::size_t end) {
  KNNQ_DCHECK(end <= points_.size() && end <= xs_.size());
  for (std::size_t i = begin; i < end; ++i) {
    xs_[i] = points_[i].x;
    ys_[i] = points_[i].y;
    ids_[i] = points_[i].id;
  }
}

bool SpatialIndex::ColumnsConsistent() const {
  if (xs_.size() != points_.size() || ys_.size() != points_.size() ||
      ids_.size() != points_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    // Bitwise comparison: the columns must be byte-for-byte mirrors
    // (memcmp via bit_cast dodges -0.0 == 0.0 and NaN != NaN).
    if (std::bit_cast<std::uint64_t>(xs_[i]) !=
            std::bit_cast<std::uint64_t>(points_[i].x) ||
        std::bit_cast<std::uint64_t>(ys_[i]) !=
            std::bit_cast<std::uint64_t>(points_[i].y) ||
        ids_[i] != points_[i].id) {
      return false;
    }
  }
  return true;
}

bool SpatialIndex::FindPoint(PointId id, BlockId* block,
                             std::size_t* pos) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].id != id) continue;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if (i >= blocks_[b].begin && i < blocks_[b].end) {
        *block = static_cast<BlockId>(b);
        *pos = i;
        return true;
      }
    }
    KNNQ_CHECK_MSG(false, "indexed point belongs to no block span");
  }
  return false;
}

}  // namespace knnq
