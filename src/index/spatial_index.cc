#include "src/index/spatial_index.h"

#include <cmath>

#include "src/common/check.h"

namespace knnq {

Status ValidateInsertable(const Point& p) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return Status::InvalidArgument("point coordinates must be finite: " +
                                   p.ToString());
  }
  return Status::Ok();
}

std::size_t SpatialIndex::InsertIntoBlock(BlockId b, const Point& p) {
  KNNQ_DCHECK(b < blocks_.size());
  Block& block = blocks_[b];
  const std::size_t pos = block.end;
  points_.insert(points_.begin() + static_cast<std::ptrdiff_t>(pos), p);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == b) continue;
    if (blocks_[i].begin >= pos) {
      ++blocks_[i].begin;
      ++blocks_[i].end;
    }
  }
  ++block.end;
  block.box.Extend(p);
  bounds_.Extend(p);
  return pos;
}

void SpatialIndex::EraseFromBlock(BlockId b, std::size_t pos) {
  KNNQ_DCHECK(b < blocks_.size());
  Block& block = blocks_[b];
  KNNQ_DCHECK(pos >= block.begin && pos < block.end);
  const std::size_t old_end = block.end;
  points_[pos] = points_[old_end - 1];
  points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(old_end - 1));
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == b) continue;
    if (blocks_[i].begin >= old_end) {
      --blocks_[i].begin;
      --blocks_[i].end;
    }
  }
  --block.end;
}

void SpatialIndex::RemoveSpan(BlockId b) {
  KNNQ_DCHECK(b < blocks_.size());
  Block& block = blocks_[b];
  const std::size_t count = block.end - block.begin;
  if (count == 0) return;
  points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(block.begin),
                points_.begin() + static_cast<std::ptrdiff_t>(block.end));
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i == b) continue;
    if (blocks_[i].begin >= block.end) {
      blocks_[i].begin -= count;
      blocks_[i].end -= count;
    }
  }
  block.end = block.begin;
}

bool SpatialIndex::FindPoint(PointId id, BlockId* block,
                             std::size_t* pos) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].id != id) continue;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      if (i >= blocks_[b].begin && i < blocks_[b].end) {
        *block = static_cast<BlockId>(b);
        *pos = i;
        return true;
      }
    }
    KNNQ_CHECK_MSG(false, "indexed point belongs to no block span");
  }
  return false;
}

}  // namespace knnq
