// Bounded top-k queue for neighborhood extraction.
//
// A fixed-capacity binary max-heap of the k best (smallest) candidates
// seen so far, ordered by (squared distance, id) — the same total order
// the whole repository ranks neighbors by. The root is the current
// k-th best, so `threshold()` exposes the running cut the way pisa's
// topk_queue does: a candidate (or a whole block, via MINDIST) whose
// squared distance strictly exceeds the threshold cannot change the
// result, while one that ties can still win on id.
//
// Storage is borrowed from the caller (the query arena), so
// constructing a queue performs no allocation; the borrowed vector's
// capacity persists across queries.
//
// The heap operations are the textbook push_heap / pop_heap sequences
// std::priority_queue performs, with the identical comparator — the
// heap array, and therefore the extracted order, is bit-for-bit what
// the previous priority_queue-based code produced.

#ifndef KNNQ_SRC_INDEX_TOPK_H_
#define KNNQ_SRC_INDEX_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "src/common/point.h"

namespace knnq {

/// One top-k candidate: squared distance plus the point it came from.
struct TopKEntry {
  double sq_dist;
  PointId id;
  double x;
  double y;
};

class TopKQueue {
 public:
  /// Binds the queue to `storage` (cleared, capacity kept) with
  /// capacity `k`. `storage` must outlive the queue.
  TopKQueue(std::size_t k, std::vector<TopKEntry>& storage)
      : k_(k), heap_(storage) {
    heap_.clear();
  }

  TopKQueue(const TopKQueue&) = delete;
  TopKQueue& operator=(const TopKQueue&) = delete;

  bool full() const { return heap_.size() >= k_; }
  std::size_t size() const { return heap_.size(); }

  /// The running cut: squared distance of the current k-th best entry,
  /// +infinity while the queue is not full. Callers prune on strict >
  /// (a tie can still displace the root on id).
  double threshold() const {
    return full() ? heap_.front().sq_dist
                  : std::numeric_limits<double>::infinity();
  }

  /// Offers a candidate; keeps the k best under (sq_dist, id).
  void Push(const TopKEntry& e) {
    if (heap_.size() < k_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), Less);
    } else if (k_ > 0 && Less(e, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back() = e;
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
  }

  /// Sorts the entries ascending by (sq_dist, id) in the borrowed
  /// storage and returns them. The queue is spent afterwards — rebind
  /// a new TopKQueue to reuse the storage.
  const std::vector<TopKEntry>& SortAscending() {
    std::sort_heap(heap_.begin(), heap_.end(), Less);
    return heap_;
  }

 private:
  static bool Less(const TopKEntry& a, const TopKEntry& b) {
    if (a.sq_dist != b.sq_dist) return a.sq_dist < b.sq_dist;
    return a.id < b.id;
  }

  std::size_t k_;
  std::vector<TopKEntry>& heap_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_TOPK_H_
