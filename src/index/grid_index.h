// GridIndex: uniform grid over the data's bounding box.
//
// The paper's evaluation indexes all datasets with "a simple grid" to
// show the algorithms work even with the simplest block structure; this
// is the default index in the benchmark harness. Cells are sized so that
// the average occupancy approximates `GridOptions::target_points_per_cell`
// and cells stay roughly square. Only non-empty cells become blocks.
//
// Block scans use an incremental ring expansion around the query cell
// rather than heapifying every block, so starting a scan is O(1); the
// Counting algorithm (Procedure 1) relies on this to scan a handful of
// blocks per outer tuple.

#ifndef KNNQ_SRC_INDEX_GRID_INDEX_H_
#define KNNQ_SRC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// Construction parameters for GridIndex.
struct GridOptions {
  /// Average number of points per cell the sizing heuristic aims for.
  std::size_t target_points_per_cell = 64;

  /// Upper bound on cells per axis, to cap memory on huge sparse extents.
  std::size_t max_cells_per_axis = 4096;
};

/// Uniform-grid spatial index. Mutable via Insert / Erase / BulkLoad:
/// in-extent inserts and erases maintain per-cell spans, counts and
/// boxes incrementally; a point outside the built extent or an
/// occupancy drift past a factor of two triggers an automatic
/// re-gridding (the cell geometry is only near-optimal for the
/// cardinality it was sized for).
class GridIndex final : public SpatialIndex {
 public:
  /// Builds a grid over `points`. Fails on invalid options
  /// (target_points_per_cell == 0). An empty relation yields a valid
  /// index with zero blocks.
  static Result<std::unique_ptr<GridIndex>> Build(PointSet points,
                                                  const GridOptions& options);

  BlockId Locate(const Point& p) const override;
  std::unique_ptr<BlockScan> NewScan(const Point& query,
                                     ScanOrder order) const override;
  std::string Describe() const override;
  IndexType type() const override { return IndexType::kGrid; }
  std::unique_ptr<SpatialIndex> Clone() const override {
    return std::unique_ptr<SpatialIndex>(new GridIndex(*this));
  }

  Status Insert(const Point& p) override;
  Status Erase(PointId id) override;
  Status BulkLoad(PointSet points) override;

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }

 private:
  friend class GridBlockScan;

  GridIndex() = default;
  /// Clone() only: all state is value members, so the memberwise copy
  /// (fresh instance_id via the base) is a full deep copy.
  GridIndex(const GridIndex&) = default;

  /// Cell coordinates of an arbitrary location, clamped into the grid.
  void CellOf(double x, double y, std::size_t* ci, std::size_t* cj) const;

  /// Region box of cell (ci, cj).
  BoundingBox CellBox(std::size_t ci, std::size_t cj) const;

  /// blocks_ index of cell (ci, cj), or kInvalidBlockId if empty.
  BlockId CellBlock(std::size_t ci, std::size_t cj) const {
    return cell_to_block_[cj * cols_ + ci];
  }

  /// Rebuilds this object in place from `points` (cell geometry is
  /// re-derived for the new cardinality and extent).
  Status Rebuild(PointSet points);

  /// True when the point count has drifted far enough from the count
  /// the cell geometry was sized for that a re-grid pays off.
  bool GeometryStale(std::size_t n) const;

  /// Swap-removes the (empty) block `b`, fixing cell_to_block_ links.
  void RemoveEmptyBlock(BlockId b);

  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  /// min(cell_w_, cell_h_): the per-ring distance lower bound.
  double min_cell_dim_ = 0.0;
  std::vector<BlockId> cell_to_block_;
  /// blocks_ index -> flat cell index (the reverse of cell_to_block_).
  std::vector<std::size_t> block_cell_;
  /// Point count the current geometry was sized for.
  std::size_t built_points_ = 0;
  GridOptions options_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_GRID_INDEX_H_
