// Block: the unit of spatial pruning.
//
// Section 2 of the paper assumes an index that partitions space into
// blocks and "maintains the count of points in each block". A Block is
// therefore a region (bounding box) plus the contiguous span of indexed
// points it contains. All of the paper's pruning rules consume only the
// box (for MINDIST/MAXDIST/center/diagonal) and the count.

#ifndef KNNQ_SRC_INDEX_BLOCK_H_
#define KNNQ_SRC_INDEX_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "src/common/bbox.h"

namespace knnq {

/// Index of a block within its SpatialIndex; dense in [0, num_blocks).
using BlockId = std::uint32_t;

/// Sentinel for "no block" (e.g. Locate on an empty region).
inline constexpr BlockId kInvalidBlockId = static_cast<BlockId>(-1);

/// A leaf region of a spatial index together with its point span.
struct Block {
  /// The region covered by the block. For the grid and quadtree this is
  /// the cell region; for the R-tree it is the leaf MBR. Every indexed
  /// point of the block lies inside `box` — the only property the
  /// pruning proofs rely on.
  BoundingBox box;

  /// First point of the block in the index's point array.
  std::size_t begin = 0;
  /// One past the last point of the block.
  std::size_t end = 0;

  /// Number of points in the block (the count the paper's Section 2
  /// requires the index to maintain).
  std::size_t count() const { return end - begin; }

  /// Center of the block region (Procedure 3 probes block centers).
  Point Center() const { return box.Center(); }

  /// Diagonal length of the block region (`block.diagonal` in the paper).
  double Diagonal() const { return box.Diagonal(); }
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_BLOCK_H_
