#include "src/index/quadtree_index.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/check.h"

namespace knnq {

Result<std::unique_ptr<QuadtreeIndex>> QuadtreeIndex::Build(
    PointSet points, const QuadtreeOptions& options) {
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  if (options.max_depth == 0) {
    return Status::InvalidArgument("max_depth must be > 0");
  }

  auto tree = std::unique_ptr<QuadtreeIndex>(new QuadtreeIndex());
  tree->bounds_ = BoundingBox::Of(points);
  tree->points_ = std::move(points);
  if (tree->points_.empty()) return tree;

  tree->nodes_.emplace_back();
  tree->root_ = 0;
  tree->FillNode(tree->root_, 0, tree->points_.size(), tree->bounds_, 0,
                 options);
  return tree;
}

std::uint32_t QuadtreeIndex::FillNode(std::uint32_t idx, std::size_t begin,
                                      std::size_t end,
                                      const BoundingBox& region,
                                      std::size_t depth,
                                      const QuadtreeOptions& options) {
  KNNQ_DCHECK(end > begin);
  nodes_[idx].box = region;
  depth_ = std::max(depth_, depth);

  if (end - begin <= options.leaf_capacity || depth >= options.max_depth) {
    nodes_[idx].block = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(Block{.box = region, .begin = begin, .end = end});
    return idx;
  }

  // Partition the span into the four midpoint quadrants: first split by
  // y, then split each half by x, leaving each quadrant contiguous.
  const Point mid = region.Center();
  const auto first = points_.begin();
  const auto y_split = std::partition(
      first + static_cast<std::ptrdiff_t>(begin),
      first + static_cast<std::ptrdiff_t>(end),
      [&](const Point& p) { return p.y < mid.y; });
  const auto x_split_low = std::partition(
      first + static_cast<std::ptrdiff_t>(begin), y_split,
      [&](const Point& p) { return p.x < mid.x; });
  const auto x_split_high =
      std::partition(y_split, first + static_cast<std::ptrdiff_t>(end),
                     [&](const Point& p) { return p.x < mid.x; });

  struct Quadrant {
    std::size_t begin;
    std::size_t end;
    BoundingBox box;
  };
  const auto off = [&](auto it) {
    return static_cast<std::size_t>(it - first);
  };
  const Quadrant quadrants[4] = {
      {begin, off(x_split_low),
       BoundingBox(region.min_x(), region.min_y(), mid.x, mid.y)},
      {off(x_split_low), off(y_split),
       BoundingBox(mid.x, region.min_y(), region.max_x(), mid.y)},
      {off(y_split), off(x_split_high),
       BoundingBox(region.min_x(), mid.y, mid.x, region.max_y())},
      {off(x_split_high), end,
       BoundingBox(mid.x, mid.y, region.max_x(), region.max_y())},
  };

  Quadrant live[4];
  std::uint32_t live_count = 0;
  for (const Quadrant& q : quadrants) {
    if (q.end > q.begin) live[live_count++] = q;
  }
  KNNQ_DCHECK(live_count > 0);

  // Claim contiguous slots for all children before recursing, so that
  // TreeScan's first_child/num_children CSR layout holds.
  const auto first_child = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t c = 0; c < live_count; ++c) nodes_.emplace_back();
  nodes_[idx].first_child = first_child;
  nodes_[idx].num_children = live_count;

  for (std::uint32_t c = 0; c < live_count; ++c) {
    FillNode(first_child + c, live[c].begin, live[c].end, live[c].box,
             depth + 1, options);
  }
  return idx;
}

BlockId QuadtreeIndex::Locate(const Point& p) const {
  if (root_ == kNoNode) return kInvalidBlockId;
  // DFS over children whose region contains p; region boundaries are
  // shared between siblings, so verify point identity at leaves.
  std::vector<std::uint32_t> stack = {root_};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[idx];
    if (!node.box.Contains(p)) continue;
    if (node.is_leaf()) {
      for (const Point& q : BlockPoints(node.block)) {
        if (q.id == p.id && q.x == p.x && q.y == p.y) return node.block;
      }
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      stack.push_back(node.first_child + c);
    }
  }
  return kInvalidBlockId;
}

std::unique_ptr<BlockScan> QuadtreeIndex::NewScan(const Point& query,
                                                  ScanOrder order) const {
  return std::make_unique<TreeScan>(
      nodes_, root_ == kNoNode ? nodes_.size() : root_, query, order);
}

std::string QuadtreeIndex::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "quadtree depth %zu, %zu blocks, %zu points", depth_,
                num_blocks(), num_points());
  return buf;
}

}  // namespace knnq
