#include "src/index/quadtree_index.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace knnq {

Result<std::unique_ptr<QuadtreeIndex>> QuadtreeIndex::Build(
    PointSet points, const QuadtreeOptions& options) {
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  if (options.max_depth == 0) {
    return Status::InvalidArgument("max_depth must be > 0");
  }

  auto tree = std::unique_ptr<QuadtreeIndex>(new QuadtreeIndex());
  tree->options_ = options;
  tree->bounds_ = BoundingBox::Of(points);
  tree->points_ = std::move(points);
  if (tree->points_.empty()) {
    tree->SyncColumns();
    return tree;
  }

  tree->nodes_.emplace_back();
  tree->root_ = 0;
  tree->FillNode(tree->root_, 0, tree->points_.size(), tree->bounds_, 0,
                 options);
  tree->RefreshTreeLinks();
  tree->SyncColumns();
  return tree;
}

std::uint32_t QuadtreeIndex::FillNode(std::uint32_t idx, std::size_t begin,
                                      std::size_t end,
                                      const BoundingBox& region,
                                      std::size_t depth,
                                      const QuadtreeOptions& options) {
  KNNQ_DCHECK(end > begin);
  nodes_[idx].box = region;
  depth_ = std::max(depth_, depth);

  if (end - begin <= options.leaf_capacity || depth >= options.max_depth) {
    nodes_[idx].block = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(Block{.box = region, .begin = begin, .end = end});
    return idx;
  }

  // Partition the span into the four midpoint quadrants: first split by
  // y, then split each half by x, leaving each quadrant contiguous.
  const Point mid = region.Center();
  const auto first = points_.begin();
  const auto y_split = std::partition(
      first + static_cast<std::ptrdiff_t>(begin),
      first + static_cast<std::ptrdiff_t>(end),
      [&](const Point& p) { return p.y < mid.y; });
  const auto x_split_low = std::partition(
      first + static_cast<std::ptrdiff_t>(begin), y_split,
      [&](const Point& p) { return p.x < mid.x; });
  const auto x_split_high =
      std::partition(y_split, first + static_cast<std::ptrdiff_t>(end),
                     [&](const Point& p) { return p.x < mid.x; });

  struct Quadrant {
    std::size_t begin;
    std::size_t end;
    BoundingBox box;
  };
  const auto off = [&](auto it) {
    return static_cast<std::size_t>(it - first);
  };
  const Quadrant quadrants[4] = {
      {begin, off(x_split_low),
       BoundingBox(region.min_x(), region.min_y(), mid.x, mid.y)},
      {off(x_split_low), off(y_split),
       BoundingBox(mid.x, region.min_y(), region.max_x(), mid.y)},
      {off(y_split), off(x_split_high),
       BoundingBox(region.min_x(), mid.y, mid.x, region.max_y())},
      {off(x_split_high), end,
       BoundingBox(mid.x, mid.y, region.max_x(), region.max_y())},
  };

  Quadrant live[4];
  std::uint32_t live_count = 0;
  for (const Quadrant& q : quadrants) {
    if (q.end > q.begin) live[live_count++] = q;
  }
  KNNQ_DCHECK(live_count > 0);

  // Claim contiguous slots for all children before recursing, so that
  // TreeScan's first_child/num_children CSR layout holds.
  const auto first_child = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t c = 0; c < live_count; ++c) nodes_.emplace_back();
  nodes_[idx].first_child = first_child;
  nodes_[idx].num_children = live_count;

  for (std::uint32_t c = 0; c < live_count; ++c) {
    FillNode(first_child + c, live[c].begin, live[c].end, live[c].box,
             depth + 1, options);
  }
  return idx;
}

BlockId QuadtreeIndex::Locate(const Point& p) const {
  if (root_ == kNoNode) return kInvalidBlockId;
  // DFS over children whose region contains p; region boundaries are
  // shared between siblings, so verify point identity at leaves.
  std::vector<std::uint32_t> stack = {root_};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[idx];
    if (!node.box.Contains(p)) continue;
    if (node.is_leaf()) {
      for (const Point& q : BlockPoints(node.block)) {
        if (q.id == p.id && q.x == p.x && q.y == p.y) return node.block;
      }
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      stack.push_back(node.first_child + c);
    }
  }
  return kInvalidBlockId;
}

Status QuadtreeIndex::Rebuild(PointSet points) {
  auto built = Build(std::move(points), options_);
  if (!built.ok()) return built.status();
  QuadtreeIndex& other = **built;
  AdoptTreeFrom(other);
  depth_ = other.depth_;
  return Status::Ok();
}

BoundingBox QuadtreeIndex::QuadrantBox(const BoundingBox& region,
                                       const Point& p) {
  const Point mid = region.Center();
  const bool x_high = !(p.x < mid.x);
  const bool y_high = !(p.y < mid.y);
  const double x0 = x_high ? mid.x : region.min_x();
  const double x1 = x_high ? region.max_x() : mid.x;
  const double y0 = y_high ? mid.y : region.min_y();
  const double y1 = y_high ? region.max_y() : mid.y;
  return BoundingBox(x0, y0, x1, y1);
}

std::uint32_t QuadtreeIndex::FindChildWithBox(std::uint32_t node,
                                              const BoundingBox& box) const {
  const TreeNode& t = nodes_[node];
  for (std::uint32_t c = 0; c < t.num_children; ++c) {
    if (nodes_[t.first_child + c].box == box) return t.first_child + c;
  }
  return kNoNode;
}

void QuadtreeIndex::SplitLeaf(std::uint32_t node, std::size_t depth) {
  const BlockId old_block = nodes_[node].block;
  const BoundingBox region = nodes_[node].box;
  const std::size_t begin = blocks_[old_block].begin;
  const std::size_t end = blocks_[old_block].end;

  // The exact partition FillNode performs: y first, then x per half.
  const Point mid = region.Center();
  const auto first = points_.begin();
  const auto y_split = std::partition(
      first + static_cast<std::ptrdiff_t>(begin),
      first + static_cast<std::ptrdiff_t>(end),
      [&](const Point& p) { return p.y < mid.y; });
  const auto x_split_low = std::partition(
      first + static_cast<std::ptrdiff_t>(begin), y_split,
      [&](const Point& p) { return p.x < mid.x; });
  const auto x_split_high =
      std::partition(y_split, first + static_cast<std::ptrdiff_t>(end),
                     [&](const Point& p) { return p.x < mid.x; });
  // The partitions permuted points_[begin, end) behind the columns'
  // back; mirror the new order.
  SyncColumnsRange(begin, end);
  const auto off = [&](auto it) {
    return static_cast<std::size_t>(it - first);
  };
  struct Quadrant {
    std::size_t begin;
    std::size_t end;
    BoundingBox box;
  };
  const Quadrant quadrants[4] = {
      {begin, off(x_split_low),
       BoundingBox(region.min_x(), region.min_y(), mid.x, mid.y)},
      {off(x_split_low), off(y_split),
       BoundingBox(mid.x, region.min_y(), region.max_x(), mid.y)},
      {off(y_split), off(x_split_high),
       BoundingBox(region.min_x(), mid.y, mid.x, region.max_y())},
      {off(x_split_high), end,
       BoundingBox(mid.x, mid.y, region.max_x(), region.max_y())},
  };

  nodes_[node].block = kInvalidBlockId;
  bool reused = false;
  for (const Quadrant& q : quadrants) {
    if (q.end <= q.begin) continue;
    BlockId block;
    if (!reused) {
      block = old_block;
      reused = true;
    } else {
      block = static_cast<BlockId>(blocks_.size());
      blocks_.emplace_back();
      block_node_.push_back(kNoNode);
    }
    blocks_[block] = Block{.box = q.box, .begin = q.begin, .end = q.end};
    TreeNode leaf;
    leaf.box = q.box;
    leaf.block = block;
    const std::uint32_t child = AttachNewChild(node, leaf);
    block_node_[block] = child;
  }
  depth_ = std::max(depth_, depth + 1);

  // A quadrant can inherit every point (duplicates, skew): keep
  // splitting while capacity and depth allow.
  const std::uint32_t first_child = nodes_[node].first_child;
  const std::uint32_t num_children = nodes_[node].num_children;
  for (std::uint32_t c = 0; c < num_children; ++c) {
    const std::uint32_t child = first_child + c;
    if (blocks_[nodes_[child].block].count() > options_.leaf_capacity &&
        depth + 1 < options_.max_depth) {
      SplitLeaf(child, depth + 1);
    }
  }
}

Status QuadtreeIndex::Insert(const Point& p) {
  if (Status s = ValidateInsertable(p); !s.ok()) return s;
  if (root_ == kNoNode || !nodes_[root_].box.Contains(p) ||
      TooManyDeadNodes()) {
    PointSet points = std::move(points_);
    points.push_back(p);
    return Rebuild(std::move(points));
  }
  std::uint32_t node = root_;
  std::size_t depth = 0;
  while (!nodes_[node].is_leaf()) {
    const BoundingBox quadrant = QuadrantBox(nodes_[node].box, p);
    std::uint32_t child = FindChildWithBox(node, quadrant);
    if (child == kNoNode) {
      // The quadrant was empty at build time: grow a fresh leaf whose
      // (empty) span sits at the end of the parent's subtree span, so
      // sibling spans keep tiling their ancestors' spans.
      std::size_t sb = static_cast<std::size_t>(-1), se = 0;
      SubtreeSpan(node, &sb, &se);
      const auto block = static_cast<BlockId>(blocks_.size());
      blocks_.push_back(Block{.box = quadrant, .begin = se, .end = se});
      block_node_.push_back(kNoNode);
      TreeNode leaf;
      leaf.box = quadrant;
      leaf.block = block;
      child = AttachNewChild(node, leaf);
      block_node_[block] = child;
    }
    node = child;
    ++depth;
  }
  InsertIntoBlock(nodes_[node].block, p);
  if (blocks_[nodes_[node].block].count() > options_.leaf_capacity &&
      depth < options_.max_depth) {
    SplitLeaf(node, depth);
  }
  return Status::Ok();
}

void QuadtreeIndex::MaybeMerge(std::uint32_t parent) {
  if (parent == kNoNode) return;
  const TreeNode& p = nodes_[parent];
  if (p.is_leaf() || p.num_children == 0) return;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < p.num_children; ++c) {
    const TreeNode& child = nodes_[p.first_child + c];
    if (!child.is_leaf()) return;
    total += blocks_[child.block].count();
  }
  if (total > options_.leaf_capacity / 2) return;

  std::size_t span_begin = static_cast<std::size_t>(-1), span_end = 0;
  std::vector<BlockId> child_blocks;
  for (std::uint32_t c = 0; c < p.num_children; ++c) {
    const TreeNode& child = nodes_[p.first_child + c];
    const Block& block = blocks_[child.block];
    if (block.begin < span_begin) span_begin = block.begin;
    if (block.end > span_end) span_end = block.end;
    child_blocks.push_back(child.block);
  }

  // The parent becomes a leaf over the children's combined (contiguous)
  // span, reusing the first child's block; the other blocks and every
  // child slot die.
  const BlockId keep = child_blocks.front();
  dead_nodes_ += nodes_[parent].num_children;
  nodes_[parent].num_children = 0;
  nodes_[parent].block = keep;
  blocks_[keep] =
      Block{.box = nodes_[parent].box, .begin = span_begin, .end = span_end};
  block_node_[keep] = parent;
  std::sort(child_blocks.begin() + 1, child_blocks.end(),
            std::greater<BlockId>());
  for (std::size_t i = 1; i < child_blocks.size(); ++i) {
    RemoveBlock(child_blocks[i]);
  }
}

Status QuadtreeIndex::Erase(PointId id) {
  BlockId block;
  std::size_t pos;
  if (!FindPoint(id, &block, &pos)) {
    return Status::NotFound("no indexed point with id " +
                            std::to_string(id));
  }
  std::uint32_t node = block_node_[block];
  EraseFromBlock(block, pos);
  if (points_.empty()) {
    ResetTreeEmpty();
    depth_ = 0;
    return Status::Ok();
  }
  std::uint32_t parent = parent_[node];
  if (blocks_[block].count() == 0 && parent != kNoNode) {
    DetachChild(parent, node);
    RemoveBlock(block);
    // Pruning an only child can leave childless ancestors behind.
    while (parent != root_ && nodes_[parent].num_children == 0) {
      const std::uint32_t up = parent_[parent];
      DetachChild(up, parent);
      parent = up;
    }
  }
  MaybeMerge(parent);
  if (TooManyDeadNodes()) return Rebuild(std::move(points_));
  return Status::Ok();
}

Status QuadtreeIndex::BulkLoad(PointSet points) {
  return Rebuild(std::move(points));
}

std::unique_ptr<BlockScan> QuadtreeIndex::NewScan(const Point& query,
                                                  ScanOrder order) const {
  return std::make_unique<TreeScan>(
      nodes_, root_ == kNoNode ? nodes_.size() : root_, query, order);
}

std::string QuadtreeIndex::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "quadtree depth %zu, %zu blocks, %zu points", depth_,
                num_blocks(), num_points());
  return buf;
}

}  // namespace knnq
