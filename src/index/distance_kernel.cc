#include "src/index/distance_kernel.h"

#include <atomic>
#include <limits>

// The AVX2 paths are compiled per-function via the target attribute, so
// no global -mavx2 is needed (and the rest of the binary stays baseline
// x86-64). KNNQ_ENABLE_SIMD is the CMake-level opt-out for toolchains
// or targets where the intrinsics are unwanted.
#if defined(KNNQ_ENABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define KNNQ_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace knnq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::atomic<bool> g_simd_enabled{true};

// --- Scalar kernels. --------------------------------------------------
// restrict + branch-free bodies: gcc/clang auto-vectorize these with
// baseline SSE2 at -O2/-O3. mul and add stay separate operations (no
// -mfma in the build), so results match the AVX2 paths bit-for-bit.

void BatchScalar(const double* __restrict__ x, const double* __restrict__ y,
                 std::size_t n, double qx, double qy,
                 double* __restrict__ out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - qx;
    const double dy = y[i] - qy;
    out[i] = dx * dx + dy * dy;
  }
}

double MinScalar(const double* __restrict__ x, const double* __restrict__ y,
                 std::size_t n, double qx, double qy) {
  double best = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - qx;
    const double dy = y[i] - qy;
    const double sq = dx * dx + dy * dy;
    best = sq < best ? sq : best;
  }
  return best;
}

double MaxScalar(const double* __restrict__ x, const double* __restrict__ y,
                 std::size_t n, double qx, double qy) {
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - qx;
    const double dy = y[i] - qy;
    const double sq = dx * dx + dy * dy;
    best = sq > best ? sq : best;
  }
  return best;
}

#if KNNQ_SIMD_AVX2

// --- AVX2 kernels. ----------------------------------------------------
// Four doubles per iteration; sub/mul/add only (no FMA — contraction
// would change rounding and break the byte-identical contract with the
// scalar path). Unaligned loads: column spans start at arbitrary
// offsets inside the index's arrays.

__attribute__((target("avx2"))) void BatchAvx2(
    const double* __restrict__ x, const double* __restrict__ y,
    std::size_t n, double qx, double qy, double* __restrict__ out) {
  const __m256d qxv = _mm256_set1_pd(qx);
  const __m256d qyv = _mm256_set1_pd(qy);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), qxv);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), qyv);
    const __m256d sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    _mm256_storeu_pd(out + i, sq);
  }
  for (; i < n; ++i) {
    const double dx = x[i] - qx;
    const double dy = y[i] - qy;
    out[i] = dx * dx + dy * dy;
  }
}

__attribute__((target("avx2"))) double MinAvx2(const double* __restrict__ x,
                                               const double* __restrict__ y,
                                               std::size_t n, double qx,
                                               double qy) {
  const __m256d qxv = _mm256_set1_pd(qx);
  const __m256d qyv = _mm256_set1_pd(qy);
  __m256d acc = _mm256_set1_pd(kInf);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), qxv);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), qyv);
    const __m256d sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    acc = _mm256_min_pd(acc, sq);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double best = lanes[0];
  best = lanes[1] < best ? lanes[1] : best;
  best = lanes[2] < best ? lanes[2] : best;
  best = lanes[3] < best ? lanes[3] : best;
  for (; i < n; ++i) {
    const double dx = x[i] - qx;
    const double dy = y[i] - qy;
    const double sq = dx * dx + dy * dy;
    best = sq < best ? sq : best;
  }
  return best;
}

__attribute__((target("avx2"))) double MaxAvx2(const double* __restrict__ x,
                                               const double* __restrict__ y,
                                               std::size_t n, double qx,
                                               double qy) {
  const __m256d qxv = _mm256_set1_pd(qx);
  const __m256d qyv = _mm256_set1_pd(qy);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), qxv);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), qyv);
    const __m256d sq =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    acc = _mm256_max_pd(acc, sq);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double best = lanes[0];
  best = lanes[1] > best ? lanes[1] : best;
  best = lanes[2] > best ? lanes[2] : best;
  best = lanes[3] > best ? lanes[3] : best;
  for (; i < n; ++i) {
    const double dx = x[i] - qx;
    const double dy = y[i] - qy;
    const double sq = dx * dx + dy * dy;
    best = sq > best ? sq : best;
  }
  return best;
}

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // KNNQ_SIMD_AVX2

}  // namespace

bool SimdAvailable() {
#if KNNQ_SIMD_AVX2
  static const bool available = DetectAvx2();
  return available;
#else
  return false;
#endif
}

void SetSimdEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool SimdEnabled() {
  return SimdAvailable() && g_simd_enabled.load(std::memory_order_relaxed);
}

void SquaredDistanceBatch(const double* x, const double* y, std::size_t n,
                          double qx, double qy, double* out) {
#if KNNQ_SIMD_AVX2
  if (SimdEnabled()) {
    BatchAvx2(x, y, n, qx, qy, out);
    return;
  }
#endif
  BatchScalar(x, y, n, qx, qy, out);
}

double MinSquaredDistance(const double* x, const double* y, std::size_t n,
                          double qx, double qy) {
#if KNNQ_SIMD_AVX2
  if (SimdEnabled()) return MinAvx2(x, y, n, qx, qy);
#endif
  return MinScalar(x, y, n, qx, qy);
}

double MaxSquaredDistance(const double* x, const double* y, std::size_t n,
                          double qx, double qy) {
#if KNNQ_SIMD_AVX2
  if (SimdEnabled()) return MaxAvx2(x, y, n, qx, qy);
#endif
  return MaxScalar(x, y, n, qx, qy);
}

}  // namespace knnq
