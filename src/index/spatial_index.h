// SpatialIndex: the structure-independent index contract.
//
// "The algorithms we present do not assume a specific indexing
// structure" (paper, Section 2). Every algorithm in src/core is written
// against this interface; GridIndex, QuadtreeIndex and RTreeIndex
// implement it, and the ablation benches swap them freely.
//
// The contract deliberately exposes exactly what the paper's algorithms
// consume:
//   * enumerable blocks with a bounding region and a point count,
//   * the points inside a block,
//   * MINDIST- and MAXDIST-ordered block scans from an arbitrary point,
//   * Locate: the block that stores a given indexed point.

#ifndef KNNQ_SRC_INDEX_SPATIAL_INDEX_H_
#define KNNQ_SRC_INDEX_SPATIAL_INDEX_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/index/block.h"

namespace knnq {

/// Which distance metric orders a block scan.
enum class ScanOrder {
  /// Increasing MINDIST(query, block): nearest-possible blocks first.
  kMinDist,
  /// Increasing MAXDIST(query, block): blocks that are certainly fully
  /// near the query first.
  kMaxDist,
};

/// Lazily yields blocks in the requested distance order. Obtained from
/// SpatialIndex::NewScan; cheap enough to create per query point.
class BlockScan {
 public:
  virtual ~BlockScan() = default;

  /// True if another block remains.
  virtual bool HasNext() = 0;

  /// Pops the next block. `*key_dist` receives the ordering key: the
  /// block's MINDIST or MAXDIST (true distance, not squared) from the
  /// scan's query point. Requires HasNext().
  virtual BlockId Next(double* key_dist) = 0;
};

/// A read-only spatial index over one relation (point set).
///
/// Construction copies the relation and groups points by block into one
/// contiguous array, so BlockPoints returns a span without indirection.
/// Instances are immutable after construction and safe to share across
/// threads for reads; BlockScan objects are single-threaded.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  SpatialIndex(const SpatialIndex&) = delete;
  SpatialIndex& operator=(const SpatialIndex&) = delete;

  /// Number of (non-empty) blocks.
  std::size_t num_blocks() const { return blocks_.size(); }

  /// Block metadata. `id` must be < num_blocks().
  const Block& block(BlockId id) const { return blocks_[id]; }

  /// All blocks, for whole-index passes (e.g. Procedure 4 preprocessing).
  const std::vector<Block>& blocks() const { return blocks_; }

  /// The points stored in block `id`.
  std::span<const Point> BlockPoints(BlockId id) const {
    const Block& b = blocks_[id];
    return std::span<const Point>(points_).subspan(b.begin, b.end - b.begin);
  }

  /// All indexed points, grouped by block.
  const PointSet& points() const { return points_; }

  /// Total number of indexed points.
  std::size_t num_points() const { return points_.size(); }

  /// Bounding box of the indexed data.
  const BoundingBox& bounds() const { return bounds_; }

  /// Returns the block that stores indexed point `p` (matched by
  /// location, and by id where regions can overlap), or kInvalidBlockId
  /// if `p` is not in the index.
  virtual BlockId Locate(const Point& p) const = 0;

  /// Starts a lazy block scan ordered by `order` from `query`.
  virtual std::unique_ptr<BlockScan> NewScan(const Point& query,
                                             ScanOrder order) const = 0;

  /// One-line structural description, e.g. "grid 64x48, 3072 blocks".
  virtual std::string Describe() const = 0;

 protected:
  SpatialIndex() = default;

  /// Populated by subclasses during construction.
  PointSet points_;
  std::vector<Block> blocks_;
  BoundingBox bounds_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_SPATIAL_INDEX_H_
