// SpatialIndex: the structure-independent index contract.
//
// "The algorithms we present do not assume a specific indexing
// structure" (paper, Section 2). Every algorithm in src/core is written
// against this interface; GridIndex, QuadtreeIndex and RTreeIndex
// implement it, and the ablation benches swap them freely.
//
// The contract deliberately exposes exactly what the paper's algorithms
// consume:
//   * enumerable blocks with a bounding region and a point count,
//   * the points inside a block,
//   * MINDIST- and MAXDIST-ordered block scans from an arbitrary point,
//   * Locate: the block that stores a given indexed point,
// plus a mutation API (Insert / Erase / BulkLoad) maintained
// incrementally by every structure, so relations can change without a
// rebuild. Reads stay lock-free: writers are serialized against all
// readers by the owner (QueryEngine's reader/writer protocol).

#ifndef KNNQ_SRC_INDEX_SPATIAL_INDEX_H_
#define KNNQ_SRC_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/common/status.h"
#include "src/index/block.h"

namespace knnq {

/// Available index structures. Declared here (not in index_factory.h)
/// so SpatialIndex::type() can report the structure without a header
/// cycle; the factory re-exports it.
enum class IndexType {
  kGrid,
  kQuadtree,
  kRTree,
};

/// Which distance metric orders a block scan.
enum class ScanOrder {
  /// Increasing MINDIST(query, block): nearest-possible blocks first.
  kMinDist,
  /// Increasing MAXDIST(query, block): blocks that are certainly fully
  /// near the query first.
  kMaxDist,
};

/// Lazily yields blocks in the requested distance order. Obtained from
/// SpatialIndex::NewScan; cheap enough to create per query point.
class BlockScan {
 public:
  virtual ~BlockScan() = default;

  /// True if another block remains.
  virtual bool HasNext() = 0;

  /// Pops the next block. `*key_dist` receives the ordering key: the
  /// block's MINDIST or MAXDIST (true distance, not squared) from the
  /// scan's query point. Requires HasNext().
  virtual BlockId Next(double* key_dist) = 0;

  /// Shards whose blocks this scan never had to open because the scan
  /// was abandoned before their distance lower bound came up. Only
  /// ShardedIndex's merged scan reports a nonzero value; plain
  /// structures have no shards to prune. Callers read this after
  /// breaking out of a scan loop (locality construction does) and fold
  /// it into SearchStats::shards_pruned.
  virtual std::size_t shards_pruned() const { return 0; }
};

/// Columnar view of one block's point span: parallel x / y / id arrays
/// of `size` elements. The pointers alias the index's SoA storage and
/// stay valid until the next mutation — exactly as long as a
/// BlockPoints span. The distance kernel (src/index/distance_kernel.h)
/// consumes this layout directly.
struct BlockColumns {
  const double* x = nullptr;
  const double* y = nullptr;
  const PointId* id = nullptr;
  std::size_t size = 0;
};

/// A spatial index over one relation (point set).
///
/// Construction copies the relation and groups points by block into one
/// contiguous array, so BlockPoints returns a span without indirection;
/// incremental mutation preserves that layout (spans shift, they never
/// fragment), so cold query performance is unchanged by churn.
///
/// Storage is dual-layout: the AoS point array (BlockPoints / points(),
/// the historical accessors) and parallel SoA columns x[] / y[] / id[]
/// (BlockSoA / xs() / ys() / ids()) kept byte-equal by every mutation
/// path. Hot kernels read the columns — a block scan streams 16
/// bytes/point of coordinates instead of 24-byte AoS records and
/// vectorizes cleanly; structure maintenance code keeps manipulating
/// the AoS array and resyncs the columns through the base-class
/// helpers.
///
/// Concurrency: reads are safe from any number of threads with zero
/// synchronization as long as no mutation is in flight. Insert / Erase /
/// BulkLoad are NOT thread-safe and must be serialized against all
/// readers by the caller — QueryEngine::Mutate does exactly that with a
/// writer lock. BlockScan objects are single-threaded.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  SpatialIndex& operator=(const SpatialIndex&) = delete;

  /// Process-unique identity of this index OBJECT (not its contents):
  /// fresh at construction and after Clone, never reused for the
  /// lifetime of the process. Caches key entries by this id instead of
  /// the object's address, which copy-on-write mutation would otherwise
  /// recycle (a freed index's address can be handed to a new index,
  /// silently resurrecting its stale cache entries).
  std::uint64_t instance_id() const { return instance_id_; }

  /// Number of (non-empty) blocks.
  std::size_t num_blocks() const { return blocks_.size(); }

  /// Block metadata. `id` must be < num_blocks().
  const Block& block(BlockId id) const { return blocks_[id]; }

  /// All blocks, for whole-index passes (e.g. Procedure 4 preprocessing).
  const std::vector<Block>& blocks() const { return blocks_; }

  /// The points stored in block `id`.
  std::span<const Point> BlockPoints(BlockId id) const {
    const Block& b = blocks_[id];
    return std::span<const Point>(points_).subspan(b.begin, b.end - b.begin);
  }

  /// Columnar view of the points stored in block `id` — same points,
  /// same order as BlockPoints, as parallel x/y/id arrays.
  BlockColumns BlockSoA(BlockId id) const {
    const Block& b = blocks_[id];
    return {xs_.data() + b.begin, ys_.data() + b.begin,
            ids_.data() + b.begin, b.end - b.begin};
  }

  /// All indexed points, grouped by block.
  const PointSet& points() const { return points_; }

  /// The full coordinate / id columns, parallel to points().
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }
  const std::vector<PointId>& ids() const { return ids_; }

  /// True when the SoA columns mirror points_ element-for-element.
  /// Every public mutation leaves this invariant holding; tests call it
  /// after each DML statement to catch a maintenance path that forgot
  /// to resync.
  bool ColumnsConsistent() const;

  /// Total number of indexed points.
  std::size_t num_points() const { return points_.size(); }

  /// Bounding box of the indexed data.
  const BoundingBox& bounds() const { return bounds_; }

  /// True when a point with id `id` is indexed. The public face of
  /// FindPoint, used by shard routing to decide which shard owns an
  /// erase target.
  bool HasPoint(PointId id) const;

  /// Returns the block that stores indexed point `p` (matched by
  /// location, and by id where regions can overlap), or kInvalidBlockId
  /// if `p` is not in the index.
  virtual BlockId Locate(const Point& p) const = 0;

  /// The structure this index implements (grid / quadtree / rtree). A
  /// ShardedIndex reports its children's structure.
  virtual IndexType type() const = 0;

  /// Deep copy with a fresh instance_id(). The clone is fully
  /// independent: mutating it never touches the original — the
  /// primitive copy-on-write shard replacement builds on.
  virtual std::unique_ptr<SpatialIndex> Clone() const = 0;

  /// Starts a lazy block scan ordered by `order` from `query`.
  virtual std::unique_ptr<BlockScan> NewScan(const Point& query,
                                             ScanOrder order) const = 0;

  /// One-line structural description, e.g. "grid 64x48, 3072 blocks".
  virtual std::string Describe() const = 0;

  // --- Mutation API (writer-exclusive; see class comment). ---

  /// Adds `p` to the index, maintaining the structure incrementally
  /// (cell counts and boxes for the grid, splits for the quadtree,
  /// choose-leaf + node splits for the R-tree). Structures may fall
  /// back to a full rebuild when incremental upkeep would degrade them
  /// (point outside the built extent, occupancy drift, accumulated
  /// garbage); the object's identity never changes. Fails on non-finite
  /// coordinates.
  virtual Status Insert(const Point& p) = 0;

  /// Removes the indexed point with id `id` (the first match when ids
  /// repeat), merging / condensing underfull regions per structure.
  /// Returns NotFound when no such point is indexed.
  virtual Status Erase(PointId id) = 0;

  /// Replaces the whole relation in one shot — the fast path for mass
  /// updates (KNNQL `LOAD`), equivalent to rebuilding from scratch but
  /// keeping the index object's identity.
  virtual Status BulkLoad(PointSet points) = 0;

 protected:
  SpatialIndex() = default;

  /// Copies the shared storage but assigns a FRESH instance_id — a
  /// clone is a different cache identity by design. Protected so only
  /// Clone() implementations (via the derived classes' defaulted copy
  /// constructors) can reach it.
  SpatialIndex(const SpatialIndex& other)
      : points_(other.points_),
        blocks_(other.blocks_),
        bounds_(other.bounds_),
        xs_(other.xs_),
        ys_(other.ys_),
        ids_(other.ids_) {}

  /// Moves the shared storage out of `other` (BulkLoad implementations
  /// rebuild into a scratch index, then adopt its state).
  void AdoptBaseFrom(SpatialIndex& other) {
    points_ = std::move(other.points_);
    blocks_ = std::move(other.blocks_);
    bounds_ = other.bounds_;
    xs_ = std::move(other.xs_);
    ys_ = std::move(other.ys_);
    ids_ = std::move(other.ids_);
  }

  /// Appends `p` to block `b`'s span, shifting every later span right
  /// by one, and widens the block box and index bounds to cover `p`.
  /// Returns the point's position in points_. O(n) in the memmove and
  /// O(num_blocks) in the span fixup — the price of keeping the
  /// contiguous read layout hot.
  std::size_t InsertIntoBlock(BlockId b, const Point& p);

  /// Removes the point at absolute position `pos` of block `b`'s span
  /// (order within the block is not preserved), shifting later spans
  /// left. Block boxes are left as (still valid) supersets.
  void EraseFromBlock(BlockId b, std::size_t pos);

  /// Removes block `b`'s whole span from points_ in one splice; the
  /// block becomes empty. Used when a structure evicts a region
  /// wholesale (R-tree condense-and-reinsert).
  void RemoveSpan(BlockId b);

  /// Finds the first indexed point with id `id`. On success fills
  /// `*block` / `*pos` (absolute position) and returns true.
  bool FindPoint(PointId id, BlockId* block, std::size_t* pos) const;

  /// Rebuilds the SoA columns from points_ wholesale. Build paths call
  /// this once at the end instead of maintaining columns through their
  /// partition / sort shuffles.
  void SyncColumns();

  /// Re-copies positions [begin, end) of points_ into the columns.
  /// For maintenance code that permutes points in place within a span
  /// (quadtree leaf split partitions, R-tree split sort).
  void SyncColumnsRange(std::size_t begin, std::size_t end);

  /// Populated by subclasses during construction.
  PointSet points_;
  std::vector<Block> blocks_;
  BoundingBox bounds_;

  /// SoA mirror of points_: xs_[i] == points_[i].x etc. Maintained by
  /// the base-class span helpers and the Sync* methods above.
  std::vector<double> xs_, ys_;
  std::vector<PointId> ids_;

 private:
  static std::uint64_t NextInstanceId();

  const std::uint64_t instance_id_ = NextInstanceId();
};

/// Shared argument validation for Insert implementations: rejects NaN
/// and infinite coordinates (they would poison every box metric).
Status ValidateInsertable(const Point& p);

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_SPATIAL_INDEX_H_
