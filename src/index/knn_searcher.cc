#include "src/index/knn_searcher.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/index/distance_kernel.h"
#include "src/index/sharded_index.h"
#include "src/index/topk.h"

namespace knnq {

namespace {

/// Materializes sorted top-k entries as a Neighborhood (true distances,
/// ascending by (distance, id)).
Neighborhood ToNeighborhood(const std::vector<TopKEntry>& sorted) {
  Neighborhood result(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TopKEntry& e = sorted[i];
    result[i] = Neighbor{Point{.id = e.id, .x = e.x, .y = e.y},
                         std::sqrt(e.sq_dist)};
  }
  return result;
}

}  // namespace

bool Contains(const Neighborhood& nbr, PointId id) {
  for (const Neighbor& n : nbr) {
    if (n.point.id == id) return true;
  }
  return false;
}

KnnSearcher::KnnSearcher(const SpatialIndex& index)
    : index_(index), sharded_(dynamic_cast<const ShardedIndex*>(&index)) {}

Neighborhood KnnSearcher::GetKnn(const Point& query, std::size_t k) {
  return GetKnn(query, k, nullptr);
}

Neighborhood KnnSearcher::GetKnn(const Point& query, std::size_t k,
                                 ShardMemo* memo) {
  if (sharded_ != nullptr) return GetKnnSharded(query, k, memo);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ComputeLocalityInto(index_, query, k, kInf, &stats_, arena_.phase1(),
                      locality_);
  return NeighborhoodFromLocality(query, k, locality_, kInf);
}

Neighborhood KnnSearcher::GetKnnSharded(const Point& query, std::size_t k,
                                        ShardMemo* memo) {
  if (k == 0) return {};
  ++stats_.localities_computed;
  const ShardedIndex& sharded = *sharded_;

  // Scatter order: shards by squared MINDIST from the query to their
  // data bounds, ties by shard number — deterministic and, like block
  // ordering in NeighborhoodFromLocality, purely an optimization.
  shard_order_.clear();
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    const SpatialIndex& child = sharded.shard(s);
    if (child.num_points() == 0) continue;
    shard_order_.emplace_back(child.bounds().SquaredMinDist(query), s);
  }
  std::sort(shard_order_.begin(), shard_order_.end());

  TopKQueue topk(k, arena_.heap());
  for (std::size_t i = 0; i < shard_order_.size(); ++i) {
    const auto& [sq_min, s] = shard_order_[i];
    // Distance-bound shard pruning: a shard whose bounds lie strictly
    // beyond the running k-th distance cannot hold a winner (a tie can
    // still win on id, hence strict >). The list is MINDIST-sorted, so
    // the first pruned shard proves the rest are prunable too.
    if (sq_min > topk.threshold()) {
      stats_.shards_pruned += shard_order_.size() - i;
      break;
    }
    const SpatialIndex& child = sharded.shard(s);
    if (memo != nullptr) {
      // Cached path: full per-shard neighborhoods are the cacheable
      // unit (they stay valid whatever bound other shards establish).
      Neighborhood child_nbr;
      if (memo->Lookup(child, query, k, &child_nbr)) {
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
        child_nbr = SearchOne(child, query, k);
        memo->Store(child, query, k, child_nbr);
      }
      for (const Neighbor& n : child_nbr) {
        // Recompute the squared distance rather than squaring n.dist:
        // bit-identical to the batch kernel, so cached and uncached
        // merges produce byte-identical neighborhoods.
        topk.Push(TopKEntry{SquaredDistance(n.point, query), n.point.id,
                            n.point.x, n.point.y});
      }
    } else {
      // Uncached path: clip the shard's locality to the running bound
      // (Procedure 5's restricted search — exact for every point that
      // could still enter the top k).
      const double clip = std::sqrt(topk.threshold());
      ComputeLocalityInto(child, query, k, clip, &stats_, arena_.phase1(),
                          locality_);
      --stats_.localities_computed;  // Counted once per gather, not per shard.
      AccumulateFromLocality(child, query, locality_, clip, topk);
    }
  }
  stats_.arena_bytes = arena_.bytes() +
                       locality_.blocks.capacity() * sizeof(BlockId) +
                       shard_order_.capacity() * sizeof(shard_order_[0]) +
                       shard_heap_.capacity() * sizeof(TopKEntry);
  return ToNeighborhood(topk.SortAscending());
}

Neighborhood KnnSearcher::SearchOne(const SpatialIndex& index,
                                    const Point& query, std::size_t k) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ComputeLocalityInto(index, query, k, kInf, &stats_, arena_.phase1(),
                      locality_);
  --stats_.localities_computed;  // Counted once per gather, not per shard.
  TopKQueue topk(k, shard_heap_);
  AccumulateFromLocality(index, query, locality_, kInf, topk);
  return ToNeighborhood(topk.SortAscending());
}

Neighborhood KnnSearcher::GetKnnRestricted(const Point& query, std::size_t k,
                                           double threshold) {
  ComputeLocalityInto(index_, query, k, threshold, &stats_, arena_.phase1(),
                      locality_);
  // Individual points beyond the threshold are skipped as well: no such
  // point can displace a within-threshold point from the top k (any
  // point preceding a within-threshold point is itself within the
  // threshold), and the caller's final intersection discards them
  // regardless. This keeps the candidate heap small when k is large.
  return NeighborhoodFromLocality(query, k, locality_, threshold);
}

Neighborhood KnnSearcher::NeighborhoodFromLocality(const Point& query,
                                                   std::size_t k,
                                                   const Locality& locality,
                                                   double threshold) {
  if (k == 0 || locality.blocks.empty()) return {};
  TopKQueue topk(k, arena_.heap());
  AccumulateFromLocality(index_, query, locality, threshold, topk);
  stats_.arena_bytes =
      arena_.bytes() + locality_.blocks.capacity() * sizeof(BlockId);
  return ToNeighborhood(topk.SortAscending());
}

void KnnSearcher::AccumulateFromLocality(const SpatialIndex& index,
                                         const Point& query,
                                         const Locality& locality,
                                         double threshold, TopKQueue& topk) {
  const bool restricted = !std::isinf(threshold);

  // Visit locality blocks nearest-first so the heap bound can cut off
  // the scan early; [15] guarantees correctness for any visit order, so
  // ordering is purely an optimization.
  auto& ordered = arena_.ordered_blocks();
  ordered.reserve(locality.blocks.size());
  for (const BlockId id : locality.blocks) {
    ordered.emplace_back(index.block(id).box.SquaredMinDist(query), id);
  }
  std::sort(ordered.begin(), ordered.end());

  for (std::size_t bi = 0; bi < ordered.size(); ++bi) {
    const auto& [sq_min_dist, id] = ordered[bi];
    // Bound-based block skip. Strict >: a block at exactly the k-th
    // distance can still hold a point that wins the (distance, id)
    // tie-break. The list is MINDIST-sorted, so the first block past
    // the bound proves every remaining block is skippable too.
    if (sq_min_dist > topk.threshold()) {
      stats_.blocks_skipped += ordered.size() - bi;
      break;
    }
    ++stats_.blocks_scanned;
    const BlockColumns cols = index.BlockSoA(id);
    stats_.points_scanned += cols.size;
    double* sq = arena_.distances(cols.size);
    SquaredDistanceBatch(cols.x, cols.y, cols.size, query.x, query.y, sq);
    for (std::size_t i = 0; i < cols.size; ++i) {
      // Compare in sqrt space: the caller derived the threshold with the
      // same sqrt, so the boundary point is kept exactly (sq_dist
      // against a squared threshold can lose it to rounding).
      if (restricted && std::sqrt(sq[i]) > threshold) continue;
      topk.Push(TopKEntry{sq[i], cols.id[i], cols.x[i], cols.y[i]});
    }
  }
}

Neighborhood BruteForceKnn(const PointSet& points, const Point& query,
                           std::size_t k) {
  std::vector<TopKEntry> storage;
  TopKQueue topk(k, storage);
  for (const Point& p : points) {
    topk.Push(TopKEntry{SquaredDistance(p, query), p.id, p.x, p.y});
  }
  return ToNeighborhood(topk.SortAscending());
}

}  // namespace knnq
