#include "src/index/knn_searcher.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/common/check.h"

namespace knnq {

namespace {

/// Candidate during neighborhood extraction, compared by (squared
/// distance, id). The heap keeps the *worst* candidate on top.
struct Candidate {
  double sq_dist;
  PointId id;
  double x;
  double y;

  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.sq_dist != b.sq_dist) return a.sq_dist < b.sq_dist;
    return a.id < b.id;
  }
};

Neighborhood FinalizeHeap(
    std::priority_queue<Candidate, std::vector<Candidate>>& heap) {
  Neighborhood result(heap.size());
  for (std::size_t i = heap.size(); i-- > 0;) {
    const Candidate& c = heap.top();
    result[i] = Neighbor{Point{.id = c.id, .x = c.x, .y = c.y},
                         std::sqrt(c.sq_dist)};
    heap.pop();
  }
  return result;
}

}  // namespace

bool Contains(const Neighborhood& nbr, PointId id) {
  for (const Neighbor& n : nbr) {
    if (n.point.id == id) return true;
  }
  return false;
}

Neighborhood KnnSearcher::GetKnn(const Point& query, std::size_t k) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Locality locality = ComputeLocality(index_, query, k, kInf, &stats_);
  return NeighborhoodFromLocality(query, k, locality, kInf);
}

Neighborhood KnnSearcher::GetKnnRestricted(const Point& query, std::size_t k,
                                           double threshold) {
  const Locality locality =
      ComputeLocality(index_, query, k, threshold, &stats_);
  // Individual points beyond the threshold are skipped as well: no such
  // point can displace a within-threshold point from the top k (any
  // point preceding a within-threshold point is itself within the
  // threshold), and the caller's final intersection discards them
  // regardless. This keeps the candidate heap small when k is large.
  return NeighborhoodFromLocality(query, k, locality, threshold);
}

Neighborhood KnnSearcher::NeighborhoodFromLocality(const Point& query,
                                                   std::size_t k,
                                                   const Locality& locality,
                                                   double threshold) {
  if (k == 0 || locality.blocks.empty()) return {};
  const bool restricted = !std::isinf(threshold);

  // Visit locality blocks nearest-first so the heap bound can cut off
  // the scan early; [15] guarantees correctness for any visit order, so
  // ordering is purely an optimization.
  std::vector<std::pair<double, BlockId>> ordered;
  ordered.reserve(locality.blocks.size());
  for (const BlockId id : locality.blocks) {
    ordered.emplace_back(index_.block(id).box.SquaredMinDist(query), id);
  }
  std::sort(ordered.begin(), ordered.end());

  std::priority_queue<Candidate, std::vector<Candidate>> heap;
  for (const auto& [sq_min_dist, id] : ordered) {
    // Strict >: a block at exactly the k-th distance can still hold a
    // point that wins the (distance, id) tie-break.
    if (heap.size() == k && sq_min_dist > heap.top().sq_dist) break;
    ++stats_.blocks_scanned;
    for (const Point& p : index_.BlockPoints(id)) {
      ++stats_.points_scanned;
      const Candidate c{SquaredDistance(p, query), p.id, p.x, p.y};
      // Compare in sqrt space: the caller derived the threshold with the
      // same sqrt, so the boundary point is kept exactly (sq_dist
      // against a squared threshold can lose it to rounding).
      if (restricted && std::sqrt(c.sq_dist) > threshold) continue;
      if (heap.size() < k) {
        heap.push(c);
      } else if (c < heap.top()) {
        heap.pop();
        heap.push(c);
      }
    }
  }
  return FinalizeHeap(heap);
}

Neighborhood BruteForceKnn(const PointSet& points, const Point& query,
                           std::size_t k) {
  std::priority_queue<Candidate, std::vector<Candidate>> heap;
  for (const Point& p : points) {
    const Candidate c{SquaredDistance(p, query), p.id, p.x, p.y};
    if (heap.size() < k) {
      heap.push(c);
    } else if (k > 0 && c < heap.top()) {
      heap.pop();
      heap.push(c);
    }
  }
  return FinalizeHeap(heap);
}

}  // namespace knnq
