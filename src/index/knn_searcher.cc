#include "src/index/knn_searcher.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/index/distance_kernel.h"
#include "src/index/topk.h"

namespace knnq {

namespace {

/// Materializes sorted top-k entries as a Neighborhood (true distances,
/// ascending by (distance, id)).
Neighborhood ToNeighborhood(const std::vector<TopKEntry>& sorted) {
  Neighborhood result(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TopKEntry& e = sorted[i];
    result[i] = Neighbor{Point{.id = e.id, .x = e.x, .y = e.y},
                         std::sqrt(e.sq_dist)};
  }
  return result;
}

}  // namespace

bool Contains(const Neighborhood& nbr, PointId id) {
  for (const Neighbor& n : nbr) {
    if (n.point.id == id) return true;
  }
  return false;
}

Neighborhood KnnSearcher::GetKnn(const Point& query, std::size_t k) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ComputeLocalityInto(index_, query, k, kInf, &stats_, arena_.phase1(),
                      locality_);
  return NeighborhoodFromLocality(query, k, locality_, kInf);
}

Neighborhood KnnSearcher::GetKnnRestricted(const Point& query, std::size_t k,
                                           double threshold) {
  ComputeLocalityInto(index_, query, k, threshold, &stats_, arena_.phase1(),
                      locality_);
  // Individual points beyond the threshold are skipped as well: no such
  // point can displace a within-threshold point from the top k (any
  // point preceding a within-threshold point is itself within the
  // threshold), and the caller's final intersection discards them
  // regardless. This keeps the candidate heap small when k is large.
  return NeighborhoodFromLocality(query, k, locality_, threshold);
}

Neighborhood KnnSearcher::NeighborhoodFromLocality(const Point& query,
                                                   std::size_t k,
                                                   const Locality& locality,
                                                   double threshold) {
  if (k == 0 || locality.blocks.empty()) return {};
  const bool restricted = !std::isinf(threshold);

  // Visit locality blocks nearest-first so the heap bound can cut off
  // the scan early; [15] guarantees correctness for any visit order, so
  // ordering is purely an optimization.
  auto& ordered = arena_.ordered_blocks();
  ordered.reserve(locality.blocks.size());
  for (const BlockId id : locality.blocks) {
    ordered.emplace_back(index_.block(id).box.SquaredMinDist(query), id);
  }
  std::sort(ordered.begin(), ordered.end());

  TopKQueue topk(k, arena_.heap());
  for (std::size_t bi = 0; bi < ordered.size(); ++bi) {
    const auto& [sq_min_dist, id] = ordered[bi];
    // Bound-based block skip. Strict >: a block at exactly the k-th
    // distance can still hold a point that wins the (distance, id)
    // tie-break. The list is MINDIST-sorted, so the first block past
    // the bound proves every remaining block is skippable too.
    if (sq_min_dist > topk.threshold()) {
      stats_.blocks_skipped += ordered.size() - bi;
      break;
    }
    ++stats_.blocks_scanned;
    const BlockColumns cols = index_.BlockSoA(id);
    stats_.points_scanned += cols.size;
    double* sq = arena_.distances(cols.size);
    SquaredDistanceBatch(cols.x, cols.y, cols.size, query.x, query.y, sq);
    for (std::size_t i = 0; i < cols.size; ++i) {
      // Compare in sqrt space: the caller derived the threshold with the
      // same sqrt, so the boundary point is kept exactly (sq_dist
      // against a squared threshold can lose it to rounding).
      if (restricted && std::sqrt(sq[i]) > threshold) continue;
      topk.Push(TopKEntry{sq[i], cols.id[i], cols.x[i], cols.y[i]});
    }
  }
  stats_.arena_bytes =
      arena_.bytes() + locality_.blocks.capacity() * sizeof(BlockId);
  return ToNeighborhood(topk.SortAscending());
}

Neighborhood BruteForceKnn(const PointSet& points, const Point& query,
                           std::size_t k) {
  std::vector<TopKEntry> storage;
  TopKQueue topk(k, storage);
  for (const Point& p : points) {
    topk.Push(TopKEntry{SquaredDistance(p, query), p.id, p.x, p.y});
  }
  return ToNeighborhood(topk.SortAscending());
}

}  // namespace knnq
