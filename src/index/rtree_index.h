// RTreeIndex: Sort-Tile-Recursive (STR) bulk-loaded R-tree.
//
// The paper lists the R-tree and its variants [6, 2, 7] among the
// structures its algorithms run on unchanged. Since all relations here
// are static point sets, bulk loading with STR (Leutenegger et al.)
// yields well-packed leaves without insertion-time heuristics. Leaf MBRs
// (tight boxes around the contained points) are the blocks; internal
// levels are packed with the same tiling over leaf centers.

#ifndef KNNQ_SRC_INDEX_RTREE_INDEX_H_
#define KNNQ_SRC_INDEX_RTREE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/spatial_index.h"
#include "src/index/tree_scan.h"

namespace knnq {

/// Construction parameters for RTreeIndex.
struct RTreeOptions {
  /// Maximum points per leaf.
  std::size_t leaf_capacity = 64;

  /// Maximum children per internal node.
  std::size_t fanout = 16;
};

/// STR-packed R-tree spatial index. Immutable once built.
class RTreeIndex final : public SpatialIndex {
 public:
  /// Builds the tree over `points`. Fails when leaf_capacity == 0 or
  /// fanout < 2.
  static Result<std::unique_ptr<RTreeIndex>> Build(PointSet points,
                                                   const RTreeOptions& options);

  BlockId Locate(const Point& p) const override;
  std::unique_ptr<BlockScan> NewScan(const Point& query,
                                     ScanOrder order) const override;
  std::string Describe() const override;

  std::size_t height() const { return height_; }

 private:
  RTreeIndex() = default;

  static constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

  std::vector<TreeNode> nodes_;
  std::uint32_t root_ = kNoNode;
  std::size_t height_ = 0;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_RTREE_INDEX_H_
