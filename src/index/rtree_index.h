// RTreeIndex: Sort-Tile-Recursive (STR) bulk-loaded R-tree.
//
// The paper lists the R-tree and its variants [6, 2, 7] among the
// structures its algorithms run on unchanged. Bulk loading with STR
// (Leutenegger et al.) yields well-packed leaves; after the initial
// build the tree is maintained with the standard dynamic R-tree
// operations: Insert chooses the leaf of least MBR enlargement and
// splits overflowing nodes bottom-up; Erase tightens MBRs and, when a
// leaf underflows (below leaf_capacity / 4), condenses it — the leaf is
// removed and its surviving points re-inserted, Guttman's
// delete-and-reinsert. Leaf MBRs (tight boxes around the contained
// points) are the blocks; internal MBRs cover their children.

#ifndef KNNQ_SRC_INDEX_RTREE_INDEX_H_
#define KNNQ_SRC_INDEX_RTREE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/dynamic_tree.h"
#include "src/index/spatial_index.h"
#include "src/index/tree_scan.h"

namespace knnq {

/// Construction parameters for RTreeIndex.
struct RTreeOptions {
  /// Maximum points per leaf.
  std::size_t leaf_capacity = 64;

  /// Maximum children per internal node.
  std::size_t fanout = 16;
};

/// STR-packed, dynamically maintained R-tree spatial index.
class RTreeIndex final : public DynamicTreeIndex {
 public:
  /// Builds the tree over `points`. Fails when leaf_capacity == 0 or
  /// fanout < 2.
  static Result<std::unique_ptr<RTreeIndex>> Build(PointSet points,
                                                   const RTreeOptions& options);

  BlockId Locate(const Point& p) const override;
  std::unique_ptr<BlockScan> NewScan(const Point& query,
                                     ScanOrder order) const override;
  std::string Describe() const override;
  IndexType type() const override { return IndexType::kRTree; }
  std::unique_ptr<SpatialIndex> Clone() const override {
    return std::unique_ptr<SpatialIndex>(new RTreeIndex(*this));
  }

  Status Insert(const Point& p) override;
  Status Erase(PointId id) override;
  Status BulkLoad(PointSet points) override;

  std::size_t height() const { return height_; }

 private:
  RTreeIndex() = default;
  RTreeIndex(const RTreeIndex&) = default;

  /// Rebuilds this object in place from `points` (fresh STR packing).
  Status Rebuild(PointSet points);

  /// The leaf Guttman's ChooseLeaf picks for `p`: least MBR
  /// enlargement, then least area, then lowest slot.
  std::uint32_t ChooseLeaf(const Point& p) const;

  /// Splits an overflowing leaf into two halves along its wider axis;
  /// then splits overflowing ancestors bottom-up.
  void SplitLeaf(std::uint32_t leaf);

  /// Splits internal `node`'s child group in half along the wider
  /// axis of the child centers. The caller loops bottom-up.
  void SplitInternal(std::uint32_t node);

  /// Installs a fresh root above `old_root` (pre-split growth).
  std::uint32_t GrowNewRoot(std::uint32_t old_root);

  /// Reorders `parent`'s child group to `order` (a permutation of
  /// member offsets), fixing every moved child's outbound links.
  void PermuteChildren(std::uint32_t parent,
                       const std::vector<std::uint32_t>& order);

  /// Recomputes the leaf block's tight MBR from its points.
  void RecomputeLeafBox(BlockId block);

  /// Guttman's CondenseTree for one underflowed leaf: unlink it, prune
  /// childless ancestors, collapse single-child roots, re-insert the
  /// surviving points.
  void CondenseLeaf(std::uint32_t leaf);

  std::size_t height_ = 0;
  RTreeOptions options_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_RTREE_INDEX_H_
