// ShardedIndex: N spatially partitioned child indexes behind the one
// SpatialIndex contract.
//
// The paper's pruning principle — skip work whose MINDIST lower bound
// exceeds the current k-th neighbor distance — applies across
// partitions exactly as it applies across blocks: a shard whose data
// bounds lie farther than the running bound cannot contribute a
// neighbor, so scatter-gather kNN visits shards in MINDIST order and
// stops at the first shard past the bound (SearchStats::shards_pruned
// counts the rest). This is the spatial analog of WAND-style shard
// selection in partitioned text engines.
//
// Partitioning is pluggable (IndexOptions::shard_policy): recursive
// bisection by point count (balanced shards under any distribution) or
// a fixed grid tiling. The partition is chosen at build time and never
// changes afterwards — routing is a pure function of (x, y), so a point
// always lives in the shard its coordinates route to, mutations never
// migrate points across shards, and copy-on-write shard replacement
// (QueryEngine's sharded DML path) can clone one shard while the
// others are shared untouched.
//
// Composition strategy: the wrapper MIRRORS its children's base
// storage — points_, the SoA columns and the block table are the
// concatenation of every child's, with spans shifted to global
// offsets. All the non-virtual base accessors (points(), BlockSoA(),
// num_blocks(), bounds(), ...) therefore work unchanged over the
// composed view, every src/core evaluator runs byte-identically on a
// sharded relation, and BlockIds stay dense in [0, num_blocks()) as
// the contract requires. NewScan is a lazy merge: a heap seeded with
// one sentinel per shard (key = MINDIST to the union of the shard's
// block boxes — an exact lower bound on the shard's block keys for
// either scan order; data bounds would be off by the ulps grid cell
// rectangles overhang them) opens a child scan only when its sentinel
// pops, so an abandoned scan never touches far shards.
//
// Mutation (writer-exclusive, like every SpatialIndex): ops route to
// one child, which maintains itself incrementally; the wrapper then
// rebuilds its mirror (O(n) memcpy). The engine's sharded DML path
// avoids the wrapper's in-place API entirely — it clones affected
// children, applies ops to the clones, and republishes via FromShards.

#ifndef KNNQ_SRC_INDEX_SHARDED_INDEX_H_
#define KNNQ_SRC_INDEX_SHARDED_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/index_factory.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// The build-time spatial partition: how query/insert coordinates
/// route to a shard. Immutable after Build; shared by every wrapper
/// generation of a relation (copy-on-write replacement keeps the
/// partition and swaps children).
struct ShardPartition {
  /// Interior node of the bisection split tree. Leaves are encoded as
  /// negative child links: child < 0 names shard ~child.
  struct SplitNode {
    /// 0 = split on x, 1 = split on y.
    int axis = 0;
    double threshold = 0.0;
    /// Nodes index (>= 0) or ~shard (< 0).
    int lo = 0;
    int hi = 0;
  };

  ShardPolicy policy = ShardPolicy::kBisection;
  std::size_t num_shards = 1;

  /// kBisection: the split tree, rooted at node 0 (empty means one
  /// shard — everything routes to shard 0).
  std::vector<SplitNode> nodes;

  /// kGrid: rows x cols tiling of `frame`; cell (i, j) maps to shard
  /// min(j * cols + i, num_shards - 1).
  std::size_t grid_rows = 1;
  std::size_t grid_cols = 1;
  BoundingBox frame;

  /// The shard owning location (x, y). Total: every finite coordinate
  /// routes somewhere (bisection thresholds cover the plane; grid
  /// cells clamp).
  std::size_t Route(double x, double y) const;
};

/// N child indexes of one structure type behind the composed
/// SpatialIndex view described in the header comment.
class ShardedIndex final : public SpatialIndex {
 public:
  /// Partitions `points` per `options.shard_policy` into
  /// `options.shards` shards and builds one `options.type` child per
  /// shard. Fails on shards < 2 or invalid child options.
  static Result<std::unique_ptr<ShardedIndex>> Build(
      PointSet points, const IndexOptions& options);

  /// Rewraps `children` (one per partition shard, same order) under
  /// `partition`. The copy-on-write primitive: untouched children are
  /// shared with the previous wrapper, replaced ones are fresh clones.
  /// `children[i]` must hold exactly the points that route to shard i.
  static Result<std::unique_ptr<ShardedIndex>> FromShards(
      std::shared_ptr<const ShardPartition> partition,
      std::vector<std::shared_ptr<SpatialIndex>> children);

  // --- SpatialIndex contract ---

  BlockId Locate(const Point& p) const override;
  std::unique_ptr<BlockScan> NewScan(const Point& query,
                                     ScanOrder order) const override;
  std::string Describe() const override;
  IndexType type() const override { return child_type_; }
  std::unique_ptr<SpatialIndex> Clone() const override;

  /// In-place mutation: routes to the owning child, then rebuilds the
  /// mirror (O(n)). Correct but linear per op — batch writers should
  /// prefer the engine's copy-on-write path, which clones children and
  /// pays the mirror once per batch.
  Status Insert(const Point& p) override;
  Status Erase(PointId id) override;
  Status BulkLoad(PointSet points) override;

  // --- Shard introspection (scatter-gather search + COW DML) ---

  std::size_t num_shards() const { return children_.size(); }
  const SpatialIndex& shard(std::size_t s) const { return *children_[s]; }
  const std::shared_ptr<SpatialIndex>& shard_ptr(std::size_t s) const {
    return children_[s];
  }
  const std::shared_ptr<const ShardPartition>& partition() const {
    return partition_;
  }

  /// The shard that owns location (x, y) — where an insert of that
  /// location goes and where a point at it lives.
  std::size_t RouteShard(const Point& p) const {
    return partition_->Route(p.x, p.y);
  }

  /// The shard holding the (first) indexed point with id `id`, or -1.
  /// Erase routing for writers that know only the id.
  int ShardOfPointId(PointId id) const;

  /// The shard owning global block `b` (blocks are concatenated in
  /// shard order).
  std::size_t ShardOfBlock(BlockId b) const { return block_shard_[b]; }

  /// Union of shard `s`'s block boxes: the merged scan's sentinel
  /// frame. Contains the shard's data bounds (blocks cover every
  /// point) and every block box (which grid cell geometry can push a
  /// few ulps past the data bounds).
  const BoundingBox& ShardScanBounds(std::size_t s) const {
    return shard_scan_bounds_[s];
  }

 private:
  ShardedIndex() = default;
  ShardedIndex(const ShardedIndex&) = delete;

  /// Rebuilds the mirrored base storage and block table from the
  /// children's. O(total points) — memcpy-bound.
  void RebuildMirror();

  std::shared_ptr<const ShardPartition> partition_;
  std::vector<std::shared_ptr<SpatialIndex>> children_;
  IndexType child_type_ = IndexType::kGrid;

  /// Global block id -> owning shard, parallel to blocks_.
  std::vector<std::uint32_t> block_shard_;
  /// Per shard: union of its block boxes (ShardScanBounds).
  std::vector<BoundingBox> shard_scan_bounds_;
  /// Per shard: first global block id / first global point position of
  /// its segment in the mirror (size num_shards + 1; the tail entry is
  /// the total).
  std::vector<std::size_t> block_offset_;
  std::vector<std::size_t> point_offset_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_SHARDED_INDEX_H_
