// Index factory: build any SpatialIndex implementation from one options
// struct. Benches and the planner use this to swap structures without
// touching algorithm code, which is how the "structure independence"
// claim of the paper's Section 2 is exercised.

#ifndef KNNQ_SRC_INDEX_INDEX_FACTORY_H_
#define KNNQ_SRC_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/index/spatial_index.h"

namespace knnq {

// IndexType lives in spatial_index.h (SpatialIndex::type() reports it);
// this header re-exports it for historical includes.

/// Human-readable index type name ("grid", "quadtree", "rtree").
const char* ToString(IndexType type);

/// How a ShardedIndex partitions the plane across its shards.
enum class ShardPolicy {
  /// Recursive bisection by point count: repeatedly split the most
  /// populated tile at its point-median along the wider axis. Balanced
  /// shard sizes for any data distribution; the default.
  kBisection,
  /// A fixed rows x cols tiling of the build-time bounding box. Cheaper
  /// to route, but skewed data skews shard sizes.
  kGrid,
};

/// Human-readable shard policy name ("bisection", "grid").
const char* ToString(ShardPolicy policy);

/// Unified construction parameters; fields irrelevant to the selected
/// type are ignored.
struct IndexOptions {
  IndexType type = IndexType::kGrid;

  /// Target (grid) or maximum (trees) number of points per block.
  std::size_t block_capacity = 64;

  /// Quadtree recursion limit.
  std::size_t quadtree_max_depth = 24;

  /// R-tree internal fanout.
  std::size_t rtree_fanout = 16;

  /// Grid cell cap per axis.
  std::size_t grid_max_cells_per_axis = 4096;

  /// Spatial shards per relation. 1 builds a plain index (the
  /// default); > 1 builds a ShardedIndex of that many `type`-structured
  /// children partitioned by `shard_policy`. See
  /// src/index/sharded_index.h.
  std::size_t shards = 1;

  /// Partitioning policy when shards > 1.
  ShardPolicy shard_policy = ShardPolicy::kBisection;
};

/// Builds the configured index over a copy-by-value point set.
Result<std::unique_ptr<SpatialIndex>> BuildIndex(PointSet points,
                                                 const IndexOptions& options);

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_INDEX_FACTORY_H_
