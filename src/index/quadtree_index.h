// QuadtreeIndex: point-region (PR) quadtree.
//
// "The quadtree and its variants are hierarchical spatial data structures
// that recursively partition the underlying space into blocks until the
// number of points inside a block satisfies some criterion" (paper,
// Section 2). Space is split at region midpoints until a region holds at
// most `leaf_capacity` points or `max_depth` is reached; non-empty leaf
// regions become blocks. Block boxes are the leaf *regions* (not MBRs),
// faithful to the partition-of-space reading.

#ifndef KNNQ_SRC_INDEX_QUADTREE_INDEX_H_
#define KNNQ_SRC_INDEX_QUADTREE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/dynamic_tree.h"
#include "src/index/spatial_index.h"
#include "src/index/tree_scan.h"

namespace knnq {

/// Construction parameters for QuadtreeIndex.
struct QuadtreeOptions {
  /// Split a region while it holds more points than this.
  std::size_t leaf_capacity = 64;

  /// Hard depth cap; duplicate-heavy data stops splitting here.
  std::size_t max_depth = 24;
};

/// PR-quadtree spatial index. Mutable: Insert descends the region
/// partition and splits leaves past leaf_capacity; Erase removes empty
/// leaves and merges a parent's all-leaf children back into one leaf
/// when their total occupancy falls to leaf_capacity / 2 (the
/// hysteresis that keeps churn from ping-ponging split/merge). A point
/// outside the built root region triggers a full rebuild — region
/// geometry is fixed at build time.
class QuadtreeIndex final : public DynamicTreeIndex {
 public:
  /// Builds the tree over `points`. Fails on zero leaf_capacity or depth.
  static Result<std::unique_ptr<QuadtreeIndex>> Build(
      PointSet points, const QuadtreeOptions& options);

  BlockId Locate(const Point& p) const override;
  std::unique_ptr<BlockScan> NewScan(const Point& query,
                                     ScanOrder order) const override;
  std::string Describe() const override;
  IndexType type() const override { return IndexType::kQuadtree; }
  std::unique_ptr<SpatialIndex> Clone() const override {
    return std::unique_ptr<SpatialIndex>(new QuadtreeIndex(*this));
  }

  Status Insert(const Point& p) override;
  Status Erase(PointId id) override;
  Status BulkLoad(PointSet points) override;

  std::size_t depth() const { return depth_; }

 private:
  QuadtreeIndex() = default;
  QuadtreeIndex(const QuadtreeIndex&) = default;

  /// Recursively fills pre-allocated node slot `idx` with the subtree
  /// over points_[begin, end) covering `region`. Child slots are claimed
  /// contiguously before recursion so TreeScan's CSR layout holds.
  std::uint32_t FillNode(std::uint32_t idx, std::size_t begin,
                         std::size_t end, const BoundingBox& region,
                         std::size_t depth, const QuadtreeOptions& options);

  /// Rebuilds this object in place from `points`.
  Status Rebuild(PointSet points);

  /// The midpoint quadrant of `region` that the build partition
  /// assigns `p` to (exact same arithmetic as FillNode, so quadrant
  /// boxes compare equal to built child regions).
  static BoundingBox QuadrantBox(const BoundingBox& region, const Point& p);

  /// The child of `node` whose region equals `box`, or kNoNode.
  std::uint32_t FindChildWithBox(std::uint32_t node,
                                 const BoundingBox& box) const;

  /// Splits leaf `node` (at `depth`) into midpoint quadrants,
  /// recursing while a quadrant still overflows and depth allows.
  void SplitLeaf(std::uint32_t node, std::size_t depth);

  /// Merges `parent`'s children into one leaf when they are all leaves
  /// with total occupancy <= leaf_capacity / 2.
  void MaybeMerge(std::uint32_t parent);

  std::size_t depth_ = 0;
  QuadtreeOptions options_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_QUADTREE_INDEX_H_
