// QuadtreeIndex: point-region (PR) quadtree.
//
// "The quadtree and its variants are hierarchical spatial data structures
// that recursively partition the underlying space into blocks until the
// number of points inside a block satisfies some criterion" (paper,
// Section 2). Space is split at region midpoints until a region holds at
// most `leaf_capacity` points or `max_depth` is reached; non-empty leaf
// regions become blocks. Block boxes are the leaf *regions* (not MBRs),
// faithful to the partition-of-space reading.

#ifndef KNNQ_SRC_INDEX_QUADTREE_INDEX_H_
#define KNNQ_SRC_INDEX_QUADTREE_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/index/spatial_index.h"
#include "src/index/tree_scan.h"

namespace knnq {

/// Construction parameters for QuadtreeIndex.
struct QuadtreeOptions {
  /// Split a region while it holds more points than this.
  std::size_t leaf_capacity = 64;

  /// Hard depth cap; duplicate-heavy data stops splitting here.
  std::size_t max_depth = 24;
};

/// PR-quadtree spatial index. Immutable once built.
class QuadtreeIndex final : public SpatialIndex {
 public:
  /// Builds the tree over `points`. Fails on zero leaf_capacity or depth.
  static Result<std::unique_ptr<QuadtreeIndex>> Build(
      PointSet points, const QuadtreeOptions& options);

  BlockId Locate(const Point& p) const override;
  std::unique_ptr<BlockScan> NewScan(const Point& query,
                                     ScanOrder order) const override;
  std::string Describe() const override;

  std::size_t depth() const { return depth_; }

 private:
  QuadtreeIndex() = default;

  /// Recursively fills pre-allocated node slot `idx` with the subtree
  /// over points_[begin, end) covering `region`. Child slots are claimed
  /// contiguously before recursion so TreeScan's CSR layout holds.
  std::uint32_t FillNode(std::uint32_t idx, std::size_t begin,
                         std::size_t end, const BoundingBox& region,
                         std::size_t depth, const QuadtreeOptions& options);

  static constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

  std::vector<TreeNode> nodes_;
  std::uint32_t root_ = kNoNode;
  std::size_t depth_ = 0;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_QUADTREE_INDEX_H_
