#include "src/index/locality.h"

#include <algorithm>

#include "src/common/check.h"

namespace knnq {

Locality ComputeLocality(const SpatialIndex& index, const Point& query,
                         std::size_t k, double restrict_to_threshold,
                         SearchStats* stats) {
  Locality locality;
  std::vector<BlockId> phase1_scratch;
  ComputeLocalityInto(index, query, k, restrict_to_threshold, stats,
                      phase1_scratch, locality);
  return locality;
}

void ComputeLocalityInto(const SpatialIndex& index, const Point& query,
                         std::size_t k, double restrict_to_threshold,
                         SearchStats* stats,
                         std::vector<BlockId>& phase1_scratch,
                         Locality& out) {
  Locality& locality = out;
  locality.blocks.clear();
  locality.max_dist_bound = std::numeric_limits<double>::infinity();
  if (stats != nullptr) ++stats->localities_computed;
  if (index.num_blocks() == 0 || k == 0) {
    locality.max_dist_bound = 0.0;
    return;
  }

  // Phase 1: MAXDIST order until the counted points reach k.
  std::vector<BlockId>& phase1 = phase1_scratch;  // Popped, kept or not.
  phase1.clear();
  std::size_t count = 0;
  double m = std::numeric_limits<double>::infinity();
  {
    auto scan = index.NewScan(query, ScanOrder::kMaxDist);
    double key = 0.0;
    while (count < k && scan->HasNext()) {
      const BlockId id = scan->Next(&key);
      if (stats != nullptr) ++stats->blocks_scanned;
      count += index.block(id).count();
      phase1.push_back(id);
      if (index.block(id).box.MinDist(query) <= restrict_to_threshold) {
        locality.blocks.push_back(id);
      }
    }
    if (count >= k) {
      m = key;  // MAXDIST of the last block that completed the count.
    }
    if (stats != nullptr) stats->shards_pruned += scan->shards_pruned();
    // Otherwise the whole index holds fewer than k points: every block
    // was popped and (subject to the threshold) added; M stays infinite
    // and phase 2 has nothing left to do.
  }
  locality.max_dist_bound = m;
  if (count < k) return;

  // Phase 2: MINDIST order; every point within M lives in a block with
  // MINDIST <= M. Skip blocks already taken in phase 1.
  const double add_bound = std::min(m, restrict_to_threshold);
  auto scan = index.NewScan(query, ScanOrder::kMinDist);
  double key = 0.0;
  while (scan->HasNext()) {
    const BlockId id = scan->Next(&key);
    if (key > add_bound) break;
    if (stats != nullptr) ++stats->blocks_scanned;
    if (std::find(phase1.begin(), phase1.end(), id) != phase1.end()) {
      continue;
    }
    locality.blocks.push_back(id);
  }
  if (stats != nullptr) stats->shards_pruned += scan->shards_pruned();
}

}  // namespace knnq
