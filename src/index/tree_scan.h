// Best-first block scans over hierarchical indexes.
//
// QuadtreeIndex and RTreeIndex store their nodes in one flat array with
// CSR child links; TreeScan traverses either. The heap is keyed by a
// lower bound of the eventual leaf key, so popping order equals exact
// MINDIST / MAXDIST order over leaf blocks:
//   * kMinDist: internal nodes keyed by MINDIST(node box); every leaf in
//     the subtree has MINDIST >= the node's MINDIST.
//   * kMaxDist: internal nodes are *also* keyed by MINDIST(node box); a
//     leaf's MAXDIST >= its MINDIST >= its ancestor's MINDIST, so the
//     node key is still a valid lower bound for descendant MAXDISTs.
// Leaves are keyed by the exact metric; a leaf at the top of the heap is
// therefore globally next.

#ifndef KNNQ_SRC_INDEX_TREE_SCAN_H_
#define KNNQ_SRC_INDEX_TREE_SCAN_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/bbox.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// Flat-array tree node shared by QuadtreeIndex and RTreeIndex.
struct TreeNode {
  /// Region (quadtree) or MBR (R-tree) of the subtree.
  BoundingBox box;
  /// First child in the owner's node array; children are contiguous.
  std::uint32_t first_child = 0;
  /// Number of children; 0 for leaves.
  std::uint32_t num_children = 0;
  /// Block id for leaves, kInvalidBlockId for internal nodes.
  BlockId block = kInvalidBlockId;

  bool is_leaf() const { return block != kInvalidBlockId; }
};

/// Best-first scan over a TreeNode array. The owning index keeps the
/// node array alive for the scan's lifetime.
class TreeScan final : public BlockScan {
 public:
  /// `root` is the index of the root node, or a value >= nodes.size()
  /// when the tree is empty.
  TreeScan(const std::vector<TreeNode>& nodes, std::size_t root,
           const Point& query, ScanOrder order);

  bool HasNext() override;
  BlockId Next(double* key_dist) override;

 private:
  struct Entry {
    double key;
    std::uint32_t node;
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.node > b.node;
    }
  };

  /// Expands internal nodes until the heap top is a leaf (or empty).
  void SettleTop();

  double KeyOf(const TreeNode& node) const;

  const std::vector<TreeNode>& nodes_;
  const Point query_;
  const ScanOrder order_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_TREE_SCAN_H_
