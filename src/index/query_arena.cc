#include "src/index/query_arena.h"

namespace knnq {

std::size_t QueryArena::bytes() const {
  return ordered_blocks_.capacity() * sizeof(ordered_blocks_[0]) +
         heap_.capacity() * sizeof(heap_[0]) +
         distances_.capacity() * sizeof(distances_[0]) +
         phase1_.capacity() * sizeof(phase1_[0]);
}

}  // namespace knnq
