// DynamicTreeIndex: shared mutable-tree plumbing for QuadtreeIndex and
// RTreeIndex.
//
// Both trees keep their nodes in one flat CSR array (TreeNode: children
// contiguous via first_child/num_children) so that TreeScan can
// traverse either. Mutation has to reshape that array without breaking
// the CSR invariant or the node<->block cross-links; this base class
// owns the bookkeeping:
//
//   * parent_ gives every node its parent, so erase paths can walk
//     leaf -> root without a descent;
//   * block_node_ maps each BlockId to its owning leaf, so block
//     swap-removal can re-aim the moved block's leaf;
//   * child groups grow by relocation: when a group cannot extend in
//     place it is copied to the tail of nodes_ and the old slots die.
//     Dead slots are unreachable from the root (scans never see them);
//     when too many accumulate, the owning index compacts with a full
//     rebuild (TooManyDeadNodes).
//
// Like all SpatialIndex mutation machinery, none of this is
// thread-safe; the engine serializes writers against all readers.

#ifndef KNNQ_SRC_INDEX_DYNAMIC_TREE_H_
#define KNNQ_SRC_INDEX_DYNAMIC_TREE_H_

#include <cstdint>
#include <vector>

#include "src/index/spatial_index.h"
#include "src/index/tree_scan.h"

namespace knnq {

/// Base of the two hierarchical indexes; owns the CSR node array and
/// the link-consistency helpers mutation needs.
class DynamicTreeIndex : public SpatialIndex {
 protected:
  static constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);

  DynamicTreeIndex() = default;
  /// For the concrete trees' Clone(): CSR arrays are value state, so
  /// the memberwise copy is a full deep copy.
  DynamicTreeIndex(const DynamicTreeIndex&) = default;

  /// Derives parent_ / block_node_ from scratch after a (re)build and
  /// resets the dead-slot counter.
  void RefreshTreeLinks();

  /// Moves the tree state (and, via AdoptBaseFrom, the base storage)
  /// out of a freshly built scratch index.
  void AdoptTreeFrom(DynamicTreeIndex& other);

  /// Appends a fresh node and its parent link; returns its slot.
  std::uint32_t NewNode(const TreeNode& node, std::uint32_t parent);

  /// Copies slot `from` into slot `to` and re-aims every inbound link:
  /// the children's parent_ entries, a leaf's block_node_ entry, and
  /// root_. Slot `from` is dead afterwards (counted). The parent's
  /// first_child is NOT touched — callers manage group membership.
  void MoveNode(std::uint32_t from, std::uint32_t to);

  /// Appends `child` to `parent`'s child group, relocating the whole
  /// group to the tail of nodes_ when it cannot grow in place. Returns
  /// the new child's slot. The caller fixes the new child's outbound
  /// links (block_node_ for a leaf, children's parent_ for an internal
  /// node); previously held child indices of this group are stale.
  std::uint32_t AttachNewChild(std::uint32_t parent, const TreeNode& child);

  /// Removes `child` from `parent`'s group by moving the group's last
  /// member into its slot. `child`'s slot (or the vacated last slot)
  /// is dead afterwards.
  void DetachChild(std::uint32_t parent, std::uint32_t child);

  /// Swap-removes block `id`, re-aiming the moved block's leaf. The
  /// block must already be detached from any live leaf.
  void RemoveBlock(BlockId id);

  /// Recomputes boxes bottom-up from `node` to the root: a leaf from
  /// its block box, an internal node from its children (R-tree MBR
  /// tightening after erase; quadtree regions never shrink).
  void TightenUpward(std::uint32_t node);

  /// Accumulates the subtree's block span into [*begin, *end): callers
  /// seed *begin with SIZE_MAX and *end with 0.
  void SubtreeSpan(std::uint32_t node, std::size_t* begin,
                   std::size_t* end) const;

  /// True when at least half the node array is dead slots — the signal
  /// to compact with a full rebuild.
  bool TooManyDeadNodes() const {
    return nodes_.size() > 64 && 2 * dead_nodes_ > nodes_.size();
  }

  /// Returns the index to the empty-tree state (no nodes, no blocks,
  /// no points).
  void ResetTreeEmpty();

  std::vector<TreeNode> nodes_;
  /// Node -> parent slot; kNoNode for the root (and for dead slots).
  std::vector<std::uint32_t> parent_;
  /// BlockId -> owning leaf slot.
  std::vector<std::uint32_t> block_node_;
  std::uint32_t root_ = kNoNode;
  std::size_t dead_nodes_ = 0;
};

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_DYNAMIC_TREE_H_
