// Locality computation (Sankaranarayanan, Samet, Varshney [15]).
//
// Definition 2 of the paper: the *locality* of a point p is a set of
// blocks inside which p's k nearest neighbors are guaranteed to exist.
// The algorithm of [15], used as the paper's getkNN primitive, builds
// the minimum locality in two phases:
//
//   1. MAXDIST phase: pop blocks in increasing MAXDIST from p, summing
//      their point counts, until the sum reaches k. Record M, the
//      MAXDIST of the last popped block. At least k points now lie
//      within distance M of p.
//   2. MINDIST phase: every point within distance M lies in a block with
//      MINDIST <= M, so pop blocks in increasing MINDIST and add the
//      unvisited ones until MINDIST exceeds M.
//
// Procedure 5 of the paper runs the same construction with one change:
// a block joins the locality only if its MINDIST is within an externally
// supplied search threshold (counting in phase 1 is unaffected). The
// `restrict_to_threshold` parameter implements that variant; see
// DESIGN.md note 5 for why the result stays correct for the two-select
// intersection.

#ifndef KNNQ_SRC_INDEX_LOCALITY_H_
#define KNNQ_SRC_INDEX_LOCALITY_H_

#include <limits>
#include <vector>

#include "src/common/point.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// Blocks guaranteed to contain the query's neighborhood, plus the
/// MAXDIST bound M that defined them.
struct Locality {
  std::vector<BlockId> blocks;
  /// The bound M from the MAXDIST phase; +inf when the index holds fewer
  /// than k points (then every block is in the locality).
  double max_dist_bound = std::numeric_limits<double>::infinity();
};

/// Running cost counters, shared by locality construction and kNN search.
struct SearchStats {
  std::size_t localities_computed = 0;
  std::size_t blocks_scanned = 0;
  std::size_t points_scanned = 0;
  /// Locality blocks whose MINDIST exceeded the running k-th distance,
  /// so their whole point span was skipped without being touched —
  /// the payoff of bound-based block skipping.
  std::size_t blocks_skipped = 0;
  /// GetKnn calls served from / missing a shared NeighborhoodCache
  /// (src/engine/neighborhood_cache.h). Both stay zero when no cache is
  /// attached, so uncached callers see unchanged stats.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// High-water capacity (bytes) of the searcher's scratch arena; a
  /// gauge (latest value), not a counter.
  std::size_t arena_bytes = 0;
  /// Shards whose distance lower bound exceeded the running search
  /// bound, so their block scans were never even opened. Nonzero only
  /// for sharded relations (BlockScan::shards_pruned); the partition
  /// analog of blocks_skipped.
  std::size_t shards_pruned = 0;

  void Reset() { *this = SearchStats{}; }
};

/// Builds the locality of `query` for a k-neighborhood over `index`.
///
/// With `restrict_to_threshold` set (Procedure 5), blocks whose MINDIST
/// from `query` exceeds the threshold are counted but not returned.
/// `stats` may be null.
Locality ComputeLocality(
    const SpatialIndex& index, const Point& query, std::size_t k,
    double restrict_to_threshold = std::numeric_limits<double>::infinity(),
    SearchStats* stats = nullptr);

/// Allocation-recycling variant: builds the locality into `out`
/// (clearing its block list but keeping its capacity) and uses
/// `phase1_scratch` for the phase-1 bookkeeping instead of a local
/// vector. The hot path (KnnSearcher) calls this with arena-owned
/// buffers so steady-state locality construction allocates nothing.
void ComputeLocalityInto(const SpatialIndex& index, const Point& query,
                         std::size_t k, double restrict_to_threshold,
                         SearchStats* stats,
                         std::vector<BlockId>& phase1_scratch, Locality& out);

}  // namespace knnq

#endif  // KNNQ_SRC_INDEX_LOCALITY_H_
