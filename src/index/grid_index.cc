#include "src/index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <utility>

#include "src/common/check.h"

namespace knnq {

namespace {

/// Heap entry: (ordering key, block). Min-heap by key; block id breaks
/// ties deterministically.
struct ScanEntry {
  double key;
  BlockId block;
  friend bool operator>(const ScanEntry& a, const ScanEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.block > b.block;
  }
};

}  // namespace

/// Ring-expanding block scan over a grid.
///
/// Ring r is the set of cells at Chebyshev distance r (in cell units)
/// from the query's (clamped) cell. For a query point q and a cell in
/// ring r:
///   MINDIST(q, cell)  >= (r - 1) * min_cell_dim   (r >= 1)
///   MAXDIST(q, cell)  >=  r      * min_cell_dim
/// Both bounds are non-decreasing in r, so the scan keeps a min-heap of
/// exact keys for cells of the rings expanded so far and only expands the
/// next ring when the heap's top could still be beaten by an unexpanded
/// cell. Starting a scan costs O(1) regardless of grid size.
class GridBlockScan final : public BlockScan {
 public:
  GridBlockScan(const GridIndex& grid, const Point& query, ScanOrder order)
      : grid_(grid), query_(query), order_(order) {
    if (grid_.num_blocks() == 0) {
      next_ring_ = 0;
      max_ring_ = -1;  // Nothing to expand.
      return;
    }
    grid_.CellOf(query.x, query.y, &ci_, &cj_);
    const std::size_t chebyshev_x =
        std::max(ci_, grid_.cols_ - 1 - ci_);
    const std::size_t chebyshev_y =
        std::max(cj_, grid_.rows_ - 1 - cj_);
    max_ring_ = static_cast<std::ptrdiff_t>(std::max(chebyshev_x,
                                                     chebyshev_y));
  }

  bool HasNext() override {
    Refill();
    return !heap_.empty();
  }

  BlockId Next(double* key_dist) override {
    Refill();
    KNNQ_CHECK_MSG(!heap_.empty(), "Next() past the end of a block scan");
    const ScanEntry top = heap_.top();
    heap_.pop();
    if (key_dist != nullptr) *key_dist = top.key;
    return top.block;
  }

 private:
  /// Lower bound on the key of any cell in ring `r` or beyond.
  double RingBound(std::ptrdiff_t r) const {
    const double steps = (order_ == ScanOrder::kMinDist)
                             ? static_cast<double>(r - 1)
                             : static_cast<double>(r);
    return std::max(0.0, steps) * grid_.min_cell_dim_;
  }

  /// Expands rings until the heap's top is guaranteed globally next.
  void Refill() {
    while (next_ring_ <= max_ring_ &&
           (heap_.empty() || heap_.top().key > RingBound(next_ring_))) {
      ExpandRing(next_ring_);
      ++next_ring_;
    }
  }

  void PushCell(std::size_t ci, std::size_t cj) {
    const BlockId id = grid_.CellBlock(ci, cj);
    if (id == kInvalidBlockId) return;  // Empty cell.
    const BoundingBox& box = grid_.block(id).box;
    const double key = (order_ == ScanOrder::kMinDist) ? box.MinDist(query_)
                                                       : box.MaxDist(query_);
    heap_.push(ScanEntry{key, id});
  }

  void ExpandRing(std::ptrdiff_t r) {
    const std::ptrdiff_t ci = static_cast<std::ptrdiff_t>(ci_);
    const std::ptrdiff_t cj = static_cast<std::ptrdiff_t>(cj_);
    const std::ptrdiff_t cols = static_cast<std::ptrdiff_t>(grid_.cols_);
    const std::ptrdiff_t rows = static_cast<std::ptrdiff_t>(grid_.rows_);
    if (r == 0) {
      PushCell(ci_, cj_);
      return;
    }
    const std::ptrdiff_t x_lo = std::max<std::ptrdiff_t>(ci - r, 0);
    const std::ptrdiff_t x_hi = std::min<std::ptrdiff_t>(ci + r, cols - 1);
    // Top and bottom rows of the ring (full width).
    for (const std::ptrdiff_t y : {cj - r, cj + r}) {
      if (y < 0 || y >= rows) continue;
      for (std::ptrdiff_t x = x_lo; x <= x_hi; ++x) {
        PushCell(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
      }
    }
    // Left and right columns, excluding the corners already pushed.
    const std::ptrdiff_t y_lo = std::max<std::ptrdiff_t>(cj - r + 1, 0);
    const std::ptrdiff_t y_hi = std::min<std::ptrdiff_t>(cj + r - 1, rows - 1);
    for (const std::ptrdiff_t x : {ci - r, ci + r}) {
      if (x < 0 || x >= cols) continue;
      for (std::ptrdiff_t y = y_lo; y <= y_hi; ++y) {
        PushCell(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
      }
    }
  }

  const GridIndex& grid_;
  const Point query_;
  const ScanOrder order_;
  std::size_t ci_ = 0;
  std::size_t cj_ = 0;
  std::ptrdiff_t next_ring_ = 0;
  std::ptrdiff_t max_ring_ = -1;
  std::priority_queue<ScanEntry, std::vector<ScanEntry>,
                      std::greater<ScanEntry>>
      heap_;
};

Result<std::unique_ptr<GridIndex>> GridIndex::Build(
    PointSet points, const GridOptions& options) {
  if (options.target_points_per_cell == 0) {
    return Status::InvalidArgument("target_points_per_cell must be > 0");
  }
  if (options.max_cells_per_axis == 0) {
    return Status::InvalidArgument("max_cells_per_axis must be > 0");
  }

  auto grid = std::unique_ptr<GridIndex>(new GridIndex());
  grid->options_ = options;
  grid->bounds_ = BoundingBox::Of(points);
  grid->points_ = std::move(points);

  const std::size_t n = grid->points_.size();
  grid->built_points_ = n;
  if (n == 0) {
    grid->cols_ = grid->rows_ = 0;
    grid->SyncColumns();
    return grid;
  }

  // Cell sizing: aim for n / target cells total, roughly square cells.
  const double width = std::max(grid->bounds_.width(), 1e-12);
  const double height = std::max(grid->bounds_.height(), 1e-12);
  const double target_cells = std::max(
      1.0, static_cast<double>(n) /
               static_cast<double>(options.target_points_per_cell));
  const double aspect = width / height;
  double cols_f = std::sqrt(target_cells * aspect);
  double rows_f = std::sqrt(target_cells / aspect);
  const auto clamp_axis = [&](double v) {
    return std::min(static_cast<double>(options.max_cells_per_axis),
                    std::max(1.0, std::ceil(v)));
  };
  grid->cols_ = static_cast<std::size_t>(clamp_axis(cols_f));
  grid->rows_ = static_cast<std::size_t>(clamp_axis(rows_f));
  grid->cell_w_ = width / static_cast<double>(grid->cols_);
  grid->cell_h_ = height / static_cast<double>(grid->rows_);
  grid->min_cell_dim_ = std::min(grid->cell_w_, grid->cell_h_);

  // Counting sort of points into cells.
  const std::size_t num_cells = grid->cols_ * grid->rows_;
  std::vector<std::size_t> cell_counts(num_cells, 0);
  std::vector<std::size_t> cell_of_point(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t ci, cj;
    grid->CellOf(grid->points_[i].x, grid->points_[i].y, &ci, &cj);
    const std::size_t cell = cj * grid->cols_ + ci;
    cell_of_point[i] = cell;
    ++cell_counts[cell];
  }

  std::vector<std::size_t> cell_begin(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_begin[c + 1] = cell_begin[c] + cell_counts[c];
  }

  PointSet sorted(n);
  std::vector<std::size_t> cursor(cell_begin.begin(), cell_begin.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    sorted[cursor[cell_of_point[i]]++] = grid->points_[i];
  }
  grid->points_ = std::move(sorted);

  // Materialize non-empty cells as blocks. Cell rectangles are widened
  // by their points' bounding box: points exactly on the grid's outer
  // border can otherwise fall one ulp outside the arithmetic cell
  // bounds, and the only property the algorithms need is that every
  // point lies inside its block's box.
  grid->cell_to_block_.assign(num_cells, kInvalidBlockId);
  for (std::size_t cj = 0; cj < grid->rows_; ++cj) {
    for (std::size_t ci = 0; ci < grid->cols_; ++ci) {
      const std::size_t cell = cj * grid->cols_ + ci;
      if (cell_counts[cell] == 0) continue;
      grid->cell_to_block_[cell] =
          static_cast<BlockId>(grid->blocks_.size());
      grid->block_cell_.push_back(cell);
      Block block{.box = grid->CellBox(ci, cj),
                  .begin = cell_begin[cell],
                  .end = cell_begin[cell + 1]};
      for (std::size_t i = block.begin; i < block.end; ++i) {
        block.box.Extend(grid->points_[i]);
      }
      grid->blocks_.push_back(block);
    }
  }
  grid->SyncColumns();
  return grid;
}

Status GridIndex::Rebuild(PointSet points) {
  auto built = Build(std::move(points), options_);
  if (!built.ok()) return built.status();
  GridIndex& other = **built;
  AdoptBaseFrom(other);
  cols_ = other.cols_;
  rows_ = other.rows_;
  cell_w_ = other.cell_w_;
  cell_h_ = other.cell_h_;
  min_cell_dim_ = other.min_cell_dim_;
  cell_to_block_ = std::move(other.cell_to_block_);
  block_cell_ = std::move(other.block_cell_);
  built_points_ = other.built_points_;
  return Status::Ok();
}

bool GridIndex::GeometryStale(std::size_t n) const {
  // Asymmetric hysteresis: re-grid when growth doubles the average
  // occupancy the sizing heuristic aimed for, but tolerate shrinking
  // to a quarter before re-gridding (an oversized grid merely scans a
  // few more cells; an undersized one packs cells past the capacity
  // the pruning maths were tuned for). The slack constant keeps small
  // relations from re-gridding on every insert.
  return n > 2 * built_points_ + 4 * options_.target_points_per_cell ||
         4 * n + 4 * options_.target_points_per_cell < built_points_;
}

void GridIndex::RemoveEmptyBlock(BlockId b) {
  KNNQ_DCHECK(blocks_[b].count() == 0);
  cell_to_block_[block_cell_[b]] = kInvalidBlockId;
  const BlockId last = static_cast<BlockId>(blocks_.size() - 1);
  if (b != last) {
    blocks_[b] = blocks_[last];
    block_cell_[b] = block_cell_[last];
    cell_to_block_[block_cell_[b]] = b;
  }
  blocks_.pop_back();
  block_cell_.pop_back();
}

Status GridIndex::Insert(const Point& p) {
  if (Status s = ValidateInsertable(p); !s.ok()) return s;
  // Outside the built extent the cell geometry does not cover p (and
  // extending an edge cell's box would break the ring scan's distance
  // bounds); drifted occupancy makes the geometry a poor fit. Both
  // re-grid.
  if (cols_ == 0 || !bounds_.Contains(p) ||
      GeometryStale(points_.size() + 1)) {
    PointSet points = std::move(points_);
    points.push_back(p);
    return Rebuild(std::move(points));
  }
  std::size_t ci, cj;
  CellOf(p.x, p.y, &ci, &cj);
  const std::size_t cell = cj * cols_ + ci;
  BlockId b = cell_to_block_[cell];
  if (b == kInvalidBlockId) {
    b = static_cast<BlockId>(blocks_.size());
    cell_to_block_[cell] = b;
    block_cell_.push_back(cell);
    blocks_.push_back(Block{.box = CellBox(ci, cj),
                            .begin = points_.size(),
                            .end = points_.size()});
  }
  InsertIntoBlock(b, p);
  return Status::Ok();
}

Status GridIndex::Erase(PointId id) {
  BlockId b;
  std::size_t pos;
  if (!FindPoint(id, &b, &pos)) {
    return Status::NotFound("no indexed point with id " +
                            std::to_string(id));
  }
  EraseFromBlock(b, pos);
  if (blocks_[b].count() == 0) RemoveEmptyBlock(b);
  if (points_.empty() || GeometryStale(points_.size())) {
    return Rebuild(std::move(points_));
  }
  return Status::Ok();
}

Status GridIndex::BulkLoad(PointSet points) {
  return Rebuild(std::move(points));
}

void GridIndex::CellOf(double x, double y, std::size_t* ci,
                       std::size_t* cj) const {
  KNNQ_DCHECK(cols_ > 0 && rows_ > 0);
  const auto clamp_cell = [](double v, std::size_t cells) {
    if (v < 0.0) return std::size_t{0};
    const std::size_t c = static_cast<std::size_t>(v);
    return std::min(c, cells - 1);
  };
  *ci = clamp_cell((x - bounds_.min_x()) / cell_w_, cols_);
  *cj = clamp_cell((y - bounds_.min_y()) / cell_h_, rows_);
}

BoundingBox GridIndex::CellBox(std::size_t ci, std::size_t cj) const {
  const double x0 = bounds_.min_x() + static_cast<double>(ci) * cell_w_;
  const double y0 = bounds_.min_y() + static_cast<double>(cj) * cell_h_;
  return BoundingBox(x0, y0, x0 + cell_w_, y0 + cell_h_);
}

BlockId GridIndex::Locate(const Point& p) const {
  if (num_blocks() == 0 || !bounds_.Contains(p)) return kInvalidBlockId;
  std::size_t ci, cj;
  CellOf(p.x, p.y, &ci, &cj);
  return CellBlock(ci, cj);
}

std::unique_ptr<BlockScan> GridIndex::NewScan(const Point& query,
                                              ScanOrder order) const {
  return std::make_unique<GridBlockScan>(*this, query, order);
}

std::string GridIndex::Describe() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "grid %zux%zu, %zu blocks, %zu points",
                cols_, rows_, num_blocks(), num_points());
  return buf;
}

}  // namespace knnq
